"""Ablation — the heater mitigation strategies of paper section 3.2.

Three deployments of temporal-locality support, measured on the same
512-deep Sandy Bridge workload:

* **Collaborative pause/resume**: "resume the heater in time to ensure the
  match list is in cache before the first access in a communication phase".
  We sweep the resume lead time and measure the warmed fraction and the
  first-traversal cost — too little lead leaves the tail of the list cold.
* **Defective-core heater**: a yield-harvested core heats for free (no
  pipeline interference) but slowly; its passes still warm the LLC.
* **Always-on heater** (the baseline technique) for reference.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.arch import SANDY_BRIDGE
from repro.hotcache import (
    CollaborativeHeater,
    DefectiveCoreHeater,
    HeaterConfig,
)
from repro.matching import Envelope, MatchEngine, MatchItem, make_pattern, make_queue

DEPTH = 512


def _build(heater_cls=None, **heater_kwargs):
    hier = SANDY_BRIDGE.build_hierarchy(rng=np.random.default_rng(3))
    engine = MatchEngine(hier)
    q = make_queue("baseline", port=engine, rng=np.random.default_rng(1))
    heater = None
    if heater_cls is not None:
        heater = heater_cls(hier, SANDY_BRIDGE.ghz, HeaterConfig(locked=False), **heater_kwargs)
        heater.region_provider = q.regions
    for seq in range(DEPTH):
        q.post(make_pattern(0, 10_000 + seq, 0, seq=seq))
    q.post(make_pattern(1, 7, 0, seq=DEPTH + 5))
    return hier, engine, q, heater


def _measure(hier, engine, q):
    probe = MatchItem.from_envelope(Envelope(1, 7, 0), seq=999_999)
    _, cycles = engine.timed(lambda: q.match_remove(probe))
    return cycles


def test_collaborative_resume_lead_sweep(once):
    def run():
        results = {}
        cold_hier, cold_engine, cold_q, _ = _build()
        cold_hier.flush()
        results["no heater"] = (0.0, _measure(cold_hier, cold_engine, cold_q))
        for lead_ns in (0.0, 1_000.0, 2_000.0, 50_000.0):
            hier, engine, q, heater = _build(CollaborativeHeater)
            heater.pause()
            hier.flush()
            warm = heater.resume_before_phase(engine.clock.now, lead_ns)
            results[f"collaborative, lead {lead_ns:.0f} ns"] = (
                warm, _measure(hier, engine, q)
            )
        return results

    results = once(run)
    rows = [
        (label, f"{warm:.2f}", round(cycles))
        for label, (warm, cycles) in results.items()
    ]
    emit(render_table(
        ["policy", "warmed fraction", "first-search cycles"],
        rows,
        title=f"Collaborative heater resume-lead sweep, depth {DEPTH} (Sandy Bridge)",
    ))
    cold = results["no heater"][1]
    zero = results["collaborative, lead 0 ns"]
    full = results["collaborative, lead 50000 ns"]
    mid = results["collaborative, lead 1000 ns"]
    # No lead -> nothing warm -> cold-equivalent cost.
    assert zero[0] == 0.0
    assert zero[1] >= 0.95 * cold
    # Generous lead -> fully warm -> clear win.
    assert full[0] == 1.0
    assert full[1] < 0.6 * cold
    # Partial lead sits in between (the paper's "challenge").
    assert 0.0 < mid[0] < 1.0
    assert full[1] < mid[1] < zero[1]


def test_defective_core_heats_for_free(once):
    def run():
        hier, engine, q, heater = _build(DefectiveCoreHeater, slowdown=3.0)
        hier.flush()
        heater.force_pass(engine.clock.now)
        return {
            "cycles": _measure(hier, engine, q),
            "interference": heater.config.interference_cycles,
            "pass_cycles": heater.last_pass_duration,
        }

    result = once(run)
    emit(render_table(
        ["metric", "value"],
        [(k, round(v, 1)) for k, v in result.items()],
        title="Defective-core heater (3x slowdown), depth 512 (Sandy Bridge)",
    ))
    # It still heats: traversal far below the ~90 cy/entry cold baseline.
    assert result["cycles"] < 60 * DEPTH
    # And it charges the matching core no pipeline interference.
    assert result["interference"] == 0.0
    # Its pass is slow — the degraded core pays for its yield bin.
    assert result["pass_cycles"] > DEPTH * 3
