"""Ablation — sizing the dedicated network cache (sections 3.2 / 4.1).

    "We designed the match queue length experiments to better understand the
    amount of memory needed to hold all of the relevant MPI data. This helps
    in sizing caches..."  and  "...this could also be supported with
    relative ease by device manufacturers by adding a small 1-2KiB network
    specific cache to the core design."

Sweep the dedicated cache size against queue depth: a size covers a depth
when the whole match footprint fits (depth x one line per baseline node);
below that it thrashes and buys nothing. The paper's 1-2 KiB proposal
covers exactly the short lists (depths ~16-30) the Figure 1 motifs say
dominate — and none of the long-list workloads its own Table 1 predicts.
"""

import numpy as np
import pytest
from conftest import emit

from repro.analysis.report import render_table
from repro.arch import SANDY_BRIDGE
from repro.bench.figures import default_link
from repro.bench.osu import OsuConfig, osu_bandwidth
from repro.mem.hierarchy import NetworkCacheConfig

SIZES = (1024, 2048, 8192, 65536)
DEPTHS = (8, 16, 64, 512)


def _bw(depth, size):
    cfg = OsuConfig(
        arch=SANDY_BRIDGE,
        link=default_link(SANDY_BRIDGE),
        queue_family="baseline",
        msg_bytes=1,
        search_depth=depth,
        iterations=3,
        network_cache=NetworkCacheConfig(size_bytes=size) if size else None,
    )
    return osu_bandwidth(cfg).mibps


def test_network_cache_sizing(once):
    results = once(
        lambda: {
            (size, depth): _bw(depth, size)
            for size in (0,) + SIZES
            for depth in DEPTHS
        }
    )
    rows = [
        ("none" if size == 0 else f"{size // 1024} KiB", depth, round(bw, 4))
        for (size, depth), bw in results.items()
    ]
    emit(
        render_table(
            ["net cache", "queue depth", "bandwidth (MiBps), 1 B msgs"],
            rows,
            title="Dedicated network cache sizing (Sandy Bridge, baseline list)",
        )
    )
    # The paper's 1-2 KiB proposal covers short lists only...
    assert results[(2048, 8)] > 1.15 * results[(0, 8)]
    assert results[(2048, 16)] > 1.1 * results[(0, 16)]
    # ...and thrashes uselessly on deep ones.
    assert results[(2048, 512)] == pytest.approx(results[(0, 512)], rel=0.05)
    # Capacity must track the footprint: 64 KiB covers depth 512
    # (512 nodes x ~1-2 lines each fits in 1024 lines).
    assert results[(65536, 512)] > 2 * results[(0, 512)]
    # Within its capacity, a bigger cache is never worse.
    for depth in DEPTHS:
        assert results[(65536, depth)] >= 0.95 * results[(8192, depth)]

