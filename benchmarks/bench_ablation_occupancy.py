"""Ablation — the paper's section 4.6 proposal, evaluated.

The paper *argues for* hardware-supported semi-permanent cache occupancy
("allowing users to either interact with cache management or providing a
dedicated networks cache") but could not evaluate it on real hardware. The
simulator can: compare hot caching (software), a CAT-style way partition,
and a small dedicated per-core network cache on the same workload.

Expected outcome (and what this bench asserts):

* On Sandy Bridge, the CAT partition matches or beats hot caching — the
  same LLC residency without burning a core or taking locks.
* On Broadwell, where hot caching is a net loss, the partition still helps:
  hardware occupancy avoids the heater's synchronization overhead entirely.
* The tiny (2 KiB) dedicated network cache only pays off for short lists —
  at depth 512 the match state does not fit, which quantifies the paper's
  own sizing question ("This helps in sizing caches").
"""

import pytest
from conftest import emit

from repro.analysis.report import render_table
from repro.arch import BROADWELL, SANDY_BRIDGE
from repro.bench.figures import default_link
from repro.bench.osu import OsuConfig, osu_bandwidth
from repro.mem.cache import WayPartition
from repro.mem.hierarchy import NetworkCacheConfig

VARIANTS = (
    ("baseline", {}),
    ("hot caching", {"heated": True}),
    ("CAT partition (4 ways)", {"partition": WayPartition(network_ways=4)}),
    ("net cache 2KiB", {"network_cache": NetworkCacheConfig(size_bytes=2048)}),
)


def _measure(arch, depth):
    out = {}
    for label, extra in VARIANTS:
        cfg = OsuConfig(
            arch=arch,
            link=default_link(arch),
            queue_family="baseline",
            msg_bytes=1,
            search_depth=depth,
            iterations=4,
            seed=0,
            **extra,
        )
        out[label] = osu_bandwidth(cfg).mibps
    return out


@pytest.mark.parametrize("arch", [SANDY_BRIDGE, BROADWELL], ids=lambda a: a.name)
def test_occupancy_mechanisms(arch, once):
    results = once(lambda: {depth: _measure(arch, depth) for depth in (16, 512)})
    rows = [
        (depth, label, round(mibps, 4))
        for depth, by_label in results.items()
        for label, mibps in by_label.items()
    ]
    emit(
        render_table(
            ["depth", "mechanism", "bandwidth (MiBps)"],
            rows,
            title=f"Semi-permanent occupancy mechanisms on {arch.name} (1 B messages)",
        )
    )
    deep = results[512]
    shallow = results[16]
    # The partition gives LLC residency without heater overhead: at least as
    # good as hot caching on both architectures, and a strict win where hot
    # caching loses (Broadwell).
    assert deep["CAT partition (4 ways)"] >= deep["hot caching"] * 0.98
    assert deep["CAT partition (4 ways)"] > deep["baseline"]
    if arch.name == "broadwell":
        assert deep["hot caching"] < deep["baseline"]
    # The 2 KiB dedicated cache helps short lists but cannot hold deep ones.
    assert shallow["net cache 2KiB"] > shallow["baseline"]
    assert deep["net cache 2KiB"] < deep["CAT partition (4 ways)"]
