"""Ablation — which architectural features carry the spatial-locality win?

DESIGN.md calls out three modelling choices to ablate:

* prefetchers on/off — section 4.2 attributes the LLA's scaling with k to
  the L1 next-line, L2 adjacent-pair and streamer units;
* eviction policy — hot caching works by refreshing recency, so it must
  lose its benefit under random replacement;
* allocator layout — the baseline's gap-ridden heap vs the churned
  fragmented arena (the FDS configuration).
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.arch import SANDY_BRIDGE
from repro.hotcache import HeatedQueue, Heater, HeaterConfig
from repro.matching import Envelope, MatchEngine, MatchItem, make_pattern, make_queue
from repro.mem.cache import EvictionPolicy

DEPTH = 1024


def _cold_cycles(family, *, prefetch=True, policy=EvictionPolicy.LRU,
                 fragmented=False, heated=False):
    hier = SANDY_BRIDGE.build_hierarchy(
        prefetch_enabled=prefetch, policy=policy, rng=np.random.default_rng(2)
    )
    engine = MatchEngine(hier)
    q = make_queue(family, port=engine, rng=np.random.default_rng(1), fragmented=fragmented)
    if heated:
        heater = Heater(hier, SANDY_BRIDGE.ghz, HeaterConfig(locked=family == "baseline"))
        q = HeatedQueue(q, heater, engine)
    for i in range(DEPTH):
        q.post(make_pattern(0, 10_000 + i, 0, seq=i))
    q.post(make_pattern(1, 7, 0, seq=DEPTH + 5))
    hier.flush()
    if heated:
        q.prepare_phase()
    probe = MatchItem.from_envelope(Envelope(1, 7, 0), seq=999_999)
    _, cycles = engine.timed(lambda: q.match_remove(probe))
    return cycles


def test_prefetchers_carry_the_lla_win(once):
    results = once(
        lambda: {
            (family, pf): _cold_cycles(family, prefetch=pf)
            for family in ("baseline", "lla-8")
            for pf in (True, False)
        }
    )
    rows = [(f, "on" if pf else "off", round(c)) for (f, pf), c in results.items()]
    emit(render_table(["queue", "prefetch", "cycles/search"], rows,
                      title=f"Prefetch ablation, depth {DEPTH} (Sandy Bridge)"))
    gain_with = results[("baseline", True)] / results[("lla-8", True)]
    gain_without = results[("baseline", False)] / results[("lla-8", False)]
    # With prefetchers the LLA advantage is clearly amplified; without them
    # it shrinks toward the raw packing factor (~2x: two entries per line).
    assert gain_with > 1.4 * gain_without
    assert 1.0 < gain_without < 3.0  # packing alone helps, but less


def test_hot_caching_requires_recency_based_eviction(once):
    results = once(
        lambda: {
            (policy, heated): _cold_cycles("baseline", policy=policy, heated=heated)
            for policy in (EvictionPolicy.LRU, EvictionPolicy.PLRU)
            for heated in (False, True)
        }
    )
    rows = [(p, h, round(c)) for (p, h), c in results.items()]
    emit(render_table(["policy", "heated", "cycles/search"], rows,
                      title="Eviction-policy ablation (Sandy Bridge)"))
    # Under both recency policies, heating must help on Sandy Bridge.
    for policy in (EvictionPolicy.LRU, EvictionPolicy.PLRU):
        assert results[(policy, True)] < results[(policy, False)]


def test_fragmented_heap_hurts_baseline_most(once):
    results = once(
        lambda: {
            (family, frag): _cold_cycles(family, fragmented=frag)
            for family in ("baseline", "lla-8")
            for frag in (False, True)
        }
    )
    rows = [(f, frag, round(c)) for (f, frag), c in results.items()]
    emit(render_table(["queue", "fragmented heap", "cycles/search"], rows,
                      title="Allocator-layout ablation (Sandy Bridge)"))
    # LLA nodes come from a pool: immune to heap fragmentation.
    assert results[("lla-8", True)] == results[("lla-8", False)]
    # The baseline degrades on a churned arena (the FDS regime); Sandy
    # Bridge's adjacent-pair prefetcher softens but cannot remove the hit.
    assert results[("baseline", True)] > 1.25 * results[("baseline", False)]
