"""Ablation — the paper's section 6 closing proposal, evaluated.

    "In addition, these caches could include custom prefetching units that
    can be used by middleware such as MPI to ensure consistent
    intergenerational performance."

The matching code knows its own traversal order — including the pointer-
chase targets no hardware stream detector can guess — so a middleware-
directed prefetch interface lets it run hints a few nodes ahead of the
scan. This bench quantifies the proposal on the simulated substrate:

* it rescues the *baseline* linked list (≈3x) without any relayout,
  including on the fragmented heap where hardware prefetch is blind;
* it stacks with the LLA (which still wins on packing density);
* together with the CAT-partition ablation this completes the paper's
  "hardware support for network processing" argument.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.arch import BROADWELL, SANDY_BRIDGE
from repro.matching import Envelope, MatchEngine, MatchItem, make_pattern, make_queue

DEPTH = 1024


def _cold_cycles(arch, family, *, sw_prefetch, fragmented=False):
    hier = arch.build_hierarchy(rng=np.random.default_rng(2))
    engine = MatchEngine(hier, software_prefetch=sw_prefetch)
    q = make_queue(family, port=engine, rng=np.random.default_rng(1), fragmented=fragmented)
    for i in range(DEPTH):
        q.post(make_pattern(0, 10_000 + i, 0, seq=i))
    q.post(make_pattern(1, 7, 0, seq=DEPTH + 5))
    hier.flush()
    probe = MatchItem.from_envelope(Envelope(1, 7, 0), seq=999_999)
    _, cycles = engine.timed(lambda: q.match_remove(probe))
    return cycles


def test_middleware_prefetch_proposal(once):
    def run():
        out = {}
        for arch in (SANDY_BRIDGE, BROADWELL):
            for family, frag in (("baseline", False), ("baseline", True), ("lla-8", False)):
                for sw in (False, True):
                    key = (arch.name, family + (" (fragmented)" if frag else ""), sw)
                    out[key] = _cold_cycles(arch, family, sw_prefetch=sw, fragmented=frag)
        return out

    results = once(run)
    rows = [
        (a, fam, "on" if sw else "off", round(c))
        for (a, fam, sw), c in results.items()
    ]
    emit(render_table(
        ["arch", "layout", "middleware prefetch", "cycles/search"],
        rows,
        title=f"Section 6 proposal: middleware-directed prefetch, depth {DEPTH}",
    ))
    for arch in ("sandy-bridge", "broadwell"):
        base_off = results[(arch, "baseline", False)]
        base_on = results[(arch, "baseline", True)]
        # It clearly rescues the unmodified baseline (Broadwell's streamer
        # already covers part of the gap, so the margin is smaller there)...
        assert base_on < base_off / 1.5, arch
        # ...even on the fragmented heap, where hardware prefetch is blind.
        frag_off = results[(arch, "baseline (fragmented)", False)]
        frag_on = results[(arch, "baseline (fragmented)", True)]
        assert frag_on < frag_off / 2, arch
        # And it stacks with the LLA rather than replacing it.
        assert results[(arch, "lla-8", True)] <= results[(arch, "lla-8", False)], arch
