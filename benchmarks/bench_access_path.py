"""Access-path micro-benchmark: batched ``access_lines`` vs the legacy loop.

The batched hot path (``MemoryHierarchy.access_lines``) must be *faithful* —
bit-identical simulated cycles and hit/miss counters against the seed's
per-line scalar loop (kept verbatim as ``access_legacy``) — and *faster*.
This benchmark drives both paths through the same fig4-style workload (a
match-list traversal of node loads punctuated by payload reads) and a pure
large-span read, under LRU and PLRU L1/L2 policies, asserting:

* identical simulated counter signatures batched vs legacy, always;
* >= 1.5x wall-clock speedup on the multi-line span workload, where the
  batched loop's hoisting (per-core hot tuples, inlined L1 hit path,
  deferred stats flush) amortizes across the 64 lines of each access
  (measured ~1.8-2.3x); the 1-line-per-access traversal mix is reported
  but not gated — its per-access cost is dominated by shared machinery
  both paths use, so the batched gain there is the call-overhead sliver
  (~1.1x).

Note both columns run on the *current* cache internals: the array-backed
recency that replaced the seed's per-hit PLRU OrderedDict rebuild speeds
legacy and batched alike, so the additional ~4x cache-level win over the
seed tree is visible in end-to-end figure benchmarks, not in this table.

Interleaved best-of-N timing keeps the comparison robust on noisy machines.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.mem.cache import CLS_DEFAULT, CLS_NETWORK, EvictionPolicy
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.kernel import KERNEL_REFERENCE, KERNEL_SOA, KERNEL_VEC
from repro.mem.layout import LINE_SHIFT
from repro.mem.result import AccessResult

#: fig4-style traversal: per message, 512 node loads striding the match
#: arena plus one 4 KiB payload read from a disjoint region.
MESSAGES = 12
NODE_LOADS = 512

#: Interleaved timing rounds; best-of keeps scheduler noise out.
ROUNDS = 7

#: The acceptance gate (span workload only — see module docstring).
MIN_SPAN_SPEEDUP = 1.5

#: The kernel gates: each faster backend must beat its predecessor by at
#: least this factor on the LRU warm-span workload its fast path targets.
#: soa-over-reference runs on 16 KiB spans (two alternating 256-line
#: buffers exactly filling the 512-line L1 — warm steady state, zero
#: evictions; measured ~2.2-2.5x). vec-over-soa runs on 32 KiB spans (one
#: 512-line buffer occupying the whole L1), where the vec backend's single
#: range-scan of the tag slab replaces soa's per-line set/stamp loop
#: (measured ~4-4.5x; at 256 lines the ratio sits right at 2x, so the gate
#: uses the wider span). A failing measurement is re-taken up to twice
#: before a gate trips, so a scheduler hiccup on a loaded machine cannot
#: fail the suite while a real regression still does.
MIN_KERNEL_SPEEDUP = 2.0


def _mix_stream():
    stream = []
    for _ in range(MESSAGES):
        for i in range(NODE_LOADS):
            stream.append((i * 40, 40, CLS_NETWORK))
        stream.append((1 << 20, 4096, CLS_DEFAULT))
    return stream


def _span_stream():
    # Pure large-span reads: one 4 KiB access per "message", alternating
    # between two buffers so each traversal re-hits L1/L2.
    return [((i & 1) << 16, 4096, CLS_DEFAULT) for i in range(2 * MESSAGES * 8)]


def _wide_span_stream():
    # 16 KiB spans (256 lines) alternating between two disjoint buffers;
    # together they exactly fill the L1, so after warmup every access is a
    # pure-hit run — the steady state the SoA stamp loop is optimized for.
    return [((i & 1) << 18, 16384, CLS_DEFAULT) for i in range(2 * MESSAGES * 8)]


def _xwide_span_stream():
    # 32 KiB spans (512 lines): one buffer occupying the entire L1. After
    # the cold first access every span is an all-hit run, the shape the vec
    # backend's whole-slab range probe turns into O(L1 slots) numpy work.
    # The stream is long enough that the (kernel-independent) cold fill of
    # the first access does not dilute the measured warm-path ratio.
    return [(0, 32768, CLS_DEFAULT)] * (2 * MESSAGES * 40)


def _make_hierarchy(policy, kernel=KERNEL_REFERENCE):
    # The legacy-vs-batched comparison pins the reference kernel: it is the
    # seed's data structure, so legacy/batched measure *loop* structure on
    # equal footing. The kernel comparison below varies ``kernel`` instead.
    return MemoryHierarchy(policy=policy, rng=np.random.default_rng(5), kernel=kernel)


def _run_legacy(hier, stream):
    access = hier.access_legacy
    for addr, nbytes, cls in stream:
        access(0, addr, nbytes, cls)


def _run_batched(hier, stream):
    access = hier.access_lines
    tx = AccessResult()
    for addr, nbytes, cls in stream:
        access(0, addr >> LINE_SHIFT, (addr + nbytes - 1) >> LINE_SHIFT, cls, tx)


def _signature(hier):
    stats = hier.stats()
    return (
        hier.demand_accesses,
        stats["l1.0"]["hits"],
        stats["l1.0"]["misses"],
        stats["l1.0"]["evictions"],
        stats["l2.0"]["hits"],
        stats["l2.0"]["misses"],
        stats["l3"]["hits"],
        stats["l3"]["misses"],
    )


def _time_pair(policy, stream):
    """Interleaved best-of-ROUNDS timing of (legacy, batched) on *stream*.

    Fresh hierarchies per round so both paths start cold; the final round's
    counter signatures are compared for exactness.
    """
    best_legacy = best_batched = float("inf")
    sig_legacy = sig_batched = None
    for _ in range(ROUNDS):
        hier = _make_hierarchy(policy)
        t0 = time.perf_counter()
        _run_legacy(hier, stream)
        best_legacy = min(best_legacy, time.perf_counter() - t0)
        sig_legacy = _signature(hier)

        hier = _make_hierarchy(policy)
        t0 = time.perf_counter()
        _run_batched(hier, stream)
        best_batched = min(best_batched, time.perf_counter() - t0)
        sig_batched = _signature(hier)
    assert sig_batched == sig_legacy, (
        f"batched path diverged from legacy under {policy}: "
        f"{sig_batched} != {sig_legacy}"
    )
    return best_legacy, best_batched


SCENARIOS = (
    ("traversal mix", _mix_stream),
    ("4KiB spans", _span_stream),
)


def test_access_path_speedup(once):
    def run():
        results = {}
        for policy in (EvictionPolicy.LRU, EvictionPolicy.PLRU):
            for name, make_stream in SCENARIOS:
                results[(policy, name)] = _time_pair(policy, make_stream())
        return results

    results = once(run)
    rows = []
    for (policy, name), (legacy_s, batched_s) in results.items():
        rows.append(
            (
                policy,
                name,
                round(legacy_s * 1e3, 2),
                round(batched_s * 1e3, 2),
                round(legacy_s / batched_s, 2),
            )
        )
    emit(
        render_table(
            ["policy", "workload", "legacy ms", "batched ms", "speedup"],
            rows,
            title="Batched access_lines vs legacy per-line loop (best-of-%d)" % ROUNDS,
        )
    )
    # The gate: the span workload is where per-access batching amortizes.
    legacy_s, batched_s = results[(EvictionPolicy.PLRU, "4KiB spans")]
    assert legacy_s / batched_s >= MIN_SPAN_SPEEDUP, (
        f"PLRU span speedup {legacy_s / batched_s:.2f}x < {MIN_SPAN_SPEEDUP}x"
    )
    # Faithfulness on every scenario is asserted inside _time_pair; the
    # batched path must additionally never be a large regression elsewhere.
    for (policy, name), (legacy_s, batched_s) in results.items():
        assert batched_s <= 1.5 * legacy_s, f"{policy}/{name} regressed"


# -- kernel backends: reference dicts vs SoA slabs vs vec ndarrays -------------

#: Timing/reporting order: reference first (the baseline every other
#: backend is asserted bit-identical against), then each faster backend.
KERNEL_ORDER = (KERNEL_REFERENCE, KERNEL_SOA, KERNEL_VEC)


def _run_stream(hier, stream):
    """Drive ``access_lines`` (each backend dispatches to its own path)."""
    access = hier.access_lines
    tx = AccessResult()
    cycles = 0.0
    for addr, nbytes, cls in stream:
        access(0, addr >> LINE_SHIFT, (addr + nbytes - 1) >> LINE_SHIFT, cls, tx)
        cycles += tx.cycles
    return cycles


def time_kernels(policy, stream, rounds=ROUNDS):
    """Interleaved best-of timing of every kernel backend on *stream*.

    Returns ``{kernel: best_seconds}``. Beyond speed, asserts the
    equivalence contract end to end: every backend must produce counter
    signatures identical to the reference kernel *and* repr-identical
    total simulated cycles.
    """
    best = {kernel: float("inf") for kernel in KERNEL_ORDER}
    sig = {}
    cyc = {}
    for _ in range(rounds):
        for kernel in KERNEL_ORDER:
            hier = _make_hierarchy(policy, kernel)
            t0 = time.perf_counter()
            cycles = _run_stream(hier, stream)
            best[kernel] = min(best[kernel], time.perf_counter() - t0)
            sig[kernel] = _signature(hier)
            cyc[kernel] = repr(cycles)
    for kernel in KERNEL_ORDER[1:]:
        assert sig[kernel] == sig[KERNEL_REFERENCE], (
            f"{kernel} kernel diverged from reference under {policy}: "
            f"{sig[kernel]} != {sig[KERNEL_REFERENCE]}"
        )
        assert cyc[kernel] == cyc[KERNEL_REFERENCE], (
            f"{kernel} kernel cycles diverged under {policy}: "
            f"{cyc[kernel]} != {cyc[KERNEL_REFERENCE]}"
        )
    return best


KERNEL_SCENARIOS = SCENARIOS + (
    ("16KiB spans", _wide_span_stream),
    ("32KiB spans", _xwide_span_stream),
)

#: The speedup gates: (fast kernel, baseline kernel, workload). Each runs
#: under LRU and must clear MIN_KERNEL_SPEEDUP (with noise retries).
KERNEL_GATES = (
    (KERNEL_SOA, KERNEL_REFERENCE, "16KiB spans", _wide_span_stream),
    (KERNEL_VEC, KERNEL_SOA, "32KiB spans", _xwide_span_stream),
)


def _gate_with_retry(results, fast, base, workload, make_stream, emit):
    """Assert ``fast`` beats ``base`` by MIN_KERNEL_SPEEDUP on *workload*.

    A below-target measurement is re-taken up to twice (fresh interleaved
    rounds) before the gate trips; the failure message names the kernel
    pair and the measured ratio so a trip is diagnosable from the log.
    """
    timing = results[(EvictionPolicy.LRU, workload)]
    speedup = timing[base] / timing[fast]
    for _retry in range(2):
        if speedup >= MIN_KERNEL_SPEEDUP:
            break
        emit(
            f"kernel gate {fast}-over-{base} ({workload}) at {speedup:.2f}x, "
            f"below {MIN_KERNEL_SPEEDUP}x target; re-measuring"
        )
        timing = time_kernels(EvictionPolicy.LRU, make_stream())
        speedup = max(speedup, timing[base] / timing[fast])
    assert speedup >= MIN_KERNEL_SPEEDUP, (
        f"LRU {workload}: {fast}-over-{base} kernel speedup "
        f"{speedup:.2f}x < {MIN_KERNEL_SPEEDUP}x"
    )


def test_kernel_backend_speedup(once):
    def run():
        results = {}
        for policy in (EvictionPolicy.LRU, EvictionPolicy.PLRU):
            for name, make_stream in KERNEL_SCENARIOS:
                results[(policy, name)] = time_kernels(policy, make_stream())
        return results

    results = once(run)
    rows = []
    for (policy, name), timing in results.items():
        rows.append(
            (
                policy,
                name,
                round(timing[KERNEL_REFERENCE] * 1e3, 2),
                round(timing[KERNEL_SOA] * 1e3, 2),
                round(timing[KERNEL_VEC] * 1e3, 2),
                round(timing[KERNEL_REFERENCE] / timing[KERNEL_SOA], 2),
                round(timing[KERNEL_SOA] / timing[KERNEL_VEC], 2),
            )
        )
    emit(
        render_table(
            ["policy", "workload", "reference ms", "soa ms", "vec ms",
             "soa/ref x", "vec/soa x"],
            rows,
            title="Cache kernel backends (best-of-%d)" % ROUNDS,
        )
    )
    # The gates: each warm wide-span workload under LRU is the shape the
    # corresponding backend's fast path targets (see MIN_KERNEL_SPEEDUP).
    for fast, base, workload, make_stream in KERNEL_GATES:
        _gate_with_retry(results, fast, base, workload, make_stream, emit)
    # And neither optimized kernel may be a *large* regression on any
    # scenario. soa gets 15% slack for timer noise on near-parity traversal
    # workloads. vec gets more: off its fast path (narrow spans, PLRU,
    # scalar fills) it runs the inherited soa loop over ndarray storage,
    # where per-element reads/writes cost ~2-3x a Python list's — the
    # documented price of the wide-warm-span LRU win (measured worst case
    # ~1.3x on the narrow-span PLRU shapes; the bound catches it becoming
    # pathological, not the known constant).
    for (policy, name), timing in results.items():
        assert timing[KERNEL_SOA] <= 1.15 * timing[KERNEL_REFERENCE], (
            f"{policy}/{name}: soa slower than reference "
            f"({timing[KERNEL_SOA] / timing[KERNEL_REFERENCE]:.2f}x)"
        )
        assert timing[KERNEL_VEC] <= 1.5 * timing[KERNEL_REFERENCE], (
            f"{policy}/{name}: vec slower than reference "
            f"({timing[KERNEL_VEC] / timing[KERNEL_REFERENCE]:.2f}x)"
        )
