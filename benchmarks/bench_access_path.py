"""Access-path micro-benchmark: batched ``access_lines`` vs the legacy loop.

The batched hot path (``MemoryHierarchy.access_lines``) must be *faithful* —
bit-identical simulated cycles and hit/miss counters against the seed's
per-line scalar loop (kept verbatim as ``access_legacy``) — and *faster*.
This benchmark drives both paths through the same fig4-style workload (a
match-list traversal of node loads punctuated by payload reads) and a pure
large-span read, under LRU and PLRU L1/L2 policies, asserting:

* identical simulated counter signatures batched vs legacy, always;
* >= 1.5x wall-clock speedup on the multi-line span workload, where the
  batched loop's hoisting (per-core hot tuples, inlined L1 hit path,
  deferred stats flush) amortizes across the 64 lines of each access
  (measured ~1.8-2.3x); the 1-line-per-access traversal mix is reported
  but not gated — its per-access cost is dominated by shared machinery
  both paths use, so the batched gain there is the call-overhead sliver
  (~1.1x).

Note both columns run on the *current* cache internals: the array-backed
recency that replaced the seed's per-hit PLRU OrderedDict rebuild speeds
legacy and batched alike, so the additional ~4x cache-level win over the
seed tree is visible in end-to-end figure benchmarks, not in this table.

Interleaved best-of-N timing keeps the comparison robust on noisy machines.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.mem.cache import CLS_DEFAULT, CLS_NETWORK, EvictionPolicy
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.layout import LINE_SHIFT
from repro.mem.result import AccessResult

#: fig4-style traversal: per message, 512 node loads striding the match
#: arena plus one 4 KiB payload read from a disjoint region.
MESSAGES = 12
NODE_LOADS = 512

#: Interleaved timing rounds; best-of keeps scheduler noise out.
ROUNDS = 7

#: The acceptance gate (span workload only — see module docstring).
MIN_SPAN_SPEEDUP = 1.5


def _mix_stream():
    stream = []
    for _ in range(MESSAGES):
        for i in range(NODE_LOADS):
            stream.append((i * 40, 40, CLS_NETWORK))
        stream.append((1 << 20, 4096, CLS_DEFAULT))
    return stream


def _span_stream():
    # Pure large-span reads: one 4 KiB access per "message", alternating
    # between two buffers so each traversal re-hits L1/L2.
    return [((i & 1) << 16, 4096, CLS_DEFAULT) for i in range(2 * MESSAGES * 8)]


def _make_hierarchy(policy):
    return MemoryHierarchy(policy=policy, rng=np.random.default_rng(5))


def _run_legacy(hier, stream):
    access = hier.access_legacy
    for addr, nbytes, cls in stream:
        access(0, addr, nbytes, cls)


def _run_batched(hier, stream):
    access = hier.access_lines
    tx = AccessResult()
    for addr, nbytes, cls in stream:
        access(0, addr >> LINE_SHIFT, (addr + nbytes - 1) >> LINE_SHIFT, cls, tx)


def _signature(hier):
    stats = hier.stats()
    return (
        hier.demand_accesses,
        stats["l1.0"]["hits"],
        stats["l1.0"]["misses"],
        stats["l1.0"]["evictions"],
        stats["l2.0"]["hits"],
        stats["l2.0"]["misses"],
        stats["l3"]["hits"],
        stats["l3"]["misses"],
    )


def _time_pair(policy, stream):
    """Interleaved best-of-ROUNDS timing of (legacy, batched) on *stream*.

    Fresh hierarchies per round so both paths start cold; the final round's
    counter signatures are compared for exactness.
    """
    best_legacy = best_batched = float("inf")
    sig_legacy = sig_batched = None
    for _ in range(ROUNDS):
        hier = _make_hierarchy(policy)
        t0 = time.perf_counter()
        _run_legacy(hier, stream)
        best_legacy = min(best_legacy, time.perf_counter() - t0)
        sig_legacy = _signature(hier)

        hier = _make_hierarchy(policy)
        t0 = time.perf_counter()
        _run_batched(hier, stream)
        best_batched = min(best_batched, time.perf_counter() - t0)
        sig_batched = _signature(hier)
    assert sig_batched == sig_legacy, (
        f"batched path diverged from legacy under {policy}: "
        f"{sig_batched} != {sig_legacy}"
    )
    return best_legacy, best_batched


SCENARIOS = (
    ("traversal mix", _mix_stream),
    ("4KiB spans", _span_stream),
)


def test_access_path_speedup(once):
    def run():
        results = {}
        for policy in (EvictionPolicy.LRU, EvictionPolicy.PLRU):
            for name, make_stream in SCENARIOS:
                results[(policy, name)] = _time_pair(policy, make_stream())
        return results

    results = once(run)
    rows = []
    for (policy, name), (legacy_s, batched_s) in results.items():
        rows.append(
            (
                policy,
                name,
                round(legacy_s * 1e3, 2),
                round(batched_s * 1e3, 2),
                round(legacy_s / batched_s, 2),
            )
        )
    emit(
        render_table(
            ["policy", "workload", "legacy ms", "batched ms", "speedup"],
            rows,
            title="Batched access_lines vs legacy per-line loop (best-of-%d)" % ROUNDS,
        )
    )
    # The gate: the span workload is where per-access batching amortizes.
    legacy_s, batched_s = results[(EvictionPolicy.PLRU, "4KiB spans")]
    assert legacy_s / batched_s >= MIN_SPAN_SPEEDUP, (
        f"PLRU span speedup {legacy_s / batched_s:.2f}x < {MIN_SPAN_SPEEDUP}x"
    )
    # Faithfulness on every scenario is asserted inside _time_pair; the
    # batched path must additionally never be a large regression elsewhere.
    for (policy, name), (legacy_s, batched_s) in results.items():
        assert batched_s <= 1.5 * legacy_s, f"{policy}/{name} regressed"
