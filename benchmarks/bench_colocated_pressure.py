"""Ablation — co-located ranks vs semi-permanent occupancy (the title fight).

One matched rank plus N-1 co-located compute ranks share a Sandy Bridge
socket; every rank streams a 4 MiB working set per phase. Once the node's
combined footprint exceeds the 20 MiB LLC, the unprotected match list is
evicted between phases and search cost jumps to DRAM; the software heater
(whose pass lands mid-phase) claws back only part of it; the CAT-style way
partition keeps matching cost *flat at any rank count* — the quantitative
case for the paper's title that 2018 hardware could not provide.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.arch import SANDY_BRIDGE
from repro.bench.colocated import run_colocated_study

RANKS = (1, 4, 7)


def test_colocated_llc_pressure(once):
    points = once(
        run_colocated_study,
        SANDY_BRIDGE,
        rank_counts=RANKS,
        iterations=1,
        depth=2048,
    )
    rows = [(p.mechanism, p.ranks, round(p.cycles_per_search)) for p in points]
    emit(
        render_table(
            ["occupancy mechanism", "ranks on socket", "cycles/search"],
            rows,
            title="Co-located LLC pressure, 2048-deep list, 4 MiB/rank compute "
            "(Sandy Bridge, 20 MiB L3)",
        )
    )
    by = {(p.mechanism, p.ranks): p.cycles_per_search for p in points}
    # Unprotected: fine while the node fits, blows up when it does not.
    assert by[("none", 7)] > 2.5 * by[("none", 1)]
    # Hot caching defends partially under pressure...
    assert by[("hot-caching", 7)] < 0.6 * by[("none", 7)]
    # ...but cannot fully hold the line against capacity traffic.
    assert by[("hot-caching", 7)] > 1.2 * by[("hot-caching", 1)]
    # The way partition is semi-permanent by construction: flat.
    assert by[("cat-partition", 7)] <= 1.05 * by[("cat-partition", 1)]
    assert by[("cat-partition", 7)] < 0.3 * by[("none", 7)]
