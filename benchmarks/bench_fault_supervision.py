"""Supervised execution — correctness gate plus an overhead smoke test.

Two questions about the fault-tolerance layer (`--retries`, `--timeout`,
`--on-error`, `--inject-faults`):

1. **Correctness always gates.** A Figure-4-sized grid run at ``--jobs 4``
   through a worker crash, an injected simulation error, and a bit-rotted
   cache entry must reduce repr-identical to a fault-free serial run —
   supervision decides whether and when a point runs, never what it
   computes.
2. **The default path stays cheap.** With no timeout, no retries, and no
   fault plan, the supervised runner is the same blocking ``wait()`` loop
   as before; a fault-free supervised run (timeout + retries armed, no
   fault ever firing) must not cost materially more than an unsupervised
   one. The overhead gate is lenient (<= 1.5x) because both sides are
   short and scheduler noise dominates on small boxes.
"""

import time

from conftest import emit

from repro.arch import SANDY_BRIDGE
from repro.bench.figures import plan_spatial_search_length
from repro.exp import Runner
from repro.faults import Fault, FaultPlan

DEPTHS = [1, 8, 64, 512]
ITERS = 3
JOBS = 4


def make_plan():
    return plan_spatial_search_length(
        SANDY_BRIDGE, msg_bytes=1, depths=DEPTHS, iterations=ITERS, seed=0
    )


def timed_sweep(runner):
    start = time.perf_counter()
    sweep = runner.run_sweep(make_plan())
    return sweep, time.perf_counter() - start


def test_supervised_faulty_run_is_bit_identical(once, tmp_path):
    import warnings

    from repro.exp import ResultStore

    serial, _ = timed_sweep(Runner(fault_plan=FaultPlan()))
    fault_plan = FaultPlan(
        [
            Fault(kind="crash", index=1),
            Fault(kind="raise", index=6, attempts=2),
            Fault(kind="corrupt", index=9),
        ]
    )
    runner = Runner(
        jobs=JOBS,
        store=ResultStore(tmp_path),
        retries=2,
        backoff_s=0.0,
        on_error="collect",
        fault_plan=fault_plan,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # pool-rebuild notice
        supervised, elapsed = once(timed_sweep, runner)
    report = runner.last_report
    emit(
        f"faulty --jobs {JOBS} run: {elapsed:.2f}s, {report.retried} retries, "
        f"{report.crashes} crashed attempts, {report.pool_rebuilds} rebuild(s), "
        f"{report.corruptions_injected} corruption(s)"
    )
    assert report.ok, report.render()
    assert report.crashes >= 1
    assert repr(supervised) == repr(serial)
    serial_ms = {k: v.snapshot() for k, v in serial.meta["mem_stats"].items()}
    supervised_ms = {k: v.snapshot() for k, v in supervised.meta["mem_stats"].items()}
    assert supervised_ms == serial_ms


def test_armed_supervision_overhead_is_negligible(once):
    # `once` (pytest-benchmark) is single-shot per test: time the armed run
    # under it, the unsupervised reference directly.
    plain, plain_s = timed_sweep(Runner(jobs=JOBS, fault_plan=FaultPlan()))
    armed_runner = Runner(
        jobs=JOBS, timeout_s=600.0, retries=2, fault_plan=FaultPlan()
    )
    armed, armed_s = once(timed_sweep, armed_runner)

    ratio = armed_s / plain_s if plain_s else float("inf")
    emit(
        f"unsupervised {plain_s:.2f}s, armed (timeout+retries) {armed_s:.2f}s "
        f"({ratio:.2f}x)"
    )
    # Correctness always gates; no fault fired, so nothing was retried.
    assert repr(armed) == repr(plain)
    assert armed_runner.last_report.retried == 0
    assert armed_runner.last_report.timeouts == 0
    assert ratio <= 1.5, (
        f"armed supervision cost {ratio:.2f}x over the unsupervised pool "
        "(expected <= 1.5x)"
    )
