"""Figure 10 — Fire Dynamics Simulator scaling: factor speedup over baseline.

Five lines: HC / LLA / HC+LLA on Nehalem, LLA on Broadwell, LLA-Large on
Nehalem. Paper landmarks: LLA ~2x at 4k ranks (Nehalem), LLA 1.21x at 1024
(Broadwell), HC+LLA best at <=1024 (+14.5% over baseline there), HC alone a
slowdown at scale, LLA-Large ~2x at 8192."""

from conftest import emit

from repro.analysis.report import render_series_table
from repro.apps import fig10_fds_speedups

SCALES = (128, 512, 1024, 2048, 4096, 8192)


def test_fig10_fds_speedups(once):
    sweep = once(fig10_fds_speedups, scales=SCALES, seed=0)
    emit(render_series_table(sweep))

    lla = sweep.series["LLA Nehalem"]
    hc = sweep.series["HC Nehalem"]
    both = sweep.series["HC+LLA Nehalem"]
    bdw = sweep.series["LLA Broadwell"]
    large = sweep.series["LLA-Large"]

    # LLA divergence with scale, ~2x at 4k.
    assert lla.at(4096) > lla.at(1024) > lla.at(128)
    assert 1.5 < lla.at(4096) < 2.6
    # HC alone: net slowdown that worsens with scale (lock contention).
    assert hc.at(4096) < 1.0
    assert hc.at(4096) < hc.at(1024)
    # HC+LLA beats plain LLA at small/medium scale.
    assert both.at(512) >= lla.at(512)
    assert both.at(1024) > lla.at(1024)
    # Broadwell LLA: modest at 1024 (paper: 1.21x).
    assert 1.02 < bdw.at(1024) < 1.45
    # LLA-Large reaches ~2x at the top scale.
    assert large.at(8192) > 1.8
