"""Figure 1 — match-list-size histograms for AMR / Sweep3D / Halo3D.

Regenerates the posted and unexpected occurrence histograms at the paper's
scales (64K / 128K / 256K ranks) and bucket widths (20 / 10 / 5)."""

import pytest
from conftest import emit

from repro.analysis.report import render_table
from repro.motifs import MOTIFS


def _run(name):
    motif = MOTIFS[name](seed=0)
    return motif.run()


@pytest.mark.parametrize("name", ["amr", "sweep3d", "halo3d"])
def test_fig1_motif(name, once):
    result = once(_run, name)

    rows = [
        (label, posted, unexpected)
        for (label, posted), (_, unexpected) in zip(
            result.posted_buckets(), result.unexpected_buckets()
        )
    ]
    emit(
        render_table(
            ["Matchlist Length Bucket Range", "posted", "unexpected"],
            rows,
            title=f"Figure 1 ({name}): {result.nranks // 1024}K ranks",
        )
    )

    posted = result.posted
    if name == "amr":
        # Mass at low-to-mid hundreds, extremes out to the mid 400s.
        assert 390 <= result.max_posted_length <= 439
        assert posted[:200].sum() > 0.8 * posted.sum()
    elif name == "sweep3d":
        # "queue lengths into the low hundreds", capped below 200.
        assert result.max_posted_length <= 199
        assert posted[:100].sum() > 0.95 * posted.sum()
    else:
        # Halo3D: many very small queues.
        assert result.max_posted_length <= 99
        assert posted[:15].sum() > 0.9 * posted.sum()
    # Histograms decay: first bucket dominates the tail by orders of magnitude.
    buckets = [c for _, c in result.posted_buckets()]
    assert buckets[0] > 100 * max(1, buckets[-1])
