"""Figure 4 — impact of spatial locality on Sandy Bridge (QLogic IB QDR).

Three panels: (a) bandwidth vs message size at queue depth 1024,
(b) bandwidth vs PRQ search length for 1-byte messages,
(c) the same for 4 KiB messages. Lines: baseline and LLA-{2,4,8,16,32}."""

import pytest
from conftest import emit

from repro.analysis.report import render_series_table
from repro.arch import SANDY_BRIDGE
from repro.bench.figures import fig_spatial_msg_size, fig_spatial_search_length

MSG_SIZES = [1, 16, 256, 1024, 4096, 65536, 1 << 20]
DEPTHS = [1, 8, 64, 512, 1024, 4096, 8192]
ITERS = 3


def test_fig4a_msg_size_sweep(once):
    sweep = once(
        fig_spatial_msg_size, SANDY_BRIDGE, msg_sizes=MSG_SIZES, iterations=ITERS
    )
    emit(render_series_table(sweep))
    base, lla8 = sweep.series["baseline"], sweep.series["LLA - 8"]
    # ~2x+ benefit for small/medium messages...
    assert lla8.at(1024) > 2 * base.at(1024)
    # ...vanishing at the network-bound large end.
    assert lla8.at(1 << 20) == pytest.approx(base.at(1 << 20), rel=0.02)


def test_fig4b_one_byte_messages(once):
    sweep = once(
        fig_spatial_search_length,
        SANDY_BRIDGE,
        msg_bytes=1,
        depths=DEPTHS,
        iterations=ITERS,
    )
    emit(render_series_table(sweep))
    at_1024 = {label: sweep.series[label].at(1024) for label in sweep.labels()}
    # Large jump baseline -> LLA-2, slight increases beyond.
    assert at_1024["LLA - 2"] > 2 * at_1024["baseline"]
    assert at_1024["LLA - 8"] >= at_1024["LLA - 2"]
    assert at_1024["LLA - 32"] < 1.5 * at_1024["LLA - 8"]


def test_fig4c_4kib_messages(once):
    sweep = once(
        fig_spatial_search_length,
        SANDY_BRIDGE,
        msg_bytes=4096,
        depths=DEPTHS,
        iterations=ITERS,
    )
    emit(render_series_table(sweep))
    base, lla8 = sweep.series["baseline"], sweep.series["LLA - 8"]
    assert lla8.at(1024) > 2 * base.at(1024)
    # Short lists: no regression from the LLA layout.
    assert lla8.at(1) >= 0.9 * base.at(1)
