"""Figure 5 — impact of spatial locality on Broadwell (OmniPath).

Same three panels as Figure 4, on the Broadwell model."""

import pytest
from conftest import emit

from repro.analysis.report import render_series_table
from repro.arch import BROADWELL
from repro.bench.figures import fig_spatial_msg_size, fig_spatial_search_length

MSG_SIZES = [1, 16, 256, 1024, 4096, 65536, 1 << 20]
DEPTHS = [1, 8, 64, 512, 1024, 4096, 8192]
ITERS = 3


def test_fig5a_msg_size_sweep(once):
    sweep = once(fig_spatial_msg_size, BROADWELL, msg_sizes=MSG_SIZES, iterations=ITERS)
    emit(render_series_table(sweep))
    base, lla8 = sweep.series["baseline"], sweep.series["LLA - 8"]
    assert lla8.at(1024) > 1.8 * base.at(1024)
    assert lla8.at(1 << 20) == pytest.approx(base.at(1 << 20), rel=0.02)


def test_fig5b_one_byte_messages(once):
    sweep = once(
        fig_spatial_search_length, BROADWELL, msg_bytes=1, depths=DEPTHS, iterations=ITERS
    )
    emit(render_series_table(sweep))
    at_1024 = {label: sweep.series[label].at(1024) for label in sweep.labels()}
    assert at_1024["LLA - 2"] > 1.8 * at_1024["baseline"]
    assert at_1024["LLA - 8"] >= at_1024["LLA - 2"]


def test_fig5c_4kib_messages(once):
    sweep = once(
        fig_spatial_search_length, BROADWELL, msg_bytes=4096, depths=DEPTHS, iterations=ITERS
    )
    emit(render_series_table(sweep))
    base, lla8 = sweep.series["baseline"], sweep.series["LLA - 8"]
    assert lla8.at(1024) > 1.8 * base.at(1024)
