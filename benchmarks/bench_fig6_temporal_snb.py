"""Figure 6 — impact of temporal locality on Sandy Bridge.

Lines: baseline, HC (hot caching over the original list), LLA, HC+LLA (the
pool-backed combination). On Sandy Bridge — core-clock L3 — hot caching wins."""

from conftest import emit

from repro.analysis.report import render_series_table
from repro.arch import SANDY_BRIDGE
from repro.bench.figures import fig_temporal_msg_size, fig_temporal_search_length

MSG_SIZES = [1, 256, 4096, 65536, 1 << 20]
DEPTHS = [1, 8, 64, 512, 1024, 4096]
ITERS = 3


def test_fig6a_msg_size_sweep(once):
    sweep = once(fig_temporal_msg_size, SANDY_BRIDGE, msg_sizes=MSG_SIZES, iterations=ITERS)
    emit(render_series_table(sweep))
    at_small = {label: sweep.series[label].at(256) for label in sweep.labels()}
    assert at_small["HC"] > at_small["baseline"]
    assert at_small["HC+LLA"] >= at_small["LLA"] > at_small["baseline"]
    # Network-bound convergence at 1 MiB.
    ys = [sweep.series[label].at(1 << 20) for label in sweep.labels()]
    assert max(ys) / min(ys) < 1.05


def test_fig6b_one_byte_messages(once):
    sweep = once(
        fig_temporal_search_length, SANDY_BRIDGE, msg_bytes=1, depths=DEPTHS, iterations=ITERS
    )
    emit(render_series_table(sweep))
    for depth in (64, 512, 1024):
        at = {label: sweep.series[label].at(depth) for label in sweep.labels()}
        assert at["HC"] > at["baseline"], depth
        assert at["HC+LLA"] > at["LLA"], depth


def test_fig6c_4kib_messages(once):
    sweep = once(
        fig_temporal_search_length, SANDY_BRIDGE, msg_bytes=4096, depths=DEPTHS, iterations=ITERS
    )
    emit(render_series_table(sweep))
    at = {label: sweep.series[label].at(1024) for label in sweep.labels()}
    assert at["HC+LLA"] > at["HC"] > at["baseline"]
