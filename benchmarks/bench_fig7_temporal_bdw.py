"""Figure 7 — impact of temporal locality on Broadwell.

The paper's negative result: Broadwell's decoupled-clock L3 is slow enough
(and the heater's synchronization expensive enough) that hot caching is a
slight net loss — 'we see a negative result from cache heating, indicating
that the cache refreshing is interfering with normal operation'."""

from conftest import emit

from repro.analysis.report import render_series_table
from repro.arch import BROADWELL
from repro.bench.figures import fig_temporal_msg_size, fig_temporal_search_length

MSG_SIZES = [1, 256, 4096, 65536, 1 << 20]
DEPTHS = [1, 8, 64, 512, 1024, 4096]
ITERS = 3


def test_fig7a_msg_size_sweep(once):
    sweep = once(fig_temporal_msg_size, BROADWELL, msg_sizes=MSG_SIZES, iterations=ITERS)
    emit(render_series_table(sweep))
    at = {label: sweep.series[label].at(256) for label in sweep.labels()}
    # Spatial locality still helps; temporal does not.
    assert at["LLA"] > at["baseline"]
    assert at["HC"] < at["baseline"] * 1.02
    assert at["HC+LLA"] < at["LLA"] * 1.02


def test_fig7b_one_byte_messages(once):
    sweep = once(
        fig_temporal_search_length, BROADWELL, msg_bytes=1, depths=DEPTHS, iterations=ITERS
    )
    emit(render_series_table(sweep))
    for depth in (512, 1024, 4096):
        at = {label: sweep.series[label].at(depth) for label in sweep.labels()}
        assert at["HC"] < at["baseline"], depth  # the sign flip
        assert at["HC+LLA"] < at["LLA"], depth  # "slight performance drop"
        assert at["HC+LLA"] > 0.75 * at["LLA"], depth  # ...but only slight


def test_fig7c_4kib_messages(once):
    sweep = once(
        fig_temporal_search_length, BROADWELL, msg_bytes=4096, depths=DEPTHS, iterations=ITERS
    )
    emit(render_series_table(sweep))
    at = {label: sweep.series[label].at(1024) for label in sweep.labels()}
    assert at["HC"] < at["baseline"]
    assert at["LLA"] > at["baseline"]
