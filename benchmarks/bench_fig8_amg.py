"""Figure 8 — AMG2013 weak-scaling study on Broadwell.

Baseline vs LLA execution time at 128-1024 ranks; the paper reports a 2.9%
runtime improvement at 1024 ranks."""

from conftest import emit

from repro.analysis.report import render_series_table
from repro.analysis.stats import percent_improvement
from repro.apps import fig8_amg_scaling


def test_fig8_amg_scaling(once):
    sweep = once(fig8_amg_scaling, seed=0)
    emit(render_series_table(sweep))
    base, lla = sweep.series["Baseline"], sweep.series["LLA"]
    pct_1024 = percent_improvement(base.at(1024), lla.at(1024))
    emit(f"LLA improvement at 1024 ranks: {pct_1024:.2f}% (paper: 2.9%)")
    # Single-percent-range improvement, growing with scale.
    assert 1.0 < pct_1024 < 6.0
    assert pct_1024 > percent_improvement(base.at(128), lla.at(128))
    # Weak scaling: runtime roughly flat across the sweep.
    assert base.at(1024) < base.at(128) * 1.25
