"""Figure 9 — MiniFE at 512 ranks with artificially varied match-list length.

Baseline vs LLA execution time at lengths 128/512/2048; the paper reports a
2.3% improvement at length 2048 and effectively none at short lengths."""

from conftest import emit

from repro.analysis.report import render_series_table
from repro.analysis.stats import percent_improvement
from repro.apps import fig9_minife_lengths


def test_fig9_minife_lengths(once):
    sweep = once(fig9_minife_lengths, seed=0)
    emit(render_series_table(sweep))
    base, lla = sweep.series["Baseline"], sweep.series["LLA"]
    pct = {length: percent_improvement(base.at(length), lla.at(length)) for length in (128, 512, 2048)}
    emit(f"LLA improvement: {pct[128]:.2f}% @128, {pct[512]:.2f}% @512, "
         f"{pct[2048]:.2f}% @2048 (paper: 2.3% @2048)")
    assert 1.0 < pct[2048] < 5.0
    assert pct[128] < pct[512] < pct[2048]
    assert pct[128] < 1.0  # 'does not show much effect' at short lengths
