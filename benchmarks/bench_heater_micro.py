"""Section 4.3 — the custom cache-heater random-access micro-benchmark.

Paper numbers: Sandy Bridge 47.5 ns -> 22.9 ns, Broadwell 38.5 ns -> 22.8 ns
per iteration ("nearly a doubling of throughput")."""

import pytest
from conftest import emit

from repro.analysis.report import render_table
from repro.arch import BROADWELL, SANDY_BRIDGE
from repro.bench.heater_micro import heater_microbenchmark

PAPER = {"sandy-bridge": (47.5, 22.9), "broadwell": (38.5, 22.8)}


@pytest.mark.parametrize("arch", [SANDY_BRIDGE, BROADWELL], ids=lambda a: a.name)
def test_heater_micro(arch, once):
    result = once(heater_microbenchmark, arch, samples=2048, seed=0)
    cold_p, hot_p = PAPER[arch.name]
    emit(
        render_table(
            ["arch", "cold ns/iter", "hot ns/iter", "paper cold", "paper hot"],
            [(arch.name, round(result.cold_ns, 1), round(result.hot_ns, 1), cold_p, hot_p)],
            title="Section 4.3 cache-heater micro-benchmark",
        )
    )
    assert result.cold_ns == pytest.approx(cold_p, rel=0.15)
    assert result.hot_ns == pytest.approx(hot_p, rel=0.15)
    assert 1.4 < result.speedup < 2.5
