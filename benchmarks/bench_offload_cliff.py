"""Ablation — hardware matching offload and its capacity cliff (section 2.2).

    "Such solutions will only benefit from software MPI matching
    improvements when list lengths are longer than that which can be
    supported in hardware."

Measures one cold search across queue depths for a BXI-like NIC (4096 on-NIC
entries) over two software overflow organizations, against pure-software
baselines. The assertions pin the cliff: flat nanosecond-scale matching
inside hardware capacity, software-dominated beyond it — where the LLA's
spatial locality matters again.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.arch import SANDY_BRIDGE
from repro.matching import Envelope, MatchEngine, MatchItem, make_pattern, make_queue
from repro.offload import BXI_LIKE, OffloadedMatchQueue

DEPTHS = (64, 1024, 4000, 8192, 16384)


def _search_cycles(depth, *, offload, family):
    hier = SANDY_BRIDGE.build_hierarchy()
    engine = MatchEngine(hier)
    q = make_queue(family, port=engine, rng=np.random.default_rng(1))
    if offload:
        q = OffloadedMatchQueue(q, BXI_LIKE, engine=engine, ghz=SANDY_BRIDGE.ghz)
    for seq in range(depth):
        q.post(make_pattern(0, 10_000 + seq, 0, seq=seq))
    q.post(make_pattern(1, 7, 0, seq=depth + 5))
    hier.flush()
    probe = MatchItem.from_envelope(Envelope(1, 7, 0), seq=999_999)
    _, cycles = engine.timed(lambda: q.match_remove(probe))
    return cycles


def test_offload_capacity_cliff(once):
    results = once(
        lambda: {
            (label, depth): _search_cycles(depth, offload=off, family=fam)
            for label, off, fam in (
                ("software baseline", False, "baseline"),
                ("software LLA-8", False, "lla-8"),
                ("NIC + baseline overflow", True, "baseline"),
                ("NIC + LLA-8 overflow", True, "lla-8"),
            )
            for depth in DEPTHS
        }
    )
    rows = [(label, depth, round(c)) for (label, depth), c in results.items()]
    emit(
        render_table(
            ["configuration", "depth", "cycles/search"],
            rows,
            title=f"BXI-like offload ({BXI_LIKE.hw_entries} on-NIC entries), Sandy Bridge",
        )
    )
    # Inside capacity: the NIC crushes any software organization.
    assert results[("NIC + baseline overflow", 4000)] < 0.2 * results[("software LLA-8", 4000)]
    # Beyond capacity: the software overflow path dominates again...
    cliff = results[("NIC + baseline overflow", 16384)] / results[("NIC + baseline overflow", 4000)]
    assert cliff > 10
    # ...and software locality work pays off once more (the paper's point).
    assert (
        results[("NIC + LLA-8 overflow", 16384)]
        < 0.6 * results[("NIC + baseline overflow", 16384)]
    )
