"""Related-work comparison — the structures of section 2.2 / 5 side by side.

Not a paper figure, but the paper's discussion predicts the ordering:
structured queues (Open MPI hierarchical, Flajslik hash bins, Zounmevo 4-D)
win by *skipping* entries, the LLA wins by making the scan itself cheap, and
the hash map's 'constant overhead in queue selection slows down the most
common case of a very short list traversal'.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.arch import SANDY_BRIDGE
from repro.matching import Envelope, MatchEngine, MatchItem, make_pattern, make_queue

FAMILIES = ("baseline", "lla-8", "openmpi", "hashmap", "fourd", "ch4", "adaptive")


def _search_cycles(family, depth, *, distinct_sources=16):
    """Cold search cost when `depth` entries from other peers sit in front.

    Decoys are spread over several sources/tags so the structured queues
    can exercise their skipping."""
    hier = SANDY_BRIDGE.build_hierarchy()
    engine = MatchEngine(hier)
    q = make_queue(family, port=engine, rng=np.random.default_rng(1), nranks=1024)
    for i in range(depth):
        q.post(make_pattern(i % distinct_sources + 10, 10_000 + i, 0, seq=i))
    q.post(make_pattern(1, 7, 0, seq=depth + 5))
    hier.flush()
    probe = MatchItem.from_envelope(Envelope(1, 7, 0), seq=999_999)
    _, cycles = engine.timed(lambda: q.match_remove(probe))
    return cycles


def test_queue_family_comparison(once):
    results = once(
        lambda: {
            (family, depth): _search_cycles(family, depth)
            for family in FAMILIES
            for depth in (2, 1024)
        }
    )
    rows = [(f, d, round(c)) for (f, d), c in results.items()]
    emit(render_table(["structure", "depth", "cycles/search"], rows,
                      title="Matching structures of sections 2.2/5 (Sandy Bridge)"))
    # Structured queues skip the decoys entirely at depth 1024.
    for fam in ("openmpi", "hashmap", "fourd"):
        assert results[(fam, 1024)] < results[("lla-8", 1024)]
    # The LLA still beats the baseline scan by a wide margin.
    assert results[("lla-8", 1024)] < results[("baseline", 1024)] / 2
    # Flajslik's caveat: constant bin-selection overhead on very short lists.
    assert results[("hashmap", 2)] >= results[("baseline", 2)] * 0.6
    # Bayatpour's adaptive design: list-cheap when short, hash-cheap when deep.
    assert results[("adaptive", 2)] <= results[("hashmap", 2)] * 1.2
    assert results[("adaptive", 1024)] < results[("baseline", 1024)] / 4
    # CH4's per-communicator lists only help across communicators; with one
    # communicator they scan like the baseline.
    assert results[("ch4", 1024)] > results[("lla-8", 1024)]
