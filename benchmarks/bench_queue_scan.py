"""Queue-scan micro-benchmark: batched ``load_run`` vs per-slot ``load``.

PR 4's SoA kernel made the cache model fast; the cost left on the table was
the queue→engine boundary, where every inspected slot paid one Python
``MemoryPort.load()`` round trip — heater sync, transaction setup,
``LevelStats.add``, clock advance. The scan-transaction API charges one
engine call per contiguous run (an LLA node's header + k slots collapses to
a single ``_run``), with a tight per-probe float loop replacing the per-slot
machinery whenever the run's lines are L1-resident and the heater is
quiescent across the run's projected span.

This benchmark drives a depth-8192 failed search (the paper's worst-case
queue traversal, Figures 4b/6b) through an LLA(k=8) on the SoA kernel under
both scan spellings and asserts:

* identical simulated signatures (clock, cycles, counters) — bit-identity
  is re-checked here *inside* the timed harness, not just in the lockstep
  unit suite;
* the batched stack actually took the run fast path (``fast_runs > 0``);
* >= 3x ``match_remove`` throughput on the warm-hierarchy gate scenario,
  where the arena is L1-resident so every node scan collapses to the fast
  path (measured ~4-6x). The cold scenario — default 32 KiB L1, arena far
  larger — is reported but not gated: most runs there fail the residency
  gate and replay per probe, so the win is only the coalesced geometry
  setup (~1.1-1.3x).

Interleaved best-of-N timing with gate re-measurement (as in
``bench_access_path.py``) keeps the comparison robust on noisy machines.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.matching.engine import MatchEngine
from repro.matching.entry import MatchItem
from repro.matching.lla import LinkedListOfArrays
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.kernel import KERNEL_SOA

#: The paper's deepest search-length point (Figures 4b/6b).
DEPTH = 8192
K = 8

#: Failed full scans per timed round; a failed search leaves the queue (and
#: the warm cache) untouched, so rounds are idempotent.
SCANS = 2

#: Interleaved timing rounds; best-of keeps scheduler noise out.
ROUNDS = 7

#: The acceptance gate (warm scenario only — see module docstring).
MIN_SCAN_SPEEDUP = 3.0

#: Warm scenario: an L1 big enough to hold the depth-8192 arena
#: (~1024 nodes x ~250 B), so after one priming scan every node run passes
#: the residency gate.
WARM_GEOMETRY = dict(
    l1_size=1 << 20,
    l1_assoc=16,
    l2_size=1 << 22,
    l2_assoc=16,
    l3_size=1 << 24,
)

_DECOY_SRC = 7
_MISS_SRC = 5


def _probe():
    # Exact-match probe that matches nothing: every search walks all DEPTH
    # live slots and fails.
    return MatchItem(seq=10**9, src=_MISS_SRC, tag=0, cid=0)


def build_session(scan_batch, geometry=WARM_GEOMETRY):
    hier = MemoryHierarchy(
        rng=np.random.default_rng(5), kernel=KERNEL_SOA, **geometry
    )
    engine = MatchEngine(hier, scan_batch=scan_batch)
    queue = LinkedListOfArrays(K, port=engine)
    for i in range(DEPTH):
        queue.post(MatchItem(seq=i, src=_DECOY_SRC, tag=i, cid=0))
    # Prime: one failed scan pulls the arena into the hierarchy (for the
    # warm geometry, fully into L1).
    queue.match_remove(_probe())
    return engine, queue


def _signature(engine, queue):
    ls = engine.level_stats
    return (
        repr(engine.clock.now),
        engine.loads,
        repr(engine.load_cycles),
        ls.loads,
        ls.lines,
        ls.l1_hits,
        ls.l2_hits,
        ls.l3_hits,
        ls.dram_fills,
        repr(ls.cycles),
        engine.hierarchy.demand_accesses,
        queue.stats.searches,
        queue.stats.probes,
    )


def time_scan_pair(geometry=WARM_GEOMETRY, rounds=ROUNDS):
    """Interleaved best-of timing of (per-slot, batched) failed deep scans.

    One warm session per mode; each timed round runs SCANS idempotent failed
    searches. Both sessions execute the same operation count, so their final
    simulated signatures must agree exactly — asserted before returning.
    """
    sessions = {False: build_session(False, geometry), True: build_session(True, geometry)}
    probe = _probe()
    best = {False: float("inf"), True: float("inf")}
    for _ in range(rounds):
        for batched in (False, True):
            _, queue = sessions[batched]
            match_remove = queue.match_remove
            t0 = time.perf_counter()
            for _ in range(SCANS):
                match_remove(probe)
            best[batched] = min(best[batched], time.perf_counter() - t0)
    sig_slot = _signature(*sessions[False])
    sig_run = _signature(*sessions[True])
    assert sig_slot == sig_run, (
        f"batched scan diverged from per-slot: {sig_run} != {sig_slot}"
    )
    engine_run = sessions[True][0]
    assert engine_run.runs > 0, "batched session emitted no runs"
    assert sessions[False][0].runs == 0
    return best[False], best[True], engine_run


SCENARIOS = (
    ("warm (1 MiB L1)", WARM_GEOMETRY),
    ("cold (32 KiB L1)", {}),
)


def test_queue_scan_speedup(once):
    def run():
        return {name: time_scan_pair(geometry) for name, geometry in SCENARIOS}

    results = once(run)
    rows = []
    for name, (slot_s, run_s, engine) in results.items():
        scan_us = run_s / SCANS * 1e6
        rows.append(
            (
                name,
                round(slot_s * 1e3, 2),
                round(run_s * 1e3, 2),
                round(scan_us, 1),
                f"{engine.fast_runs}/{engine.runs}",
                round(slot_s / run_s, 2),
            )
        )
    emit(
        render_table(
            ["scenario", "per-slot ms", "batched ms", "us/scan", "fast runs", "speedup"],
            rows,
            title="LLA(k=8) depth-%d failed scan: batched vs per-slot (best-of-%d)"
            % (DEPTH, ROUNDS),
        )
    )
    # The gate: warm hierarchy, where every node run takes the fast path.
    slot_s, run_s, engine = results[SCENARIOS[0][0]]
    assert engine.fast_runs > 0, "warm session never took the fast path"
    assert engine.fast_runs == engine.runs, (
        f"warm scenario replayed {engine.runs - engine.fast_runs} runs per-slot"
    )
    speedup = slot_s / run_s
    for retry in range(2):
        if speedup >= MIN_SCAN_SPEEDUP:
            break
        emit(f"scan gate speedup {speedup:.2f}x below target; re-measuring")
        slot_s, run_s, _ = time_scan_pair(WARM_GEOMETRY)
        speedup = max(speedup, slot_s / run_s)
    assert speedup >= MIN_SCAN_SPEEDUP, (
        f"warm scan speedup {speedup:.2f}x < {MIN_SCAN_SPEEDUP}x"
    )
    # The batched spelling must never be a regression, even when the
    # residency gate forces per-probe replays (15% slack for timer noise).
    for name, (slot_s, run_s, _) in results.items():
        assert run_s <= 1.15 * slot_s, f"{name}: batched slower than per-slot"
