"""Parallel sweep execution — correctness gate plus a speedup smoke test.

Runs a Figure-4-sized grid (6 spatial variants x 6 search depths on Sandy
Bridge) serially and with a 4-process pool. The reduced sweeps must be
repr-identical — that gate always applies. The >= 2x speedup gate applies
only on machines with at least 4 cores; below that the timing is printed
for the record but cannot be meaningful (CI runners and containers are
often 1-2 cores wide).
"""

import os
import time

from conftest import emit

from repro.arch import SANDY_BRIDGE
from repro.bench.figures import plan_spatial_search_length
from repro.exp import Runner

DEPTHS = [1, 8, 64, 512, 1024, 4096]
ITERS = 3
JOBS = 4


def run_sweep(jobs):
    plan = plan_spatial_search_length(
        SANDY_BRIDGE, msg_bytes=1, depths=DEPTHS, iterations=ITERS, seed=0
    )
    start = time.perf_counter()
    sweep = Runner(jobs=jobs).run_sweep(plan)
    return sweep, time.perf_counter() - start


def test_parallel_sweep_identical_and_fast(once):
    serial, serial_s = run_sweep(1)
    parallel, parallel_s = once(run_sweep, JOBS)

    cores = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    emit(
        f"serial {serial_s:.2f}s, --jobs {JOBS} {parallel_s:.2f}s "
        f"({speedup:.2f}x on {cores} cores)"
    )

    # Correctness always gates: parallel output is bit-identical to serial.
    assert repr(parallel) == repr(serial)
    serial_ms = {k: v.snapshot() for k, v in serial.meta["mem_stats"].items()}
    parallel_ms = {k: v.snapshot() for k, v in parallel.meta["mem_stats"].items()}
    assert parallel_ms == serial_ms

    # Speedup gates only where the hardware can deliver one.
    if cores >= JOBS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at --jobs {JOBS} on {cores} cores, "
            f"got {speedup:.2f}x"
        )
