"""Sweep service — correctness gate plus a supervision overhead gate.

Two questions about the service layer (`repro serve`, :mod:`repro.service`):

1. **Correctness always gates.** Three concurrent submissions of
   overlapping Figure-4/Figure-6 grids — under injected service chaos
   (a stalled worker quarantined by the heartbeat watchdog plus a store
   entry rotted mid-run) — must each reduce repr-identical to fault-free
   serial runs, with every shared point simulated exactly once.
2. **Armed supervision stays cheap.** On a warm store, a submission
   through the full service (supervisor thread, admission, heartbeat
   armed, journaling on) must not cost materially more than a bare
   parallel ``Runner`` run against the same store. The gate is lenient
   (<= 1.5x) because both sides are short and scheduler noise dominates
   on small boxes.
"""

import time
import warnings

from conftest import emit

from repro.arch import SANDY_BRIDGE
from repro.bench.figures import plan_spatial_search_length, plan_temporal_msg_size
from repro.exp import ResultStore, Runner
from repro.faults import ServiceFaultPlan
from repro.service import SweepService

JOBS = 4
DEPTHS = [1, 8, 64, 512]
ITERS = 3


def spatial_plan():
    return plan_spatial_search_length(
        SANDY_BRIDGE, msg_bytes=1, depths=DEPTHS, iterations=ITERS, seed=0
    )


def temporal_plan():
    return plan_temporal_msg_size(
        SANDY_BRIDGE, depth=64, msg_sizes=(8, 256, 4096), iterations=ITERS, seed=0
    )


def collect_service(tmp_dir):
    """Standalone timings for bench_to_json: warm-store service overhead
    vs a bare parallel Runner (the correctness assertions included)."""
    from pathlib import Path

    tmp = Path(tmp_dir)
    store_dir = tmp / "store"
    plan = spatial_plan()
    Runner(jobs=JOBS, store=ResultStore(store_dir)).run(plan)

    start = time.perf_counter()
    bare_results = Runner(jobs=JOBS, store=ResultStore(store_dir)).run(spatial_plan())
    bare_s = time.perf_counter() - start

    start = time.perf_counter()
    with SweepService(
        jobs=JOBS, store=ResultStore(store_dir), journal_dir=tmp / "journals",
        heartbeat_s=30.0, retries=2,
    ) as service:
        sub = service.submit(spatial_plan(), name="warm")
        service_results = sub.wait(timeout=600)
    service_s = time.perf_counter() - start

    assert repr(plan.reduce(service_results)) == repr(plan.reduce(bare_results))
    assert sub.report.cached == len(plan) and sub.report.executed == 0
    return {
        "scenario": "warm-store-figure4-grid",
        "points": len(plan),
        "bare_runner_ms": round(bare_s * 1e3, 3),
        "armed_service_ms": round(service_s * 1e3, 3),
        "overhead_x": round(service_s / bare_s, 3) if bare_s else float("inf"),
    }


def test_concurrent_chaos_submissions_are_bit_identical(once, tmp_path):
    serial_spatial = repr(Runner(jobs=1).run_sweep(spatial_plan()))
    serial_temporal = repr(Runner(jobs=1).run_sweep(temporal_plan()))

    def service_run():
        store = ResultStore(tmp_path / "store")
        chaos = ServiceFaultPlan.parse("worker-stall@2:30,store-rot@1")
        start = time.perf_counter()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # rebuild notice
            with SweepService(
                jobs=JOBS, store=store, journal_dir=tmp_path / "journals",
                heartbeat_s=0.5, retries=2, backoff_s=0.01, fault_plan=chaos,
            ) as service:
                subs = [
                    service.submit(spatial_plan(), name="user-a"),
                    service.submit(spatial_plan(), name="user-b"),
                    service.submit(temporal_plan(), name="user-c"),
                ]
                results = [s.wait(timeout=600) for s in subs]
        return service, subs, results, time.perf_counter() - start

    service, subs, results, elapsed = once(service_run)
    stats = service.stats
    emit(
        f"3 concurrent submissions under chaos: {elapsed:.2f}s — "
        f"{stats.executed} executed, {stats.shared} shared, "
        f"{stats.stalled} stalled, {stats.pool_rebuilds} rebuild(s), "
        f"{stats.rot_injected} rotted"
    )
    assert repr(spatial_plan().reduce(results[0])) == serial_spatial
    assert repr(spatial_plan().reduce(results[1])) == serial_spatial
    assert repr(temporal_plan().reduce(results[2])) == serial_temporal
    # Dedup: the overlapping spatial grid was simulated exactly once.
    assert stats.executed == len(spatial_plan()) + len(temporal_plan())
    assert stats.shared == len(spatial_plan())
    assert stats.stalled >= 1 and stats.rot_injected == 1
    for sub in subs:
        assert sub.report.failed == 0


def test_armed_service_overhead_on_warm_store(once, tmp_path):
    store_dir = tmp_path / "store"
    Runner(jobs=JOBS, store=ResultStore(store_dir)).run(spatial_plan())

    def bare_run():
        runner = Runner(jobs=JOBS, store=ResultStore(store_dir))
        start = time.perf_counter()
        results = runner.run(spatial_plan())
        return results, time.perf_counter() - start

    def service_run():
        start = time.perf_counter()
        with SweepService(
            jobs=JOBS, store=ResultStore(store_dir),
            journal_dir=tmp_path / "journals", heartbeat_s=30.0, retries=2,
        ) as service:
            sub = service.submit(spatial_plan(), name="warm")
            results = sub.wait(timeout=600)
        return sub, results, time.perf_counter() - start

    bare_results, bare_s = bare_run()
    sub, service_results, service_s = once(service_run)

    ratio = service_s / bare_s if bare_s else float("inf")
    emit(
        f"warm store: bare Runner {bare_s:.3f}s, armed service {service_s:.3f}s "
        f"({ratio:.2f}x)"
    )
    plan = spatial_plan()
    assert repr(plan.reduce(service_results)) == repr(plan.reduce(bare_results))
    assert sub.report.cached == len(plan) and sub.report.executed == 0
    assert ratio <= 1.5, (
        f"armed service supervision cost {ratio:.2f}x over a bare parallel "
        "Runner on a warm store (expected <= 1.5x)"
    )
