"""Table 1 — queue lengths and mean search depths for thread decompositions.

Regenerates every row: exact tr/ts/length combinatorics plus the measured
mean search depth over randomized thread interleavings (10 trials, as in the
paper)."""

from conftest import emit

from repro.analysis.report import render_table
from repro.decomp.bench import TABLE1_ROWS, table1

PAPER_DEPTHS = {
    ((32, 32), "5pt"): 32.51,
    ((64, 32), "5pt"): 48.22,
    ((32, 32), "9pt"): 85.18,
    ((64, 32), "9pt"): 127.24,
    ((8, 8, 4), "7pt"): 65.85,
    ((1, 1, 128), "7pt"): 132.27,
    ((1, 1, 256), "7pt"): 259.08,
    ((8, 8, 4), "27pt"): 410.02,
    ((1, 1, 128), "27pt"): 596.85,
    ((1, 1, 256), "27pt"): 1294.49,
}

PAPER_COUNTS = {
    ((32, 32), "5pt"): (124, 128, 128),
    ((64, 32), "5pt"): (188, 192, 192),
    ((32, 32), "9pt"): (124, 132, 380),
    ((64, 32), "9pt"): (188, 196, 572),
    ((8, 8, 4), "7pt"): (184, 256, 256),
    ((1, 1, 128), "7pt"): (128, 514, 514),
    ((1, 1, 256), "7pt"): (256, 1026, 1026),
    ((8, 8, 4), "27pt"): (184, 344, 2072),
    ((1, 1, 128), "27pt"): (128, 1042, 3074),
    ((1, 1, 256), "27pt"): (256, 2066, 6146),
}


def test_table1(once):
    results = once(table1, trials=10, seed=0)

    rows = []
    for res in results:
        key = (res.dims, res.stencil)
        rows.append(res.as_row() + (PAPER_DEPTHS[key],))
    emit(
        render_table(
            ["Decomp.", "Stencil", "tr", "ts", "Length", "Search depth", "paper depth"],
            rows,
            title="Table 1: Queue lengths and mean search depths",
        )
    )

    assert len(results) == len(TABLE1_ROWS)
    for res in results:
        key = (res.dims, res.stencil)
        tr, ts, length = PAPER_COUNTS[key]
        # The combinatorial columns must match the paper exactly.
        assert res.counts.receiving_threads == tr
        assert res.counts.sending_threads == ts
        assert res.counts.list_length == length
        # Mean search depth lands in the paper's band (random scheduling).
        assert 0.6 * PAPER_DEPTHS[key] < res.mean_search_depth < 1.45 * PAPER_DEPTHS[key]
