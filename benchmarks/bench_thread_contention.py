"""Ablation — MPI_THREAD_MULTIPLE search-depth and lock-contention growth.

Section 2.3's motivation, measured directly: a fixed message volume split
over 1..16 unsynchronized thread pairs sharing one matching engine. Depth
grows from the well-ordered single-threaded case as cross-thread
interleaving scrambles the match order, and engine-lock contention rises
toward saturation — the regime the paper argues future matching engines
must serve.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.mpi.threaded import thread_scaling_study

THREADS = (1, 2, 4, 8, 16)


def test_thread_scaling(once):
    results = once(
        thread_scaling_study, THREADS, total_messages=256, trials=3, seed=0
    )
    rows = [
        (r.threads, round(r.mean_search_depth, 2), r.max_prq_len,
         f"{100 * r.contention_rate:.0f}%", round(r.finish_ns))
        for r in results
    ]
    emit(
        render_table(
            ["threads", "mean search depth", "max PRQ len", "lock contention", "finish (ns)"],
            rows,
            title="MPI_THREAD_MULTIPLE matching, fixed 256-message volume",
        )
    )
    by_t = {r.threads: r for r in results}
    assert by_t[1].mean_search_depth < 1.2  # well-ordered
    assert by_t[16].mean_search_depth > 3 * by_t[1].mean_search_depth
    assert by_t[16].contention_rate > 0.9
    assert by_t[2].contention_rate > by_t[1].contention_rate
