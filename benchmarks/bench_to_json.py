#!/usr/bin/env python
"""Emit benchmark results as machine-readable JSON artifacts.

CI runs this after the test suites and uploads ``BENCH_kernel.json`` (the
reference/soa/vec kernel speedup ladder), ``BENCH_scan.json`` (the batched-scan
vs per-slot queue traversal speedup), ``BENCH_traffic.json`` (the
open-loop traffic driver's events/sec), and ``BENCH_service.json`` (the
sweep service's warm-store supervision overhead) so each trajectory is
preserved per commit — a perf regression then shows up as a trend break in the artifact
history, not just as a (retried, noise-tolerant) gate failure in one run.

Standalone — no pytest. Reuses the interleaved best-of timing and the
bit-identity assertions from :mod:`bench_access_path`,
:mod:`bench_queue_scan`, and :mod:`bench_traffic`, so a backend, scan-mode,
or traffic-replay divergence fails the script (exit 1) before any JSON is
written.

Usage::

    python benchmarks/bench_to_json.py [kernel.json [scan.json [traffic.json [service.json]]]]
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))
sys.path.insert(0, str(HERE.parent / "src"))
# Standalone-script imports of sibling bench modules must not litter
# benchmarks/__pycache__/ into the working tree.
sys.dont_write_bytecode = True

import bench_queue_scan  # noqa: E402
import bench_traffic  # noqa: E402
from bench_access_path import (  # noqa: E402
    KERNEL_GATES,
    KERNEL_SCENARIOS,
    MIN_KERNEL_SPEEDUP,
    ROUNDS,
    time_kernels,
)
from repro.matching.port import resolve_scan_batch  # noqa: E402
from repro.mem.cache import EvictionPolicy  # noqa: E402
from repro.mem.kernel import (  # noqa: E402
    DEFAULT_KERNEL,
    KERNEL_REFERENCE,
    KERNEL_SOA,
    KERNEL_VEC,
)

POLICIES = (EvictionPolicy.LRU, EvictionPolicy.PLRU)


def _environment():
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def collect():
    scenarios = []
    for policy in POLICIES:
        for name, make_stream in KERNEL_SCENARIOS:
            timing = time_kernels(policy, make_stream())
            scenarios.append(
                {
                    "policy": policy,
                    "workload": name,
                    "reference_ms": round(timing[KERNEL_REFERENCE] * 1e3, 3),
                    "soa_ms": round(timing[KERNEL_SOA] * 1e3, 3),
                    "vec_ms": round(timing[KERNEL_VEC] * 1e3, 3),
                    "soa_speedup": round(
                        timing[KERNEL_REFERENCE] / timing[KERNEL_SOA], 3),
                    "vec_speedup": round(
                        timing[KERNEL_SOA] / timing[KERNEL_VEC], 3),
                }
            )
    return scenarios


def collect_scan():
    scenarios = []
    for name, geometry in bench_queue_scan.SCENARIOS:
        slot_s, run_s, engine = bench_queue_scan.time_scan_pair(geometry)
        scenarios.append(
            {
                "scenario": name,
                "per_slot_ms": round(slot_s * 1e3, 3),
                "batched_ms": round(run_s * 1e3, 3),
                "speedup": round(slot_s / run_s, 3),
                "fast_runs": engine.fast_runs,
                "runs": engine.runs,
            }
        )
    return scenarios


def write_kernel(out: Path) -> None:
    scenarios = collect()
    doc = {
        "benchmark": "mem-kernel-backends",
        "default_kernel": DEFAULT_KERNEL,
        "gates": [
            {
                "policy": "lru",
                "fast": fast,
                "baseline": base,
                "workload": workload,
                "min_speedup": MIN_KERNEL_SPEEDUP,
            }
            for fast, base, workload, _make in KERNEL_GATES
        ],
        "timing": {"rounds": ROUNDS, "statistic": "best-of"},
        "environment": _environment(),
        "scenarios": scenarios,
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    for row in scenarios:
        print(
            "{policy:>5} {workload:>14}: reference {reference_ms:8.2f}ms  "
            "soa {soa_ms:8.2f}ms  vec {vec_ms:8.2f}ms  "
            "soa/ref {soa_speedup:.2f}x  vec/soa {vec_speedup:.2f}x".format(**row)
        )
    print(f"wrote {out}")


def write_scan(out: Path) -> None:
    scenarios = collect_scan()
    doc = {
        "benchmark": "queue-scan-transactions",
        "default_scan_batch": "on" if resolve_scan_batch() else "off",
        "workload": {
            "family": "lla",
            "entries_per_node": bench_queue_scan.K,
            "search_depth": bench_queue_scan.DEPTH,
        },
        "gate": {
            "scenario": bench_queue_scan.SCENARIOS[0][0],
            "min_speedup": bench_queue_scan.MIN_SCAN_SPEEDUP,
        },
        "timing": {"rounds": bench_queue_scan.ROUNDS, "statistic": "best-of"},
        "environment": _environment(),
        "scenarios": scenarios,
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    for row in scenarios:
        print(
            "{scenario:>17}: per-slot {per_slot_ms:8.2f}ms  "
            "batched {batched_ms:8.2f}ms  speedup {speedup:.2f}x  "
            "fast {fast_runs}/{runs}".format(**row)
        )
    print(f"wrote {out}")


def write_traffic(out: Path) -> None:
    scenarios = bench_traffic.collect_traffic()
    reference = {
        r["mode"]: r
        for r in scenarios
        if r["scenario"] == bench_traffic.REFERENCE_SCENARIO
    }
    doc = {
        "benchmark": "open-loop-traffic-driver",
        "config": {
            "arrival_rate": bench_traffic.overload_config().arrival_rate,
            "events": bench_traffic.N_WARMUP + bench_traffic.N_MEASURED,
            "modes": [mode for mode, _flag in bench_traffic.MODES],
        },
        "gate": {
            "min_events_per_sec": bench_traffic.MIN_EVENTS_PER_SEC,
            "ladder": {
                "scenario": bench_traffic.REFERENCE_SCENARIO,
                "fast": "batch",
                "baseline": "legacy",
                "min_speedup": bench_traffic.MIN_TRAFFIC_SPEEDUP,
                "target_speedup": bench_traffic.TARGET_TRAFFIC_SPEEDUP,
                "measured_speedup": reference["batch"]["speedup"],
            },
        },
        "timing": {"rounds": bench_traffic.ROUNDS, "statistic": "best-of"},
        "environment": _environment(),
        "scenarios": scenarios,
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    for row in scenarios:
        print(
            "{scenario:>19} [{mode:>6}]: {events_per_sec:8.1f} events/s  "
            "{speedup:5.2f}x  rej {rejection_pct:5.1f}%  "
            "p99 {p99_sojourn_us:8.2f}us".format(**row)
        )
    print(f"wrote {out}")


def write_service(out: Path) -> None:
    import tempfile

    import bench_sweep_service

    with tempfile.TemporaryDirectory() as tmp:
        row = bench_sweep_service.collect_service(tmp)
    doc = {
        "benchmark": "sweep-service-supervision",
        "config": {"jobs": bench_sweep_service.JOBS},
        "gate": {"max_overhead_x": 1.5},
        "timing": {"rounds": 1, "statistic": "single-shot"},
        "environment": _environment(),
        "scenarios": [row],
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(
        "{scenario:>23}: bare {bare_runner_ms:8.2f}ms  "
        "service {armed_service_ms:8.2f}ms  overhead {overhead_x:.2f}x".format(**row)
    )
    print(f"wrote {out}")


def main(argv):
    write_kernel(Path(argv[1]) if len(argv) > 1 else Path("BENCH_kernel.json"))
    write_scan(Path(argv[2]) if len(argv) > 2 else Path("BENCH_scan.json"))
    write_traffic(Path(argv[3]) if len(argv) > 3 else Path("BENCH_traffic.json"))
    write_service(Path(argv[4]) if len(argv) > 4 else Path("BENCH_service.json"))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
