#!/usr/bin/env python
"""Emit kernel-backend benchmark results as a machine-readable JSON artifact.

CI runs this after the test suites and uploads ``BENCH_kernel.json`` so the
SoA-vs-reference speedup trajectory is preserved per commit — a perf
regression then shows up as a trend break in the artifact history, not just
as a (retried, noise-tolerant) gate failure in one run.

Standalone — no pytest. Reuses the interleaved best-of timing and the
bit-identity assertions from :mod:`bench_access_path`, so a backend
divergence fails the script (exit 1) before any JSON is written.

Usage::

    python benchmarks/bench_to_json.py [output.json]
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))
sys.path.insert(0, str(HERE.parent / "src"))

from bench_access_path import (  # noqa: E402
    KERNEL_SCENARIOS,
    MIN_KERNEL_SPEEDUP,
    ROUNDS,
    time_kernel_pair,
)
from repro.mem.cache import EvictionPolicy  # noqa: E402
from repro.mem.kernel import DEFAULT_KERNEL  # noqa: E402

POLICIES = (EvictionPolicy.LRU, EvictionPolicy.PLRU)


def collect():
    scenarios = []
    for policy in POLICIES:
        for name, make_stream in KERNEL_SCENARIOS:
            ref_s, soa_s = time_kernel_pair(policy, make_stream())
            scenarios.append(
                {
                    "policy": policy,
                    "workload": name,
                    "reference_ms": round(ref_s * 1e3, 3),
                    "soa_ms": round(soa_s * 1e3, 3),
                    "speedup": round(ref_s / soa_s, 3),
                }
            )
    return scenarios


def main(argv):
    out = Path(argv[1]) if len(argv) > 1 else Path("BENCH_kernel.json")
    scenarios = collect()
    doc = {
        "benchmark": "mem-kernel-backends",
        "default_kernel": DEFAULT_KERNEL,
        "gate": {
            "policy": "lru",
            "workload": KERNEL_SCENARIOS[-1][0],
            "min_speedup": MIN_KERNEL_SPEEDUP,
        },
        "timing": {"rounds": ROUNDS, "statistic": "best-of"},
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "scenarios": scenarios,
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    for row in scenarios:
        print(
            "{policy:>5} {workload:>14}: reference {reference_ms:8.2f}ms  "
            "soa {soa_ms:8.2f}ms  speedup {speedup:.2f}x".format(**row)
        )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
