"""Open-loop traffic throughput: the columnar fast path's speedup ladder.

The traffic driver is the substrate every overload experiment runs on, so
its host-side throughput bounds how large a schedule is practical. The
driver now has two spellings — the retained per-event legacy loop and the
columnar batch fast path (``--traffic-batch``, default on) — that are
bit-identical on every ``TrafficResult`` observable. This benchmark times
both on a shared scenario set and gates the ladder:

* the batch loop must beat the legacy loop by ``MIN_TRAFFIC_SPEEDUP`` (2x)
  on the saturated drop-tail reference point, where reject-streak replay
  carries most of the schedule (the measured headroom is ~3x; the gate
  retries once on noise, naming the failing mode pair);
* run-to-run *and* cross-mode repr identity are asserted inside the timed
  harness — a replay divergence fails the benchmark before any number is
  reported;
* every row keeps the historical loose ``MIN_EVENTS_PER_SEC`` floor, and
  the loss machinery must actually engage on the reference point;
* a million-event smoke drives a full 1e6-event deep-overload schedule
  through the fast path in seconds and bounds the driver's peak traced
  allocation (resident state is O(reservoir + n_tags + recv_window);
  flatness in event count is pinned by ``tests/test_traffic_scale.py``).

``bench_to_json.py`` reuses :func:`collect_traffic` to export the per-mode
trajectory (and the ladder gate's metadata) to ``BENCH_traffic.json``.
"""

from __future__ import annotations

import time
import tracemalloc

from conftest import emit

from repro.analysis.report import render_table
from repro.arch import SANDY_BRIDGE
from repro.traffic import TrafficConfig, TrafficDriver, run_traffic

#: Events per timed run (warmup + measured).
N_WARMUP = 200
N_MEASURED = 5800

#: Timed repetitions; best-of keeps scheduler noise out.
ROUNDS = 3

#: The ladder gate: batch events/sec over legacy events/sec on the
#: saturated drop-tail reference point. Measured headroom is ~3x
#: (TARGET_TRAFFIC_SPEEDUP); the gate only demands 2x so CI-class machine
#: noise cannot trip it.
MIN_TRAFFIC_SPEEDUP = 2.0
TARGET_TRAFFIC_SPEEDUP = 3.0

#: Loose absolute floor per row: trips on order-of-magnitude event-loop
#: regressions (per-event Python overhead creep), not machine noise.
MIN_EVENTS_PER_SEC = 1000.0

#: The two event-loop spellings, in ladder order.
MODES = (("legacy", False), ("batch", True))

#: The gated scenario (first in the table): deep enough overload that the
#: UMQ saturates and drop-tail sheds most arrivals — the regime the fast
#: path's reject-streak replay is built for.
REFERENCE_SCENARIO = "saturated drop-tail"


def overload_config(**overrides) -> TrafficConfig:
    """The benchmark's reference configuration (the gated ladder point)."""
    kwargs = dict(
        arch=SANDY_BRIDGE,
        arrival_rate=8.0,
        zipf_alpha=1.0,
        n_tags=16,
        msg_bytes=512,
        search_depth=32,
        queue_capacity=64,
        recv_window=8,
        n_warmup=N_WARMUP,
        n_measured=N_MEASURED,
        seed=7,
    )
    kwargs.update(overrides)
    return TrafficConfig(**kwargs)


def scenarios():
    """(label, config-factory) pairs; the first is the gated reference."""
    return (
        (REFERENCE_SCENARIO, overload_config),
        (
            "overload drop-head",
            lambda **kw: overload_config(
                arrival_rate=1.6, admission="drop-head", **kw
            ),
        ),
        (
            "unbounded rate 0.2",
            lambda **kw: overload_config(
                arrival_rate=0.2, queue_capacity=None, search_depth=16, **kw
            ),
        ),
    )


def time_traffic(cfg: TrafficConfig, rounds: int = ROUNDS):
    """Best-of-N wall time for one config; returns (seconds, result).

    Also asserts run-to-run repr identity — the determinism gate rides
    inside the timing harness.
    """
    best = float("inf")
    reference = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = run_traffic(cfg)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        if reference is None:
            reference = result
        else:
            assert repr(result) == repr(reference), "traffic run diverged"
    return best, reference


def _time_mode_pair(make_cfg):
    """Time both modes of one scenario; asserts cross-mode identity."""
    timing = {}
    results = {}
    for mode, flag in MODES:
        timing[mode], results[mode] = time_traffic(make_cfg(traffic_batch=flag))
    assert repr(results["batch"]) == repr(results["legacy"]), (
        "batch and legacy traffic runs diverged"
    )
    assert repr(results["batch"].mem_stats) == repr(results["legacy"].mem_stats), (
        "batch and legacy mem_stats diverged"
    )
    return timing, results["legacy"]


def collect_traffic():
    """Per-(scenario, mode) rows for the JSON artifact (and the table)."""
    rows = []
    events = N_WARMUP + N_MEASURED
    for label, make_cfg in scenarios():
        timing, result = _time_mode_pair(make_cfg)
        measured = result.measured
        for mode, _flag in MODES:
            seconds = timing[mode]
            rows.append(
                {
                    "scenario": label,
                    "mode": mode,
                    "events": events,
                    "seconds": round(seconds, 4),
                    "events_per_sec": round(events / seconds, 1),
                    "speedup": round(timing["legacy"] / seconds, 3),
                    "rejection_pct": round(measured.rejection_pct, 2),
                    "p99_sojourn_us": round(measured.p99_sojourn_us, 2),
                }
            )
    return rows


def _gate_with_retry():
    """Assert batch beats legacy by MIN_TRAFFIC_SPEEDUP on the reference.

    One noise retry: if the first measurement misses the gate, both modes
    are re-timed (best-of) before failing, and the failure names the mode
    pair and scenario so the regression is attributable.
    """
    speedup = None
    for retry in range(2):
        timing, _result = _time_mode_pair(overload_config)
        speedup = timing["legacy"] / timing["batch"]
        if speedup >= MIN_TRAFFIC_SPEEDUP:
            return speedup
        emit(
            f"batch vs legacy on '{REFERENCE_SCENARIO}': {speedup:.2f}x below "
            f"{MIN_TRAFFIC_SPEEDUP}x gate (target {TARGET_TRAFFIC_SPEEDUP}x); "
            "re-measuring"
        )
    assert speedup >= MIN_TRAFFIC_SPEEDUP, (
        f"mode pair batch/legacy on '{REFERENCE_SCENARIO}': speedup "
        f"{speedup:.2f}x < {MIN_TRAFFIC_SPEEDUP}x gate "
        f"(target {TARGET_TRAFFIC_SPEEDUP}x)"
    )
    return speedup


def test_traffic_batch_speedup_ladder():
    rows = collect_traffic()
    emit(
        render_table(
            ["scenario", "mode", "events", "best s", "events/s", "speedup", "rej %", "p99 us"],
            [
                (
                    r["scenario"], r["mode"], r["events"], r["seconds"],
                    r["events_per_sec"], r["speedup"],
                    r["rejection_pct"], r["p99_sojourn_us"],
                )
                for r in rows
            ],
            title="Open-loop traffic event-loop ladder (best of %d)" % ROUNDS,
        )
    )
    reference = [r for r in rows if r["scenario"] == REFERENCE_SCENARIO]
    assert reference[0]["rejection_pct"] > 0, "reference point did not reject"
    assert reference[0]["p99_sojourn_us"] > 0, "reference point recorded no sojourns"
    for row in rows:
        assert row["events_per_sec"] >= MIN_EVENTS_PER_SEC, (
            f"{row['scenario']} [{row['mode']}]: {row['events_per_sec']} "
            f"events/s below the {MIN_EVENTS_PER_SEC} floor"
        )
    speedup = _gate_with_retry()
    emit(
        f"ladder gate: batch {speedup:.2f}x legacy on '{REFERENCE_SCENARIO}' "
        f"(>= {MIN_TRAFFIC_SPEEDUP}x, target {TARGET_TRAFFIC_SPEEDUP}x)"
    )


# -- million-event smoke -------------------------------------------------------

#: Deep overload (arrivals outpace the engine ~30:1) so reject-streak
#: replay carries the schedule: a million events complete in seconds.
MILLION_EVENTS = 1_000_000

#: Peak traced driver allocation allowed for a deep-overload run. The
#: resident state is O(reservoir + n_tags + recv_window) — nothing scales
#: with the schedule.
MAX_DRIVER_PEAK_BYTES = 8 * 2**20

#: Floor for the smoke (measured ~300k events/s; an order of magnitude of
#: headroom for CI-class machines).
MIN_MILLION_EVENTS_PER_SEC = 25_000.0


def deep_overload_config(**overrides) -> TrafficConfig:
    kwargs = dict(
        arch=SANDY_BRIDGE,
        arrival_rate=32.0,
        zipf_alpha=1.0,
        n_tags=16,
        msg_bytes=512,
        search_depth=8,
        queue_capacity=32,
        recv_window=4,
        n_warmup=1000,
        n_measured=MILLION_EVENTS - 1000,
        seed=7,
    )
    kwargs.update(overrides)
    return TrafficConfig(**kwargs)


def test_traffic_million_event_smoke():
    start = time.perf_counter()
    result = run_traffic(deep_overload_config())
    elapsed = time.perf_counter() - start
    events_per_sec = MILLION_EVENTS / elapsed
    for phase in (result.warmup, result.measured):
        assert phase.fast_matches + phase.unexpected + phase.rejected == phase.events
    assert result.measured.events == MILLION_EVENTS - 1000
    assert events_per_sec >= MIN_MILLION_EVENTS_PER_SEC, (
        f"million-event smoke: {events_per_sec:.0f} events/s below the "
        f"{MIN_MILLION_EVENTS_PER_SEC} floor"
    )

    # Peak traced allocation, bounded at quarter scale (tracing multiplies
    # wall cost ~10x; tests/test_traffic_scale.py pins that the peak is
    # flat in the event count, so the bound transfers to the full million).
    driver = TrafficDriver.open_loop(deep_overload_config(n_measured=249_000))
    tracemalloc.start()
    try:
        driver.run_open()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert peak < MAX_DRIVER_PEAK_BYTES, (
        f"driver peak {peak / 2**20:.2f} MB exceeds "
        f"{MAX_DRIVER_PEAK_BYTES / 2**20:.0f} MB bound"
    )
    emit(
        f"million-event smoke: {MILLION_EVENTS} events in {elapsed:.1f}s "
        f"({events_per_sec:,.0f} events/s), driver peak {peak / 2**20:.2f} MB"
    )


if __name__ == "__main__":
    test_traffic_batch_speedup_ladder()
    test_traffic_million_event_smoke()
