"""Open-loop traffic throughput baseline: simulated events per wall second.

The traffic driver is the substrate every overload experiment runs on, so
its host-side throughput bounds how large a schedule is practical. This
benchmark drives a moderately loaded open-loop run (bounded UMQ, decoy PRQ
depth, Zipf skew — the `traffic-overload` scenario's regime) and asserts:

* bit-identical :class:`~repro.traffic.TrafficResult` reprs across repeated
  runs (determinism re-checked inside the timed harness, like the scan and
  kernel benches do);
* the loss machinery actually engaged (nonzero rejections, nonzero p99
  sojourn) — a silently idle admission path would make the timing
  meaningless;
* a loose events/sec floor (``MIN_EVENTS_PER_SEC``) so a pathological
  slowdown of the event loop fails CI rather than stretching it.

``bench_to_json.py`` reuses :func:`collect_traffic` to export the
trajectory to ``BENCH_traffic.json``.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.analysis.report import render_table
from repro.arch import SANDY_BRIDGE
from repro.traffic import TrafficConfig, run_traffic

#: Events per timed run (warmup + measured).
N_WARMUP = 200
N_MEASURED = 1800

#: Timed repetitions; best-of keeps scheduler noise out.
ROUNDS = 3

#: Loose floor: the event loop currently sustains several thousand
#: events/sec on CI-class hardware; this trips only on order-of-magnitude
#: regressions (per-event Python overhead creep), not machine noise.
MIN_EVENTS_PER_SEC = 1000.0


def overload_config(**overrides) -> TrafficConfig:
    """The benchmark's reference configuration (a knee-adjacent point)."""
    kwargs = dict(
        arch=SANDY_BRIDGE,
        arrival_rate=1.2,
        zipf_alpha=1.0,
        n_tags=64,
        msg_bytes=1024,
        search_depth=128,
        flush_every=32,
        queue_capacity=256,
        n_warmup=N_WARMUP,
        n_measured=N_MEASURED,
        seed=7,
    )
    kwargs.update(overrides)
    return TrafficConfig(**kwargs)


def time_traffic(cfg: TrafficConfig, rounds: int = ROUNDS):
    """Best-of-N wall time for one config; returns (seconds, result).

    Also asserts run-to-run repr identity — the determinism gate rides
    inside the timing harness.
    """
    best = float("inf")
    reference = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = run_traffic(cfg)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        if reference is None:
            reference = result
        else:
            assert repr(result) == repr(reference), "traffic run diverged"
    return best, reference


def collect_traffic():
    """Rows for the JSON artifact (and the table below)."""
    rows = []
    for label, cfg in (
        ("overload drop-tail", overload_config()),
        ("overload drop-head", overload_config(admission="drop-head")),
        (
            "unbounded rate 0.2",
            overload_config(
                arrival_rate=0.2, queue_capacity=None, flush_every=0, search_depth=32
            ),
        ),
    ):
        seconds, result = time_traffic(cfg)
        events = cfg.n_warmup + cfg.n_measured
        measured = result.measured
        rows.append(
            {
                "scenario": label,
                "events": events,
                "seconds": round(seconds, 4),
                "events_per_sec": round(events / seconds, 1),
                "rejection_pct": round(measured.rejection_pct, 2),
                "p99_sojourn_us": round(measured.p99_sojourn_us, 2),
            }
        )
    return rows


def test_traffic_throughput_baseline():
    rows = collect_traffic()
    emit(
        render_table(
            ["scenario", "events", "best s", "events/s", "rej %", "p99 us"],
            [
                (
                    r["scenario"], r["events"], r["seconds"],
                    r["events_per_sec"], r["rejection_pct"], r["p99_sojourn_us"],
                )
                for r in rows
            ],
            title="Open-loop traffic driver throughput (best of %d)" % ROUNDS,
        )
    )
    overload = rows[0]
    assert overload["rejection_pct"] > 0, "overload point did not reject"
    assert overload["p99_sojourn_us"] > 0, "overload point recorded no sojourns"
    for row in rows:
        assert row["events_per_sec"] >= MIN_EVENTS_PER_SEC, (
            f"{row['scenario']}: {row['events_per_sec']} events/s below the "
            f"{MIN_EVENTS_PER_SEC} floor"
        )


if __name__ == "__main__":
    test_traffic_throughput_baseline()
