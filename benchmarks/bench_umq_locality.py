"""Ablation — spatial locality on the *unexpected* message queue.

Figure 2 packs UMQ entries three to a cache line (16 bytes each, no masks);
the bandwidth figures only exercise the PRQ, so this bench covers the other
queue: flood the UMQ with unexpected messages, then drain it with receives
posted in reverse arrival order (worst-case deep searches, the
Keller & Graham regime of section 5), measuring search cost and the
queue-time statistics the paper's related work reports.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.arch import SANDY_BRIDGE
from repro.matching import MatchEngine, make_queue
from repro.matching.entry import UMQ_ENTRY_BYTES
from repro.matching.envelope import Envelope
from repro.mpi.message import Message
from repro.mpi.process import MpiProcess

FLOOD = 1024


def _drain_cycles(family):
    hier = SANDY_BRIDGE.build_hierarchy(rng=np.random.default_rng(2))
    engine = MatchEngine(hier)
    prq = make_queue(family, port=engine, rng=np.random.default_rng(0))
    umq = make_queue(
        family, entry_bytes=UMQ_ENTRY_BYTES, port=engine,
        rng=np.random.default_rng(1), arena_base=0x2000_0000,
    )
    proc = MpiProcess(0, prq, umq, clock=engine.clock)
    # Flood: every message is unexpected.
    for tag in range(FLOOD):
        proc.handle_arrival(Message(Envelope(3, tag, 0), 64))
    assert len(proc.umq) == FLOOD
    # Drain in reverse arrival order: each recv searches deep, cold.
    total = 0.0
    samples = 0
    for tag in reversed(range(0, FLOOD, 64)):
        hier.flush()
        start = engine.clock.now
        req = proc.post_recv(src=3, tag=tag)
        assert req.matched_unexpected
        total += engine.clock.now - start
        samples += 1
    return total / samples, proc.mean_umq_search_depth


def test_umq_spatial_locality(once):
    results = once(
        lambda: {family: _drain_cycles(family) for family in ("baseline", "lla-3", "lla-8")}
    )
    rows = [
        (family, round(cycles), round(depth, 1))
        for family, (cycles, depth) in results.items()
    ]
    emit(render_table(
        ["UMQ structure", "cycles/drain-search", "mean UMQ search depth"],
        rows,
        title=f"UMQ spatial locality, {FLOOD}-deep unexpected flood (Sandy Bridge)",
    ))
    base_cycles, base_depth = results["baseline"]
    lla3_cycles, lla3_depth = results["lla-3"]
    # Same semantics: identical search depths.
    assert lla3_depth == base_depth
    # Figure 2's 3-per-line UMQ packing: a clear spatial win on drains.
    assert lla3_cycles < base_cycles / 2
    assert results["lla-8"][0] <= lla3_cycles * 1.05
