"""Shared fixtures/helpers for the figure-regeneration benchmarks.

Every benchmark in this directory regenerates one table or figure of the
paper on the simulated substrate, prints the same rows/series the paper
reports, and asserts the reproduction criteria from DESIGN.md section 7.

Run with::

    pytest benchmarks/ --benchmark-only -s

Sweeps here are mildly reduced relative to the paper (fewer trial
repetitions, coarser axes) so the whole suite finishes in minutes; the CLI
(`repro fig4` etc. without --quick) runs the full axes.
"""

from __future__ import annotations

import sys

import pytest

# The benchmark scripts live outside the src/ package tree, so importing
# them (pytest, bench_to_json.py, ad-hoc `python benchmarks/...` runs)
# would otherwise litter benchmarks/__pycache__/ into the working tree.
# Bytecode caching buys nothing for scripts this size — turn it off.
sys.dont_write_bytecode = True


def emit(text: str) -> None:
    """Print a rendered table so `-s` runs show the paper-style output."""
    print()
    print(text)


@pytest.fixture
def once(benchmark):
    """Run the (expensive) regeneration exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return runner
