#!/usr/bin/env python
"""The title fight: semi-permanent occupancy under co-located LLC pressure.

A matched rank shares a Sandy Bridge socket with up to six co-located
compute ranks, each streaming 4 MiB per phase. Watch what happens to match
search cost when the node's combined working set exceeds the 20 MiB shared
L3 — and which occupancy mechanism survives it.

Run:  python examples/colocated_pressure.py   (takes ~1 minute)
"""

from repro.analysis import render_table
from repro.arch import SANDY_BRIDGE
from repro.bench.colocated import run_colocated_study

RANKS = (1, 4, 7)


def main() -> None:
    points = run_colocated_study(
        SANDY_BRIDGE, rank_counts=RANKS, iterations=1, depth=2048
    )
    by = {(p.mechanism, p.ranks): p.cycles_per_search for p in points}
    rows = []
    for ranks in RANKS:
        rows.append(
            (
                ranks,
                f"{ranks * 4} MiB",
                round(by[("none", ranks)]),
                round(by[("hot-caching", ranks)]),
                round(by[("cat-partition", ranks)]),
            )
        )
    print(
        render_table(
            ["ranks", "node working set", "unprotected", "hot caching", "CAT partition"],
            rows,
            title="Search cycles for a 2048-deep list vs co-located pressure "
            "(Sandy Bridge, 20 MiB L3)",
        )
    )
    blowup = by[("none", 7)] / by[("none", 1)]
    print(f"""
At 7 ranks the node streams 28 MiB per phase — more than the LLC — and the
unprotected match list gets evicted between phases ({blowup:.1f}x blow-up).
The software heater, whose pass lands mid-phase, defends only partially.
The CAT-style way partition cannot be evicted by ordinary fills at all:
matching cost is flat at any rank count. That is "semi-permanent cache
occupancy" — the hardware support the paper's title argues for.""")


if __name__ == "__main__":
    main()
