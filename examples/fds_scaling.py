#!/usr/bin/env python
"""The Figure 10 application study: FDS factor speedups, reduced sweep.

The Fire Dynamics Simulator builds long match lists and rarely matches the
first element; as it strong-scales, matching dominates runtime and the
locality tools diverge: LLA reaches ~2x at 4k ranks while hot caching's
region-list lock turns it into a net loss.

Run:  python examples/fds_scaling.py
"""

from repro.analysis import render_series_table
from repro.apps import fig10_fds_speedups

SCALES = (512, 1024, 4096)


def main() -> None:
    sweep = fig10_fds_speedups(scales=SCALES)
    print(render_series_table(sweep))

    lla = sweep.series["LLA Nehalem"]
    hc = sweep.series["HC Nehalem"]
    both = sweep.series["HC+LLA Nehalem"]
    print(f"""
Landmarks vs the paper:
  LLA at 4096 ranks:    {lla.at(4096):.2f}x   (paper: ~2x)
  HC at 4096 ranks:     {hc.at(4096):.2f}x   (paper: a slowdown — lock contention)
  HC+LLA at 1024 ranks: {both.at(1024):.2f}x   (paper: 1.145x, best at small scale)
""")


if __name__ == "__main__":
    main()
