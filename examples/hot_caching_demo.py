#!/usr/bin/env python
"""Hot caching under the microscope.

Shows the heater's machinery directly: periodic passes refreshing the shared
L3, the region-list lock windows, and why the technique wins on Sandy Bridge
but loses on Broadwell (the paper's sections 3.2 and 4.3).

Run:  python examples/hot_caching_demo.py
"""

from repro import (
    BROADWELL,
    SANDY_BRIDGE,
    Envelope,
    HeatedQueue,
    Heater,
    HeaterConfig,
    MatchEngine,
    MatchItem,
    make_pattern,
    make_queue,
)
from repro.mem.alloc import Allocation

DEPTH = 1024


def inspect_heater_mechanics() -> None:
    print("=== Heater mechanics (Sandy Bridge) ===")
    hierarchy = SANDY_BRIDGE.build_hierarchy()
    heater = Heater(hierarchy, SANDY_BRIDGE.ghz, HeaterConfig(period_ns=2000.0))
    region = Allocation(0x4000_0000, 64 * 1024)  # 64 KiB of match state
    heater.regions.add(region)

    heater.catch_up(SANDY_BRIDGE.cycles(10_000))  # 10 us of simulated time
    print(f"  passes run in 10 us:        {heater.passes}")
    print(f"  lines touched per pass:     {heater.lines_touched // heater.passes}")
    print(f"  pass duration:              {SANDY_BRIDGE.ns(heater.last_pass_duration):.0f} ns")
    print(f"  saturated (pass > period):  {heater.saturated}")

    line = region.addr >> 6
    print(f"  region resident in L3:      {hierarchy.l3.contains(line)}")
    cost = hierarchy.access(0, region.addr, 8)
    print(f"  matching-core access cost:  {cost:.0f} cycles (L3 latency = "
          f"{SANDY_BRIDGE.l3_latency:.0f})\n")


def architecture_contrast() -> None:
    print("=== Why Broadwell says no (section 4.3) ===")
    for arch in (SANDY_BRIDGE, BROADWELL):
        results = {}
        for heated in (False, True):
            hierarchy = arch.build_hierarchy()
            engine = MatchEngine(hierarchy)
            queue = make_queue("baseline", port=engine)
            if heated:
                heater = Heater(hierarchy, arch.ghz, HeaterConfig(locked=True))
                queue = HeatedQueue(queue, heater, engine)
            for i in range(DEPTH):
                queue.post(make_pattern(0, 10_000 + i, 0, seq=i))
            queue.post(make_pattern(1, 7, 0, seq=DEPTH + 1))
            hierarchy.flush()
            if heated:
                queue.prepare_phase()
            probe = MatchItem.from_envelope(Envelope(1, 7, 0), seq=999_999)
            _, cycles = engine.timed(lambda: queue.match_remove(probe))
            results[heated] = cycles
        verdict = "WIN" if results[True] < results[False] else "LOSS"
        print(
            f"  {arch.name:13s} cold {results[False]:8.0f} cy   "
            f"heated {results[True]:8.0f} cy   -> hot caching {verdict}"
        )
    print(
        "\n  Sandy Bridge's L3 runs in the core clock domain (30 cycles); "
        "Broadwell's\n  decoupled LLC is slower (48) while its streamer already "
        "covers DRAM\n  streams — so keeping the list in L3 buys nothing and "
        "the heater's lock\n  costs tip the balance."
    )


if __name__ == "__main__":
    inspect_heater_mechanics()
    architecture_contrast()
