#!/usr/bin/env python
"""End-to-end mini-MPI: a ring exchange over the discrete-event runtime.

Eight ranks pass tokens around a ring (non-blocking receives, out-of-order
tags, a barrier per round) while rank 0's matching engine is cycle-accounted
through a simulated Sandy Bridge cache hierarchy. Demonstrates the full
receive path of paper section 2.1 — unexpected-queue traffic included.

Run:  python examples/mini_mpi_ring.py
"""

from repro import SANDY_BRIDGE
from repro.mpi import MpiWorld

NRANKS = 8
ROUNDS = 4
MSG_BYTES = 4096


def ring_program(ctx):
    left = (ctx.rank - 1) % ctx.size
    right = (ctx.rank + 1) % ctx.size
    for rnd in range(ROUNDS):
        # Send both directions with round-stamped tags; receive the
        # counterparts in the "wrong" order to exercise the UMQ.
        yield from ctx.send(right, tag=100 + rnd, nbytes=MSG_BYTES)
        yield from ctx.send(left, tag=200 + rnd, nbytes=MSG_BYTES)
        req_r = yield from ctx.recv(src=right, tag=200 + rnd, nbytes=MSG_BYTES)
        req_l = yield from ctx.recv(src=left, tag=100 + rnd, nbytes=MSG_BYTES)
        assert req_r.completed and req_l.completed
        yield from ctx.barrier()
    return ctx.rank


def main() -> None:
    world = MpiWorld(
        NRANKS,
        queue_family="lla-2",
        arch=SANDY_BRIDGE,
        engine_ranks=(0,),
        seed=42,
    )
    finish_ns = world.run(ring_program)
    print(f"ring exchange: {NRANKS} ranks x {ROUNDS} rounds "
          f"finished at {finish_ns / 1000:.1f} us simulated time\n")

    proc = world.procs[0]
    print("rank 0 matching statistics:")
    print(f"  PRQ matches:           {len(proc.prq_search_depths)}")
    print(f"  mean PRQ search depth: {proc.mean_prq_search_depth:.2f}")
    print(f"  UMQ matches:           {len(proc.umq_search_depths)}")
    print(f"  mean UMQ search depth: {proc.mean_umq_search_depth:.2f}")

    engine = world.engines[0]
    print(f"  memory loads charged:  {engine.loads}")
    print(f"  match cycles total:    {engine.load_cycles:.0f} "
          f"({SANDY_BRIDGE.ns(engine.load_cycles) / 1000:.2f} us)")


if __name__ == "__main__":
    main()
