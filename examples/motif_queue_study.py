#!/usr/bin/env python
"""Match-queue length study over the paper's communication motifs.

Regenerates the Figure 1 histograms (AMR at 64K ranks, Sweep3D at 128K,
Halo3D at 256K) and summarizes what they imply for matching-engine design —
the paper's conclusion that an engine must handle both "many very small
queues" and lists of hundreds to thousands of entries.

Run:  python examples/motif_queue_study.py
"""

from repro.analysis import render_table
from repro.motifs import MOTIFS


def main() -> None:
    summaries = []
    for name, cls in MOTIFS.items():
        result = cls(seed=0).run()
        rows = [
            (label, posted, unexpected)
            for (label, posted), (_, unexpected) in zip(
                result.posted_buckets(), result.unexpected_buckets()
            )
        ]
        print(
            render_table(
                ["Matchlist Length Bucket Range", "posted", "unexpected"],
                rows,
                title=f"Figure 1 ({name}) — {result.nranks // 1024}K ranks, "
                f"bucket width {result.bucket_width}",
            )
        )
        print()
        total = result.posted.sum()
        short = result.posted[:32].sum() / total
        summaries.append(
            (name, result.max_posted_length, f"{100 * short:.1f}%")
        )
    print(
        render_table(
            ["motif", "max posted length", "samples at length < 32"],
            summaries,
            title="What a matching engine must serve",
        )
    )


if __name__ == "__main__":
    main()
