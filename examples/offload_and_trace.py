#!/usr/bin/env python
"""Hardware offload + trace replay: evaluating designs against one workload.

Part 1 records the matching operations of an FDS-like deep-match workload as
a portable trace (the Ferreira-style trace-based-simulation workflow the
paper cites). Part 2 replays that same trace against several design points —
software baseline, LLA, hot caching, and a BXI-like matching NIC — without
re-running the workload.

Run:  python examples/offload_and_trace.py
"""

import numpy as np

from repro import SANDY_BRIDGE, Envelope, MatchEngine, MatchItem, make_pattern, make_queue
from repro.analysis import render_table
from repro.offload import BXI_LIKE, OffloadedMatchQueue
from repro.trace import ARRIVAL, POST, TraceEvent, replay

DEPTH = 2048
MESSAGES = 48


def build_fds_like_trace(seed: int = 0) -> list:
    """Posts a deep list, then matches at FDS-like (deep) positions."""
    rng = np.random.default_rng(seed)
    events = []
    tags = list(range(10_000, 10_000 + DEPTH))
    for tag in tags:
        events.append(TraceEvent(POST, src=0, tag=tag))
    live = list(tags)
    next_tag = tags[-1] + 1
    for _ in range(MESSAGES):
        # "does not typically match the first element": pick deep positions.
        pos = int(rng.uniform(0.3, 1.0) * (len(live) - 1))
        tag = live.pop(pos)
        events.append(TraceEvent(ARRIVAL, src=0, tag=tag))
        events.append(TraceEvent(POST, src=0, tag=next_tag))  # churn
        live.append(next_tag)
        next_tag += 1
    return events


def replay_on_nic(events) -> float:
    """Cycle-accounted replay with a BXI-like NIC in front of the software
    queue (the trace replayer handles software configs; the NIC wrapper is
    composed manually here)."""
    hier = SANDY_BRIDGE.build_hierarchy()
    engine = MatchEngine(hier)
    software = make_queue("baseline", port=engine, rng=np.random.default_rng(1))
    q = OffloadedMatchQueue(software, BXI_LIKE, engine=engine, ghz=SANDY_BRIDGE.ghz)
    start = engine.clock.now
    for ev in events:
        if ev.is_post:
            q.post(make_pattern(ev.src, ev.tag, ev.cid, seq=int(engine.clock.now) % (1 << 30)))
        else:
            hier.flush()
            probe = MatchItem.from_envelope(Envelope(ev.src, ev.tag, ev.cid), seq=1 << 30)
            q.match_remove(probe)
    return engine.clock.now - start


def main() -> None:
    events = build_fds_like_trace()
    print(f"recorded trace: {len(events)} events "
          f"({DEPTH} initial posts, {MESSAGES} deep matches with churn)\n")

    rows = []
    for label, kwargs in (
        ("baseline", dict(queue_family="baseline")),
        ("LLA-8", dict(queue_family="lla-8")),
        ("baseline + hot caching", dict(queue_family="baseline", heated=True)),
    ):
        result = replay(events, arch=SANDY_BRIDGE, flush_every=DEPTH, **kwargs)
        rows.append((label, round(result.match_cycles), round(result.mean_prq_search_depth, 1)))
    rows.append(("BXI-like NIC offload", round(replay_on_nic(events)), "-"))
    print(
        render_table(
            ["design point", "match cycles (total)", "mean PRQ depth"],
            rows,
            title="One trace, four matching designs (Sandy Bridge)",
        )
    )
    print("""
Within NIC capacity the hardware wins outright; past it (or on machines
without offload) the locality tools carry the load. Note hot caching's
blow-up: this trace posts thousands of receives while the heater's locked
region list is saturated — every post loses spin-lock races to the heater.
That is precisely the contention that sinks hot caching for FDS at scale
(paper section 4.5); the LLA + element-pool combination avoids it.""")


if __name__ == "__main__":
    main()
