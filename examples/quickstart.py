#!/usr/bin/env python
"""Quickstart: measure how data locality changes MPI match-list search cost.

Builds a simulated Sandy Bridge socket, fills a posted-receive queue with
1024 entries, and times one cold search over three configurations:

* the baseline MPICH-style linked list,
* the paper's linked list of arrays (LLA, 8 entries per node), and
* the baseline kept warm by a hot-caching heater thread.

Run:  python examples/quickstart.py
"""

from repro import (
    SANDY_BRIDGE,
    Envelope,
    HeatedQueue,
    Heater,
    HeaterConfig,
    MatchEngine,
    MatchItem,
    make_pattern,
    make_queue,
)

DEPTH = 1024


def timed_search(queue_family: str, heated: bool) -> float:
    """Cycles for one cold search that traverses DEPTH entries."""
    hierarchy = SANDY_BRIDGE.build_hierarchy()
    engine = MatchEngine(hierarchy)
    queue = make_queue(queue_family, port=engine)
    if heated:
        heater = Heater(hierarchy, SANDY_BRIDGE.ghz, HeaterConfig(locked=True))
        queue = HeatedQueue(queue, heater, engine)

    # Post decoy receives for peers that never send, then the one that will.
    for i in range(DEPTH):
        queue.post(make_pattern(src=0, tag=10_000 + i, cid=0, seq=i))
    queue.post(make_pattern(src=1, tag=7, cid=0, seq=DEPTH + 1))

    # A compute phase wipes the caches; the heater (if any) re-warms the LLC.
    hierarchy.flush()
    if heated:
        queue.prepare_phase()

    probe = MatchItem.from_envelope(Envelope(src=1, tag=7, cid=0), seq=999_999)
    _, cycles = engine.timed(lambda: queue.match_remove(probe))
    return cycles


def main() -> None:
    configs = [
        ("baseline linked list", "baseline", False),
        ("linked list of arrays (LLA-8)", "lla-8", False),
        ("baseline + hot caching", "baseline", True),
    ]
    print(f"Cold search over {DEPTH} posted receives on {SANDY_BRIDGE.name}:\n")
    baseline_cycles = None
    for label, family, heated in configs:
        cycles = timed_search(family, heated)
        if baseline_cycles is None:
            baseline_cycles = cycles
        print(
            f"  {label:32s} {cycles:9.0f} cycles "
            f"({SANDY_BRIDGE.ns(cycles) / 1000:6.2f} us, "
            f"{baseline_cycles / cycles:4.1f}x vs baseline)"
        )
    print(
        "\nThe LLA packs two 24-byte match entries per 64-byte cache line and\n"
        "streams through the prefetchers; the heater keeps the list resident\n"
        "in the shared L3. Both are the paper's locality tools."
    )


if __name__ == "__main__":
    main()
