#!/usr/bin/env python
"""Spatial locality sweep: the Figure 4b/5b experiment, in miniature.

Runs the modified OSU bandwidth benchmark (pre-posted receives, cache clear
between iterations, pre-populated queue) for 1-byte messages across queue
search lengths, comparing the baseline with the LLA arity sweep on both
Sandy Bridge and Broadwell.

Run:  python examples/spatial_locality_sweep.py
"""

from repro.analysis import render_series_table
from repro.arch import BROADWELL, SANDY_BRIDGE
from repro.bench.figures import fig_spatial_search_length

DEPTHS = [1, 8, 64, 512, 1024, 4096]


def main() -> None:
    for arch in (SANDY_BRIDGE, BROADWELL):
        sweep = fig_spatial_search_length(
            arch, msg_bytes=1, depths=DEPTHS, iterations=3
        )
        print(render_series_table(sweep))
        base = sweep.series["baseline"]
        lla8 = sweep.series["LLA - 8"]
        print(
            f"\n  LLA-8 vs baseline at depth 1024 on {arch.name}: "
            f"{lla8.at(1024) / base.at(1024):.2f}x\n"
        )


if __name__ == "__main__":
    main()
