"""repro — reproduction of *The Case for Semi-Permanent Cache Occupancy:
Understanding the Impact of Data Locality on Network Processing* (Dosanjh et
al., ICPP 2018) as a Python library over a simulated memory hierarchy.

The paper studies how spatial locality (a linked-list-of-arrays match queue)
and temporal locality (a "hot caching" heater thread) affect MPI message
matching across x86 generations. Real cache occupancy cannot be expressed in
Python, so this package rebuilds the entire stack as a simulation:

* :mod:`repro.mem` / :mod:`repro.arch` — set-associative caches, hardware
  prefetchers, per-generation latency models (Nehalem, Sandy Bridge,
  Haswell, Broadwell, KNL), way partitioning, and the paper's proposed
  dedicated network cache.
* :mod:`repro.matching` — MPI matching semantics over the baseline linked
  list, the paper's LLA, and the related-work structures (Open MPI
  hierarchical, hash bins, 4-D), all cycle-accounted.
* :mod:`repro.hotcache` — the heater thread, its region list, and its lock
  contention model.
* :mod:`repro.mpi` — a mini-MPI (PRQ/UMQ receive path, communicators,
  wildcards, a multi-rank discrete-event runtime, thread interleavings).
* :mod:`repro.decomp`, :mod:`repro.motifs`, :mod:`repro.apps`,
  :mod:`repro.bench` — everything needed to regenerate every table and
  figure of the paper (see DESIGN.md for the index, ``repro list`` on the
  command line, or the modules under ``benchmarks/``).

Quickstart::

    from repro import (SANDY_BRIDGE, MatchEngine, make_queue,
                       make_pattern, MatchItem, Envelope)

    hier = SANDY_BRIDGE.build_hierarchy()
    engine = MatchEngine(hier)
    queue = make_queue("lla-8", port=engine)
    for i in range(1024):
        queue.post(make_pattern(src=0, tag=i, cid=0, seq=i))
    probe = MatchItem.from_envelope(Envelope(src=0, tag=777, cid=0), seq=9999)
    hier.flush()
    entry, cycles = engine.timed(lambda: queue.match_remove(probe))
    print(f"matched seq {entry.seq} after {cycles:.0f} cycles")
"""

from repro._version import __version__
from repro.arch import (
    BROADWELL,
    HASWELL,
    KNL,
    NEHALEM,
    SANDY_BRIDGE,
    ArchSpec,
    get_arch,
)
from repro.errors import (
    AllocationError,
    ConfigurationError,
    MatchingError,
    MpiUsageError,
    ReproError,
    SimulationError,
)
from repro.hotcache import HeatedQueue, Heater, HeaterConfig
from repro.matching import (
    ANY_SOURCE,
    ANY_TAG,
    BaselineLinkedList,
    BinnedHashQueue,
    Envelope,
    FourDimensionalQueue,
    LinkedListOfArrays,
    MatchEngine,
    MatchItem,
    MatchQueue,
    NullPort,
    OpenMpiHierarchicalQueue,
    items_match,
    make_pattern,
    make_queue,
)
from repro.mem import (
    CLS_DEFAULT,
    CLS_NETWORK,
    MemoryHierarchy,
    NetworkCacheConfig,
    SetAssociativeCache,
    WayPartition,
)
from repro.mpi import Communicator, Message, MpiProcess, MpiWorld
from repro.net import ARIES, MELLANOX_QDR, OMNIPATH, QLOGIC_QDR, LinkSpec, get_link

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "ARIES",
    "AllocationError",
    "ArchSpec",
    "BROADWELL",
    "BaselineLinkedList",
    "BinnedHashQueue",
    "CLS_DEFAULT",
    "CLS_NETWORK",
    "Communicator",
    "ConfigurationError",
    "Envelope",
    "FourDimensionalQueue",
    "HASWELL",
    "HeatedQueue",
    "Heater",
    "HeaterConfig",
    "KNL",
    "LinkSpec",
    "LinkedListOfArrays",
    "MELLANOX_QDR",
    "MatchEngine",
    "MatchItem",
    "MatchQueue",
    "MatchingError",
    "MemoryHierarchy",
    "Message",
    "MpiProcess",
    "MpiUsageError",
    "MpiWorld",
    "NEHALEM",
    "NetworkCacheConfig",
    "NullPort",
    "OMNIPATH",
    "OpenMpiHierarchicalQueue",
    "QLOGIC_QDR",
    "ReproError",
    "SANDY_BRIDGE",
    "SetAssociativeCache",
    "SimulationError",
    "WayPartition",
    "__version__",
    "get_arch",
    "get_link",
    "items_match",
    "make_pattern",
    "make_queue",
]
