"""Version of the repro package."""

__version__ = "1.0.0"
