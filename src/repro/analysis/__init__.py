"""Result containers, statistics, and text renderers for the experiments."""

from repro.analysis.export import (
    sweep_from_json,
    sweep_to_csv,
    sweep_to_json,
    write_sweep,
)
from repro.analysis.plot import render_ascii_chart, render_histogram
from repro.analysis.series import Series, Sweep
from repro.analysis.stats import TrialStats, factor_speedup, mean_std
from repro.analysis.report import (
    render_mem_stats_table,
    render_series_table,
    render_table,
)

__all__ = [
    "Series",
    "Sweep",
    "TrialStats",
    "factor_speedup",
    "mean_std",
    "render_ascii_chart",
    "render_histogram",
    "render_mem_stats_table",
    "render_series_table",
    "render_table",
    "sweep_from_json",
    "sweep_to_csv",
    "sweep_to_json",
    "write_sweep",
]
