"""Exporting sweeps and tables for external plotting.

Figures regenerate as :class:`~repro.analysis.series.Sweep` objects; these
helpers flatten them to CSV (one x column, one column per series) or a
self-describing JSON document, so the data can be re-plotted with any stack
without re-running the simulations.

The JSON form round-trips everything a figure carries: series values,
y-error bars, and the per-series memory-level attribution the drivers
attach under ``meta["mem_stats"]`` (serialized as
:meth:`~repro.mem.result.LevelStats.snapshot` dicts). CSV is the lossy
flat view — values only — but :func:`sweep_from_csv` reads it back.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Union

from repro.analysis.series import Sweep
from repro.mem.result import LevelStats


def sweep_to_csv(sweep: Sweep) -> str:
    """CSV text: header row from the series labels, one row per x value."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    labels = sweep.labels()
    writer.writerow([sweep.xlabel] + labels)
    xs = sweep.x_values()
    for i, x in enumerate(xs):
        row = [x]
        for label in labels:
            series = sweep.series[label]
            row.append(series.y[i] if i < len(series.y) else "")
        writer.writerow(row)
    return buf.getvalue()


def sweep_from_csv(text: str, *, title: str = "", ylabel: str = "") -> Sweep:
    """Rebuild a sweep from :func:`sweep_to_csv` output (values only).

    CSV does not carry the title, ylabel, yerr, or meta; the first two can
    be supplied by the caller, the rest come back empty/zero.
    """
    rows = list(csv.reader(io.StringIO(text)))
    if not rows or len(rows[0]) < 2:
        raise ValueError("CSV is not a sweep export (need an x column + series)")
    xlabel, labels = rows[0][0], rows[0][1:]
    sweep = Sweep(title=title, xlabel=xlabel, ylabel=ylabel)
    for label in labels:
        sweep.series_for(label)
    for row in rows[1:]:
        if not row:
            continue
        x = float(row[0])
        for label, cell in zip(labels, row[1:]):
            if cell != "":
                sweep.series[label].add(x, float(cell))
    return sweep


def sweep_to_json(sweep: Sweep) -> str:
    """A self-describing JSON document (title, axes, per-series points)."""
    doc = {
        "title": sweep.title,
        "xlabel": sweep.xlabel,
        "ylabel": sweep.ylabel,
        "series": [
            {
                "label": label,
                "x": list(series.x),
                "y": list(series.y),
                "yerr": list(series.yerr),
            }
            for label, series in sweep.series.items()
        ],
    }
    mem_stats = sweep.meta.get("mem_stats")
    if mem_stats:
        doc["mem_stats"] = {
            label: stats.snapshot()
            for label, stats in mem_stats.items()
            if stats is not None
        }
    return json.dumps(doc, indent=2)


def sweep_from_json(text: str) -> Sweep:
    """Inverse of :func:`sweep_to_json`."""
    doc = json.loads(text)
    sweep = Sweep(doc["title"], doc["xlabel"], doc["ylabel"])
    for sdoc in doc["series"]:
        series = sweep.series_for(sdoc["label"])
        yerrs = sdoc.get("yerr") or [0.0] * len(sdoc["x"])
        for x, y, e in zip(sdoc["x"], sdoc["y"], yerrs):
            series.add(x, y, e)
    if doc.get("mem_stats"):
        sweep.meta["mem_stats"] = {
            label: LevelStats.from_snapshot(snap)
            for label, snap in doc["mem_stats"].items()
        }
    return sweep


def write_sweep(path: Union[str, Path], sweep: Sweep) -> None:
    """Write a sweep to *path*; format chosen by suffix (.csv or .json)."""
    path = Path(path)
    if path.suffix == ".csv":
        path.write_text(sweep_to_csv(sweep), encoding="utf-8")
    elif path.suffix == ".json":
        path.write_text(sweep_to_json(sweep), encoding="utf-8")
    else:
        raise ValueError(f"unsupported export format {path.suffix!r} (use .csv/.json)")
