"""ASCII chart rendering for figure panels.

The paper's figures are log-log bandwidth plots; a terminal rendering makes
the regenerated shapes visible at a glance without a plotting stack. Marks
are per-series letters; the y axis can be linear or log10.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.analysis.series import Sweep

#: Mark characters assigned to series in order.
MARKS = "oxs+*#@%&"


def _fmt_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e4 or abs(value) < 1e-2:
        return f"{value:.0e}"
    return f"{value:g}"


def render_ascii_chart(
    sweep: Sweep,
    *,
    width: int = 64,
    height: int = 16,
    log_y: bool = True,
    log_x: bool = True,
) -> str:
    """Render a sweep as an ASCII scatter/line chart.

    X positions come from each series' own x values, so series with
    different grids coexist; ties on a cell keep the first series' mark.
    """
    all_points = [
        (x, y)
        for series in sweep.series.values()
        for x, y in zip(series.x, series.y)
        if y > 0 or not log_y
    ]
    if not all_points:
        return f"{sweep.title}\n(no data)"

    def tx(x: float) -> float:
        return math.log10(x) if log_x and x > 0 else x

    def ty(y: float) -> float:
        return math.log10(y) if log_y and y > 0 else y

    xs = [tx(x) for x, _ in all_points]
    ys = [ty(y) for _, y in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (label, series) in enumerate(sweep.series.items()):
        mark = MARKS[idx % len(MARKS)]
        legend.append(f"{mark}={label}")
        for x, y in zip(series.x, series.y):
            if log_y and y <= 0:
                continue
            col = int((tx(x) - x_lo) / x_span * (width - 1))
            row = int((ty(y) - y_lo) / y_span * (height - 1))
            cell = grid[height - 1 - row][col]
            if cell == " ":
                grid[height - 1 - row][col] = mark

    y_top = 10**y_hi if log_y else y_hi
    y_bot = 10**y_lo if log_y else y_lo
    lines = [f"{sweep.title}  [{sweep.ylabel}]"]
    for i, row in enumerate(grid):
        if i == 0:
            prefix = f"{_fmt_tick(y_top):>9} |"
        elif i == height - 1:
            prefix = f"{_fmt_tick(y_bot):>9} |"
        else:
            prefix = " " * 9 + " |"
        lines.append(prefix + "".join(row))
    x_lo_val = 10**x_lo if log_x else x_lo
    x_hi_val = 10**x_hi if log_x else x_hi
    axis = " " * 10 + "+" + "-" * width
    labels = (
        " " * 11
        + _fmt_tick(x_lo_val)
        + _fmt_tick(x_hi_val).rjust(width - len(_fmt_tick(x_lo_val)) - 1)
    )
    lines.append(axis)
    lines.append(labels)
    lines.append(" " * 11 + f"[{sweep.xlabel}]   " + "  ".join(legend))
    return "\n".join(lines)


def render_histogram(
    labels: Sequence[str],
    counts: Sequence[int],
    *,
    width: int = 48,
    log: bool = True,
    title: Optional[str] = None,
) -> str:
    """Figure-1-style bucket histogram as horizontal log-scale bars."""
    if len(labels) != len(counts):
        raise ValueError("labels and counts must align")
    lines: List[str] = []
    if title:
        lines.append(title)
    if not counts:
        return "\n".join(lines + ["(empty)"])
    scaled = [math.log10(c) if (log and c > 0) else float(c) for c in counts]
    top = max(scaled) or 1.0
    label_w = max(len(str(l)) for l in labels)
    for label, count, s in zip(labels, counts, scaled):
        bar = "#" * max(0, int(s / top * width)) if count else ""
        lines.append(f"{str(label):>{label_w}} |{bar:<{width}} {count:.2e}" if count else
                     f"{str(label):>{label_w}} |{'':<{width}} 0")
    return "\n".join(lines)
