"""Plain-text renderers for tables and figure panels.

Every benchmark prints through these, so `pytest benchmarks/ --benchmark-only`
and the CLI produce the same rows/series the paper reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.series import Sweep
from repro.mem.result import LEVEL_FIELDS, LEVEL_LABELS, LevelStats


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: Optional[str] = None
) -> str:
    """A fixed-width ASCII table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_mem_stats_table(
    stats: "Dict[str, LevelStats]", title: Optional[str] = None
) -> str:
    """Per-level hit attribution, one row per variant label.

    Each row shows where the variant's traversed lines were served
    (netcache/L1/L2/L3/DRAM, as percentages of lines) plus the totals the
    percentages are over. This is the paper's locality argument made
    directly visible: LLA shifts attribution from DRAM into L1/L2 via
    prefetch coverage, hot caching shifts it from DRAM into L3.
    """
    headers = (
        ["variant", "loads", "lines"]
        + [f"{label} %" for label in LEVEL_LABELS]
        + ["pf-covered %", "hit rate %"]
    )
    rows = []
    for label, ls in stats.items():
        if ls is None or not ls.lines:
            rows.append([label, 0, 0] + ["-"] * (len(LEVEL_LABELS) + 2))
            continue
        attribution = [100.0 * getattr(ls, field) / ls.lines for field in LEVEL_FIELDS]
        rows.append(
            [label, ls.loads, ls.lines]
            + [f"{pct:.1f}" for pct in attribution]
            + [
                f"{100.0 * ls.prefetch_covered / ls.lines:.1f}",
                f"{100.0 * ls.hit_rate:.1f}",
            ]
        )
    return render_table(
        headers, rows, title=title or "Memory-level hit attribution (lines served)"
    )


def render_series_table(sweep: Sweep) -> str:
    """A figure panel as a table: one x column, one column per series."""
    labels = sweep.labels()
    headers = [sweep.xlabel] + labels
    xs = sweep.x_values()
    rows = []
    for i, x in enumerate(xs):
        row: List = [x if x != int(x) else int(x)]
        for label in labels:
            s = sweep.series[label]
            row.append(s.y[i] if i < len(s.y) else "")
        rows.append(row)
    title = f"{sweep.title}  [{sweep.ylabel}]"
    return render_table(headers, rows, title=title)
