"""Series/sweep containers used by the figure regenerators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Series:
    """One line of a figure: a label and aligned x/y values."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    yerr: List[float] = field(default_factory=list)

    def add(self, x: float, y: float, yerr: float = 0.0) -> None:
        """Append one (x, y[, yerr]) point."""
        self.x.append(float(x))
        self.y.append(float(y))
        self.yerr.append(float(yerr))

    def at(self, x: float) -> float:
        """y value at an exact x (raises if absent)."""
        idx = self.x.index(float(x))
        return self.y[idx]

    def ratio_to(self, other: "Series") -> "Series":
        """Pointwise self/other on the common x grid."""
        out = Series(f"{self.label}/{other.label}")
        for x, y in zip(self.x, self.y):
            if float(x) in other.x:
                base = other.at(x)
                out.add(x, y / base if base else float("inf"))
        return out

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class Sweep:
    """A whole figure panel: several series over one x axis."""

    title: str
    xlabel: str
    ylabel: str
    series: Dict[str, Series] = field(default_factory=dict)
    # Side-channel annotations attached by the producers (e.g. the figure
    # drivers store per-label memory-level attribution under "mem_stats").
    meta: Dict[str, object] = field(default_factory=dict)

    def series_for(self, label: str) -> Series:
        """Get (or create) the series labelled *label*."""
        if label not in self.series:
            self.series[label] = Series(label)
        return self.series[label]

    def labels(self) -> List[str]:
        """Series labels in insertion order."""
        return list(self.series)

    def x_values(self) -> List[float]:
        """The x grid of the first series (all series share it)."""
        for s in self.series.values():
            return list(s.x)
        return []
