"""Series/sweep containers used by the figure regenerators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Series:
    """One line of a figure: a label and aligned x/y values."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    yerr: List[float] = field(default_factory=list)
    # Lazy exact-float x -> first-index map. Keeps at()/ratio_to() O(1) per
    # lookup (figure reduction does one per point) instead of list.index's
    # O(n) scan; rebuilt whenever x grew since it was last computed, so
    # direct appends to .x by older callers stay correct.
    _xindex: Optional[Dict[float, int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _xindex_len: int = field(default=-1, init=False, repr=False, compare=False)

    def add(self, x: float, y: float, yerr: float = 0.0) -> None:
        """Append one (x, y[, yerr]) point."""
        xf = float(x)
        if self._xindex is not None and self._xindex_len == len(self.x):
            # Keep the map current instead of invalidating it; first
            # occurrence wins, matching list.index semantics exactly.
            self._xindex.setdefault(xf, len(self.x))
            self._xindex_len += 1
        self.x.append(xf)
        self.y.append(float(y))
        self.yerr.append(float(yerr))

    def index_of(self, x: float) -> int:
        """First index holding exactly *x* (ValueError if absent)."""
        xf = float(x)
        if self._xindex is None or self._xindex_len != len(self.x):
            mapping: Dict[float, int] = {}
            for i, xv in enumerate(self.x):
                if xv not in mapping:
                    mapping[xv] = i
            self._xindex = mapping
            self._xindex_len = len(self.x)
        try:
            return self._xindex[xf]
        except KeyError:
            raise ValueError(f"{xf!r} is not in series {self.label!r}") from None

    def at(self, x: float) -> float:
        """y value at an exact x (raises if absent)."""
        return self.y[self.index_of(x)]

    def ratio_to(self, other: "Series") -> "Series":
        """Pointwise self/other on the common x grid."""
        out = Series(f"{self.label}/{other.label}")
        for x, y in zip(self.x, self.y):
            try:
                base = other.at(x)
            except ValueError:
                continue
            out.add(x, y / base if base else float("inf"))
        return out

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class Sweep:
    """A whole figure panel: several series over one x axis."""

    title: str
    xlabel: str
    ylabel: str
    series: Dict[str, Series] = field(default_factory=dict)
    # Side-channel annotations attached by the producers (e.g. the figure
    # drivers store per-label memory-level attribution under "mem_stats").
    meta: Dict[str, object] = field(default_factory=dict)

    def series_for(self, label: str) -> Series:
        """Get (or create) the series labelled *label*."""
        if label not in self.series:
            self.series[label] = Series(label)
        return self.series[label]

    def labels(self) -> List[str]:
        """Series labels in insertion order."""
        return list(self.series)

    def x_values(self) -> List[float]:
        """The x grid of the first series (all series share it)."""
        for s in self.series.values():
            return list(s.x)
        return []
