"""Small statistics helpers (trial means, speedup factors, streaming quantiles)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TrialStats:
    """Mean/std/min/max over repeated trials (the paper reports mean and
    standard deviation of 10 micro-benchmark runs / 3 application runs)."""

    mean: float
    std: float
    min: float
    max: float
    n: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "TrialStats":
        """Compute stats over a non-empty sequence of values."""
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            raise ValueError("TrialStats needs at least one value")
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std(ddof=0)),
            min=float(arr.min()),
            max=float(arr.max()),
            n=int(arr.size),
        )


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Convenience (mean, std) over *values*."""
    stats = TrialStats.from_values(values)
    return stats.mean, stats.std


def factor_speedup(baseline: float, improved: float) -> float:
    """Figure 10's metric: baseline_time / improved_time (>1 means faster)."""
    if improved <= 0:
        raise ValueError(f"improved time must be positive, got {improved}")
    return baseline / improved


def percent_improvement(baseline: float, improved: float) -> float:
    """Figures 8/9's metric: percentage runtime reduction vs baseline."""
    if baseline <= 0:
        raise ValueError(f"baseline time must be positive, got {baseline}")
    return 100.0 * (baseline - improved) / baseline


class QuantileReservoir:
    """Streaming quantile estimator over an unbounded value stream.

    Vitter's Algorithm R reservoir sampling: the first ``capacity`` values
    are kept verbatim (quantiles are then *exact*); afterwards the i-th value
    replaces a uniformly random reservoir slot with probability
    ``capacity / i``, so the reservoir stays a uniform sample of everything
    seen while memory stays O(capacity). Replacement decisions come from the
    injected generator (or *seed*), so estimates are deterministic for a
    fixed seed regardless of stream length.

    This is what the open-loop traffic subsystem uses for sojourn-time
    p50/p95/p99 over million-event schedules without materializing the
    per-event latencies.
    """

    __slots__ = ("capacity", "count", "_rng", "_sample")

    def __init__(
        self,
        capacity: int = 4096,
        *,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.count = 0
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._sample: list = []

    def add(self, value: float) -> None:
        """Offer one value to the reservoir."""
        count = self.count + 1
        self.count = count
        if count <= self.capacity:
            # Pre-capacity fast branch: no len() of the sample list and no
            # RNG draw while the stream still fits (the common case for
            # per-phase sojourn streams under heavy rejection).
            self._sample.append(float(value))
            return
        j = int(self._rng.integers(0, count))
        if j < self.capacity:
            self._sample[j] = float(value)

    def extend(self, values: Iterable[float]) -> None:
        """Offer every value of *values* in order."""
        for value in values:
            self.add(value)

    @property
    def sample_size(self) -> int:
        """Values currently held (== count while the stream fits)."""
        return len(self._sample)

    @property
    def exact(self) -> bool:
        """Whether quantiles are exact (no value has been evicted yet)."""
        return self.count <= self.capacity

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1) of the sampled stream."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._sample:
            raise ValueError("quantile of an empty reservoir")
        return float(np.quantile(np.asarray(self._sample, dtype=np.float64), q))

    def quantiles(self, qs: Sequence[float]) -> Tuple[float, ...]:
        """Several quantiles in one pass over the sample."""
        return tuple(self.quantile(q) for q in qs)

    def mean(self) -> float:
        """Mean of the *sample* (exact stream mean while ``exact``)."""
        if not self._sample:
            raise ValueError("mean of an empty reservoir")
        return float(np.mean(self._sample))

    def reset(self) -> None:
        """Drop all sampled values (the RNG stream continues)."""
        self.count = 0
        self._sample.clear()

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QuantileReservoir(capacity={self.capacity}, count={self.count}, "
            f"exact={self.exact})"
        )
