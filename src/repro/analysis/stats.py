"""Small statistics helpers (trial means, speedup factors)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TrialStats:
    """Mean/std/min/max over repeated trials (the paper reports mean and
    standard deviation of 10 micro-benchmark runs / 3 application runs)."""

    mean: float
    std: float
    min: float
    max: float
    n: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "TrialStats":
        """Compute stats over a non-empty sequence of values."""
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            raise ValueError("TrialStats needs at least one value")
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std(ddof=0)),
            min=float(arr.min()),
            max=float(arr.max()),
            n=int(arr.size),
        )


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Convenience (mean, std) over *values*."""
    stats = TrialStats.from_values(values)
    return stats.mean, stats.std


def factor_speedup(baseline: float, improved: float) -> float:
    """Figure 10's metric: baseline_time / improved_time (>1 means faster)."""
    if improved <= 0:
        raise ValueError(f"improved time must be positive, got {improved}")
    return baseline / improved


def percent_improvement(baseline: float, improved: float) -> float:
    """Figures 8/9's metric: percentage runtime reduction vs baseline."""
    if baseline <= 0:
        raise ValueError(f"baseline time must be positive, got {baseline}")
    return 100.0 * (baseline - improved) / baseline
