"""Proxy applications (paper sections 4.4-4.5).

Application figures report *relative* runtime changes that are driven
entirely by how the application exercises the matching engine: its match
list depth, where in the list messages match, its message volume, and how
much non-matching compute dilutes the difference. Each proxy app here is a
declarative workload profile feeding those parameters into the same
cycle-accounted matching substrate the micro-benchmarks use:

* :class:`~repro.apps.amg2013.Amg2013` -- weak-scaling multigrid solver;
  bandwidth sensitive, short lists, front matches (Figure 8).
* :class:`~repro.apps.minife.MiniFE` -- implicit finite elements /
  conjugate gradient; halo exchange with a tunable posted-receive queue
  length (Figure 9).
* :class:`~repro.apps.minimd.MiniMD` -- molecular dynamics neighbour
  exchange; tiny queues (mentioned in section 4.4, no figure).
* :class:`~repro.apps.fds.FireDynamicsSimulator` -- the full application:
  long match lists that grow with scale and messages that "do not typically
  match the first element" (Figure 10).
"""

from repro.apps.base import AppConfig, AppResult, MatchPhaseSimulator, ProxyApp
from repro.apps.amg2013 import Amg2013, fig8_amg_scaling
from repro.apps.minife import MiniFE, fig9_minife_lengths
from repro.apps.minimd import MiniMD
from repro.apps.fds import FireDynamicsSimulator, fig10_fds_speedups

#: Proxy apps by name, for declarative point specs (repro.exp).
APP_CLASSES = {
    Amg2013.name: Amg2013,
    MiniFE.name: MiniFE,
    MiniMD.name: MiniMD,
    FireDynamicsSimulator.name: FireDynamicsSimulator,
}


def build_app(name: str, *, match_list_length=None) -> ProxyApp:
    """Instantiate a proxy app by name (worker-side spec resolution)."""
    from repro.errors import ConfigurationError

    try:
        cls = APP_CLASSES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown proxy app {name!r}; known: {sorted(APP_CLASSES)}"
        ) from None
    if match_list_length is not None:
        if cls is not MiniFE:
            raise ConfigurationError(f"{name} does not take match_list_length")
        return cls(match_list_length=int(match_list_length))
    return cls()


__all__ = [
    "APP_CLASSES",
    "Amg2013",
    "AppConfig",
    "AppResult",
    "FireDynamicsSimulator",
    "MatchPhaseSimulator",
    "MiniFE",
    "MiniMD",
    "ProxyApp",
    "build_app",
    "fig10_fds_speedups",
    "fig8_amg_scaling",
    "fig9_minife_lengths",
]
