"""Proxy applications (paper sections 4.4-4.5).

Application figures report *relative* runtime changes that are driven
entirely by how the application exercises the matching engine: its match
list depth, where in the list messages match, its message volume, and how
much non-matching compute dilutes the difference. Each proxy app here is a
declarative workload profile feeding those parameters into the same
cycle-accounted matching substrate the micro-benchmarks use:

* :class:`~repro.apps.amg2013.Amg2013` -- weak-scaling multigrid solver;
  bandwidth sensitive, short lists, front matches (Figure 8).
* :class:`~repro.apps.minife.MiniFE` -- implicit finite elements /
  conjugate gradient; halo exchange with a tunable posted-receive queue
  length (Figure 9).
* :class:`~repro.apps.minimd.MiniMD` -- molecular dynamics neighbour
  exchange; tiny queues (mentioned in section 4.4, no figure).
* :class:`~repro.apps.fds.FireDynamicsSimulator` -- the full application:
  long match lists that grow with scale and messages that "do not typically
  match the first element" (Figure 10).
"""

from repro.apps.base import AppConfig, AppResult, MatchPhaseSimulator, ProxyApp
from repro.apps.amg2013 import Amg2013, fig8_amg_scaling
from repro.apps.minife import MiniFE, fig9_minife_lengths
from repro.apps.minimd import MiniMD
from repro.apps.fds import FireDynamicsSimulator, fig10_fds_speedups

__all__ = [
    "Amg2013",
    "AppConfig",
    "AppResult",
    "FireDynamicsSimulator",
    "MatchPhaseSimulator",
    "MiniFE",
    "MiniMD",
    "ProxyApp",
    "fig10_fds_speedups",
    "fig8_amg_scaling",
    "fig9_minife_lengths",
]
