"""AMG2013 proxy (paper section 4.4.1, Figure 8).

    "AMG is a weak-scaling code ... very memory intensive and requires
    occasional large message bandwidth. ... we have used the configuration
    recommended by the US DOE ... AMG is more bandwidth sensitive than
    message rate sensitive."

Workload shape: short match lists that grow slowly (communication partners
per rank rise logarithmically with scale on an unstructured multigrid
hierarchy), large messages, matches near the front of the list. Compute per
rank is constant under weak scaling, so runtimes stay flat-ish and matching
improvements land in the single-percent range (the paper reports 2.9% at
1024 ranks).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.analysis.series import Sweep
from repro.apps.base import AppConfig, PhaseShape, ProxyApp
from repro.arch.presets import BROADWELL

#: Figure 8's x axis.
FIG8_SCALES = (128, 256, 512, 1024)


class Amg2013(ProxyApp):
    """AMG2013 workload profile: weak scaling, short lists, front matches."""
    name = "amg2013"

    #: Multigrid V-cycles x levels over the run.
    base_phases = 160

    #: Compute seconds per rank under weak scaling (constant by design,
    #: with a mild surface-to-volume growth).
    base_compute_s = 11.0

    def phase_shape(self, cfg: AppConfig, rng: np.random.Generator) -> PhaseShape:
        # Coarse multigrid levels concentrate traffic onto few ranks, so the
        # neighbour set (and match list) grows with scale.
        """The matching workload of one communication phase."""
        depth = int(16 + cfg.nranks / 8)
        return PhaseShape(
            prq_depth=depth,
            # Most messages are small coarse-level exchanges; the occasional
            # large-bandwidth messages are folded into the compute model
            # (they are wire-bound either way).
            messages=350,
            msg_bytes=2 * 1024,
            match_position_low=0.0,
            match_position_high=1.0,
        )

    def phases_total(self, cfg: AppConfig) -> int:
        """Number of communication phases over the whole run."""
        return self.base_phases

    def compute_seconds(self, cfg: AppConfig) -> float:
        # Weak scaling: constant per-rank work plus a small communication-
        # irregularity overhead that grows with scale.
        """Total non-communication compute time for the run."""
        return self.base_compute_s * (1.0 + 0.02 * math.log2(max(1, cfg.nranks / 128)))


def fig8_plan(
    *,
    arch=BROADWELL,
    scales: Sequence[int] = FIG8_SCALES,
    families: Tuple[str, ...] = ("baseline", "lla-2"),
    seed: int = 0,
    mem_kernel=None,
):
    """Figure 8's grid (scenario ``fig8-amg``): one point per (family, scale)."""
    from repro.scenarios import get_scenario
    from repro.scenarios.builtins import fig8_variants

    base = {"arch": arch}
    if mem_kernel is not None:
        base["mem_kernel"] = mem_kernel
    return (
        get_scenario("fig8-amg")
        .with_overrides(
            base=base,
            matrix={
                "variant": fig8_variants(families),
                "nranks": [int(n) for n in scales],
            },
            seed=seed,
        )
        .expand()
    )


def fig8_amg_scaling(
    *,
    arch=BROADWELL,
    scales: Sequence[int] = FIG8_SCALES,
    families: Tuple[str, ...] = ("baseline", "lla-2"),
    seed: int = 0,
    runner=None,
) -> Sweep:
    """Figure 8: AMG2013 execution time vs process count on Broadwell."""
    from repro.exp import Runner

    plan = fig8_plan(arch=arch, scales=scales, families=families, seed=seed)
    return (runner or Runner()).run_sweep(plan)
