"""Proxy-application machinery.

:class:`MatchPhaseSimulator` runs one rank's matching engine through
communication phases whose *shape* (list depth, match positions, message
sizes/counts) each application dictates. Per-message costs are measured on
the cycle-accounted substrate for a sample of messages and scaled to the
full message volume; compute time comes from the app's declarative model.

The result is an end-to-end runtime estimate whose *relative* differences
between queue organizations are grounded in the simulated memory system —
which is exactly the quantity Figures 8-10 report.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.arch.spec import ArchSpec
from repro.errors import ConfigurationError
from repro.hotcache.heater import Heater, HeaterConfig
from repro.hotcache.wrapper import HeatedQueue
from repro.matching.engine import MatchEngine
from repro.matching.envelope import Envelope
from repro.matching.factory import make_queue
from repro.mpi.message import Message
from repro.mpi.process import MpiProcess
from repro.net.link import LinkSpec, MELLANOX_QDR


@dataclass
class AppConfig:
    """How to run a proxy app."""

    arch: ArchSpec
    nranks: int
    link: LinkSpec = MELLANOX_QDR
    queue_family: str = "baseline"
    heated: bool = False
    heater_config: Optional[HeaterConfig] = None
    fragmented: bool = False
    seed: int = 0
    #: Messages actually pushed through the simulated engine per phase; the
    #: measured mean cost is scaled to the app's full per-phase volume.
    sample_messages: int = 12
    #: Memory-kernel backend (``soa``/``vec``/``reference``); None resolves via
    #: ``REPRO_MEM_KERNEL`` then the package default.
    mem_kernel: Optional[str] = None

    def variant_label(self) -> str:
        """Figure-style label for this configuration (e.g. 'HC+LLA')."""
        base = "LLA" if self.queue_family.startswith("lla") else self.queue_family
        if self.queue_family == "lla-large":
            base = "LLA-Large"
        if self.heated:
            return f"HC+{base}" if base != "baseline" else "HC"
        return base


@dataclass
class AppResult:
    """Modelled execution time and its decomposition."""

    app: str
    variant: str
    nranks: int
    runtime_s: float
    compute_s: float
    comm_s: float
    match_cycles_per_msg: float
    details: Dict[str, float] = field(default_factory=dict)


@dataclass
class PhaseShape:
    """The matching workload of one communication phase (per rank)."""

    prq_depth: int  # steady match-list length
    messages: int  # messages crossing the matching engine
    msg_bytes: int
    #: match position as a fraction of the live list, sampled per message
    match_position_low: float = 0.0
    match_position_high: float = 1.0
    #: Additional post/free pairs accompanying each message (receives for
    #: other peers being posted and retired by unsynchronized threads).
    #: Under hot caching's locked region list every one of them crosses the
    #: heater's lock — the FDS-at-scale contention (section 4.5).
    churn_ops_per_message: float = 0.0


class MatchPhaseSimulator:
    """Drives one rank's matching engine through app-shaped phases."""

    DECOY_SRC = 11
    _BASE_TAG = 1_000_000

    def __init__(self, cfg: AppConfig) -> None:
        self.cfg = cfg
        self.rng = np.random.default_rng(cfg.seed)
        self.hier = cfg.arch.build_hierarchy(
            rng=np.random.default_rng(cfg.seed + 1), kernel=cfg.mem_kernel
        )
        self.engine = MatchEngine(self.hier)
        prq = make_queue(
            cfg.queue_family,
            port=self.engine,
            rng=np.random.default_rng(cfg.seed + 2),
            fragmented=cfg.fragmented,
            arena_base=0x4000_0000,
        )
        self.heater: Optional[Heater] = None
        if cfg.heated:
            hc = cfg.heater_config
            if hc is None:
                hc = HeaterConfig(locked=cfg.queue_family == "baseline")
            self.heater = Heater(self.hier, cfg.arch.ghz, hc)
            prq = HeatedQueue(prq, self.heater, self.engine)
        self.prq = prq
        umq = make_queue(
            cfg.queue_family,
            entry_bytes=16,
            port=self.engine,
            rng=np.random.default_rng(cfg.seed + 3),
            arena_base=0x2000_0000,
        )
        self.proc = MpiProcess(0, prq, umq, clock=self.engine.clock)
        self._next_tag = self._BASE_TAG
        self._live_tags: List[int] = []

    # -- queue shaping --------------------------------------------------------

    def _post_decoy(self) -> None:
        self._next_tag += 1
        self.proc.post_recv(src=self.DECOY_SRC, tag=self._next_tag, cid=0)
        self._live_tags.append(self._next_tag)

    def set_depth(self, depth: int) -> None:
        """Grow the PRQ to *depth* live entries (heater paused meanwhile)."""
        if depth < 0:
            raise ConfigurationError("depth must be >= 0")
        if self.heater is not None:
            self.heater.enabled = False
        while len(self._live_tags) < depth:
            self._post_decoy()
        if self.heater is not None:
            self.heater.enabled = True
            self.heater.reset(self.engine.clock.now)

    # -- one phase ---------------------------------------------------------------

    def run_phase(self, shape: PhaseShape) -> Dict[str, float]:
        """Simulate one phase; returns mean per-message cost components.

        Between any two messages of a real application sit compute kernels
        that destroy the cached match state (the paper's BSP methodology
        clears the cache for exactly this reason), so every sampled message
        is measured cold — with the heater, if any, having re-warmed the
        shared level in the background.
        """
        self.set_depth(shape.prq_depth)
        samples = min(self.cfg.sample_messages, shape.messages)
        if samples == 0:
            return {"match_cycles": 0.0, "samples": 0.0}
        total = 0.0
        for _ in range(samples):
            self.hier.flush()
            if self.heater is not None:
                self.prq.prepare_phase()
            # Pick a live entry at the app's characteristic position; churn
            # keeps the depth constant (hole + append, FDS-style).
            frac = self.rng.uniform(shape.match_position_low, shape.match_position_high)
            pos = min(len(self._live_tags) - 1, int(frac * len(self._live_tags)))
            tag = self._live_tags.pop(pos)
            start = self.engine.clock.now
            req = self.proc.handle_arrival(
                Message(Envelope(src=self.DECOY_SRC, tag=tag, cid=0), shape.msg_bytes)
            )
            if req is None:
                raise ConfigurationError("app message failed to match")
            # Reposting the consumed receive is part of the application's
            # per-message critical path (and, under hot caching, where the
            # region-registration lock cost lands).
            self._post_decoy()
            # High-churn applications post and retire other receives around
            # every message; with a locked heater region list each pair
            # crosses the lock.
            if self.heater is not None and shape.churn_ops_per_message:
                now = self.engine.clock.now
                ops = int(round(shape.churn_ops_per_message))
                for _ in range(ops):
                    self.engine.charge(self.heater.on_register(None, self.engine.clock.now))
                    self.engine.charge(self.heater.on_deregister(None, self.engine.clock.now))
            total += self.engine.clock.now - start
        return {"match_cycles": total / samples, "samples": float(samples)}


class ProxyApp(ABC):
    """Base class: subclasses declare their workload shape and compute."""

    name = "abstract"

    #: Phases simulated to estimate per-message cost.
    measured_phases = 2

    @abstractmethod
    def phase_shape(self, cfg: AppConfig, rng: np.random.Generator) -> PhaseShape:
        """The matching workload of one communication phase."""

    @abstractmethod
    def phases_total(self, cfg: AppConfig) -> int:
        """Communication phases over the whole run."""

    @abstractmethod
    def compute_seconds(self, cfg: AppConfig) -> float:
        """Total non-communication compute time for the whole run."""

    def run(self, cfg: AppConfig) -> AppResult:
        """Execute and return the result object."""
        sim = MatchPhaseSimulator(cfg)
        rng = np.random.default_rng(cfg.seed + 17)
        match_cycles = []
        shape = self.phase_shape(cfg, rng)
        for _ in range(self.measured_phases):
            stats = sim.run_phase(shape)
            match_cycles.append(stats["match_cycles"])
        mean_match = float(np.mean(match_cycles))
        arch, link = cfg.arch, cfg.link
        proc_us = arch.ns(
            mean_match + arch.sw_overhead_cycles + arch.copy_cycles_per_byte * shape.msg_bytes
        ) / 1000.0
        wire_us = link.serialization_us(shape.msg_bytes)
        per_msg_us = max(proc_us, wire_us)
        phases = self.phases_total(cfg)
        comm_s = per_msg_us * shape.messages * phases * 1e-6
        compute_s = self.compute_seconds(cfg)
        return AppResult(
            app=self.name,
            variant=cfg.variant_label(),
            nranks=cfg.nranks,
            runtime_s=compute_s + comm_s,
            compute_s=compute_s,
            comm_s=comm_s,
            match_cycles_per_msg=mean_match,
            details={
                "per_msg_us": per_msg_us,
                "proc_us": proc_us,
                "wire_us": wire_us,
                "prq_depth": float(shape.prq_depth),
                "messages_per_phase": float(shape.messages),
                "phases": float(phases),
            },
        )
