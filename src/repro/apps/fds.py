"""Fire Dynamics Simulator proxy (paper section 4.5, Figure 10).

    "It builds up large match lists and does not typically match the first
    element in the list. This type of behavior is more representative of
    what would be expected when using many unsynchronized threads for
    compute and communication."

Workload shape: the match list grows with scale (each rank exchanges with a
growing set of mesh interfaces), matches land deep in the list
(uniform over the back two thirds), and the per-rank compute shrinks as the
fixed-size fire scenario is strong-scaled — so matching becomes the dominant
runtime term at large process counts, which is what lets LLA reach its 2x
factor at 4k ranks (Nehalem) and LLA-Large at 8k.

Variants reproduced from the figure: HC / LLA / HC+LLA on Nehalem,
LLA on Broadwell, and the early "linked list of large arrays" (LLA-Large,
MVAPICH2 2.0) on Nehalem.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.analysis.series import Sweep
from repro.analysis.stats import factor_speedup
from repro.apps.base import AppConfig, PhaseShape, ProxyApp
from repro.arch.presets import BROADWELL, NEHALEM
from repro.net.link import MELLANOX_QDR, OMNIPATH

#: Figure 10's x axis.
FIG10_SCALES = (128, 256, 512, 1024, 2048, 4096, 8192)

#: The figure's five lines: (label, arch, queue family, heated).
FIG10_VARIANTS = (
    ("HC Nehalem", "nehalem", "baseline", True),
    ("LLA Nehalem", "nehalem", "lla-2", False),
    ("HC+LLA Nehalem", "nehalem", "lla-2", True),
    ("LLA Broadwell", "broadwell", "lla-2", False),
    ("LLA-Large", "nehalem", "lla-large", False),
)


class FireDynamicsSimulator(ProxyApp):
    """FDS workload profile: scale-growing lists, deep matches, high churn."""
    name = "fds"

    #: Pressure/velocity iteration count of the fixed scenario.
    base_phases = 400

    #: Total compute of the fixed-size scenario, strong-scaled across ranks.
    total_compute_s = 3600.0

    #: Match list growth with scale: interfaces per rank rise with the mesh
    #: count, which tracks the process count in SPEC FDS inputs.
    depth_factor = 1.0
    depth_cap = 6000

    def phase_shape(self, cfg: AppConfig, rng: np.random.Generator) -> PhaseShape:
        """The matching workload of one communication phase."""
        depth = int(min(self.depth_cap, max(24, self.depth_factor * cfg.nranks)))
        return PhaseShape(
            prq_depth=depth,
            messages=30,
            msg_bytes=16 * 1024,
            # "does not typically match the first element"
            match_position_low=0.30,
            match_position_high=1.0,
            # Unsynchronized threads keep posting/retiring receives; the
            # churn grows with the match list.
            churn_ops_per_message=depth / 512.0,
        )

    def phases_total(self, cfg: AppConfig) -> int:
        """Number of communication phases over the whole run."""
        return self.base_phases

    def compute_seconds(self, cfg: AppConfig) -> float:
        """Total non-communication compute time for the run."""
        return self.total_compute_s / cfg.nranks


def _config(arch_name: str, family: str, heated: bool, nranks: int, seed: int) -> AppConfig:
    arch = NEHALEM if arch_name == "nehalem" else BROADWELL
    link = MELLANOX_QDR if arch_name == "nehalem" else OMNIPATH
    return AppConfig(
        arch=arch,
        nranks=nranks,
        link=link,
        queue_family=family,
        heated=heated,
        # FDS lists are long-lived: the baseline's heap is churned.
        fragmented=family == "baseline",
        seed=seed,
    )


def fig10_plan(
    *,
    scales: Sequence[int] = FIG10_SCALES,
    variants=FIG10_VARIANTS,
    seed: int = 0,
    mem_kernel=None,
):
    """Figure 10's grid: per-platform baselines first, then the variants.

    The baseline points carry ``baseline/<arch>`` series labels; the driver
    reduces them into factor speedups rather than plotting them directly.
    """
    from repro.scenarios import get_scenario
    from repro.scenarios.builtins import fig10_platforms, fig10_variant_values

    base = {}
    if mem_kernel is not None:
        base["mem_kernel"] = mem_kernel
    return (
        get_scenario("fig10-fds")
        .with_overrides(
            base=base or None,
            matrix={
                # nranks appears in both grids, so this hits baselines and
                # variants alike; platform/variant each hit their own grid.
                "nranks": [int(n) for n in scales],
                "platform": fig10_platforms(variants),
                "variant": fig10_variant_values(variants),
            },
            seed=seed,
        )
        .expand()
    )


def fig10_fds_speedups(
    *,
    scales: Sequence[int] = FIG10_SCALES,
    variants=FIG10_VARIANTS,
    seed: int = 0,
    runner=None,
) -> Sweep:
    """Figure 10: FDS factor speedup over each platform's baseline."""
    from repro.exp import Runner

    plan = fig10_plan(scales=scales, variants=variants, seed=seed)
    results = (runner or Runner()).run(plan)
    sweep = Sweep(
        title=plan.title,
        xlabel=plan.xlabel,
        ylabel=plan.ylabel,
    )
    baselines: Dict[tuple, float] = {}
    by_label: Dict[str, Dict[float, float]] = {}
    for spec, result in zip(plan.points, results):
        if spec.series.startswith("baseline/"):
            arch_name = spec.series.split("/", 1)[1]
            baselines[(arch_name, int(spec.x))] = result.y
        else:
            by_label.setdefault(spec.series, {})[spec.x] = result.y
    for label, arch_name, _family, _heated in variants:
        series = sweep.series_for(label)
        for nranks in scales:
            runtime = by_label[label][float(nranks)]
            series.add(nranks, factor_speedup(baselines[(arch_name, nranks)], runtime))
    return sweep
