"""MiniFE proxy (paper section 4.4.2, Figure 9).

    "MiniFE is an unstructured implicit finite elements simulation
    mini-application that's primary computation is a conjugate gradient
    solver. This mini-application is representative of the common
    bulk-synchronous halo-exchange communication pattern."

Figure 9 fixes the scale (512 ranks, 1320^3 problem) and varies the posted
receive queue length (the paper's modified mini-apps "allow different
receive queue lengths to assess the impact of locality on future
communication patterns"). Matching is predictable — "a limited number and
frequency of messages with a relatively predictable ordering" — so most
matches land near the front and the locality gain is small (2.3% at 2048).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.analysis.series import Sweep
from repro.apps.base import AppConfig, PhaseShape, ProxyApp
from repro.arch.presets import BROADWELL

#: Figure 9's x axis.
FIG9_LENGTHS = (128, 512, 2048)

FIG9_NRANKS = 512


class MiniFE(ProxyApp):
    """MiniFE workload profile: halo CG with a tunable match-list length."""
    name = "minife"

    #: CG iterations with one halo exchange (plus dot-product syncs) each.
    base_phases = 1600

    #: Fixed-size problem at 512 ranks: constant compute.
    base_compute_s = 43.0

    def __init__(self, match_list_length: int = 128) -> None:
        self.match_list_length = match_list_length

    def phase_shape(self, cfg: AppConfig, rng: np.random.Generator) -> PhaseShape:
        """The matching workload of one communication phase."""
        depth = self.match_list_length
        return PhaseShape(
            prq_depth=depth,
            messages=140,
            msg_bytes=8 * 1024,
            # Predictable halo ordering: matches are front-loaded, with a
            # tail of deeper searches from the artificially lengthened list.
            match_position_low=0.0,
            match_position_high=0.35,
        )

    def phases_total(self, cfg: AppConfig) -> int:
        """Number of communication phases over the whole run."""
        return self.base_phases

    def compute_seconds(self, cfg: AppConfig) -> float:
        """Total non-communication compute time for the run."""
        return self.base_compute_s


def fig9_plan(
    *,
    arch=BROADWELL,
    lengths: Sequence[int] = FIG9_LENGTHS,
    families: Tuple[str, ...] = ("baseline", "lla-2"),
    nranks: int = FIG9_NRANKS,
    seed: int = 0,
    mem_kernel=None,
):
    """Figure 9's grid (scenario ``fig9-minife``): (family, list length)."""
    from repro.scenarios import get_scenario
    from repro.scenarios.builtins import fig9_variants

    base = {"arch": arch, "nranks": int(nranks)}
    if mem_kernel is not None:
        base["mem_kernel"] = mem_kernel
    return (
        get_scenario("fig9-minife")
        .with_overrides(
            base=base,
            matrix={
                "variant": fig9_variants(families),
                "match_list_length": [int(n) for n in lengths],
            },
            seed=seed,
        )
        .expand()
    )


def fig9_minife_lengths(
    *,
    arch=BROADWELL,
    lengths: Sequence[int] = FIG9_LENGTHS,
    families: Tuple[str, ...] = ("baseline", "lla-2"),
    nranks: int = FIG9_NRANKS,
    seed: int = 0,
    runner=None,
) -> Sweep:
    """Figure 9: MiniFE execution time at 512 ranks vs match list length."""
    from repro.exp import Runner

    plan = fig9_plan(arch=arch, lengths=lengths, families=families, nranks=nranks, seed=seed)
    return (runner or Runner()).run_sweep(plan)
