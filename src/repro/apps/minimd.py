"""MiniMD proxy (mentioned in section 4.4; no dedicated figure).

Molecular-dynamics neighbour exchange: very short match lists, frequent
small messages, perfectly predictable ordering. Included to cover the
paper's full mini-app set and as the "short lists must not regress" witness
in the test suite and ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppConfig, PhaseShape, ProxyApp


class MiniMD(ProxyApp):
    """MiniMD workload profile: tiny neighbour-exchange queues."""
    name = "minimd"

    base_phases = 500
    base_compute_s = 30.0

    def phase_shape(self, cfg: AppConfig, rng: np.random.Generator) -> PhaseShape:
        """The matching workload of one communication phase."""
        return PhaseShape(
            prq_depth=6,  # face neighbours of a 3-D spatial decomposition
            messages=6,
            msg_bytes=32 * 1024,
            match_position_low=0.0,
            match_position_high=1.0,
        )

    def phases_total(self, cfg: AppConfig) -> int:
        """Number of communication phases over the whole run."""
        return self.base_phases

    def compute_seconds(self, cfg: AppConfig) -> float:
        """Total non-communication compute time for the run."""
        return self.base_compute_s
