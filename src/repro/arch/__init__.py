"""Processor architecture models for the platforms in the paper.

The study (section 4.1) runs on three Xeon generations plus KNL:

* **Sandy Bridge** -- 2 x 2.6 GHz 8-core, QLogic IB QDR. L3 runs in the core
  clock domain: low LLC latency. Hot caching *wins* here (Figure 6).
* **Broadwell** -- 2 x 2.1 GHz 18-core, OmniPath. The LLC clock was decoupled
  from the core clock at Haswell, raising L3 latency; hot caching turns into
  a small *loss* here (Figure 7, section 4.3 discussion).
* **Nehalem** -- 2 x 2.53 GHz 4-core, Mellanox QDR. Used for the FDS scaling
  study (Figure 10).
* **KNL** -- Cray XC40 nodes used for the Table 1 thread-decomposition
  benchmark (68 cores, no L3; a large direct-mapped-ish L2 per tile).
"""

from repro.arch.spec import ArchSpec
from repro.arch.presets import (
    ALL_ARCHS,
    BROADWELL,
    HASWELL,
    KNL,
    NEHALEM,
    SANDY_BRIDGE,
    get_arch,
)

__all__ = [
    "ALL_ARCHS",
    "ArchSpec",
    "BROADWELL",
    "HASWELL",
    "KNL",
    "NEHALEM",
    "SANDY_BRIDGE",
    "get_arch",
]
