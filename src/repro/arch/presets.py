"""Concrete architecture presets.

Cache sizes are rounded to the nearest power-of-two-friendly geometry (the
simulator wants a power-of-two set count); latencies follow published
load-to-use numbers per generation. The *relationships* the paper leans on
are encoded faithfully:

* Sandy Bridge's L3 sits in the core clock domain -> ~30 cycles.
* Haswell/Broadwell decoupled the LLC clock -> noticeably higher L3 latency
  (the paper's explanation for hot caching losing on Broadwell).
* Nehalem is the oldest part: smaller caches, weaker prefetch.
* KNL has no L3; its MCDRAM cache plays the shared-level role with high
  latency.
"""

from __future__ import annotations

from repro.arch.spec import ArchSpec
from repro.errors import ConfigurationError

KiB = 1024
MiB = 1024 * 1024

NEHALEM = ArchSpec(
    name="nehalem",
    ghz=2.53,
    cores_per_socket=4,
    l1_size=32 * KiB,
    l1_assoc=8,
    l1_latency=4.0,
    l2_size=256 * KiB,
    l2_assoc=8,
    l2_latency=10.0,
    l3_size=8 * MiB,
    l3_assoc=16,
    l3_latency=38.0,
    dram_latency=165.0,
    has_adjacent_pair=False,
    streamer_max_distance=2,
    streamer_max_step=2,
    dram_stream_coverage=0.55,
    l3_stream_coverage=0.55,
    random_access_mlp=1.8,
    sw_overhead_cycles=2600.0,
    copy_cycles_per_byte=0.08,
    description="2x 2.53 GHz 4-core Xeon, 16 GB/node, Mellanox QDR (FDS study)",
)

SANDY_BRIDGE = ArchSpec(
    name="sandy-bridge",
    ghz=2.6,
    cores_per_socket=8,
    l1_size=32 * KiB,
    l1_assoc=8,
    l1_latency=4.0,
    l2_size=256 * KiB,
    l2_assoc=8,
    l2_latency=12.0,
    l3_size=20 * MiB,
    l3_assoc=20,
    l3_latency=30.0,  # LLC in the core clock domain
    dram_latency=195.0,
    has_adjacent_pair=True,
    streamer_max_distance=4,
    streamer_max_step=2,
    dram_stream_coverage=0.70,
    l3_stream_coverage=0.75,
    random_access_mlp=2.6,
    sw_overhead_cycles=2200.0,
    copy_cycles_per_byte=0.05,
    description="2x 2.6 GHz 8-core Xeon, 64 GB/node, QLogic IB QDR",
)

HASWELL = ArchSpec(
    name="haswell",
    ghz=2.3,
    cores_per_socket=16,
    l1_size=32 * KiB,
    l1_assoc=8,
    l1_latency=4.0,
    l2_size=256 * KiB,
    l2_assoc=8,
    l2_latency=12.0,
    l3_size=32 * MiB,
    l3_assoc=16,
    l3_latency=44.0,  # first decoupled-clock LLC
    dram_latency=205.0,
    has_adjacent_pair=True,
    streamer_max_distance=4,
    streamer_max_step=3,
    dram_stream_coverage=0.80,
    l3_stream_coverage=0.25,
    random_access_mlp=3.6,
    sw_overhead_cycles=2200.0,
    copy_cycles_per_byte=0.045,
    description="Haswell (transition point where the LLC clock was decoupled)",
)

BROADWELL = ArchSpec(
    name="broadwell",
    ghz=2.1,
    cores_per_socket=18,
    l1_size=32 * KiB,
    l1_assoc=8,
    l1_latency=4.0,
    l2_size=256 * KiB,
    l2_assoc=8,
    l2_latency=12.0,
    l3_size=32 * MiB,  # 45 MiB rounded to power-of-two geometry
    l3_assoc=16,
    l3_latency=48.0,  # decoupled LLC clock: higher latency than Sandy Bridge
    dram_latency=190.0,
    has_adjacent_pair=True,
    streamer_max_distance=4,
    streamer_max_step=4,
    dram_stream_coverage=0.85,
    l3_stream_coverage=0.15,
    random_access_mlp=4.3,
    sw_overhead_cycles=2100.0,
    copy_cycles_per_byte=0.04,
    description="2x 2.1 GHz 18-core Xeon, 128 GB/node, OmniPath",
)

KNL = ArchSpec(
    name="knl",
    ghz=1.4,
    cores_per_socket=68,
    l1_size=32 * KiB,
    l1_assoc=8,
    l1_latency=5.0,
    l2_size=512 * KiB,  # 1 MiB per 2-core tile
    l2_assoc=8,
    l2_latency=17.0,
    l3_size=16 * MiB,  # MCDRAM cache standing in for the missing L3
    l3_assoc=16,
    l3_latency=140.0,
    dram_latency=320.0,
    has_adjacent_pair=False,
    streamer_max_distance=2,
    streamer_max_step=2,
    dram_stream_coverage=0.5,
    l3_stream_coverage=0.4,
    random_access_mlp=1.5,
    sw_overhead_cycles=4200.0,
    copy_cycles_per_byte=0.1,
    description="Cray XC40 KNL node (Table 1 thread-decomposition benchmark)",
)

ALL_ARCHS = {
    spec.name: spec for spec in (NEHALEM, SANDY_BRIDGE, HASWELL, BROADWELL, KNL)
}


def get_arch(name: str) -> ArchSpec:
    """Look up a preset by name (accepts '-' or '_' separators)."""
    key = name.strip().lower().replace("_", "-")
    try:
        return ALL_ARCHS[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown architecture {name!r}; known: {sorted(ALL_ARCHS)}"
        ) from None
