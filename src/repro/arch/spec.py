"""Architecture specification and hierarchy construction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.cache import EvictionPolicy, WayPartition
from repro.mem.hierarchy import MemoryHierarchy, NetworkCacheConfig
from repro.mem.prefetch import (
    PREFETCHER_MODES,
    AdjacentPairPrefetcher,
    NextLinePrefetcher,
    PointerChasePrefetcher,
    StreamerPrefetcher,
)

_MODE_NAMES = tuple(name for name, _ in PREFETCHER_MODES)


@dataclass(frozen=True)
class ArchSpec:
    """Cache/latency description of one processor generation.

    Latencies are load-to-use cycles; they follow published figures for each
    generation closely enough for the study (absolute numbers are simulator
    scale; orderings — e.g. Broadwell's L3 slower than Sandy Bridge's — are
    what the reproduction depends on).
    """

    name: str
    ghz: float
    cores_per_socket: int
    l1_size: int = 32 * 1024
    l1_assoc: int = 8
    l1_latency: float = 4.0
    l2_size: int = 256 * 1024
    l2_assoc: int = 8
    l2_latency: float = 12.0
    l3_size: int = 20 * 1024 * 1024
    l3_assoc: int = 16
    l3_latency: float = 30.0
    dram_latency: float = 200.0
    # Prefetcher capabilities. Sandy Bridge and Broadwell both have the four
    # prefetch units the paper describes; Nehalem's streamer is weaker; KNL
    # has no L3 and a simpler L2 prefetcher.
    has_adjacent_pair: bool = True
    streamer_max_distance: int = 4
    # Largest forward line-jump the streamer rides through without dropping
    # the stream (Broadwell's streamer is markedly more tolerant).
    streamer_max_step: int = 2
    # Fraction of source latency a timely prefetch hides, by source. The
    # Sandy Bridge/Broadwell contrast of section 4.3 lives here: SNB's
    # core-clock L3 streams well (high l3 coverage); BDW's decoupled LLC
    # does not, while its improved streamer covers DRAM streams better.
    dram_stream_coverage: float = 0.75
    l3_stream_coverage: float = 0.75
    # Memory-level parallelism for *independent* random accesses (the heater
    # micro-benchmark of section 4.3; list traversal gets no MLP because it
    # is serial pointer chasing). Broadwell sustains more outstanding misses.
    random_access_mlp: float = 2.5
    # Per-message software overhead of the MPI library's receive path outside
    # matching (header processing, completion, memcpy setup), in cycles.
    sw_overhead_cycles: float = 2200.0
    # Amortized copy throughput for message payloads, cycles per byte.
    copy_cycles_per_byte: float = 0.05
    description: str = ""
    extras: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.ghz <= 0:
            raise ConfigurationError(f"{self.name}: ghz must be positive")
        if self.cores_per_socket < 1:
            raise ConfigurationError(f"{self.name}: need at least one core")

    # -- conversions --------------------------------------------------------

    def cycles(self, ns: float) -> float:
        """Nanoseconds -> cycles on this architecture."""
        return ns * self.ghz

    def ns(self, cycles: float) -> float:
        """Cycles -> nanoseconds on this architecture."""
        return cycles / self.ghz

    def seconds(self, cycles: float) -> float:
        """Cycles -> seconds on this architecture."""
        return self.ns(cycles) * 1e-9

    # -- construction --------------------------------------------------------

    def build_hierarchy(
        self,
        *,
        n_cores: int = 2,
        policy: str = EvictionPolicy.LRU,
        partition: Optional[WayPartition] = None,
        network_cache: Optional[NetworkCacheConfig] = None,
        rng: Optional[np.random.Generator] = None,
        prefetch_enabled: bool = True,
        prefetcher: Optional[str] = None,
        kernel: Optional[str] = None,
    ) -> MemoryHierarchy:
        """Instantiate a simulated socket of this architecture.

        *n_cores* defaults to 2: one matching core plus one heater core; the
        figures never need more on a single socket. ``kernel`` selects the
        memory-kernel backend (``soa``/``vec``/``reference``; None resolves
        via ``REPRO_MEM_KERNEL`` then the default). ``prefetcher`` selects
        a prefetch-unit configuration from
        :data:`~repro.mem.prefetch.PREFETCHER_MODES` (``default``/``none``/
        ``chase``/``chase-only``); None falls back to the boolean
        *prefetch_enabled* knob, which predates the modes and maps to
        ``default``/``none``.
        """
        if n_cores > self.cores_per_socket:
            raise ConfigurationError(
                f"{self.name} has {self.cores_per_socket} cores per socket, "
                f"requested {n_cores}"
            )
        if prefetcher is None:
            mode = "default" if prefetch_enabled else "none"
        elif prefetcher in _MODE_NAMES:
            mode = prefetcher
        else:
            raise ConfigurationError(
                f"unknown prefetcher mode {prefetcher!r}; "
                f"expected one of {', '.join(_MODE_NAMES)}"
            )
        with_defaults = mode in ("default", "chase")
        with_chase = mode in ("chase", "chase-only")

        def l1_pf() -> list:
            return [NextLinePrefetcher()] if with_defaults else []

        def l2_pf() -> list:
            units: list = []
            if with_defaults:
                if self.has_adjacent_pair:
                    units.append(AdjacentPairPrefetcher())
                if self.streamer_max_distance > 0:
                    units.append(
                        StreamerPrefetcher(
                            max_distance=self.streamer_max_distance,
                            max_step=self.streamer_max_step,
                        )
                    )
            if with_chase:
                units.append(PointerChasePrefetcher())
            return units

        return MemoryHierarchy(
            n_cores=n_cores,
            l1_size=self.l1_size,
            l1_assoc=self.l1_assoc,
            l1_latency=self.l1_latency,
            l2_size=self.l2_size,
            l2_assoc=self.l2_assoc,
            l2_latency=self.l2_latency,
            l3_size=self.l3_size,
            l3_assoc=self.l3_assoc,
            l3_latency=self.l3_latency,
            dram_latency=self.dram_latency,
            policy=policy,
            l1_prefetcher_factory=l1_pf,
            l2_prefetcher_factory=l2_pf,
            partition=partition,
            network_cache=network_cache,
            rng=rng,
            dram_stream_coverage=self.dram_stream_coverage,
            l3_stream_coverage=self.l3_stream_coverage,
            kernel=kernel,
        )
