"""Benchmark harnesses: the paper's modified micro-benchmarks and drivers.

* :mod:`~repro.bench.osu` -- the modified OSU bandwidth/latency benchmark of
  section 4.1 (pre-posted receives, cache clear between iterations, pinned
  matching core, pre-populated queue depth).
* :mod:`~repro.bench.heater_micro` -- the custom cache-heater random-access
  benchmark of section 4.3 (38.5 -> 22.8 ns on Broadwell etc).
* :mod:`~repro.bench.figures` -- one driver per figure panel (4a..7c),
  producing :class:`~repro.analysis.series.Sweep` objects.
"""

from repro.bench.osu import (
    MSG_SIZE_SWEEP,
    SEARCH_LENGTH_SWEEP,
    BandwidthPoint,
    OsuConfig,
    osu_bandwidth,
    osu_latency,
    osu_message_rate,
)
from repro.bench.colocated import ColocatedPoint, run_colocated_study
from repro.bench.heater_micro import HeaterMicroResult, heater_microbenchmark
from repro.bench.figures import (
    TEMPORAL_VARIANTS,
    fig_spatial_msg_size,
    fig_spatial_search_length,
    fig_temporal_msg_size,
    fig_temporal_search_length,
)

__all__ = [
    "BandwidthPoint",
    "ColocatedPoint",
    "HeaterMicroResult",
    "run_colocated_study",
    "MSG_SIZE_SWEEP",
    "OsuConfig",
    "SEARCH_LENGTH_SWEEP",
    "TEMPORAL_VARIANTS",
    "fig_spatial_msg_size",
    "fig_spatial_search_length",
    "fig_temporal_msg_size",
    "fig_temporal_search_length",
    "heater_microbenchmark",
    "osu_bandwidth",
    "osu_latency",
    "osu_message_rate",
]
