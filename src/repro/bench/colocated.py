"""Co-located ranks: LLC capacity pressure vs occupancy mechanisms.

Real nodes run many MPI ranks per socket (8 on the paper's Sandy Bridge
machines); their compute phases stream through the *shared* L3 and evict
each other's state. This study puts one matched rank plus N-1 co-located
"compute" ranks on a single simulated socket and asks the paper's section
4.6 question at its sharpest: does the match list stay resident?

* **Hot caching** re-touches the list once per phase, but co-located
  compute traffic after the heater pass evicts it again when the combined
  working set exceeds the LLC — the software heater cannot win a capacity
  fight it shares the cache with.
* **A CAT-style way partition** is *semi-permanent by construction*:
  ordinary fills cannot claim the reserved ways no matter how many ranks
  stream, so matching cost stays flat as the node fills up.

This is the experiment the paper could not run on 2018 hardware, and the
strongest quantitative argument for its title.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.arch.spec import ArchSpec
from repro.hotcache.heater import Heater, HeaterConfig
from repro.hotcache.wrapper import HeatedQueue
from repro.matching.engine import MatchEngine
from repro.matching.envelope import Envelope
from repro.matching.entry import MatchItem
from repro.matching.envelope import make_pattern
from repro.matching.factory import make_queue
from repro.mem.cache import CLS_DEFAULT, WayPartition
from repro.errors import ConfigurationError

_COMPUTE_ARENA = 0x9_0000_0000


@dataclass
class ColocatedPoint:
    """Matching cost for one (mechanism, co-located rank count) cell."""

    mechanism: str
    ranks: int
    cycles_per_search: float


def _stream_compute(hier, core_id: int, base: int, nbytes: int) -> None:
    """A rank's compute phase: write a private working set through its
    core's caches and the shared LLC (streaming stores, default class)."""
    step = 64
    end = base + nbytes
    addr = base
    while addr < end:
        hier.write(core_id, addr, 8, CLS_DEFAULT)
        addr += step


def colocated_point(
    arch: ArchSpec,
    mechanism: str,
    nranks: int,
    *,
    depth: int = 2048,
    working_set_bytes: int = 4 * 1024 * 1024,
    iterations: int = 2,
    seed: int = 0,
    mem_kernel: Optional[str] = None,
) -> float:
    """Rank 0's mean cold-phase search cycles for one (mechanism, N) cell."""
    if nranks + 1 > arch.cores_per_socket:
        raise ConfigurationError(
            f"{arch.name} has {arch.cores_per_socket} cores; "
            f"need {nranks + 1} (ranks + heater)"
        )
    partition = WayPartition(network_ways=4) if mechanism == "cat-partition" else None
    hier = arch.build_hierarchy(
        n_cores=nranks + 1,  # + heater core
        partition=partition,
        rng=np.random.default_rng(seed + 1),
        kernel=mem_kernel,
    )
    engine = MatchEngine(hier)
    q = make_queue(
        "baseline", port=engine, rng=np.random.default_rng(seed), arena_base=0x4000_0000
    )
    heater: Optional[Heater] = None
    if mechanism == "hot-caching":
        # Pool-style (unlocked) region list: this study isolates LLC
        # *residency*; the lock costs are covered elsewhere.
        heater = Heater(
            hier, arch.ghz,
            HeaterConfig(locked=False, core_id=nranks),
        )
        q = HeatedQueue(q, heater, engine)
    for i in range(depth):
        q.post(make_pattern(0, 10_000 + i, 0, seq=i))
    samples = []
    tag = depth + 100
    for it in range(iterations):
        q.post(make_pattern(1, tag, 0, seq=tag))
        # Every rank computes — including rank 0, whose own phase
        # evicts its private caches. The heater's pass lands in the
        # *middle* of the node's compute, not conveniently at its
        # end, so later compute traffic fights it for LLC capacity.
        for r in range(nranks):
            _stream_compute(hier, r, _COMPUTE_ARENA + r * (1 << 26), working_set_bytes)
        if heater is not None:
            heater.force_pass(engine.clock.now)
        for r in range(nranks):
            _stream_compute(hier, r, _COMPUTE_ARENA + r * (1 << 26), working_set_bytes)
        probe = MatchItem.from_envelope(Envelope(1, tag, 0), seq=1 << 30)
        _, cycles = engine.timed(lambda: q.match_remove(probe))
        samples.append(cycles)
        tag += 1
    return float(np.mean(samples))


def colocated_plan(
    arch: ArchSpec,
    *,
    rank_counts: Sequence[int] = (1, 2, 4, 8),
    mechanisms: Sequence[str] = ("none", "hot-caching", "cat-partition"),
    depth: int = 2048,
    working_set_bytes: int = 4 * 1024 * 1024,
    iterations: int = 2,
    seed: int = 0,
    mem_kernel: Optional[str] = None,
) -> "ExperimentPlan":
    """The study's grid (scenario ``colocated``; mechanism-major order)."""
    from repro.scenarios import get_scenario

    max_ranks = max(rank_counts)
    if max_ranks + 1 > arch.cores_per_socket:
        raise ConfigurationError(
            f"{arch.name} has {arch.cores_per_socket} cores; "
            f"need {max_ranks + 1} (ranks + heater)"
        )
    base = {
        "arch": arch,
        "depth": int(depth),
        "working_set_bytes": int(working_set_bytes),
        "iterations": int(iterations),
    }
    if mem_kernel is not None:
        base["mem_kernel"] = mem_kernel
    return (
        get_scenario("colocated")
        .with_overrides(
            base=base,
            matrix={"mechanism": list(mechanisms), "ranks": [int(n) for n in rank_counts]},
            seed=seed,
        )
        .expand()
    )


def run_colocated_study(
    arch: ArchSpec,
    *,
    rank_counts: Sequence[int] = (1, 2, 4, 8),
    mechanisms: Sequence[str] = ("none", "hot-caching", "cat-partition"),
    depth: int = 2048,
    working_set_bytes: int = 4 * 1024 * 1024,
    iterations: int = 2,
    seed: int = 0,
    runner=None,
) -> List[ColocatedPoint]:
    """Measure rank 0's cold-phase search cost under co-located pressure."""
    from repro.exp import Runner

    plan = colocated_plan(
        arch,
        rank_counts=rank_counts,
        mechanisms=mechanisms,
        depth=depth,
        working_set_bytes=working_set_bytes,
        iterations=iterations,
        seed=seed,
    )
    results = (runner or Runner()).run(plan)
    return [
        ColocatedPoint(spec.kwargs["mechanism"], int(spec.kwargs["ranks"]), result.y)
        for spec, result in zip(plan.points, results)
    ]
