"""Figure drivers: panels 4a-c, 5a-c (spatial) and 6a-c, 7a-c (temporal).

Each panel's grid is a built-in scenario (:mod:`repro.scenarios.builtins`:
``spatial-msg-size``, ``spatial-search-length``, ``temporal-msg-size``,
``temporal-search-length``); the ``plan_*`` builders here are thin
parameter adapters that apply the caller's arch/grid overrides and expand
the scenario into an :class:`~repro.exp.plan.ExperimentPlan`. The
expansions are pinned repr-identical to the historical hand-rolled
builders by ``tests/test_scenarios.py``, so the reduced
:class:`~repro.analysis.series.Sweep` objects — point seeds, variant-major
reduction order, ``meta["mem_stats"]`` merge order — are bit-for-bit what
the serial nested-loop drivers produced. Architectures select the figure:
Sandy Bridge gives Figures 4/6, Broadwell gives Figures 5/7.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.analysis.series import Sweep
from repro.arch.spec import ArchSpec
from repro.exp import ExperimentPlan, Runner
from repro.net.link import LinkSpec, OMNIPATH, QLOGIC_QDR

#: The spatial-locality line-up (Figures 4 and 5).
SPATIAL_VARIANTS: Tuple[Tuple[str, str, bool], ...] = (
    ("baseline", "baseline", False),
    ("LLA - 2", "lla-2", False),
    ("LLA - 4", "lla-4", False),
    ("LLA - 8", "lla-8", False),
    ("LLA - 16", "lla-16", False),
    ("LLA - 32", "lla-32", False),
)

#: The temporal-locality line-up (Figures 6 and 7).
TEMPORAL_VARIANTS: Tuple[Tuple[str, str, bool], ...] = (
    ("baseline", "baseline", False),
    ("HC", "baseline", True),
    ("LLA", "lla-2", False),
    ("HC+LLA", "lla-2", True),
)

#: Queue depth used by the (a) panels.
PANEL_A_DEPTH = 1024

#: Message sizes used by the (b) and (c) panels.
PANEL_B_BYTES = 1
PANEL_C_BYTES = 4096


def default_link(arch: ArchSpec) -> LinkSpec:
    """The fabric each system in the paper is attached to."""
    return OMNIPATH if arch.name == "broadwell" else QLOGIC_QDR


def _expand_panel(
    scenario: str,
    arch: ArchSpec,
    *,
    base: dict,
    x_axis: str,
    xs: Optional[Sequence[int]],
    variants: Optional[Sequence[Tuple[str, str, bool]]],
    seed: int,
    mem_kernel: Optional[str],
) -> ExperimentPlan:
    """Apply a panel's overrides to its built-in scenario and expand."""
    from repro.scenarios import get_scenario
    from repro.scenarios.builtins import figure_variants

    base = {"arch": arch, **base}
    if mem_kernel is not None:
        base["mem_kernel"] = mem_kernel
    matrix = {}
    if xs is not None:
        matrix[x_axis] = list(xs)
    if variants is not None:
        matrix["variant"] = figure_variants(variants)
    return (
        get_scenario(scenario)
        .with_overrides(base=base, matrix=matrix or None, seed=seed)
        .expand()
    )


def plan_spatial_msg_size(
    arch: ArchSpec,
    *,
    depth: int = PANEL_A_DEPTH,
    msg_sizes: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    mem_kernel: Optional[str] = None,
    variants: Optional[Sequence[Tuple[str, str, bool]]] = None,
) -> ExperimentPlan:
    """The grid behind Figures 4a / 5a (scenario ``spatial-msg-size``)."""
    return _expand_panel(
        "spatial-msg-size",
        arch,
        base={"search_depth": depth, "iterations": iterations},
        x_axis="msg_bytes",
        xs=msg_sizes,
        variants=variants,
        seed=seed,
        mem_kernel=mem_kernel,
    )


def plan_spatial_search_length(
    arch: ArchSpec,
    *,
    msg_bytes: int = PANEL_B_BYTES,
    depths: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    mem_kernel: Optional[str] = None,
    variants: Optional[Sequence[Tuple[str, str, bool]]] = None,
) -> ExperimentPlan:
    """The grid behind Figures 4b/c and 5b/c (``spatial-search-length``)."""
    return _expand_panel(
        "spatial-search-length",
        arch,
        base={"msg_bytes": msg_bytes, "iterations": iterations},
        x_axis="search_depth",
        xs=depths,
        variants=variants,
        seed=seed,
        mem_kernel=mem_kernel,
    )


def plan_temporal_msg_size(
    arch: ArchSpec,
    *,
    depth: int = PANEL_A_DEPTH,
    msg_sizes: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    mem_kernel: Optional[str] = None,
    variants: Optional[Sequence[Tuple[str, str, bool]]] = None,
) -> ExperimentPlan:
    """The grid behind Figures 6a / 7a (scenario ``temporal-msg-size``)."""
    return _expand_panel(
        "temporal-msg-size",
        arch,
        base={"search_depth": depth, "iterations": iterations},
        x_axis="msg_bytes",
        xs=msg_sizes,
        variants=variants,
        seed=seed,
        mem_kernel=mem_kernel,
    )


def plan_temporal_search_length(
    arch: ArchSpec,
    *,
    msg_bytes: int = PANEL_B_BYTES,
    depths: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    mem_kernel: Optional[str] = None,
    variants: Optional[Sequence[Tuple[str, str, bool]]] = None,
) -> ExperimentPlan:
    """The grid behind Figures 6b/c / 7b/c (``temporal-search-length``)."""
    return _expand_panel(
        "temporal-search-length",
        arch,
        base={"msg_bytes": msg_bytes, "iterations": iterations},
        x_axis="search_depth",
        xs=depths,
        variants=variants,
        seed=seed,
        mem_kernel=mem_kernel,
    )


def _run(plan: ExperimentPlan, runner: Optional[Runner]) -> Sweep:
    return (runner or Runner()).run_sweep(plan)


def fig_spatial_msg_size(
    arch: ArchSpec,
    *,
    depth: int = PANEL_A_DEPTH,
    msg_sizes: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> Sweep:
    """Figures 4a / 5a: bandwidth vs message size at queue depth 1024."""
    return _run(
        plan_spatial_msg_size(
            arch, depth=depth, msg_sizes=msg_sizes, iterations=iterations, seed=seed
        ),
        runner,
    )


def fig_spatial_search_length(
    arch: ArchSpec,
    *,
    msg_bytes: int = PANEL_B_BYTES,
    depths: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> Sweep:
    """Figures 4b/c and 5b/c: bandwidth vs PRQ search length at fixed size."""
    return _run(
        plan_spatial_search_length(
            arch, msg_bytes=msg_bytes, depths=depths, iterations=iterations, seed=seed
        ),
        runner,
    )


def fig_temporal_msg_size(
    arch: ArchSpec,
    *,
    depth: int = PANEL_A_DEPTH,
    msg_sizes: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> Sweep:
    """Figures 6a / 7a: baseline vs HC vs LLA vs HC+LLA over message size."""
    return _run(
        plan_temporal_msg_size(
            arch, depth=depth, msg_sizes=msg_sizes, iterations=iterations, seed=seed
        ),
        runner,
    )


def fig_temporal_search_length(
    arch: ArchSpec,
    *,
    msg_bytes: int = PANEL_B_BYTES,
    depths: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> Sweep:
    """Figures 6b/c / 7b/c: temporal line-up over PRQ search length."""
    return _run(
        plan_temporal_search_length(
            arch, msg_bytes=msg_bytes, depths=depths, iterations=iterations, seed=seed
        ),
        runner,
    )
