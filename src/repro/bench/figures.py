"""Figure drivers: panels 4a-c, 5a-c (spatial) and 6a-c, 7a-c (temporal).

Each driver *describes* its grid as an :class:`~repro.exp.plan.ExperimentPlan`
(one ``osu`` point per variant x x-value) and hands it to a
:class:`~repro.exp.runner.Runner` — serial by default, process-parallel or
store-backed when the caller passes one. The reduced
:class:`~repro.analysis.series.Sweep` is bit-identical to the historical
serial nested-loop drivers: points carry the same root seed, reduction is
in plan (variant-major) order, and ``meta["mem_stats"]`` merges per label
exactly as before. Architectures select the figure: Sandy Bridge gives
Figures 4/6, Broadwell gives Figures 5/7.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.analysis.series import Sweep
from repro.arch.spec import ArchSpec
from repro.bench.osu import (
    MSG_SIZE_SWEEP,
    SEARCH_LENGTH_SWEEP,
)
from repro.exp import ExperimentPlan, Runner, encode_arch
from repro.mem.kernel import resolve_kernel
from repro.net.link import LinkSpec, OMNIPATH, QLOGIC_QDR

#: The spatial-locality line-up (Figures 4 and 5).
SPATIAL_VARIANTS: Tuple[Tuple[str, str, bool], ...] = (
    ("baseline", "baseline", False),
    ("LLA - 2", "lla-2", False),
    ("LLA - 4", "lla-4", False),
    ("LLA - 8", "lla-8", False),
    ("LLA - 16", "lla-16", False),
    ("LLA - 32", "lla-32", False),
)

#: The temporal-locality line-up (Figures 6 and 7).
TEMPORAL_VARIANTS: Tuple[Tuple[str, str, bool], ...] = (
    ("baseline", "baseline", False),
    ("HC", "baseline", True),
    ("LLA", "lla-2", False),
    ("HC+LLA", "lla-2", True),
)

#: Queue depth used by the (a) panels.
PANEL_A_DEPTH = 1024

#: Message sizes used by the (b) and (c) panels.
PANEL_B_BYTES = 1
PANEL_C_BYTES = 4096


def default_link(arch: ArchSpec) -> LinkSpec:
    """The fabric each system in the paper is attached to."""
    return OMNIPATH if arch.name == "broadwell" else QLOGIC_QDR


def variant_grid_plan(
    arch: ArchSpec,
    variants: Sequence[Tuple[str, str, bool]],
    *,
    title: str,
    xlabel: str,
    ylabel: str = "bandwidth (MiBps)",
    x_axis: str,
    msg_bytes: int,
    depth: int,
    xs: Sequence[int],
    iterations: int,
    seed: int,
    mem_kernel: Optional[str] = None,
) -> ExperimentPlan:
    """One figure panel as a declarative grid: variants x x-values.

    Points are enumerated variant-major (all x of one line, then the next)
    because that is the reduction order the historical drivers produced.
    All points share the figure's root seed — each ``osu`` point builds its
    private RNGs from it, and the locked EXPERIMENTS.md numbers depend on
    that convention. The memory-kernel backend is resolved here, at plan
    build time, and baked into every point's params so ResultStore content
    keys differ per backend.
    """
    link = default_link(arch)
    kernel = resolve_kernel(mem_kernel)
    plan = ExperimentPlan(title=title, xlabel=xlabel, ylabel=ylabel)
    arch_enc = encode_arch(arch)
    for label, family, heated in variants:
        for x in xs:
            plan.add_point(
                "osu",
                label,
                float(x),
                seed=seed,
                arch=arch_enc,
                link=link.name,
                queue_family=family,
                heated=heated,
                msg_bytes=int(x) if x_axis == "msg_bytes" else msg_bytes,
                search_depth=int(x) if x_axis == "depth" else depth,
                iterations=iterations,
                mem_kernel=kernel,
            )
    return plan


def plan_spatial_msg_size(
    arch: ArchSpec,
    *,
    depth: int = PANEL_A_DEPTH,
    msg_sizes: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    mem_kernel: Optional[str] = None,
) -> ExperimentPlan:
    """The grid behind Figures 4a / 5a."""
    return variant_grid_plan(
        arch,
        SPATIAL_VARIANTS,
        title=f"Impact of spatial locality ({arch.name}), queue depth {depth}",
        xlabel="msg size per process (B)",
        x_axis="msg_bytes",
        msg_bytes=1,
        depth=depth,
        xs=msg_sizes if msg_sizes is not None else MSG_SIZE_SWEEP,
        iterations=iterations,
        seed=seed,
        mem_kernel=mem_kernel,
    )


def plan_spatial_search_length(
    arch: ArchSpec,
    *,
    msg_bytes: int = PANEL_B_BYTES,
    depths: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    mem_kernel: Optional[str] = None,
) -> ExperimentPlan:
    """The grid behind Figures 4b/c and 5b/c."""
    return variant_grid_plan(
        arch,
        SPATIAL_VARIANTS,
        title=f"Impact of spatial locality ({arch.name}), {msg_bytes} B messages",
        xlabel="Posted Receive Queue Search Length",
        x_axis="depth",
        msg_bytes=msg_bytes,
        depth=0,
        xs=depths if depths is not None else SEARCH_LENGTH_SWEEP,
        iterations=iterations,
        seed=seed,
        mem_kernel=mem_kernel,
    )


def plan_temporal_msg_size(
    arch: ArchSpec,
    *,
    depth: int = PANEL_A_DEPTH,
    msg_sizes: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    mem_kernel: Optional[str] = None,
) -> ExperimentPlan:
    """The grid behind Figures 6a / 7a."""
    return variant_grid_plan(
        arch,
        TEMPORAL_VARIANTS,
        title=f"Impact of temporal locality ({arch.name}), queue depth {depth}",
        xlabel="msg size per process (B)",
        x_axis="msg_bytes",
        msg_bytes=1,
        depth=depth,
        xs=msg_sizes if msg_sizes is not None else MSG_SIZE_SWEEP,
        iterations=iterations,
        seed=seed,
        mem_kernel=mem_kernel,
    )


def plan_temporal_search_length(
    arch: ArchSpec,
    *,
    msg_bytes: int = PANEL_B_BYTES,
    depths: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    mem_kernel: Optional[str] = None,
) -> ExperimentPlan:
    """The grid behind Figures 6b/c / 7b/c."""
    return variant_grid_plan(
        arch,
        TEMPORAL_VARIANTS,
        title=f"Impact of temporal locality ({arch.name}), {msg_bytes} B messages",
        xlabel="Posted Receive Queue Search Length",
        x_axis="depth",
        msg_bytes=msg_bytes,
        depth=0,
        xs=depths if depths is not None else SEARCH_LENGTH_SWEEP,
        iterations=iterations,
        seed=seed,
        mem_kernel=mem_kernel,
    )


def _run(plan: ExperimentPlan, runner: Optional[Runner]) -> Sweep:
    return (runner or Runner()).run_sweep(plan)


def fig_spatial_msg_size(
    arch: ArchSpec,
    *,
    depth: int = PANEL_A_DEPTH,
    msg_sizes: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> Sweep:
    """Figures 4a / 5a: bandwidth vs message size at queue depth 1024."""
    return _run(
        plan_spatial_msg_size(
            arch, depth=depth, msg_sizes=msg_sizes, iterations=iterations, seed=seed
        ),
        runner,
    )


def fig_spatial_search_length(
    arch: ArchSpec,
    *,
    msg_bytes: int = PANEL_B_BYTES,
    depths: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> Sweep:
    """Figures 4b/c and 5b/c: bandwidth vs PRQ search length at fixed size."""
    return _run(
        plan_spatial_search_length(
            arch, msg_bytes=msg_bytes, depths=depths, iterations=iterations, seed=seed
        ),
        runner,
    )


def fig_temporal_msg_size(
    arch: ArchSpec,
    *,
    depth: int = PANEL_A_DEPTH,
    msg_sizes: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> Sweep:
    """Figures 6a / 7a: baseline vs HC vs LLA vs HC+LLA over message size."""
    return _run(
        plan_temporal_msg_size(
            arch, depth=depth, msg_sizes=msg_sizes, iterations=iterations, seed=seed
        ),
        runner,
    )


def fig_temporal_search_length(
    arch: ArchSpec,
    *,
    msg_bytes: int = PANEL_B_BYTES,
    depths: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> Sweep:
    """Figures 6b/c / 7b/c: temporal line-up over PRQ search length."""
    return _run(
        plan_temporal_search_length(
            arch, msg_bytes=msg_bytes, depths=depths, iterations=iterations, seed=seed
        ),
        runner,
    )
