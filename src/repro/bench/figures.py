"""Figure drivers: panels 4a-c, 5a-c (spatial) and 6a-c, 7a-c (temporal).

Each driver returns a :class:`~repro.analysis.series.Sweep` whose series are
the figure's lines, labelled as in the paper ("baseline", "LLA - 2", ...,
"HC", "HC+LLA"). Architectures select the figure: Sandy Bridge gives
Figures 4/6, Broadwell gives Figures 5/7.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

from repro.analysis.series import Sweep
from repro.arch.spec import ArchSpec
from repro.bench.osu import (
    MSG_SIZE_SWEEP,
    SEARCH_LENGTH_SWEEP,
    OsuConfig,
    osu_bandwidth,
)
from repro.net.link import LinkSpec, OMNIPATH, QLOGIC_QDR

#: The spatial-locality line-up (Figures 4 and 5).
SPATIAL_VARIANTS: Tuple[Tuple[str, str, bool], ...] = (
    ("baseline", "baseline", False),
    ("LLA - 2", "lla-2", False),
    ("LLA - 4", "lla-4", False),
    ("LLA - 8", "lla-8", False),
    ("LLA - 16", "lla-16", False),
    ("LLA - 32", "lla-32", False),
)

#: The temporal-locality line-up (Figures 6 and 7).
TEMPORAL_VARIANTS: Tuple[Tuple[str, str, bool], ...] = (
    ("baseline", "baseline", False),
    ("HC", "baseline", True),
    ("LLA", "lla-2", False),
    ("HC+LLA", "lla-2", True),
)

#: Queue depth used by the (a) panels.
PANEL_A_DEPTH = 1024

#: Message sizes used by the (b) and (c) panels.
PANEL_B_BYTES = 1
PANEL_C_BYTES = 4096


def default_link(arch: ArchSpec) -> LinkSpec:
    """The fabric each system in the paper is attached to."""
    return OMNIPATH if arch.name == "broadwell" else QLOGIC_QDR


def _run_variants(
    arch: ArchSpec,
    variants: Sequence[Tuple[str, str, bool]],
    sweep: Sweep,
    *,
    x_axis: str,
    msg_bytes: int,
    depth: int,
    xs: Sequence[int],
    iterations: int,
    seed: int,
) -> Sweep:
    link = default_link(arch)
    mem_stats = sweep.meta.setdefault("mem_stats", {})
    for label, family, heated in variants:
        base_cfg = OsuConfig(
            arch=arch,
            link=link,
            queue_family=family,
            heated=heated,
            msg_bytes=msg_bytes,
            search_depth=depth,
            iterations=iterations,
            seed=seed,
        )
        series = sweep.series_for(label)
        for x in xs:
            if x_axis == "msg_bytes":
                cfg = replace(base_cfg, msg_bytes=int(x))
            else:
                cfg = replace(base_cfg, search_depth=int(x))
            point = osu_bandwidth(cfg)
            series.add(x, point.mibps, point.mibps_std)
            if point.mem_stats is not None:
                acc = mem_stats.get(label)
                if acc is None:
                    mem_stats[label] = point.mem_stats.copy()
                else:
                    acc.merge(point.mem_stats)
    return sweep


def fig_spatial_msg_size(
    arch: ArchSpec,
    *,
    depth: int = PANEL_A_DEPTH,
    msg_sizes: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
) -> Sweep:
    """Figures 4a / 5a: bandwidth vs message size at queue depth 1024."""
    sweep = Sweep(
        title=f"Impact of spatial locality ({arch.name}), queue depth {depth}",
        xlabel="msg size per process (B)",
        ylabel="bandwidth (MiBps)",
    )
    return _run_variants(
        arch,
        SPATIAL_VARIANTS,
        sweep,
        x_axis="msg_bytes",
        msg_bytes=1,
        depth=depth,
        xs=msg_sizes if msg_sizes is not None else MSG_SIZE_SWEEP,
        iterations=iterations,
        seed=seed,
    )


def fig_spatial_search_length(
    arch: ArchSpec,
    *,
    msg_bytes: int = PANEL_B_BYTES,
    depths: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
) -> Sweep:
    """Figures 4b/c and 5b/c: bandwidth vs PRQ search length at fixed size."""
    sweep = Sweep(
        title=f"Impact of spatial locality ({arch.name}), {msg_bytes} B messages",
        xlabel="Posted Receive Queue Search Length",
        ylabel="bandwidth (MiBps)",
    )
    return _run_variants(
        arch,
        SPATIAL_VARIANTS,
        sweep,
        x_axis="depth",
        msg_bytes=msg_bytes,
        depth=0,
        xs=depths if depths is not None else SEARCH_LENGTH_SWEEP,
        iterations=iterations,
        seed=seed,
    )


def fig_temporal_msg_size(
    arch: ArchSpec,
    *,
    depth: int = PANEL_A_DEPTH,
    msg_sizes: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
) -> Sweep:
    """Figures 6a / 7a: baseline vs HC vs LLA vs HC+LLA over message size."""
    sweep = Sweep(
        title=f"Impact of temporal locality ({arch.name}), queue depth {depth}",
        xlabel="msg size per process (B)",
        ylabel="bandwidth (MiBps)",
    )
    return _run_variants(
        arch,
        TEMPORAL_VARIANTS,
        sweep,
        x_axis="msg_bytes",
        msg_bytes=1,
        depth=depth,
        xs=msg_sizes if msg_sizes is not None else MSG_SIZE_SWEEP,
        iterations=iterations,
        seed=seed,
    )


def fig_temporal_search_length(
    arch: ArchSpec,
    *,
    msg_bytes: int = PANEL_B_BYTES,
    depths: Optional[Sequence[int]] = None,
    iterations: int = 10,
    seed: int = 0,
) -> Sweep:
    """Figures 6b/c / 7b/c: temporal line-up over PRQ search length."""
    sweep = Sweep(
        title=f"Impact of temporal locality ({arch.name}), {msg_bytes} B messages",
        xlabel="Posted Receive Queue Search Length",
        ylabel="bandwidth (MiBps)",
    )
    return _run_variants(
        arch,
        TEMPORAL_VARIANTS,
        sweep,
        x_axis="depth",
        msg_bytes=msg_bytes,
        depth=0,
        xs=depths if depths is not None else SEARCH_LENGTH_SWEEP,
        iterations=iterations,
        seed=seed,
    )
