"""The custom cache-heater micro-benchmark (paper section 4.3).

    "When we run a simple cache heating benchmark on Broadwell with a random
    access pattern, we observe nearly a doubling of throughput (reducing the
    iteration runtime from 38.5 ns to 22.8 ns) which is similar to the Sandy
    Bridge results (which reduce 47.5 ns to 22.9 ns)."

One iteration reads a random line of a working region and does a little
fixed work (index generation, the throwaway sum). Random *independent*
accesses enjoy memory-level parallelism (unlike list traversal), so the
memory component is divided by the architecture's ``random_access_mlp``.
Cold iterations miss to DRAM; heated iterations hit the heater-refreshed
shared L3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.arch.spec import ArchSpec
from repro.hotcache.heater import Heater, HeaterConfig
from repro.mem.alloc import Allocation
from repro.mem.layout import LINE_SIZE

#: Fixed per-iteration work (loop control + RNG + accumulate), nanoseconds.
FIXED_WORK_NS = 18.0


@dataclass(frozen=True)
class HeaterMicroResult:
    """Cold/hot ns-per-iteration of the section 4.3 micro-benchmark."""
    arch: str
    region_bytes: int
    cold_ns: float
    hot_ns: float

    @property
    def speedup(self) -> float:
        """cold/hot iteration-time ratio."""
        return self.cold_ns / self.hot_ns


def heater_microbenchmark(
    arch: ArchSpec,
    *,
    region_bytes: int = 4 * 1024 * 1024,
    samples: int = 2048,
    seed: int = 0,
    mem_kernel: Optional[str] = None,
) -> HeaterMicroResult:
    """Measure mean random-access iteration time, cold vs heated."""
    rng = np.random.default_rng(seed)
    base = 0x4000_0000
    nlines = region_bytes // LINE_SIZE

    def measure(heated: bool) -> float:
        hier = arch.build_hierarchy(kernel=mem_kernel)
        heater = None
        if heated:
            heater = Heater(hier, arch.ghz, HeaterConfig(locked=False))
            heater.regions.add(Allocation(base, region_bytes))
            heater.force_pass(0.0)
        total_cycles = 0.0
        lines = rng.integers(0, nlines, size=samples)
        for i, line in enumerate(lines):
            addr = base + int(line) * LINE_SIZE
            total_cycles += hier.access(0, addr, 4)
            # A cold run keeps missing: the benchmark region is much larger
            # than the private caches, and the cold case flushes private
            # levels so reuse cannot hide the misses we want to observe.
            if not heated and (i & 0x3F) == 0x3F:
                hier.flush()
        mem_ns = arch.ns(total_cycles / samples) / arch.random_access_mlp
        return FIXED_WORK_NS + mem_ns

    return HeaterMicroResult(
        arch=arch.name,
        region_bytes=region_bytes,
        cold_ns=measure(False),
        hot_ns=measure(True),
    )


def heater_micro_plan(
    archs,
    *,
    region_bytes: int = 4 * 1024 * 1024,
    samples: int = 2048,
    seed: int = 0,
    mem_kernel: Optional[str] = None,
):
    """The micro-benchmark as a declarative plan (scenario ``heater-micro``).

    Cold and hot measurements share one RNG stream, so each arch is a
    single ``heater-micro`` point (y = cold ns, ``extras["hot_ns"]``).
    """
    from repro.scenarios import get_scenario

    base = {"region_bytes": int(region_bytes), "samples": int(samples)}
    if mem_kernel is not None:
        base["mem_kernel"] = mem_kernel
    return (
        get_scenario("heater-micro")
        .with_overrides(base=base, matrix={"arch": list(archs)}, seed=seed)
        .expand()
    )
