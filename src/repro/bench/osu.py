"""The modified OSU bandwidth/latency benchmark (paper section 4.1).

The paper's four modifications, all reproduced here:

1. *"We added an MPI barrier to ensure that recvs were preposted"* — the
   measured arrival always finds its receive in the PRQ (fast path); posting
   cost is excluded from the timed section.
2. *"We cleared the cache between each iteration"* — ``hierarchy.flush()``
   before every measured message, emulating the compute phase of a bulk
   synchronous application.
3. *"We pinned the master thread to a specified core"* — the engine is bound
   to core 0; the heater (if any) to another core of the same socket.
4. *"We added unmatched entries to the queue to evaluate performance with
   different receive queue lengths"* — ``search_depth`` decoy entries are
   posted ahead of the real receive, so every match must traverse them.

Per-message time combines the cycle-accounted match traversal, the
library's fixed software overhead, the payload copy, and the fabric: with a
windowed bandwidth benchmark the wire and the CPU pipeline overlap, so
``t_msg = max(serialization, processing)`` and bandwidth = bytes / t_msg.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.analysis.stats import TrialStats
from repro.arch.spec import ArchSpec
from repro.errors import ConfigurationError
from repro.hotcache.heater import Heater, HeaterConfig
from repro.hotcache.wrapper import HeatedQueue
from repro.matching.engine import MatchEngine
from repro.matching.entry import UMQ_ENTRY_BYTES
from repro.matching.envelope import Envelope
from repro.matching.factory import make_queue
from repro.mem.cache import WayPartition
from repro.mem.hierarchy import NetworkCacheConfig
from repro.mem.result import LevelStats
from repro.mpi.message import Message
from repro.mpi.process import MpiProcess
from repro.net.link import LinkSpec, QLOGIC_QDR

#: The paper's message-size axis (Figures 4a/5a/6a/7a): 1 B .. 1 MiB.
MSG_SIZE_SWEEP = tuple(1 << i for i in range(0, 21))

#: The paper's queue-search-length axis (Figures 4b/c .. 7b/c): 1 .. 8192.
SEARCH_LENGTH_SWEEP = tuple(1 << i for i in range(0, 14))

_DECOY_SRC = 7
_MATCH_SRC = 3
_MIB = 1024.0 * 1024.0


@dataclass
class OsuConfig:
    """One benchmark configuration (one point of a figure panel)."""

    arch: ArchSpec
    link: LinkSpec = QLOGIC_QDR
    queue_family: str = "baseline"
    heated: bool = False
    heater_config: Optional[HeaterConfig] = None
    search_depth: int = 0
    msg_bytes: int = 1
    iterations: int = 10
    warmup: int = 2
    seed: int = 0
    fragmented: bool = False
    partition: Optional[WayPartition] = None
    network_cache: Optional[NetworkCacheConfig] = None
    prefetch_enabled: bool = True
    #: Prefetch-unit configuration (``default``/``none``/``chase``/
    #: ``chase-only``); None falls back to the *prefetch_enabled* boolean.
    prefetcher: Optional[str] = None
    #: Memory-kernel backend (``soa``/``vec``/``reference``); None resolves
    #: via ``REPRO_MEM_KERNEL`` then the package default.
    mem_kernel: Optional[str] = None

    def variant_label(self) -> str:
        """Figure-style label for this configuration (e.g. 'HC+LLA')."""
        base = self.queue_family
        if self.heated:
            return f"HC+{base}" if base != "baseline" else "HC"
        return base


@dataclass
class BandwidthPoint:
    """One measured point: bandwidth plus its cost decomposition."""

    config_label: str
    msg_bytes: int
    search_depth: int
    mibps: float
    mibps_std: float
    latency_us: float
    match_cycles: Optional[TrialStats] = field(repr=False, default=None)
    network_bound: bool = False
    # Per-level hit attribution of the measured (post-warmup) iterations'
    # load transactions; None when the producer predates the telemetry.
    mem_stats: Optional[LevelStats] = field(repr=False, default=None)


class _OsuSession:
    """Shared construction for the bandwidth and latency benchmarks."""

    def __init__(self, cfg: OsuConfig) -> None:
        if cfg.search_depth < 0:
            raise ConfigurationError("search_depth must be >= 0")
        self.cfg = cfg
        rng = np.random.default_rng(cfg.seed)
        self.hier = cfg.arch.build_hierarchy(
            partition=cfg.partition,
            network_cache=cfg.network_cache,
            rng=np.random.default_rng(cfg.seed + 1),
            prefetch_enabled=cfg.prefetch_enabled,
            prefetcher=cfg.prefetcher,
            kernel=cfg.mem_kernel,
        )
        self.engine = MatchEngine(self.hier)
        prq = make_queue(
            cfg.queue_family,
            port=self.engine,
            rng=rng,
            fragmented=cfg.fragmented,
            arena_base=0x4000_0000,
        )
        umq = make_queue(
            cfg.queue_family,
            entry_bytes=UMQ_ENTRY_BYTES,
            port=self.engine,
            rng=rng,
            fragmented=cfg.fragmented,
            arena_base=0x2000_0000,
        )
        self.heater: Optional[Heater] = None
        if cfg.heated:
            hc = cfg.heater_config
            if hc is None:
                # The original (locked) design heats the baseline list; the
                # LLA runs use the dedicated element pool (section 4.3).
                hc = HeaterConfig(locked=cfg.queue_family == "baseline")
            self.heater = Heater(self.hier, cfg.arch.ghz, hc)
            prq = HeatedQueue(prq, self.heater, self.engine)
        self.prq = prq
        self.proc = MpiProcess(0, prq, umq, clock=self.engine.clock)
        self._tag = 0

    def prepopulate(self) -> None:
        """Post the decoy receives that set the search depth.

        The heater sleeps while the list is built (the application posts
        these long before the measured communication phase) and starts fresh
        once the queue is in place.
        """
        if self.heater is not None:
            self.heater.enabled = False
        for _ in range(self.cfg.search_depth):
            self._tag += 1
            self.proc.post_recv(src=_DECOY_SRC, tag=self._tag, cid=0)
        if self.heater is not None:
            self.heater.enabled = True
            self.heater.reset(self.engine.clock.now)

    def one_message(self, nbytes: int) -> float:
        """Post + deliver one matching message; returns match cycles."""
        self._tag += 1
        tag = self._tag
        # Pre-posted receive (outside the timed section: the barrier is the
        # paper's way of guaranteeing this ordering).
        self.proc.post_recv(src=_MATCH_SRC, tag=tag, cid=0, nbytes=nbytes)
        # The compute phase destroys cache contents...
        self.hier.flush()
        # ...but the heater has been running during it.
        if self.heater is not None:
            self.prq.prepare_phase()
        start = self.engine.clock.now
        req = self.proc.handle_arrival(
            Message(Envelope(src=_MATCH_SRC, tag=tag, cid=0), nbytes)
        )
        if req is None:
            raise ConfigurationError("benchmark message did not match its recv")
        return self.engine.clock.now - start


def _per_message_processing_cycles(cfg: OsuConfig, match_cycles: float) -> float:
    arch = cfg.arch
    return match_cycles + arch.sw_overhead_cycles + arch.copy_cycles_per_byte * cfg.msg_bytes


def osu_bandwidth(cfg: OsuConfig) -> BandwidthPoint:
    """The modified osu_bw: bandwidth at one (msg size, search depth).

    The fixed-grid iteration loop lives in
    :meth:`~repro.traffic.driver.TrafficDriver.run_closed` — the shared
    closed-loop substrate of the traffic subsystem. ``osu_bandwidth_legacy``
    retains the historical bespoke loop and the equivalence suite pins the
    two repr-identical.
    """
    from repro.traffic.driver import TrafficDriver

    session = _OsuSession(cfg)
    session.prepopulate()
    match_samples = TrafficDriver(session).run_closed(
        nbytes=cfg.msg_bytes, warmup=cfg.warmup, iterations=cfg.iterations
    )
    return _bandwidth_point(cfg, match_samples, session)


def osu_bandwidth_legacy(cfg: OsuConfig) -> BandwidthPoint:
    """The pre-traffic-subsystem bespoke loop (equivalence reference)."""
    session = _OsuSession(cfg)
    session.prepopulate()
    match_samples: List[float] = []
    for i in range(cfg.warmup + cfg.iterations):
        if i == cfg.warmup:
            # Attribution covers only the measured iterations.
            session.engine.level_stats.reset()
        cycles = session.one_message(cfg.msg_bytes)
        if i >= cfg.warmup:
            match_samples.append(cycles)
    return _bandwidth_point(cfg, match_samples, session)


def _bandwidth_point(
    cfg: OsuConfig, match_samples: List[float], session: _OsuSession
) -> BandwidthPoint:
    """Reduce measured match-cycle samples to one BandwidthPoint."""
    stats = TrialStats.from_values(match_samples)
    proc_cycles = _per_message_processing_cycles(cfg, stats.mean)
    proc_us = cfg.arch.ns(proc_cycles) / 1000.0
    wire_us = cfg.link.serialization_us(cfg.msg_bytes)
    t_msg_us = max(proc_us, wire_us)
    # Spread of bandwidth follows the spread of the processing time when
    # processing dominates (zero when the wire dominates).
    hi = max(
        cfg.arch.ns(_per_message_processing_cycles(cfg, stats.mean + stats.std)) / 1000.0,
        wire_us,
    )
    mibps = cfg.msg_bytes / t_msg_us / _MIB * 1e6
    mibps_lo = cfg.msg_bytes / hi / _MIB * 1e6
    return BandwidthPoint(
        config_label=cfg.variant_label(),
        msg_bytes=cfg.msg_bytes,
        search_depth=cfg.search_depth,
        mibps=mibps,
        mibps_std=abs(mibps - mibps_lo),
        latency_us=cfg.link.latency_us + t_msg_us,
        match_cycles=stats,
        network_bound=wire_us >= proc_us,
        mem_stats=session.engine.level_stats.copy(),
    )


def osu_latency(cfg: OsuConfig) -> float:
    """The modified osu_latency: one-way half round trip in microseconds."""
    from repro.traffic.driver import TrafficDriver

    session = _OsuSession(cfg)
    session.prepopulate()
    match_samples = TrafficDriver(session).run_closed(
        nbytes=cfg.msg_bytes,
        warmup=cfg.warmup,
        iterations=cfg.iterations,
        reset_stats=False,
    )
    samples = [
        cfg.link.transfer_us(cfg.msg_bytes)
        + cfg.arch.ns(_per_message_processing_cycles(cfg, cycles)) / 1000.0
        for cycles in match_samples
    ]
    return TrialStats.from_values(samples).mean


def osu_message_rate(cfg: OsuConfig) -> float:
    """The osu_mbw_mr-style metric: matched messages per second.

    With the windowed pipeline, steady-state rate is the inverse of the
    per-message bottleneck (processing or wire, whichever is slower)."""
    point = osu_bandwidth(cfg)
    if not point.mibps:
        return 0.0
    t_msg_us = point.msg_bytes / (point.mibps * _MIB) * 1e6
    return 1e6 / t_msg_us


def sweep_points(cfg: OsuConfig, *, msg_sizes=None, depths=None) -> List[BandwidthPoint]:
    """Run a family of configs varying message size and/or search depth."""
    points = []
    for size in msg_sizes if msg_sizes is not None else [cfg.msg_bytes]:
        for depth in depths if depths is not None else [cfg.search_depth]:
            points.append(osu_bandwidth(replace(cfg, msg_bytes=size, search_depth=depth)))
    return points
