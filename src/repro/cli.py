"""Command-line entry point: regenerate any table or figure of the paper.

Usage (installed as ``repro``, or ``python -m repro``)::

    repro list                 # commands, registered scenarios, axes
    repro table1               # Table 1 rows
    repro fig1 [--motif amr]   # Figure 1 histograms
    repro layout               # Figure 2 cache-line packing arithmetic
    repro fig4 / fig5          # spatial locality panels (SNB / BDW)
    repro fig6 / fig7          # temporal locality panels (SNB / BDW)
    repro heater-micro         # section 4.3 random-access numbers
    repro fig8 / fig9 / fig10  # application studies
    repro ablation             # semi-permanent-occupancy proposal study
    repro run fig4_quick.toml  # any scenario file (or registered name)
    repro serve                # sweep service over a job directory
    repro submit fig4_quick.toml --job-dir d   # queue work for the server
    repro status --job-dir d   # server heartbeat + per-job progress

The figure subcommands are thin aliases over the scenario registry
(:mod:`repro.scenarios`): each one expands a named built-in scenario into
an :class:`~repro.exp.plan.ExperimentPlan` and renders the reduced sweep.
``repro run`` does the same for an arbitrary TOML/JSON scenario file — a
new experiment grid is a config file, not a driver.

Every command accepts ``--quick`` to shrink sweeps for a fast look. Sweep
commands additionally accept ``--jobs N`` (process-parallel execution,
bit-identical to serial), ``--cache-dir DIR`` (content-addressed result
store), and ``--resume`` (shorthand for the default cache directory) — see
:mod:`repro.exp`.

Failure semantics (see EXPERIMENTS.md "Failure semantics"): ``--retries N``
re-attempts failed points with capped exponential backoff, ``--timeout S``
bounds each point, ``--on-error collect`` completes the sweep past failed
points and reports them instead of aborting (``fail-fast``, the default,
aborts after flushing completed work to the store), ``--report FILE``
exports the structured RunReport as JSON, and ``--inject-faults SPEC``
(or ``REPRO_INJECT_FAULTS``) deterministically injects crashes, raises,
hangs, and store corruption to exercise all of the above.

``repro serve`` runs the supervised sweep service (:mod:`repro.service`)
over a file-based job directory: concurrent submissions share one worker
pool and one store with cross-submission dedup, bounded drop-tail
admission, per-submission checkpoint journals (kill -9 + restart resumes
with zero recomputation), a heartbeat watchdog, and LRU store eviction.
``repro submit`` queues a scenario; ``repro status`` reads progress —
both work with no server running. Service-level chaos goes through
``repro serve --inject-faults`` / ``REPRO_INJECT_SERVICE_FAULTS``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import render_series_table, render_table

#: Default --resume store location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Default job directory for the service commands (serve/submit/status).
DEFAULT_JOB_DIR = ".repro-jobs"

#: Commands whose grids run through the repro.exp plan/runner subsystem.
_SWEEP_COMMANDS = (
    "fig4", "fig5", "fig6", "fig7",
    "fig8", "fig9", "fig10",
    "heater-micro", "ablation", "offload", "traffic", "run",
)

#: Commands that render sweeps as panels (charts/exports apply).
_PANEL_COMMANDS = ("fig4", "fig5", "fig6", "fig7", "traffic", "run")


def _seed(args: argparse.Namespace) -> int:
    """The run's seed: ``--seed`` if given, else the historical default 0."""
    seed = getattr(args, "seed", None)
    return 0 if seed is None else int(seed)


def _progress_to_stderr(done, total, spec, result, cached) -> None:
    if result is None:
        tag = " (failed)"
    elif cached:
        tag = " (cached)"
    else:
        tag = f" [{result.elapsed_s:.2f}s]"
    print(f"[exp] {done}/{total} {spec.series} @ {spec.x:g}{tag}", file=sys.stderr)


def _runner_from_args(args: argparse.Namespace):
    """Build the Runner a sweep command asked for (serial, quiet default)."""
    from repro.exp import ResultStore, Runner
    from repro.faults import FaultPlan

    jobs = getattr(args, "jobs", 1) or 1
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None and getattr(args, "resume", False):
        cache_dir = DEFAULT_CACHE_DIR
    store = ResultStore(cache_dir) if cache_dir else None
    progress = _progress_to_stderr if (jobs > 1 or store is not None) else None
    inject = getattr(args, "inject_faults", None)
    return Runner(
        jobs=jobs,
        store=store,
        progress=progress,
        retries=getattr(args, "retries", 0),
        timeout_s=getattr(args, "timeout", None),
        on_error=getattr(args, "on_error", "fail-fast"),
        fault_plan=FaultPlan.parse(inject) if inject else None,
    )


def _emit_report(runner, args: argparse.Namespace) -> None:
    """Render the run's failure-policy report (stderr) and export it.

    Quiet when nothing noteworthy happened and no export was requested; a
    command that runs several plans (the multi-panel figures) emits one
    report per run and the ``--report`` file keeps the last.
    """
    report = runner.last_report
    noteworthy = (
        report.failures
        or report.retried
        or report.timeouts
        or report.crashes
        or report.pool_rebuilds
        or report.degraded_serial
        or report.quarantined
        or report.corruptions_injected
    )
    if noteworthy:
        print(report.render(), file=sys.stderr)
    report_path = getattr(args, "report", None)
    if report_path:
        from pathlib import Path

        Path(report_path).write_text(report.to_json() + "\n", encoding="utf-8")
        print(f"[report written {report_path}]", file=sys.stderr)


def _scenario_plan(name: str, args: argparse.Namespace):
    """Expand a built-in scenario with the command's --quick/--seed applied."""
    from repro.scenarios import get_scenario

    spec = get_scenario(name)
    if args.quick:
        spec = spec.quick()
    return spec.with_overrides(seed=_seed(args)).expand()


def _cmd_table1(args: argparse.Namespace) -> None:
    from repro.decomp.bench import table1

    trials = 3 if args.quick else 10
    rows = [r.as_row() + (round(r.depth_std, 2),) for r in table1(trials=trials, seed=_seed(args))]
    print(
        render_table(
            ["Decomp.", "Stencil", "tr", "ts", "Length", "Search depth", "std"],
            rows,
            title="Table 1: Queue lengths and mean search depths",
        )
    )


def _cmd_fig1(args: argparse.Namespace) -> None:
    from repro.motifs import MOTIFS

    names = [args.motif] if args.motif else list(MOTIFS)
    for name in names:
        cls = MOTIFS[name]
        motif = cls(seed=_seed(args), sim_ranks=512 if args.quick else None)
        result = motif.run()
        rows = [
            (label, posted, unexpected)
            for (label, posted), (_, unexpected) in zip(
                result.posted_buckets(), result.unexpected_buckets()
            )
        ]
        print(
            render_table(
                ["Matchlist Length Bucket", "posted", "unexpected"],
                rows,
                title=f"Figure 1 ({name}): match list sizes at {result.nranks // 1024}K ranks",
            )
        )
        print()


def _cmd_layout(args: argparse.Namespace) -> None:
    from repro.matching.entry import (
        LLA_NODE_OVERHEAD,
        PRQ_ENTRY_BYTES,
        UMQ_ENTRY_BYTES,
        lla_entries_per_line,
        lla_node_bytes,
    )

    rows = []
    for label, entry in (("PRQ", PRQ_ENTRY_BYTES), ("UMQ", UMQ_ENTRY_BYTES)):
        per_line = lla_entries_per_line(entry)
        rows.append((label, entry, LLA_NODE_OVERHEAD, per_line, lla_node_bytes(per_line, entry)))
    print(
        render_table(
            ["queue", "entry bytes", "node overhead", "entries / 64B line", "node bytes"],
            rows,
            title="Figure 2: packing match entries into 64-byte cache lines",
        )
    )


def _render_panel(sweep, args: argparse.Namespace, stem: str) -> None:
    """Print one figure panel; *stem* names its export files deterministically,
    so stems are stable across repeated main() calls in one process."""
    if not sweep.series:
        # A zero-point plan (or one whose every point failed under
        # --on-error collect) has nothing to tabulate; say so instead of
        # printing a degenerate empty table.
        print(f"{sweep.title}: no points to render (empty plan or all points failed)")
        print()
        return
    print(render_series_table(sweep))
    if getattr(args, "mem_stats", False) and sweep.meta.get("mem_stats"):
        from repro.analysis.report import render_mem_stats_table

        print()
        print(render_mem_stats_table(sweep.meta["mem_stats"]))
    if getattr(args, "chart", False):
        from repro.analysis.plot import render_ascii_chart

        print()
        print(render_ascii_chart(sweep))
    export_dir = getattr(args, "export", None)
    if export_dir:
        from pathlib import Path

        from repro.analysis.export import write_sweep

        Path(export_dir).mkdir(parents=True, exist_ok=True)
        for suffix in (".csv", ".json"):
            path = Path(export_dir) / (stem + suffix)
            write_sweep(path, sweep)
            print(f"[exported {path}]")
    print()


def _locality_fig(flavor: str, arch_name: str, args: argparse.Namespace) -> None:
    """Three panels of Figures 4-7: (a) message-size sweep at queue depth
    1024, then the search-length sweep at (b) 1 B and (c) 4 KiB messages."""
    from repro.scenarios import get_scenario

    runner = _runner_from_args(args)
    panels = (
        (f"{flavor}-msg-size", None),
        (f"{flavor}-search-length", 1),
        (f"{flavor}-search-length", 4096),
    )
    for panel, (scenario, msg_bytes) in zip("abc", panels):
        spec = get_scenario(scenario)
        if args.quick:
            spec = spec.quick()
        base = {"arch": arch_name}
        if msg_bytes is not None:
            base["msg_bytes"] = msg_bytes
        plan = spec.with_overrides(base=base, seed=_seed(args)).expand()
        _render_panel(runner.run_sweep(plan), args, f"{args.command}_panel_{panel}")
        _emit_report(runner, args)


def _cmd_heater_micro(args: argparse.Namespace) -> None:
    paper = {"sandy-bridge": (47.5, 22.9), "broadwell": (38.5, 22.8)}
    plan = _scenario_plan("heater-micro", args)
    runner = _runner_from_args(args)
    results = runner.run(plan)
    rows = []
    for spec, result in zip(plan.points, results):
        cold_p, hot_p = paper[spec.series]
        if result is None:  # failed under --on-error collect
            rows.append((spec.series, "FAILED", "FAILED", cold_p, hot_p))
            continue
        rows.append(
            (spec.series, round(result.y, 1), round(result.extras["hot_ns"], 1), cold_p, hot_p)
        )
    print(
        render_table(
            ["arch", "cold ns", "hot ns", "paper cold", "paper hot"],
            rows,
            title="Section 4.3: cache heater random-access micro-benchmark",
        )
    )
    _emit_report(runner, args)


def _cmd_fig8(args: argparse.Namespace) -> None:
    from repro.apps import fig8_amg_scaling

    runner = _runner_from_args(args)
    sweep = fig8_amg_scaling(seed=_seed(args), runner=runner)
    print(render_series_table(sweep))
    try:
        base, lla = sweep.series["Baseline"], sweep.series["LLA"]
        pct = 100.0 * (base.at(1024) - lla.at(1024)) / base.at(1024)
        print(f"\nLLA runtime improvement at 1024 ranks: {pct:.2f}% (paper: 2.9%)")
    except (KeyError, ValueError):  # points lost to --on-error collect
        print("\nLLA runtime improvement at 1024 ranks: n/a (points missing)")
    _emit_report(runner, args)


def _cmd_fig9(args: argparse.Namespace) -> None:
    from repro.apps import fig9_minife_lengths

    runner = _runner_from_args(args)
    sweep = fig9_minife_lengths(seed=_seed(args), runner=runner)
    print(render_series_table(sweep))
    try:
        base, lla = sweep.series["Baseline"], sweep.series["LLA"]
        pct = 100.0 * (base.at(2048) - lla.at(2048)) / base.at(2048)
        print(f"\nLLA runtime improvement at queue length 2048: {pct:.2f}% (paper: 2.3%)")
    except (KeyError, ValueError):
        print("\nLLA runtime improvement at queue length 2048: n/a (points missing)")
    _emit_report(runner, args)


def _cmd_fig10(args: argparse.Namespace) -> None:
    from repro.apps import fig10_fds_speedups

    runner = _runner_from_args(args)
    scales = (1024, 4096, 8192) if args.quick else None
    sweep = fig10_fds_speedups(
        scales=scales or (128, 256, 512, 1024, 2048, 4096, 8192),
        seed=_seed(args),
        runner=runner,
    )
    print(render_series_table(sweep))
    _emit_report(runner, args)


def _cmd_ablation(args: argparse.Namespace) -> None:
    plan = _scenario_plan("ablation", args)
    runner = _runner_from_args(args)
    results = runner.run(plan)
    rows = []
    mem_stats = {}
    for spec, result in zip(plan.points, results):
        arch_name, label = spec.series.split(": ", 1)
        if result is None:  # failed under --on-error collect
            rows.append((arch_name, label, "FAILED"))
            continue
        rows.append((arch_name, label, round(result.y, 4)))
        mem_stats[spec.series] = result.mem_stats
    print(
        render_table(
            ["arch", "occupancy mechanism", "bandwidth (MiBps), 1B msgs"],
            rows,
            title=plan.title,
        )
    )
    if getattr(args, "mem_stats", False):
        from repro.analysis.report import render_mem_stats_table

        print()
        print(render_mem_stats_table(mem_stats))
    _emit_report(runner, args)


def _cmd_offload(args: argparse.Namespace) -> None:
    plan = _scenario_plan("offload", args)
    runner = _runner_from_args(args)
    results = runner.run(plan)
    rows = [
        (spec.series, int(spec.x), "FAILED" if result is None else round(result.y))
        for spec, result in zip(plan.points, results)
    ]
    print(
        render_table(
            ["matching engine", "queue depth", "cycles/search"],
            rows,
            title=plan.title,
        )
    )
    _emit_report(runner, args)


def _cmd_traffic(args: argparse.Namespace) -> None:
    """The open-loop overload study (the 'traffic-overload' scenario)."""
    plan = _scenario_plan("traffic-overload", args)
    runner = _runner_from_args(args)
    sweep = runner.run_sweep(plan)
    _render_panel(sweep, args, "traffic_overload")
    _emit_report(runner, args)


def _cmd_run(args: argparse.Namespace) -> None:
    """Expand and run one scenario — a registered name or a TOML/JSON file."""
    from pathlib import Path

    from repro.scenarios import SCENARIO_SUFFIXES, get_scenario, load_scenario

    target = args.scenario
    path = Path(target)
    if path.exists() or path.suffix.lower() in SCENARIO_SUFFIXES:
        spec = load_scenario(path)
    else:
        spec = get_scenario(target)
    if args.quick:
        spec = spec.quick()
    if getattr(args, "seed", None) is not None:
        spec = spec.with_overrides(seed=args.seed)
    plan = spec.expand()
    print(
        f"[scenario {spec.name} ({spec.source}): {len(plan.points)} points]",
        file=sys.stderr,
    )
    runner = _runner_from_args(args)
    sweep = runner.run_sweep(plan)
    stem = "run_" + "".join(c if c.isalnum() else "_" for c in spec.name)
    _render_panel(sweep, args, stem)
    _emit_report(runner, args)


def _cmd_validate(args: argparse.Namespace) -> None:
    from repro.validation import run_validation

    report = run_validation(quick=args.quick)
    print(report.render())
    if not report.passed:
        sys.exit(1)


def _service_from_args(args: argparse.Namespace):
    """Build the SweepService that ``repro serve`` asked for."""
    from repro.exp import ResultStore
    from repro.faults import ServiceFaultPlan
    from repro.service import SweepService

    cache_dir = args.cache_dir
    if cache_dir is None and args.resume:
        cache_dir = DEFAULT_CACHE_DIR
    inject = args.inject_faults
    return SweepService(
        jobs=args.jobs,
        store=ResultStore(cache_dir) if cache_dir else None,
        queue_capacity=args.queue_capacity,
        heartbeat_s=args.heartbeat,
        retries=args.retries,
        max_store_bytes=args.max_store_bytes,
        fault_plan=ServiceFaultPlan.parse(inject) if inject else None,
    )


def _cmd_serve(args: argparse.Namespace) -> None:
    """Run the sweep service over a job directory until idle/interrupted."""
    from repro.service import serve

    service = _service_from_args(args)
    print(
        f"[serve] job dir {args.job_dir} (jobs={args.jobs}, "
        f"capacity={args.queue_capacity})",
        file=sys.stderr,
    )
    try:
        finished = serve(
            args.job_dir,
            service,
            poll_s=args.poll,
            max_idle_s=args.max_idle,
            max_jobs=args.max_jobs,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        print("[serve] interrupted; drained and stopped", file=sys.stderr)
        return
    stats = service.stats
    print(
        f"[serve] stopped: {finished} job(s) finished, "
        f"{stats.executed} executed / {stats.cached} cached / "
        f"{stats.shared} shared / {stats.replayed} replayed point(s)",
        file=sys.stderr,
    )


def _cmd_submit(args: argparse.Namespace) -> None:
    """Queue one scenario into a job directory (served by 'repro serve')."""
    from repro.service import JobDirectory

    jobdir = JobDirectory(args.job_dir)
    job_id = jobdir.submit(args.scenario, quick=args.quick, seed=args.seed)
    print(job_id)


def _cmd_status(args: argparse.Namespace) -> None:
    """Report a job directory: server heartbeat, jobs, store health."""
    import json

    doc = _job_status_doc(args.job_dir)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return
    service = doc.get("service")
    if service:
        svc = service.get("service", {})
        adm = service.get("admission", {})
        when = "stopped" if "stopped_at" in service else "running"
        print(
            f"service: {when} (pid {service.get('pid', '?')}) — "
            f"admission {adm.get('accepted', 0)}/{adm.get('offered', 0)} accepted, "
            f"{adm.get('rejected', 0)} rejected; "
            f"{svc.get('executed', 0)} executed, {svc.get('cached', 0)} cached, "
            f"{svc.get('shared', 0)} shared, {svc.get('replayed', 0)} replayed, "
            f"{svc.get('stalled', 0)} stalled, {svc.get('crashes', 0)} crashed"
        )
        store = service.get("store")
        if store:
            print(
                f"store: {store.get('entries', 0)} entries "
                f"({store.get('entry_bytes', 0)} B), "
                f"{store.get('corrupt', 0)} quarantined, "
                f"{store.get('swept_corrupt', 0)} swept at startup, "
                f"{store.get('evicted', 0)} evicted"
            )
    else:
        print("service: no server has written a heartbeat yet")
    rows = []
    for job in doc.get("jobs", []):
        report = job.get("report") or {}
        rows.append(
            (
                job.get("job", "?"),
                job.get("scenario") or "?",
                job.get("state", "?"),
                report.get("total", ""),
                report.get("executed", ""),
                report.get("cached", ""),
                report.get("shared", ""),
                report.get("replayed", ""),
                report.get("failed", ""),
            )
        )
    if rows:
        print()
        print(
            render_table(
                ["job", "scenario", "state", "points", "executed", "cached",
                 "shared", "replayed", "failed"],
                rows,
                title=f"Jobs in {doc['root']}",
            )
        )
    else:
        print(f"no jobs in {doc['root']}")


def _job_status_doc(job_dir: str) -> dict:
    from repro.service import JobDirectory

    return JobDirectory(job_dir).status()


_COMMANDS = {
    "table1": ("Table 1: thread-decomposition queue lengths/search depths", _cmd_table1),
    "fig1": ("Figure 1: motif match-list histograms", _cmd_fig1),
    "layout": ("Figure 2: cache-line packing arithmetic", _cmd_layout),
    "fig4": ("Figure 4: spatial locality, Sandy Bridge", lambda a: _locality_fig("spatial", "sandy-bridge", a)),
    "fig5": ("Figure 5: spatial locality, Broadwell", lambda a: _locality_fig("spatial", "broadwell", a)),
    "fig6": ("Figure 6: temporal locality, Sandy Bridge", lambda a: _locality_fig("temporal", "sandy-bridge", a)),
    "fig7": ("Figure 7: temporal locality, Broadwell", lambda a: _locality_fig("temporal", "broadwell", a)),
    "heater-micro": ("Section 4.3 heater micro-benchmark", _cmd_heater_micro),
    "fig8": ("Figure 8: AMG2013 scaling", _cmd_fig8),
    "fig9": ("Figure 9: MiniFE queue lengths", _cmd_fig9),
    "fig10": ("Figure 10: FDS factor speedups", _cmd_fig10),
    "ablation": ("Section 4.6 occupancy-mechanism ablation", _cmd_ablation),
    "offload": ("Section 2.2 hardware-offload capacity cliff", _cmd_offload),
    "traffic": ("Open-loop overload study: tail latency/rejection vs load", _cmd_traffic),
    "run": ("Run a scenario: a registered name or a TOML/JSON spec file", _cmd_run),
    "validate": ("Run all DESIGN.md section 7 reproduction criteria", _cmd_validate),
    "serve": ("Run the sweep service over a job directory", _cmd_serve),
    "submit": ("Queue a scenario into a job directory", _cmd_submit),
    "status": ("Show a job directory's server/job/store state", _cmd_status),
}

#: Commands that speak the file-based job-directory protocol, not sweeps.
_SERVICE_COMMANDS = ("serve", "submit", "status")


def _cmd_list(args: argparse.Namespace) -> None:
    from repro.scenarios import iter_axes, iter_scenarios

    print(render_table(["command", "regenerates"], [(k, v[0]) for k, v in _COMMANDS.items()]))
    print()
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None and getattr(args, "resume", False):
        cache_dir = DEFAULT_CACHE_DIR
    if cache_dir:
        from repro.exp import ResultStore

        stats = ResultStore(cache_dir).stats()
        print(
            render_table(
                ["entries", "bytes", "corrupt", "tmp"],
                [(stats.entries, stats.entry_bytes, stats.corrupt, stats.tmp)],
                title=f"Result store at {cache_dir}",
            )
        )
        print()
    print(
        render_table(
            ["scenario", "kind", "points", "description"],
            [
                (s.name, s.kind or "per-grid", s.total_points(), s.description or s.title)
                for s in iter_scenarios()
            ],
            title="Registered scenarios (repro run <name> or <file.toml|file.json>)",
        )
    )
    print()
    print(
        render_table(
            ["axis", "legal values", "meaning"],
            [(a.name, a.values, a.help) for a in iter_axes()],
            title="Scenario axes (keys of 'base' and 'matrix' sections)",
        )
    )
    print()
    from repro.mem.prefetch import PREFETCHER_CATALOGUE, PREFETCHER_MODES

    print(
        render_table(
            ["unit", "model"],
            list(PREFETCHER_CATALOGUE),
            title="Prefetch units (the 'prefetcher' axis composes them)",
        )
    )
    print()
    print(
        render_table(
            ["prefetcher mode", "configuration"],
            list(PREFETCHER_MODES),
            title="Prefetcher modes (values of the 'prefetcher' axis)",
        )
    )
    print()
    from repro.traffic.mode import TRAFFIC_BATCH_ENV, TRAFFIC_MODES

    print(
        render_table(
            ["traffic mode", "event loop"],
            list(TRAFFIC_MODES),
            title=f"Open-loop traffic modes (--traffic-batch / ${TRAFFIC_BATCH_ENV})",
        )
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser (shared flags live on parents)."""
    from repro._version import __version__
    from repro.matching.port import SCAN_BATCH_ENV
    from repro.mem.kernel import ALL_KERNELS, DEFAULT_KERNEL, MEM_KERNEL_ENV
    from repro.traffic.mode import TRAFFIC_BATCH_ENV

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of 'The Case for Semi-Permanent "
        "Cache Occupancy' (ICPP'18) on the simulated substrate.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Execution flags shared by every experiment command.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--quick", action="store_true", help="reduced sweeps")
    common.add_argument("--seed", type=int, default=None,
                        help="root RNG seed (default 0; 'repro run' defaults "
                        "to the scenario file's own seed)")
    common.add_argument("--mem-kernel", choices=sorted(ALL_KERNELS), default=None,
                        help="cache-kernel backend (default: "
                        f"${MEM_KERNEL_ENV} or '{DEFAULT_KERNEL}'); all "
                        "backends are bit-identical, 'vec' is fastest on "
                        "wide spans")
    common.add_argument("--scan-batch", choices=["on", "off"], default=None,
                        help="queue-scan spelling (default: "
                        f"${SCAN_BATCH_ENV} or 'on'); both are bit-identical, "
                        "'on' charges one engine call per contiguous run")
    common.add_argument("--traffic-batch", choices=["on", "off"], default=None,
                        help="open-loop traffic event loop (default: "
                        f"${TRAFFIC_BATCH_ENV} or 'on'); both are "
                        "bit-identical, 'on' runs the columnar fast path")

    # Runner/store/failure-policy flags shared by the sweep commands.
    sweep = argparse.ArgumentParser(add_help=False)
    sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run sweep points on N processes "
                       "(bit-identical to serial)")
    sweep.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="content-addressed result store; completed "
                       "points are reused, fresh ones written back")
    sweep.add_argument("--resume", action="store_true",
                       help=f"shorthand for --cache-dir {DEFAULT_CACHE_DIR}")
    sweep.add_argument("--retries", type=int, default=0, metavar="N",
                       help="re-attempt each failed point up to N times "
                       "(capped exponential backoff; point seeds are "
                       "never changed, so retried output is bit-identical)")
    sweep.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-point deadline in seconds; an overdue "
                       "pool worker is terminated and the point "
                       "rescheduled (serial: detected post-hoc)")
    sweep.add_argument("--on-error", choices=["fail-fast", "collect"],
                       default="fail-fast",
                       help="fail-fast: abort on the first exhausted "
                       "point (completed work is still flushed to the "
                       "store); collect: finish the sweep, report "
                       "failed points, and render what survived")
    sweep.add_argument("--report", metavar="FILE", default=None,
                       help="write the structured RunReport (attempts, "
                       "failures, supervision counters) as JSON")
    sweep.add_argument("--inject-faults", metavar="SPEC", default=None,
                       help="deterministic fault injection, e.g. "
                       "'crash@1,hang@2:1:0.5,corrupt@3' "
                       "(kind@index[:attempts[:seconds]]; kinds: crash, "
                       "raise, hang, corrupt); also via "
                       "REPRO_INJECT_FAULTS")

    # Rendering flags for the commands that print sweeps as panels.
    render = argparse.ArgumentParser(add_help=False)
    render.add_argument("--chart", action="store_true", help="ASCII charts too")
    render.add_argument("--export", metavar="DIR", default=None,
                        help="write each panel as CSV + JSON into DIR")
    render.add_argument("--mem-stats", action="store_true",
                        help="per-level hit-attribution table per variant")

    # Job-directory flag shared by the service commands.
    jobdir = argparse.ArgumentParser(add_help=False)
    jobdir.add_argument("--job-dir", metavar="DIR", default=DEFAULT_JOB_DIR,
                        help=f"file-based job directory (default {DEFAULT_JOB_DIR})")

    for name, (help_text, _) in _COMMANDS.items():
        parents = []
        if name not in _SERVICE_COMMANDS or name == "submit":
            parents.append(common)
        if name in _SWEEP_COMMANDS:
            parents.append(sweep)
        if name in _PANEL_COMMANDS:
            parents.append(render)
        if name in _SERVICE_COMMANDS:
            parents.append(jobdir)
        p = sub.add_parser(name, help=help_text, parents=parents)
        if name == "fig1":
            p.add_argument("--motif", choices=["amr", "sweep3d", "halo3d"], default=None)
        if name == "ablation":
            p.add_argument("--mem-stats", action="store_true",
                           help="per-level hit-attribution table per variant")
        if name == "run":
            p.add_argument("scenario", metavar="FILE|NAME",
                           help="a .toml/.json scenario file, or a registered "
                           "scenario name (see 'repro list')")
        if name == "serve":
            p.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="worker pool width shared by all submissions")
            p.add_argument("--cache-dir", metavar="DIR", default=None,
                           help="content-addressed result store shared by "
                           "all submissions (integrity-swept at startup)")
            p.add_argument("--resume", action="store_true",
                           help=f"shorthand for --cache-dir {DEFAULT_CACHE_DIR}")
            p.add_argument("--queue-capacity", type=int, default=8, metavar="N",
                           help="bounded submission queue (drop-tail beyond)")
            p.add_argument("--heartbeat", type=float, default=None, metavar="S",
                           help="quarantine workers silent for S seconds "
                           "(pool rebuilt, points rescheduled)")
            p.add_argument("--retries", type=int, default=0, metavar="N",
                           help="re-attempt failed/stalled points up to N "
                           "times (deterministic capped backoff)")
            p.add_argument("--max-store-bytes", type=int, default=None,
                           metavar="B", help="LRU-evict the store above B "
                           "bytes of entries")
            p.add_argument("--max-idle", type=float, default=None, metavar="S",
                           help="exit after S seconds with nothing queued or "
                           "running (default: serve until interrupted)")
            p.add_argument("--max-jobs", type=int, default=None, metavar="N",
                           help="exit after N jobs reach a terminal state")
            p.add_argument("--poll", type=float, default=0.1, metavar="S",
                           help="queue poll interval")
            p.add_argument("--inject-faults", metavar="SPEC", default=None,
                           help="service-level chaos, e.g. 'submit-crash@1,"
                           "worker-stall@3:0.5,store-rot@0' "
                           "(kind@n[:seconds]); also via "
                           "REPRO_INJECT_SERVICE_FAULTS")
        if name == "submit":
            p.add_argument("scenario", metavar="FILE|NAME",
                           help="a .toml/.json scenario file, or a registered "
                           "scenario name (see 'repro list')")
        if name == "status":
            p.add_argument("--json", action="store_true",
                           help="machine-readable status document")
    list_p = sub.add_parser("list", help="list commands, scenarios, and scenario axes")
    list_p.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="also report this result store's inventory")
    list_p.add_argument("--resume", action="store_true",
                        help=f"shorthand for --cache-dir {DEFAULT_CACHE_DIR}")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.errors import ScenarioError

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        _cmd_list(args)
        return 0
    if getattr(args, "mem_kernel", None):
        # Exported rather than threaded: every plan builder resolves the
        # kernel through resolve_kernel(), which consults this variable.
        import os

        from repro.mem.kernel import MEM_KERNEL_ENV

        os.environ[MEM_KERNEL_ENV] = args.mem_kernel
    if getattr(args, "scan_batch", None):
        # Same mechanism: every MatchEngine resolves the scan spelling
        # through resolve_scan_batch(), which consults this variable.
        import os

        from repro.matching.port import SCAN_BATCH_ENV

        os.environ[SCAN_BATCH_ENV] = args.scan_batch
    if getattr(args, "traffic_batch", None):
        # Same mechanism: the traffic driver resolves its event loop
        # through resolve_traffic_batch(), which consults this variable.
        import os

        from repro.traffic.mode import TRAFFIC_BATCH_ENV

        os.environ[TRAFFIC_BATCH_ENV] = args.traffic_batch
    from repro.errors import ConfigurationError

    try:
        _COMMANDS[args.command][1](args)
    except (ConfigurationError, ScenarioError) as exc:
        # Config mistakes (bad axis, unknown scenario, malformed file or
        # fault spec) are user errors, not tracebacks.
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
