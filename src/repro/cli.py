"""Command-line entry point: regenerate any table or figure of the paper.

Usage (installed as ``repro``, or ``python -m repro``)::

    repro list                 # what can be regenerated
    repro table1               # Table 1 rows
    repro fig1 [--motif amr]   # Figure 1 histograms
    repro layout               # Figure 2 cache-line packing arithmetic
    repro fig4 / fig5          # spatial locality panels (SNB / BDW)
    repro fig6 / fig7          # temporal locality panels (SNB / BDW)
    repro heater-micro         # section 4.3 random-access numbers
    repro fig8 / fig9 / fig10  # application studies
    repro ablation             # semi-permanent-occupancy proposal study

Every command accepts ``--quick`` to shrink sweeps for a fast look.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import render_series_table, render_table


def _cmd_table1(args: argparse.Namespace) -> None:
    from repro.decomp.bench import table1

    trials = 3 if args.quick else 10
    rows = [r.as_row() + (round(r.depth_std, 2),) for r in table1(trials=trials, seed=args.seed)]
    print(
        render_table(
            ["Decomp.", "Stencil", "tr", "ts", "Length", "Search depth", "std"],
            rows,
            title="Table 1: Queue lengths and mean search depths",
        )
    )


def _cmd_fig1(args: argparse.Namespace) -> None:
    from repro.motifs import MOTIFS

    names = [args.motif] if args.motif else list(MOTIFS)
    for name in names:
        cls = MOTIFS[name]
        motif = cls(seed=args.seed, sim_ranks=512 if args.quick else None)
        result = motif.run()
        rows = [
            (label, posted, unexpected)
            for (label, posted), (_, unexpected) in zip(
                result.posted_buckets(), result.unexpected_buckets()
            )
        ]
        print(
            render_table(
                ["Matchlist Length Bucket", "posted", "unexpected"],
                rows,
                title=f"Figure 1 ({name}): match list sizes at {result.nranks // 1024}K ranks",
            )
        )
        print()


def _cmd_layout(args: argparse.Namespace) -> None:
    from repro.matching.entry import (
        LLA_NODE_OVERHEAD,
        PRQ_ENTRY_BYTES,
        UMQ_ENTRY_BYTES,
        lla_entries_per_line,
        lla_node_bytes,
    )

    rows = []
    for label, entry in (("PRQ", PRQ_ENTRY_BYTES), ("UMQ", UMQ_ENTRY_BYTES)):
        per_line = lla_entries_per_line(entry)
        rows.append((label, entry, LLA_NODE_OVERHEAD, per_line, lla_node_bytes(per_line, entry)))
    print(
        render_table(
            ["queue", "entry bytes", "node overhead", "entries / 64B line", "node bytes"],
            rows,
            title="Figure 2: packing match entries into 64-byte cache lines",
        )
    )


_PANEL_COUNTER = {"n": 0}


def _render_panel(sweep, args: argparse.Namespace) -> None:
    print(render_series_table(sweep))
    if getattr(args, "mem_stats", False) and sweep.meta.get("mem_stats"):
        from repro.analysis.report import render_mem_stats_table

        print()
        print(render_mem_stats_table(sweep.meta["mem_stats"]))
    if getattr(args, "chart", False):
        from repro.analysis.plot import render_ascii_chart

        print()
        print(render_ascii_chart(sweep))
    export_dir = getattr(args, "export", None)
    if export_dir:
        from pathlib import Path

        from repro.analysis.export import write_sweep

        Path(export_dir).mkdir(parents=True, exist_ok=True)
        _PANEL_COUNTER["n"] += 1
        stem = f"{args.command}_panel{_PANEL_COUNTER['n']}"
        for suffix in (".csv", ".json"):
            path = Path(export_dir) / (stem + suffix)
            write_sweep(path, sweep)
            print(f"[exported {path}]")
    print()


def _fig_spatial(arch_name: str, args: argparse.Namespace) -> None:
    from repro.arch import get_arch
    from repro.bench.figures import fig_spatial_msg_size, fig_spatial_search_length

    arch = get_arch(arch_name)
    iters = 3 if args.quick else 10
    sizes = [1, 64, 1024, 65536, 1 << 20] if args.quick else None
    depths = [1, 8, 64, 512, 1024, 4096] if args.quick else None
    _render_panel(fig_spatial_msg_size(arch, msg_sizes=sizes, iterations=iters), args)
    _render_panel(
        fig_spatial_search_length(arch, msg_bytes=1, depths=depths, iterations=iters), args
    )
    _render_panel(
        fig_spatial_search_length(arch, msg_bytes=4096, depths=depths, iterations=iters), args
    )


def _fig_temporal(arch_name: str, args: argparse.Namespace) -> None:
    from repro.arch import get_arch
    from repro.bench.figures import fig_temporal_msg_size, fig_temporal_search_length

    arch = get_arch(arch_name)
    iters = 3 if args.quick else 10
    sizes = [1, 64, 1024, 65536, 1 << 20] if args.quick else None
    depths = [1, 8, 64, 512, 1024, 4096] if args.quick else None
    _render_panel(fig_temporal_msg_size(arch, msg_sizes=sizes, iterations=iters), args)
    _render_panel(
        fig_temporal_search_length(arch, msg_bytes=1, depths=depths, iterations=iters), args
    )
    _render_panel(
        fig_temporal_search_length(arch, msg_bytes=4096, depths=depths, iterations=iters), args
    )


def _cmd_heater_micro(args: argparse.Namespace) -> None:
    from repro.arch import BROADWELL, SANDY_BRIDGE
    from repro.bench.heater_micro import heater_microbenchmark

    rows = []
    paper = {"sandy-bridge": (47.5, 22.9), "broadwell": (38.5, 22.8)}
    for arch in (SANDY_BRIDGE, BROADWELL):
        r = heater_microbenchmark(arch, samples=512 if args.quick else 2048, seed=args.seed)
        cold_p, hot_p = paper[arch.name]
        rows.append((arch.name, round(r.cold_ns, 1), round(r.hot_ns, 1), cold_p, hot_p))
    print(
        render_table(
            ["arch", "cold ns", "hot ns", "paper cold", "paper hot"],
            rows,
            title="Section 4.3: cache heater random-access micro-benchmark",
        )
    )


def _cmd_fig8(args: argparse.Namespace) -> None:
    from repro.apps import fig8_amg_scaling

    sweep = fig8_amg_scaling(seed=args.seed)
    print(render_series_table(sweep))
    base, lla = sweep.series["Baseline"], sweep.series["LLA"]
    pct = 100.0 * (base.at(1024) - lla.at(1024)) / base.at(1024)
    print(f"\nLLA runtime improvement at 1024 ranks: {pct:.2f}% (paper: 2.9%)")


def _cmd_fig9(args: argparse.Namespace) -> None:
    from repro.apps import fig9_minife_lengths

    sweep = fig9_minife_lengths(seed=args.seed)
    print(render_series_table(sweep))
    base, lla = sweep.series["Baseline"], sweep.series["LLA"]
    pct = 100.0 * (base.at(2048) - lla.at(2048)) / base.at(2048)
    print(f"\nLLA runtime improvement at queue length 2048: {pct:.2f}% (paper: 2.3%)")


def _cmd_fig10(args: argparse.Namespace) -> None:
    from repro.apps import fig10_fds_speedups

    scales = (1024, 4096, 8192) if args.quick else None
    sweep = fig10_fds_speedups(scales=scales or (128, 256, 512, 1024, 2048, 4096, 8192), seed=args.seed)
    print(render_series_table(sweep))


def _cmd_ablation(args: argparse.Namespace) -> None:
    from repro.arch import BROADWELL, SANDY_BRIDGE
    from repro.bench.osu import OsuConfig, osu_bandwidth
    from repro.bench.figures import default_link
    from repro.mem.cache import WayPartition
    from repro.mem.hierarchy import NetworkCacheConfig

    rows = []
    mem_stats = {}
    for arch in (SANDY_BRIDGE, BROADWELL):
        link = default_link(arch)
        variants = [
            ("baseline", {}),
            ("hot caching", {"heated": True}),
            ("CAT partition (4 ways)", {"partition": WayPartition(network_ways=4)}),
            ("dedicated net cache 2KiB", {"network_cache": NetworkCacheConfig()}),
        ]
        for label, extra in variants:
            cfg = OsuConfig(
                arch=arch,
                link=link,
                queue_family="baseline",
                msg_bytes=1,
                search_depth=64 if args.quick else 512,
                iterations=3 if args.quick else 10,
                seed=args.seed,
                **extra,
            )
            point = osu_bandwidth(cfg)
            rows.append((arch.name, label, round(point.mibps, 4)))
            mem_stats[f"{arch.name}: {label}"] = point.mem_stats
    print(
        render_table(
            ["arch", "occupancy mechanism", "bandwidth (MiBps), 1B msgs"],
            rows,
            title="Semi-permanent cache occupancy proposals (section 4.6)",
        )
    )
    if getattr(args, "mem_stats", False):
        from repro.analysis.report import render_mem_stats_table

        print()
        print(render_mem_stats_table(mem_stats))


def _cmd_offload(args: argparse.Namespace) -> None:
    import numpy as np

    from repro.arch import SANDY_BRIDGE
    from repro.matching import Envelope, MatchEngine, MatchItem, make_pattern, make_queue
    from repro.offload import BXI_LIKE, PSM2_LIKE, OffloadedMatchQueue

    depths = (64, 1024, 4000, 16384) if not args.quick else (64, 4000)
    rows = []
    for nic_label, nic in (("software-only", None), ("psm2-like", PSM2_LIKE), ("bxi-like", BXI_LIKE)):
        for depth in depths:
            hier = SANDY_BRIDGE.build_hierarchy()
            engine = MatchEngine(hier)
            q = make_queue("baseline", port=engine, rng=np.random.default_rng(args.seed + 1))
            if nic is not None:
                q = OffloadedMatchQueue(q, nic, engine=engine, ghz=SANDY_BRIDGE.ghz)
            for seq in range(depth):
                q.post(make_pattern(0, 10_000 + seq, 0, seq=seq))
            q.post(make_pattern(1, 7, 0, seq=depth + 5))
            hier.flush()
            probe = MatchItem.from_envelope(Envelope(1, 7, 0), seq=999_999)
            _, cycles = engine.timed(lambda: q.match_remove(probe))
            rows.append((nic_label, depth, round(cycles)))
    print(
        render_table(
            ["matching engine", "queue depth", "cycles/search"],
            rows,
            title="Hardware matching offload and its capacity cliff (section 2.2)",
        )
    )


_COMMANDS = {
    "table1": ("Table 1: thread-decomposition queue lengths/search depths", _cmd_table1),
    "fig1": ("Figure 1: motif match-list histograms", _cmd_fig1),
    "layout": ("Figure 2: cache-line packing arithmetic", _cmd_layout),
    "fig4": ("Figure 4: spatial locality, Sandy Bridge", lambda a: _fig_spatial("sandy-bridge", a)),
    "fig5": ("Figure 5: spatial locality, Broadwell", lambda a: _fig_spatial("broadwell", a)),
    "fig6": ("Figure 6: temporal locality, Sandy Bridge", lambda a: _fig_temporal("sandy-bridge", a)),
    "fig7": ("Figure 7: temporal locality, Broadwell", lambda a: _fig_temporal("broadwell", a)),
    "heater-micro": ("Section 4.3 heater micro-benchmark", _cmd_heater_micro),
    "fig8": ("Figure 8: AMG2013 scaling", _cmd_fig8),
    "fig9": ("Figure 9: MiniFE queue lengths", _cmd_fig9),
    "fig10": ("Figure 10: FDS factor speedups", _cmd_fig10),
    "ablation": ("Section 4.6 occupancy-mechanism ablation", _cmd_ablation),
    "offload": ("Section 2.2 hardware-offload capacity cliff", _cmd_offload),
    "validate": ("Run all DESIGN.md section 7 reproduction criteria", None),
}


def _cmd_validate(args: argparse.Namespace) -> None:
    from repro.validation import run_validation

    report = run_validation(quick=args.quick)
    print(report.render())
    if not report.passed:
        sys.exit(1)


_COMMANDS["validate"] = (_COMMANDS["validate"][0], _cmd_validate)


def _cmd_list(args: argparse.Namespace) -> None:
    print(render_table(["command", "regenerates"], [(k, v[0]) for k, v in _COMMANDS.items()]))


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of 'The Case for Semi-Permanent "
        "Cache Occupancy' (ICPP'18) on the simulated substrate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, (help_text, _) in _COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--quick", action="store_true", help="reduced sweeps")
        p.add_argument("--seed", type=int, default=0)
        if name == "fig1":
            p.add_argument("--motif", choices=["amr", "sweep3d", "halo3d"], default=None)
        if name in ("fig4", "fig5", "fig6", "fig7"):
            p.add_argument("--chart", action="store_true", help="ASCII charts too")
            p.add_argument("--export", metavar="DIR", default=None,
                           help="write each panel as CSV + JSON into DIR")
        if name in ("fig4", "fig5", "fig6", "fig7", "ablation"):
            p.add_argument("--mem-stats", action="store_true",
                           help="per-level hit-attribution table per variant")
    sub.add_parser("list", help="list available commands")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        _cmd_list(args)
        return 0
    _COMMANDS[args.command][1](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
