"""Thread-decomposition benchmark (paper section 2.3, Table 1).

A receiving MPI process is decomposed into a grid of threads; each thread
posts receives for the messages it expects from neighbouring processes'
threads under a given stencil. A proxy process sends the matching messages
from one thread per distinct external neighbour cell. Posting and send
orders are scrambled by scheduling nondeterminism.

Three of Table 1's columns are pure combinatorics, which we compute exactly:

* ``tr``  -- threads with at least one external neighbour (posting threads);
* ``ts``  -- distinct external neighbour cells (proxy sending threads);
* ``length`` -- (thread, external cell) pairs == messages == match-list
  entries.

The fourth, mean search depth, depends on the random interleavings and is
measured by running the benchmark (:func:`~repro.decomp.bench.run_trials`).
"""

from repro.decomp.stencil import STENCILS, Stencil, get_stencil
from repro.decomp.grid import BlockDecomposition, DecompositionCounts
from repro.decomp.bench import DecompResult, run_decomposition, run_trials, TABLE1_ROWS

__all__ = [
    "BlockDecomposition",
    "DecompResult",
    "DecompositionCounts",
    "STENCILS",
    "Stencil",
    "TABLE1_ROWS",
    "get_stencil",
    "run_decomposition",
    "run_trials",
]
