"""The Table 1 benchmark: multithreaded posting + scrambled sends.

Protocol (paper section 2.3): every receiving thread posts one receive per
external neighbour cell during a BSP communication phase; posting order
across threads is nondeterministic (scheduling/lock contention). The proxy
process then issues the matching sends, also from concurrent threads, so
arrival order is a second random interleaving. Each message must search the
receiver's single match list; Table 1 reports the mean search depth over ten
trials.

Messages are identified as in the real benchmark: the source rank is the
proxy process, and the tag encodes the (thread, neighbour-cell) pair, so
matching is by tag within one source — forcing genuine list traversal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.decomp.grid import BlockDecomposition, DecompositionCounts
from repro.decomp.stencil import get_stencil
from repro.matching.factory import make_queue
from repro.mpi.process import MpiProcess
from repro.mpi.message import Message
from repro.matching.envelope import Envelope
from repro.mpi.threads import interleave_streams, shuffled

#: The exact decomposition/stencil rows of Table 1.
TABLE1_ROWS: Tuple[Tuple[Tuple[int, ...], str], ...] = (
    ((32, 32), "5pt"),
    ((64, 32), "5pt"),
    ((32, 32), "9pt"),
    ((64, 32), "9pt"),
    ((8, 8, 4), "7pt"),
    ((1, 1, 128), "7pt"),
    ((1, 1, 256), "7pt"),
    ((8, 8, 4), "27pt"),
    ((1, 1, 128), "27pt"),
    ((1, 1, 256), "27pt"),
)

#: Rank of the proxy sending process in the benchmark's 2-process world.
PROXY_RANK = 1


@dataclass
class DecompResult:
    """One Table 1 row: exact combinatorics + measured mean search depth."""

    dims: Tuple[int, ...]
    stencil: str
    counts: DecompositionCounts
    mean_search_depth: float
    depth_std: float
    trials: int

    def as_row(self) -> Tuple[str, str, int, int, int, float]:
        """The Table 1 row tuple (decomp, stencil, tr, ts, length, depth)."""
        return (
            "x".join(str(d) for d in self.dims),
            self.stencil,
            self.counts.receiving_threads,
            self.counts.sending_threads,
            self.counts.list_length,
            self.mean_search_depth,
        )


def _pair_tag(pair_index: int) -> int:
    return 1000 + pair_index


def run_decomposition(
    dims: Sequence[int],
    stencil_name: str,
    rng: np.random.Generator,
    *,
    queue_family: str = "baseline",
) -> float:
    """One trial: returns the mean PRQ search depth over all messages."""
    block = BlockDecomposition(tuple(dims))
    stencil = get_stencil(stencil_name)
    by_thread = block.pairs_by_thread(stencil)
    # Assign every (thread, cell) pair a unique tag.
    pair_ids: Dict[Tuple, int] = {}
    for thread, cells in sorted(by_thread.items()):
        for cell in cells:
            pair_ids[(thread, cell)] = len(pair_ids)

    proc = MpiProcess(0, make_queue(queue_family), make_queue(queue_family, entry_bytes=16))

    # Phase 1: threads post receives concurrently (random interleaving).
    post_streams: List[List[int]] = [
        [pair_ids[(thread, cell)] for cell in cells]
        for thread, cells in sorted(by_thread.items())
    ]
    for pair_index in interleave_streams(post_streams, rng):
        proc.post_recv(src=PROXY_RANK, tag=_pair_tag(pair_index), cid=0)

    # Phase 2: the proxy's sending threads issue the messages, one sending
    # thread per distinct external cell, again randomly interleaved.
    by_sender = block.pairs_by_sender(stencil)
    send_streams: List[List[int]] = [
        shuffled([pair_ids[(thread, cell)] for thread in threads], rng)
        for cell, threads in sorted(by_sender.items())
    ]
    matched = 0
    for pair_index in interleave_streams(send_streams, rng):
        env = Envelope(src=PROXY_RANK, tag=_pair_tag(pair_index), cid=0)
        req = proc.handle_arrival(Message(env, nbytes=8))
        assert req is not None, "benchmark message must match a posted receive"
        matched += 1
    assert matched == len(pair_ids)
    return proc.mean_prq_search_depth


def run_trials(
    dims: Sequence[int],
    stencil_name: str,
    *,
    trials: int = 10,
    seed: int = 0,
    queue_family: str = "baseline",
) -> DecompResult:
    """Table 1 protocol: average search depth over *trials* runs."""
    block = BlockDecomposition(tuple(dims))
    stencil = get_stencil(stencil_name)
    counts = block.counts(stencil)
    depths = []
    for trial in range(trials):
        rng = np.random.default_rng(seed * 10_007 + trial)
        depths.append(run_decomposition(dims, stencil_name, rng, queue_family=queue_family))
    arr = np.asarray(depths)
    return DecompResult(
        dims=tuple(dims),
        stencil=stencil.name,
        counts=counts,
        mean_search_depth=float(arr.mean()),
        depth_std=float(arr.std()),
        trials=trials,
    )


def table1(
    *,
    trials: int = 10,
    seed: int = 0,
    rows: Optional[Sequence[Tuple[Tuple[int, ...], str]]] = None,
) -> List[DecompResult]:
    """Reproduce all of Table 1 (or a subset of its rows)."""
    out = []
    for dims, stencil in (rows if rows is not None else TABLE1_ROWS):
        out.append(run_trials(dims, stencil, trials=trials, seed=seed))
    return out
