"""Block decompositions and their exact external-communication combinatorics."""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Tuple

from repro.decomp.stencil import Stencil
from repro.errors import ConfigurationError

Coord = Tuple[int, ...]


@dataclass(frozen=True)
class DecompositionCounts:
    """The combinatorial columns of Table 1."""

    receiving_threads: int  # tr
    sending_threads: int  # ts
    list_length: int  # messages == match-list entries


class BlockDecomposition:
    """A process decomposed into a dense block of threads.

    The process's threads occupy the cells of ``dims`` (e.g. 32x32 or
    8x8x4); the surrounding space belongs to identically-decomposed
    neighbouring processes, so any stencil neighbour outside the block is an
    *external* cell whose message must cross the matching engine.
    """

    def __init__(self, dims: Tuple[int, ...]) -> None:
        if not dims or any(d < 1 for d in dims):
            raise ConfigurationError(f"invalid decomposition dims {dims}")
        self.dims = tuple(int(d) for d in dims)

    @property
    def ndim(self) -> int:
        """Dimensionality of the block."""
        return len(self.dims)

    @property
    def nthreads(self) -> int:
        """Total threads in the block."""
        out = 1
        for d in self.dims:
            out *= d
        return out

    def threads(self) -> List[Coord]:
        """All thread coordinates in the block."""
        return list(product(*(range(d) for d in self.dims)))

    def inside(self, coord: Coord) -> bool:
        """True if *coord* lies within the block."""
        return all(0 <= c < d for c, d in zip(coord, self.dims))

    def external_pairs(self, stencil: Stencil) -> List[Tuple[Coord, Coord]]:
        """All (thread, external neighbour cell) pairs — one message each."""
        if stencil.ndim != self.ndim:
            raise ConfigurationError(
                f"{stencil.name} is {stencil.ndim}-D but decomposition is "
                f"{self.ndim}-D"
            )
        pairs: List[Tuple[Coord, Coord]] = []
        for thread in self.threads():
            for off in stencil.offsets:
                neighbour = tuple(t + o for t, o in zip(thread, off))
                if not self.inside(neighbour):
                    pairs.append((thread, neighbour))
        return pairs

    def counts(self, stencil: Stencil) -> DecompositionCounts:
        """Exact tr / ts / length for Table 1."""
        pairs = self.external_pairs(stencil)
        receiving = {thread for thread, _ in pairs}
        sending = {cell for _, cell in pairs}
        return DecompositionCounts(
            receiving_threads=len(receiving),
            sending_threads=len(sending),
            list_length=len(pairs),
        )

    def pairs_by_thread(self, stencil: Stencil) -> Dict[Coord, List[Coord]]:
        """External neighbour cells grouped per receiving thread, in a
        deterministic order (a thread posts its receives in program order)."""
        grouped: Dict[Coord, List[Coord]] = {}
        for thread, cell in self.external_pairs(stencil):
            grouped.setdefault(thread, []).append(cell)
        return grouped

    def pairs_by_sender(self, stencil: Stencil) -> Dict[Coord, List[Coord]]:
        """Receiving threads grouped per external sending cell."""
        grouped: Dict[Coord, List[Coord]] = {}
        for thread, cell in self.external_pairs(stencil):
            grouped.setdefault(cell, []).append(thread)
        return grouped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "x".join(str(d) for d in self.dims)
