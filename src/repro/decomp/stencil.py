"""Stencils used in Table 1: 5pt/9pt (2-D) and 7pt/27pt (3-D)."""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Stencil:
    """A named set of relative neighbour offsets (excluding the origin)."""

    name: str
    ndim: int
    offsets: Tuple[Tuple[int, ...], ...]

    @property
    def npoints(self) -> int:
        """Point count including the centre (the stencil's conventional name)."""
        return len(self.offsets) + 1


def _von_neumann(ndim: int) -> Tuple[Tuple[int, ...], ...]:
    """Face neighbours only (+-1 along each axis)."""
    offsets = []
    for axis in range(ndim):
        for sign in (-1, 1):
            off = [0] * ndim
            off[axis] = sign
            offsets.append(tuple(off))
    return tuple(offsets)


def _moore(ndim: int) -> Tuple[Tuple[int, ...], ...]:
    """All neighbours with Chebyshev distance 1."""
    return tuple(
        off for off in product((-1, 0, 1), repeat=ndim) if any(off)
    )


STENCILS = {
    "5pt": Stencil("5pt", 2, _von_neumann(2)),
    "9pt": Stencil("9pt", 2, _moore(2)),
    "7pt": Stencil("7pt", 3, _von_neumann(3)),
    "27pt": Stencil("27pt", 3, _moore(3)),
}


def get_stencil(name: str) -> Stencil:
    """Look up a stencil preset by name."""
    try:
        return STENCILS[name.strip().lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown stencil {name!r}; known: {sorted(STENCILS)}"
        ) from None
