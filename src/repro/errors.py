"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all repro errors."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class ScenarioError(ConfigurationError):
    """A declarative scenario spec failed validation or expansion.

    Raised by :mod:`repro.scenarios` for malformed scenario mappings:
    unknown axes, values outside an axis's legal set, bad matrix shapes,
    series templates referencing axes that do not exist, or point kinds
    with no registered producer. Subclasses :class:`ConfigurationError`
    so existing callers that guard plan construction keep working.
    """


class AllocationError(ReproError):
    """The simulated allocator could not satisfy a request."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class MatchingError(ReproError):
    """An MPI matching invariant was violated (e.g. FIFO ordering)."""


class ExecutionError(ReproError):
    """The sweep execution layer failed (pool breakage, bad policy...)."""


class PointExecutionError(ExecutionError):
    """One plan point exhausted its attempts (or aborted under fail_fast).

    Carries the :class:`~repro.exp.plan.PointSpec`, the number of attempts
    made, and — via ``raise ... from`` — the causal chain back to the last
    worker exception, so a multi-hour sweep that dies names the exact point,
    how hard the runner tried, and why the final attempt failed.
    """

    def __init__(self, message: str, *, spec=None, attempts: int = 0):
        super().__init__(message)
        self.spec = spec
        self.attempts = attempts


class ServiceError(ExecutionError):
    """The long-running sweep service failed (bad job, dead server...)."""


class AdmissionError(ServiceError):
    """A submission was rejected by the service's drop-tail admission.

    Raised by :meth:`~repro.service.SweepService.submit` when the bounded
    submission queue is full — the service-layer analogue of a
    :class:`~repro.matching.bounded.BoundedQueue` rejecting a post at a
    full match queue. Callers that prefer a verdict to an exception use
    ``try_submit``.
    """


class InjectedFaultError(SimulationError):
    """A deterministic fault raised by :mod:`repro.faults` injection.

    Subclasses :class:`SimulationError` so injected failures exercise the
    exact handling path a real mid-simulation fault would take.
    """


class MpiUsageError(ReproError):
    """The mini-MPI API was used incorrectly (bad rank, finished request...)."""
