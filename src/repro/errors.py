"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all repro errors."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class AllocationError(ReproError):
    """The simulated allocator could not satisfy a request."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class MatchingError(ReproError):
    """An MPI matching invariant was violated (e.g. FIFO ordering)."""


class MpiUsageError(ReproError):
    """The mini-MPI API was used incorrectly (bad rank, finished request...)."""
