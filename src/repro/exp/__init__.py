"""Sweep orchestration: declarative plans, parallel runner, result store.

The paper's figures are grids of independent simulation points; this
package makes those grids first-class:

* :mod:`repro.exp.plan` — :class:`PointSpec` / :class:`ExperimentPlan`
  describe a grid (and reduce results in plan order, the parallel-equals-
  serial guarantee).
* :mod:`repro.exp.producers` — how each point kind executes, with
  worker-side construction of the real config objects.
* :mod:`repro.exp.runner` — :class:`Runner` runs a plan serially or on a
  process pool (``--jobs N``), with progress callbacks, dedup, and
  supervised execution: per-point timeouts, retries with deterministic
  backoff, crash recovery, and a ``fail_fast``/``collect`` failure policy
  reported through :class:`RunReport` (fault injection: :mod:`repro.faults`).
* :mod:`repro.exp.store` — :class:`ResultStore`, a content-addressed
  on-disk cache (``--cache-dir`` / ``--resume``).
"""

from repro.exp.plan import (
    ExperimentPlan,
    PointResult,
    PointSpec,
    derive_seed,
)
from repro.exp.producers import (
    encode_arch,
    execute_point,
    producer_for,
    producer_kinds,
    register_producer,
    resolve_arch,
)
from repro.exp.runner import (
    REPORT_SCHEMA,
    AttemptRecord,
    PointFailure,
    Runner,
    RunReport,
    RunStats,
    backoff_delay,
)
from repro.exp.store import STORE_SCHEMA, ResultStore, StoreStats, default_salt

__all__ = [
    "AttemptRecord",
    "ExperimentPlan",
    "PointFailure",
    "PointResult",
    "PointSpec",
    "REPORT_SCHEMA",
    "ResultStore",
    "RunReport",
    "RunStats",
    "Runner",
    "STORE_SCHEMA",
    "StoreStats",
    "backoff_delay",
    "default_salt",
    "derive_seed",
    "encode_arch",
    "execute_point",
    "producer_for",
    "producer_kinds",
    "register_producer",
    "resolve_arch",
]
