"""Declarative experiment plans (the grid, not the loop).

Every figure of the paper is a *grid* of independent simulation points —
variants x message sizes, mechanisms x rank counts, apps x scales. Before
this subsystem each driver walked its grid with a private nested ``for``
loop; here the grid is first-class data:

* :class:`PointSpec` — one fully-resolved simulation point: which producer
  runs it (``kind``), which series/x cell of the figure it lands in, its
  scalar parameters, and its seed. Specs are frozen, hashable, picklable
  and JSON-stable, so the same object drives serial execution, process
  pools, and the content-addressed :class:`~repro.exp.store.ResultStore`.
* :class:`PointResult` — the producer's answer (y, yerr, per-level
  ``mem_stats`` attribution, producer extras).
* :class:`ExperimentPlan` — an ordered list of specs plus the figure's
  axis labels, with :meth:`ExperimentPlan.reduce` folding a result list
  into a :class:`~repro.analysis.series.Sweep` **in plan order** — which
  is what makes parallel execution bit-identical to serial: workers may
  finish in any order, the reduction never sees that order.

Seeds: :func:`derive_seed` gives plans a deterministic per-point seed
stream from one root seed. The paper-figure plans intentionally do *not*
decorrelate points — every point of a figure shares the root seed, exactly
as the historical serial drivers ran them, so the locked EXPERIMENTS.md
numbers are unchanged. Plans that need independent points (trial
replication, randomized ablations) opt in via ``derive_seed``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.series import Sweep
from repro.errors import ConfigurationError
from repro.mem.result import LevelStats

#: Parameter values a spec may carry: JSON scalars and flat tuples of them.
_SCALAR_TYPES = (str, int, float, bool, type(None))


def _freeze_value(key: str, value):
    if isinstance(value, bool) or value is None or isinstance(value, (str, int, float)):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(key, v) for v in value)
    raise ConfigurationError(
        f"PointSpec parameter {key!r} must be a JSON scalar or a flat "
        f"sequence of them, got {type(value).__name__}"
    )


def derive_seed(root: int, *parts) -> int:
    """A deterministic 31-bit seed from a root seed and any hashable labels.

    Stable across processes and Python versions (no ``hash()``; a SHA-256
    over the canonical repr), so a plan built in the CLI and a point
    executed in a pool worker agree on every seed.
    """
    digest = hashlib.sha256(repr((int(root),) + parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little") & 0x7FFF_FFFF


@dataclass(frozen=True)
class PointSpec:
    """One fully-resolved point of an experiment grid.

    ``kind`` names a producer registered in :mod:`repro.exp.producers`;
    ``params`` (sorted key/value pairs) plus ``seed`` are everything the
    producer needs to reconstruct its config worker-side. ``series``/``x``
    are presentation only: they say where the result lands in the reduced
    sweep and are deliberately excluded from the content hash, so two
    panels that share a configuration share a cache entry.
    """

    kind: str
    series: str
    x: float
    params: Tuple[Tuple[str, object], ...]
    seed: int = 0

    @classmethod
    def make(cls, kind: str, series: str, x: float, *, seed: int = 0, **params) -> "PointSpec":
        """Build a spec from keyword parameters (sorted + frozen)."""
        frozen = tuple(sorted((k, _freeze_value(k, v)) for k, v in params.items()))
        return cls(kind=kind, series=series, x=float(x), params=frozen, seed=int(seed))

    @property
    def kwargs(self) -> Dict[str, object]:
        """The parameters as a plain dict (producer-side view)."""
        return dict(self.params)

    def content(self) -> Dict[str, object]:
        """The identity of the *computation* (not its presentation)."""
        return {
            "kind": self.kind,
            "params": [[k, list(v) if isinstance(v, tuple) else v] for k, v in self.params],
            "seed": self.seed,
        }

    def content_key(self) -> str:
        """Stable SHA-256 hex digest of :meth:`content` (the cache key)."""
        text = json.dumps(self.content(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class PointResult:
    """What one executed point produced."""

    y: float
    yerr: float = 0.0
    #: Per-level hit attribution of the point's measured loads (merged into
    #: the sweep's per-series accumulator by the reducer), or None when the
    #: producer has no memory telemetry.
    mem_stats: Optional[LevelStats] = None
    #: Producer-specific scalars (latency, hot_ns, runtime decomposition...).
    extras: Dict[str, float] = field(default_factory=dict)
    #: Wall-clock seconds the producer took (filled by the runner; not part
    #: of equality so cached and fresh results compare equal).
    elapsed_s: float = field(default=0.0, compare=False)


@dataclass
class ExperimentPlan:
    """An ordered grid of points plus the axes they reduce onto."""

    title: str
    xlabel: str = "x"
    ylabel: str = "y"
    points: List[PointSpec] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def add(self, spec: PointSpec) -> PointSpec:
        """Append one spec (plan order is reduction order)."""
        self.points.append(spec)
        return spec

    def add_point(self, kind: str, series: str, x: float, *, seed: int = 0, **params) -> PointSpec:
        """Build a :class:`PointSpec` and append it."""
        return self.add(PointSpec.make(kind, series, x, seed=seed, **params))

    def __len__(self) -> int:
        return len(self.points)

    def fingerprint(self) -> str:
        """Stable SHA-256 over the full point list (content *and* order).

        Unlike per-point content keys this covers presentation and
        ordering too — it identifies *this exact plan*, which is what a
        checkpoint journal must match before its completed-point records
        can be replayed into a restarted submission.
        """
        doc = [
            [spec.series, spec.x, spec.content()] for spec in self.points
        ]
        text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def series_labels(self) -> List[str]:
        """Distinct series labels in first-appearance (plan) order."""
        return list(dict.fromkeys(spec.series for spec in self.points))

    def reduce(
        self, results: Sequence[Optional[PointResult]], *, allow_missing: bool = False
    ) -> Sweep:
        """Fold a result list (plan order) into a sweep.

        This is the serial/parallel convergence point: whatever order the
        points *ran* in, they are folded strictly in plan order, so the
        sweep — series insertion order, per-series x order, and the
        ``meta["mem_stats"]`` merge order — is identical either way.

        ``allow_missing`` is the ``on_error="collect"`` contract: a None
        result (a failed point) is skipped instead of raising, so a sweep
        with a poisoned point still reduces — minus that point.
        """
        if len(results) != len(self.points):
            raise ConfigurationError(
                f"plan has {len(self.points)} points but got {len(results)} results"
            )
        sweep = Sweep(title=self.title, xlabel=self.xlabel, ylabel=self.ylabel)
        sweep.meta.update(self.meta)
        for spec, result in zip(self.points, results):
            if result is None:
                if allow_missing:
                    continue
                raise ConfigurationError(f"point {spec.series!r}@{spec.x} has no result")
            series = sweep.series_for(spec.series)
            series.add(spec.x, result.y, result.yerr)
            if result.mem_stats is not None:
                # Created on first use so sweeps without memory telemetry
                # (the app figures) keep their historical bare meta.
                mem_stats = sweep.meta.setdefault("mem_stats", {})
                acc = mem_stats.get(spec.series)
                if acc is None:
                    mem_stats[spec.series] = result.mem_stats.copy()
                else:
                    acc.merge(result.mem_stats)
        return sweep


#: Signature of a progress callback: (done, total, spec, result, cached).
#: ``result`` is None for a point that failed under ``on_error="collect"``.
ProgressFn = Callable[[int, int, PointSpec, Optional[PointResult], bool], None]
