"""Point producers: how one :class:`~repro.exp.plan.PointSpec` executes.

A producer takes the spec's flat scalar parameters, rebuilds the real
config objects (``ArchSpec``, ``LinkSpec``, ``OsuConfig``, ``AppConfig``)
**inside the executing process** — serial caller or pool worker alike —
runs the simulation, and returns a :class:`~repro.exp.plan.PointResult`.
Worker-side construction is what keeps specs tiny, picklable, and
content-hashable: the spec carries names and numbers, never live engines.

Heavy benchmark modules are imported lazily inside each producer so that
importing :mod:`repro.exp` (e.g. from the CLI's argument parsing) stays
cheap and no import cycles form with :mod:`repro.bench`.

The registry is extensible: :func:`register_producer` installs a new kind.
With the default ``fork`` start method pool workers inherit registrations;
under ``spawn`` only producers registered at import time exist worker-side.
"""

from __future__ import annotations

import time
from dataclasses import fields as dataclass_fields
from typing import Callable, Dict, Tuple, Union

from repro.arch.spec import ArchSpec
from repro.errors import ConfigurationError
from repro.exp.plan import PointResult, PointSpec

#: A producer maps (params, seed) -> PointResult.
ProducerFn = Callable[[Dict[str, object], int], PointResult]

_PRODUCERS: Dict[str, ProducerFn] = {}


def register_producer(kind: str, fn: ProducerFn) -> None:
    """Install (or replace) the producer for *kind*."""
    _PRODUCERS[kind] = fn


def producer_kinds() -> list:
    """Registered point kinds, sorted (scenario validation, ``repro list``)."""
    return sorted(_PRODUCERS)


def producer_for(kind: str) -> ProducerFn:
    """Look up a producer; raises ConfigurationError for unknown kinds."""
    try:
        return _PRODUCERS[kind]
    except KeyError:
        raise ConfigurationError(
            f"no producer registered for point kind {kind!r}; known: {sorted(_PRODUCERS)}"
        ) from None


def execute_point(spec: PointSpec, fault=None, allow_hard_crash: bool = False) -> PointResult:
    """Run one spec in the current process (the pool-worker entry point).

    ``fault`` is an optional :class:`~repro.faults.FaultAction` the
    supervisor resolved for this (point, attempt); it is triggered *before*
    the producer runs, so injection can never perturb a computation it does
    not abort. ``allow_hard_crash`` tells a ``crash`` fault the process is
    an expendable pool worker (in-process callers get a raise instead).
    """
    if fault is not None:
        fault.trigger(allow_hard_crash=allow_hard_crash)
    fn = producer_for(spec.kind)
    start = time.perf_counter()
    result = fn(spec.kwargs, spec.seed)
    result.elapsed_s = time.perf_counter() - start
    return result


# -- arch / link encoding ------------------------------------------------------

#: ArchSpec fields a spec may carry when the arch is not a named preset.
_ARCH_FIELDS = tuple(
    f.name for f in dataclass_fields(ArchSpec) if f.name != "extras"
)


def encode_arch(arch: ArchSpec) -> Union[str, Tuple[Tuple[str, object], ...]]:
    """A spec-safe encoding of an architecture.

    Named presets encode as their name (compact, readable cache keys);
    anything else — e.g. the tiny synthetic archs the tests build — encodes
    as the full scalar field tuple so the worker can reconstruct it.
    ``extras`` (a free-form annotation dict, unused by the simulation) is
    not carried.
    """
    from repro.arch.presets import ALL_ARCHS

    preset = ALL_ARCHS.get(arch.name)
    if preset is not None and preset == arch:
        return arch.name
    return tuple((name, getattr(arch, name)) for name in _ARCH_FIELDS)


def resolve_arch(encoded) -> ArchSpec:
    """Inverse of :func:`encode_arch` (preset name or field tuple)."""
    if isinstance(encoded, str):
        from repro.arch.presets import get_arch

        return get_arch(encoded)
    return ArchSpec(**dict(encoded))


# -- producers -----------------------------------------------------------------


def _osu_producer(params: Dict[str, object], seed: int) -> PointResult:
    """The modified OSU bandwidth benchmark: one (size, depth) grid point."""
    from repro.bench.osu import OsuConfig, osu_bandwidth
    from repro.mem.cache import WayPartition
    from repro.mem.hierarchy import NetworkCacheConfig
    from repro.net.link import get_link

    partition_ways = params.get("partition_ways")
    network_cache_bytes = params.get("network_cache_bytes")
    cfg = OsuConfig(
        arch=resolve_arch(params["arch"]),
        link=get_link(params["link"]),
        queue_family=params.get("queue_family", "baseline"),
        heated=bool(params.get("heated", False)),
        msg_bytes=int(params.get("msg_bytes", 1)),
        search_depth=int(params.get("search_depth", 0)),
        iterations=int(params.get("iterations", 10)),
        warmup=int(params.get("warmup", 2)),
        seed=seed,
        fragmented=bool(params.get("fragmented", False)),
        partition=WayPartition(network_ways=int(partition_ways)) if partition_ways else None,
        network_cache=(
            NetworkCacheConfig(size_bytes=int(network_cache_bytes))
            if network_cache_bytes
            else None
        ),
        prefetch_enabled=bool(params.get("prefetch_enabled", True)),
        prefetcher=params.get("prefetcher"),
        mem_kernel=params.get("mem_kernel"),
    )
    point = osu_bandwidth(cfg)
    return PointResult(
        y=point.mibps,
        yerr=point.mibps_std,
        mem_stats=point.mem_stats,
        extras={
            "latency_us": point.latency_us,
            "network_bound": float(point.network_bound),
            "match_cycles_mean": point.match_cycles.mean,
        },
    )


def _app_producer(params: Dict[str, object], seed: int) -> PointResult:
    """One proxy-application run (Figures 8-10)."""
    from repro.apps import build_app
    from repro.apps.base import AppConfig
    from repro.net.link import get_link

    app = build_app(
        str(params["app"]),
        match_list_length=params.get("match_list_length"),
    )
    cfg = AppConfig(
        arch=resolve_arch(params["arch"]),
        nranks=int(params["nranks"]),
        link=get_link(params["link"]),
        queue_family=params.get("queue_family", "baseline"),
        heated=bool(params.get("heated", False)),
        fragmented=bool(params.get("fragmented", False)),
        seed=seed,
        mem_kernel=params.get("mem_kernel"),
    )
    result = app.run(cfg)
    return PointResult(
        y=result.runtime_s,
        extras={
            "compute_s": result.compute_s,
            "comm_s": result.comm_s,
            "match_cycles_per_msg": result.match_cycles_per_msg,
        },
    )


def _heater_micro_producer(params: Dict[str, object], seed: int) -> PointResult:
    """Section 4.3 random-access micro-benchmark (cold + hot in one point).

    Cold and hot runs share one RNG stream inside
    :func:`~repro.bench.heater_micro.heater_microbenchmark`, so they are a
    single point: splitting them would change the drawn access patterns.
    """
    from repro.bench.heater_micro import heater_microbenchmark

    result = heater_microbenchmark(
        resolve_arch(params["arch"]),
        region_bytes=int(params.get("region_bytes", 4 * 1024 * 1024)),
        samples=int(params.get("samples", 2048)),
        seed=seed,
        mem_kernel=params.get("mem_kernel"),
    )
    return PointResult(
        y=result.cold_ns,
        extras={"hot_ns": result.hot_ns, "speedup": result.speedup},
    )


def _colocated_producer(params: Dict[str, object], seed: int) -> PointResult:
    """One (mechanism, co-located rank count) cell of the pressure study."""
    from repro.bench.colocated import colocated_point

    cycles = colocated_point(
        resolve_arch(params["arch"]),
        str(params["mechanism"]),
        int(params["ranks"]),
        depth=int(params.get("depth", 2048)),
        working_set_bytes=int(params.get("working_set_bytes", 4 * 1024 * 1024)),
        iterations=int(params.get("iterations", 2)),
        seed=seed,
        mem_kernel=params.get("mem_kernel"),
    )
    return PointResult(y=cycles)


def _traffic_producer(params: Dict[str, object], seed: int) -> PointResult:
    """One open-loop traffic run (overload figures; see repro.traffic).

    The point's y value is the measured phase's ``metric`` (p99 sojourn by
    default); every other measured-phase statistic rides along in extras,
    so exported sweeps carry the full loss-system picture per point. A
    ``queue_capacity`` of 0 (TOML has no null) means unbounded.
    """
    from repro.traffic import TrafficConfig, run_traffic

    capacity = int(params.get("queue_capacity", 0))
    cfg = TrafficConfig(
        arch=resolve_arch(params["arch"]),
        queue_family=params.get("queue_family", "baseline"),
        heated=bool(params.get("heated", False)),
        mem_kernel=params.get("mem_kernel"),
        fragmented=bool(params.get("fragmented", False)),
        seed=seed,
        arrival_rate=float(params.get("arrival_rate", 0.2)),
        zipf_alpha=float(params.get("zipf_alpha", 1.0)),
        n_tags=int(params.get("n_tags", 64)),
        nranks=int(params.get("nranks", 1024)),
        msg_bytes=int(params.get("msg_bytes", 1024)),
        n_warmup=int(params.get("n_warmup", 200)),
        n_measured=int(params.get("n_measured", 1000)),
        queue_capacity=capacity if capacity > 0 else None,
        admission=str(params.get("admission", "drop-tail")),
        recv_window=int(params.get("recv_window", 64)),
        search_depth=int(params.get("search_depth", 0)),
        flush_every=int(params.get("flush_every", 0)),
        traffic_batch=(
            bool(params["traffic_batch"]) if "traffic_batch" in params else None
        ),
    )
    result = run_traffic(cfg)
    measured = result.measured
    metric = str(params.get("metric", "p99_sojourn_us"))
    extras = measured.as_dict()
    extras["heater_passes"] = float(result.heater_passes)
    return PointResult(
        y=measured.metric(metric),
        mem_stats=result.mem_stats,
        extras=extras,
    )


def _offload_producer(params: Dict[str, object], seed: int) -> PointResult:
    """One (matching engine, queue depth) cell of the offload-cliff study."""
    import numpy as np

    from repro.matching import Envelope, MatchEngine, MatchItem, make_pattern, make_queue
    from repro.offload import BXI_LIKE, PSM2_LIKE, OffloadedMatchQueue

    nics = {"software-only": None, "psm2-like": PSM2_LIKE, "bxi-like": BXI_LIKE}
    nic_name = str(params.get("nic", "software-only"))
    if nic_name not in nics:
        raise ConfigurationError(f"unknown offload nic {nic_name!r}; known: {sorted(nics)}")
    nic = nics[nic_name]
    arch = resolve_arch(params["arch"])
    depth = int(params["depth"])
    hier = arch.build_hierarchy(kernel=params.get("mem_kernel"))
    engine = MatchEngine(hier)
    q = make_queue("baseline", port=engine, rng=np.random.default_rng(seed + 1))
    if nic is not None:
        q = OffloadedMatchQueue(q, nic, engine=engine, ghz=arch.ghz)
    for seq in range(depth):
        q.post(make_pattern(0, 10_000 + seq, 0, seq=seq))
    q.post(make_pattern(1, 7, 0, seq=depth + 5))
    hier.flush()
    probe = MatchItem.from_envelope(Envelope(1, 7, 0), seq=999_999)
    _, cycles = engine.timed(lambda: q.match_remove(probe))
    return PointResult(y=float(cycles))


register_producer("osu", _osu_producer)
register_producer("app", _app_producer)
register_producer("heater-micro", _heater_micro_producer)
register_producer("colocated", _colocated_producer)
register_producer("offload", _offload_producer)
register_producer("traffic", _traffic_producer)
