"""Plan execution: serial or process-parallel, cache-aware, order-stable.

The runner owns *how* a plan's points execute; the plan owns *what* they
are. Three invariants:

1. **Bit-identical parallel output.** Every point is an independent
   simulation (its producer builds a fresh hierarchy/engine from the
   spec), so the same spec computes the same floats in any process.
   Results are placed by plan index and reduced in plan order — never in
   completion order — so ``jobs=N`` reproduces ``jobs=1`` exactly.
2. **Content-addressed reuse.** With a :class:`~repro.exp.store.ResultStore`
   attached, points whose content key is already stored are not executed;
   fresh results are written back, so an interrupted run resumes where it
   stopped and a re-run is a pure cache read.
3. **In-plan deduplication.** Two specs with the same content key (e.g. a
   figure's panel grids overlapping at a shared corner point) execute once.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.series import Sweep
from repro.errors import ConfigurationError
from repro.exp.plan import ExperimentPlan, PointResult, PointSpec, ProgressFn
from repro.exp.producers import execute_point
from repro.exp.store import ResultStore


@dataclass
class RunStats:
    """Accounting for one :meth:`Runner.run` call."""

    total: int = 0
    #: Points actually simulated (pool or serial).
    executed: int = 0
    #: Points served from the result store.
    cached: int = 0
    #: Points aliased to an identical point earlier in the same plan.
    deduped: int = 0
    elapsed_s: float = 0.0


@dataclass
class Runner:
    """Executes :class:`~repro.exp.plan.ExperimentPlan` objects.

    ``jobs`` is the process-pool width (1 = in-process serial execution);
    ``store`` enables content-addressed reuse; ``progress`` is called as
    ``progress(done, total, spec, result, cached)`` after every point, in
    completion order (presentation only — reduction order is plan order).
    """

    jobs: int = 1
    store: Optional[ResultStore] = None
    progress: Optional[ProgressFn] = None
    #: Stats of the most recent :meth:`run` (read-only convenience).
    last_stats: RunStats = field(default_factory=RunStats, compare=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")

    # -- execution -------------------------------------------------------------

    def run(self, plan: ExperimentPlan) -> List[PointResult]:
        """Execute every point; returns results **in plan order**."""
        import time

        start = time.perf_counter()
        specs = plan.points
        stats = RunStats(total=len(specs))
        results: List[Optional[PointResult]] = [None] * len(specs)
        done = 0

        def report(i: int, cached: bool) -> None:
            nonlocal done
            done += 1
            if self.progress is not None:
                self.progress(done, len(specs), specs[i], results[i], cached)

        # Resolve store hits and in-plan duplicates first.
        first_by_key: Dict[str, int] = {}
        pending: List[int] = []  # canonical (first-occurrence) indices to run
        aliases: Dict[int, int] = {}  # duplicate index -> canonical index
        for i, spec in enumerate(specs):
            key = spec.content_key()
            canonical = first_by_key.get(key)
            if canonical is not None:
                aliases[i] = canonical
                continue
            first_by_key[key] = i
            hit = self.store.get(spec) if self.store is not None else None
            if hit is not None:
                results[i] = hit
                stats.cached += 1
                report(i, True)
            else:
                pending.append(i)

        if self.jobs > 1 and len(pending) > 1:
            self._run_pool(specs, pending, results, stats, report)
        else:
            for i in pending:
                results[i] = execute_point(specs[i])
                stats.executed += 1
                self._store_put(specs[i], results[i])
                report(i, False)

        # Fill duplicates from their canonical point (same computation, so
        # sharing the result object preserves bit-identical reduction).
        for i, canonical in aliases.items():
            results[i] = results[canonical]
            stats.deduped += 1
            report(i, True)

        stats.elapsed_s = time.perf_counter() - start
        self.last_stats = stats
        return results  # type: ignore[return-value]

    def run_sweep(self, plan: ExperimentPlan) -> Sweep:
        """Execute and reduce (plan order) into a figure sweep."""
        return plan.reduce(self.run(plan))

    # -- internals -------------------------------------------------------------

    def _store_put(self, spec: PointSpec, result: PointResult) -> None:
        if self.store is not None:
            self.store.put(spec, result)

    def _run_pool(self, specs, pending, results, stats, report) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(execute_point, specs[i]): i for i in pending}
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for fut in finished:
                    i = futures[fut]
                    results[i] = fut.result()  # re-raises worker exceptions
                    stats.executed += 1
                    self._store_put(specs[i], results[i])
                    report(i, False)
