"""Plan execution: serial or process-parallel, cache-aware, supervised.

The runner owns *how* a plan's points execute; the plan owns *what* they
are. Four invariants:

1. **Bit-identical parallel output.** Every point is an independent
   simulation (its producer builds a fresh hierarchy/engine from the
   spec), so the same spec computes the same floats in any process.
   Results are placed by plan index and reduced in plan order — never in
   completion order — so ``jobs=N`` reproduces ``jobs=1`` exactly.
2. **Content-addressed reuse.** With a :class:`~repro.exp.store.ResultStore`
   attached, points whose content key is already stored are not executed;
   fresh results are written back, so an interrupted run resumes where it
   stopped and a re-run is a pure cache read.
3. **In-plan deduplication.** Two specs with the same content key (e.g. a
   figure's panel grids overlapping at a shared corner point) execute once.
4. **Faults are absorbed above the point, never inside it.** Supervision —
   per-point ``timeout_s``, ``retries`` with capped exponential backoff,
   process-pool crash recovery, the ``on_error`` policy — only decides
   *whether and when* a point runs. Point seeds are never reseeded on
   retry (only the backoff schedule's jitter is derived per attempt), so
   every surviving point of a faulty run is bit-identical to a fault-free
   run.

Failure semantics (``on_error``):

``fail_fast`` (default)
    The first terminal point failure aborts the run with
    :class:`~repro.errors.PointExecutionError` (cause-chained to the last
    worker exception). Before propagating — including on
    ``KeyboardInterrupt`` — the runner drains every already-finished
    future, persists those results to the store, and finalizes
    ``last_stats``/``last_report``, so an interrupted ``--resume`` run
    never discards completed in-flight work.
``collect``
    Terminal failures become :class:`PointFailure` records; the sweep
    completes with ``None`` in the failed slots (skipped by
    ``reduce(allow_missing=True)``) and :attr:`Runner.last_report` names
    every failed point, attempt, and exception type.

Worker crashes break the whole ``ProcessPoolExecutor`` (every in-flight
future dies); the runner rebuilds the pool ``max_pool_rebuilds`` times
(default once), then degrades gracefully to in-process serial execution
with a warning. Hung points cannot be preempted inside a worker, so a
blown deadline terminates the pool's processes, reschedules the innocent
in-flight points at their same attempt number, and charges an attempt to
the overdue point alone; under serial execution the overrun is detected
post-hoc (the point has already returned) and the result is discarded.

Deterministic fault injection (:mod:`repro.faults`) plugs in via the
``fault_plan`` parameter or the ``REPRO_INJECT_FAULTS`` env var, and is
resolved per (point index, attempt) supervisor-side, so workers carry no
shared fault state.
"""

from __future__ import annotations

import hashlib
import json
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.series import Sweep
from repro.errors import ConfigurationError, PointExecutionError
from repro.exp.plan import ExperimentPlan, PointResult, PointSpec, ProgressFn
from repro.exp.producers import execute_point
from repro.exp.store import ResultStore
from repro.faults.plan import FaultPlan

#: Accepted ``on_error`` policies (CLI spelling ``fail-fast`` is normalized).
ON_ERROR_POLICIES = ("fail_fast", "collect")

#: Version of the RunReport dict/JSON schema (``--report`` files, service
#: status endpoints). Bump when fields change meaning or disappear; adding
#: fields is backward-compatible and does not bump.
REPORT_SCHEMA = 1


def backoff_delay(content_key: str, attempt: int, base_s: float, cap_s: float) -> float:
    """Capped exponential backoff with deterministic per-attempt jitter.

    Shared by the :class:`Runner` and the sweep service so both layers
    retry on the same schedule. Three properties the tests pin:

    * **Deterministic** — the jitter is a SHA-256 over (key, attempt), so
      a replayed run waits exactly as long as the original.
    * **Non-decreasing in attempt** — the jitter factor lives in
      ``[1.0, 1.5)`` over an uncapped doubling base, so attempt ``a+1``'s
      floor (``2^(a+1) * base``) clears attempt ``a``'s ceiling
      (``1.5 * 2^a * base``), and the final ``min`` against the cap is
      monotone.
    * **Capped** — never exceeds ``cap_s``.

    Only the *retry schedule* is derived per attempt — point seeds are
    never touched, so a retried point recomputes the fault-free result.
    """
    if base_s <= 0.0:
        return 0.0
    digest = hashlib.sha256(f"{content_key}/retry/{attempt}".encode("utf-8")).digest()
    jitter = int.from_bytes(digest[:8], "little") / float(1 << 64)
    return min(cap_s, base_s * (2.0 ** attempt) * (1.0 + 0.5 * jitter))


class _PointTimeout(Exception):
    """Internal marker: a point exceeded ``timeout_s`` (never escapes)."""


@dataclass
class RunStats:
    """Accounting for one :meth:`Runner.run` call."""

    total: int = 0
    #: Points actually simulated (pool or serial).
    executed: int = 0
    #: Points served from the result store.
    cached: int = 0
    #: Points aliased to an identical point earlier in the same plan.
    deduped: int = 0
    #: Points that terminally failed (``on_error="collect"`` only; a
    #: fail-fast failure raises instead). Includes aliases of failed points.
    failed: int = 0
    #: Retry attempts scheduled across all points.
    retried: int = 0
    elapsed_s: float = 0.0


@dataclass
class AttemptRecord:
    """One execution attempt of one plan point."""

    index: int
    series: str
    x: float
    attempt: int
    #: "ok" | "error" | "timeout" | "crash"
    outcome: str
    error_type: str = ""
    message: str = ""
    elapsed_s: float = 0.0


@dataclass
class PointFailure:
    """A point that exhausted every attempt (its result slot stays None)."""

    index: int
    series: str
    x: float
    content_key: str
    attempts: int
    outcome: str
    error_type: str = ""
    message: str = ""


@dataclass
class RunReport:
    """Structured failure-policy report of one :meth:`Runner.run` call.

    Everything the run's supervision did, machine-readable: per-point
    attempt records, terminal failures, retry/timeout/crash/pool counters,
    store-integrity events, and the fault plan that was injected (if any).
    Rendered by the CLI and exportable as JSON (``--report FILE``).
    """

    total: int = 0
    executed: int = 0
    cached: int = 0
    deduped: int = 0
    failed: int = 0
    retried: int = 0
    timeouts: int = 0
    #: Attempts lost to worker-process death (each casualty of a pool
    #: breakage counts one, since each lost an execution attempt).
    crashes: int = 0
    pool_rebuilds: int = 0
    degraded_serial: bool = False
    #: Store entries quarantined (renamed ``*.corrupt``) during this run.
    quarantined: int = 0
    #: Store entries deliberately bit-rotted by the active fault plan.
    corruptions_injected: int = 0
    elapsed_s: float = 0.0
    jobs: int = 1
    on_error: str = "fail_fast"
    #: Canonical entries of the active fault plan (empty when none).
    injected_faults: List[str] = field(default_factory=list)
    attempts: List[AttemptRecord] = field(default_factory=list)
    failures: List[PointFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every point produced a result."""
        return self.failed == 0

    def to_dict(self) -> Dict[str, object]:
        """A plain JSON-serializable dict (the ``--report`` schema).

        Carries ``schema`` (:data:`REPORT_SCHEMA`) so service status
        endpoints and archived ``--report`` artifacts stay
        forward-compatible: a consumer checks the version instead of
        sniffing fields.
        """
        doc = asdict(self)
        doc["schema"] = REPORT_SCHEMA
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output (e.g. a parsed
        ``--report`` file). Unknown keys are ignored — a newer producer's
        additive fields must not break an older consumer — but a schema
        *ahead* of this code is refused loudly rather than misread."""
        schema = doc.get("schema", REPORT_SCHEMA)
        if int(schema) > REPORT_SCHEMA:
            raise ConfigurationError(
                f"report schema {schema} is newer than supported ({REPORT_SCHEMA})"
            )
        known = {f.name for f in dataclass_fields(cls)}
        kwargs = {k: v for k, v in doc.items() if k in known}
        kwargs["attempts"] = [AttemptRecord(**a) for a in kwargs.get("attempts", [])]
        kwargs["failures"] = [PointFailure(**f) for f in kwargs.get("failures", [])]
        return cls(**kwargs)

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """A compact human-readable summary (the CLI's stderr epilogue)."""
        if self.total == 0:
            # An empty plan ran nothing: say so, instead of a misleading
            # "0 points — 0 executed, ... 0 failed" accounting line.
            lines = [
                f"run report: empty plan — nothing to run "
                f"(jobs={self.jobs}, on_error={self.on_error}, {self.elapsed_s:.2f}s)"
            ]
        elif self.executed == 0 and self.failed == 0 and self.cached:
            # Every point came from the store/dedup: the interesting fact
            # is that zero simulations ran, not a parade of zero counters.
            lines = [
                f"run report: {self.total} points — all served from cache "
                f"({self.cached} cached, {self.deduped} deduped; "
                f"jobs={self.jobs}, {self.elapsed_s:.2f}s)"
            ]
        else:
            lines = [
                f"run report: {self.total} points — {self.executed} executed, "
                f"{self.cached} cached, {self.deduped} deduped, {self.failed} failed "
                f"(jobs={self.jobs}, on_error={self.on_error}, {self.elapsed_s:.2f}s)"
            ]
        if (
            self.retried or self.timeouts or self.crashes or self.pool_rebuilds
            or self.degraded_serial or self.quarantined or self.corruptions_injected
        ):
            lines.append(
                f"  supervision: {self.retried} retries, {self.timeouts} timeouts, "
                f"{self.crashes} crashed attempts, {self.pool_rebuilds} pool rebuilds"
                + (", degraded to serial" if self.degraded_serial else "")
                + f", {self.quarantined} quarantined entries"
                + (
                    f", {self.corruptions_injected} corruptions injected"
                    if self.corruptions_injected
                    else ""
                )
            )
        if self.injected_faults:
            lines.append(f"  injected faults: {', '.join(self.injected_faults)}")
        for failure in self.failures:
            lines.append(
                f"  FAILED {failure.series!r}@{failure.x:g} (index {failure.index}): "
                f"{failure.outcome} after {failure.attempts} attempt(s)"
                + (f" [{failure.error_type}: {failure.message}]" if failure.error_type else "")
            )
        return "\n".join(lines)


@dataclass
class _RunCtx:
    """Mutable state shared by one run's supervision paths."""

    specs: List[PointSpec]
    results: List[Optional[PointResult]]
    stats: RunStats
    report: RunReport
    failed: Set[int] = field(default_factory=set)
    done: int = 0


@dataclass
class Runner:
    """Executes :class:`~repro.exp.plan.ExperimentPlan` objects.

    ``jobs`` is the process-pool width (1 = in-process serial execution);
    ``store`` enables content-addressed reuse; ``progress`` is called as
    ``progress(done, total, spec, result, cached)`` after every point, in
    completion order (presentation only — reduction order is plan order; a
    raising callback is disabled with a warning, never aborts the sweep).

    Supervision knobs: ``timeout_s`` (per-point deadline), ``retries``
    (extra attempts per point), ``backoff_s``/``backoff_cap_s`` (capped
    exponential retry delay with deterministic per-attempt jitter),
    ``on_error`` (``"fail_fast"`` or ``"collect"``), ``max_pool_rebuilds``
    (crash recoveries before degrading to serial), and ``fault_plan``
    (deterministic injection; defaults to ``REPRO_INJECT_FAULTS``).
    """

    jobs: int = 1
    store: Optional[ResultStore] = None
    progress: Optional[ProgressFn] = None
    timeout_s: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.05
    backoff_cap_s: float = 2.0
    on_error: str = "fail_fast"
    max_pool_rebuilds: int = 1
    fault_plan: Optional[FaultPlan] = None
    #: Stats of the most recent :meth:`run` (read-only convenience).
    last_stats: RunStats = field(default_factory=RunStats, compare=False)
    #: Failure-policy report of the most recent :meth:`run`.
    last_report: RunReport = field(default_factory=RunReport, compare=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError("backoff_s and backoff_cap_s must be >= 0")
        if self.max_pool_rebuilds < 0:
            raise ConfigurationError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )
        self.on_error = self.on_error.replace("-", "_")
        if self.on_error not in ON_ERROR_POLICIES:
            raise ConfigurationError(
                f"on_error must be one of {list(ON_ERROR_POLICIES)}, got {self.on_error!r}"
            )
        if self.fault_plan is None:
            self.fault_plan = FaultPlan.from_env()
        self._progress_broken = False

    # -- execution -------------------------------------------------------------

    def run(self, plan: ExperimentPlan) -> List[Optional[PointResult]]:
        """Execute every point; returns results **in plan order**.

        Under ``on_error="collect"`` a failed point's slot is None and
        :attr:`last_report` carries its :class:`PointFailure`; under
        ``fail_fast`` the first terminal failure raises after completed
        in-flight results are flushed to the store.
        """
        start = time.perf_counter()
        specs = plan.points
        ctx = _RunCtx(
            specs=specs,
            results=[None] * len(specs),
            stats=RunStats(total=len(specs)),
            report=RunReport(
                total=len(specs),
                jobs=self.jobs,
                on_error=self.on_error,
                injected_faults=self.fault_plan.describe() if self.fault_plan else [],
            ),
        )
        # Installed up-front (and mutated in place) so an aborted run still
        # leaves finalized accounting behind.
        self.last_stats = ctx.stats
        self.last_report = ctx.report
        self._progress_broken = False
        quarantined_before = self.store.quarantined if self.store is not None else 0

        try:
            # Resolve store hits and in-plan duplicates first.
            first_by_key: Dict[str, int] = {}
            pending: List[int] = []  # canonical (first-occurrence) indices to run
            aliases: Dict[int, int] = {}  # duplicate index -> canonical index
            for i, spec in enumerate(specs):
                key = spec.content_key()
                canonical = first_by_key.get(key)
                if canonical is not None:
                    aliases[i] = canonical
                    continue
                first_by_key[key] = i
                hit = self.store.get(spec) if self.store is not None else None
                if hit is not None:
                    ctx.results[i] = hit
                    ctx.stats.cached += 1
                    self._report_point(ctx, i, True)
                else:
                    pending.append(i)

            if self.jobs > 1 and len(pending) > 1:
                self._run_pool(ctx, pending)
            else:
                for i in pending:
                    self._run_point_serial(ctx, i, start_attempt=0)

            # Fill duplicates from their canonical point (same computation, so
            # sharing the result object preserves bit-identical reduction).
            for i, canonical in aliases.items():
                ctx.results[i] = ctx.results[canonical]
                ctx.stats.deduped += 1
                if canonical in ctx.failed:
                    ctx.failed.add(i)
                self._report_point(ctx, i, True)
        finally:
            ctx.stats.failed = len(ctx.failed)
            ctx.stats.elapsed_s = time.perf_counter() - start
            report = ctx.report
            report.executed = ctx.stats.executed
            report.cached = ctx.stats.cached
            report.deduped = ctx.stats.deduped
            report.retried = ctx.stats.retried
            report.failed = ctx.stats.failed
            report.elapsed_s = ctx.stats.elapsed_s
            if self.store is not None:
                report.quarantined = self.store.quarantined - quarantined_before
        return ctx.results

    def run_sweep(self, plan: ExperimentPlan) -> Sweep:
        """Execute and reduce (plan order) into a figure sweep.

        With ``on_error="collect"`` failed points are simply absent from
        the reduced sweep (``allow_missing``); see :attr:`last_report`.
        """
        results = self.run(plan)
        return plan.reduce(results, allow_missing=self.on_error == "collect")

    # -- shared bookkeeping ----------------------------------------------------

    def _report_point(self, ctx: _RunCtx, i: int, cached: bool) -> None:
        """Invoke the progress callback, firewalled: presentation must not
        abort a sweep — a raising callback is disabled for the rest of the
        run (warned once)."""
        ctx.done += 1
        if self.progress is None or self._progress_broken:
            return
        try:
            self.progress(ctx.done, len(ctx.specs), ctx.specs[i], ctx.results[i], cached)
        except Exception as exc:
            self._progress_broken = True
            warnings.warn(
                f"progress callback raised {exc!r}; callback disabled for the "
                "rest of this run",
                RuntimeWarning,
                stacklevel=2,
            )

    def _fault_for(self, i: int, attempt: int):
        return self.fault_plan.action_for(i, attempt) if self.fault_plan else None

    def _store_put(self, ctx: _RunCtx, i: int, result: PointResult) -> None:
        if self.store is None:
            return
        self.store.put(ctx.specs[i], result)
        if self.fault_plan is not None and self.fault_plan.corrupts(i):
            if self.store.corrupt(ctx.specs[i]):
                ctx.report.corruptions_injected += 1

    def _point_succeeded(self, ctx: _RunCtx, i: int, result: PointResult) -> None:
        ctx.results[i] = result
        ctx.stats.executed += 1
        self._store_put(ctx, i, result)
        self._report_point(ctx, i, False)

    @staticmethod
    def _classify(outcome: str, exc: Optional[BaseException]) -> Tuple[str, str]:
        if outcome == "timeout":
            return "Timeout", str(exc) if exc is not None else "exceeded timeout_s"
        if outcome == "crash":
            return "WorkerCrash", str(exc) if exc is not None else "worker process died"
        if exc is not None:
            return type(exc).__name__, str(exc)
        return "", ""

    def _record_attempt(
        self,
        ctx: _RunCtx,
        i: int,
        attempt: int,
        outcome: str,
        exc: Optional[BaseException] = None,
        elapsed_s: float = 0.0,
    ) -> None:
        spec = ctx.specs[i]
        error_type, message = ("", "") if outcome == "ok" else self._classify(outcome, exc)
        ctx.report.attempts.append(
            AttemptRecord(
                index=i,
                series=spec.series,
                x=spec.x,
                attempt=attempt,
                outcome=outcome,
                error_type=error_type,
                message=message,
                elapsed_s=elapsed_s,
            )
        )

    def _backoff_delay(self, spec: PointSpec, attempt: int) -> float:
        """This runner's retry delay for (point, attempt); see
        :func:`backoff_delay` for the deterministic/monotone/capped
        contract."""
        return backoff_delay(spec.content_key(), attempt, self.backoff_s, self.backoff_cap_s)

    def _point_failed(
        self, ctx: _RunCtx, i: int, attempts: int, outcome: str, exc: Optional[BaseException]
    ) -> Optional[PointExecutionError]:
        """Record a terminal failure; returns the exception to raise under
        fail_fast, or None when the collect policy absorbs it."""
        spec = ctx.specs[i]
        error_type, message = self._classify(outcome, exc)
        ctx.failed.add(i)
        ctx.report.failures.append(
            PointFailure(
                index=i,
                series=spec.series,
                x=spec.x,
                content_key=spec.content_key(),
                attempts=attempts,
                outcome=outcome,
                error_type=error_type,
                message=message,
            )
        )
        if self.on_error == "collect":
            self._report_point(ctx, i, False)
            return None
        return PointExecutionError(
            f"point {spec.series!r}@{spec.x:g} (index {i}) failed after "
            f"{attempts} attempt(s): {outcome}"
            + (f" [{error_type}: {message}]" if error_type else ""),
            spec=spec,
            attempts=attempts,
        )

    def _after_failed_attempt(
        self,
        ctx: _RunCtx,
        i: int,
        attempt: int,
        outcome: str,
        exc: Optional[BaseException],
        delayed: List[Tuple[float, int, int]],
    ) -> Optional[PointExecutionError]:
        """Pool path: schedule a backoff retry or finalize the failure.

        Configuration errors are non-retryable — a misconfigured point can
        never succeed, so retrying it only burns the budget.
        """
        if attempt < self.retries and not isinstance(exc, ConfigurationError):
            ctx.stats.retried += 1
            eligible = time.perf_counter() + self._backoff_delay(ctx.specs[i], attempt)
            delayed.append((eligible, i, attempt + 1))
            return None
        return self._point_failed(ctx, i, attempt + 1, outcome, exc)

    # -- serial supervision ----------------------------------------------------

    def _run_point_serial(self, ctx: _RunCtx, i: int, start_attempt: int) -> None:
        """Attempt one point in-process until success, exhaustion, or abort.

        Serial deadlines are post-hoc: a hung point cannot be preempted in
        the caller's own process, so an overrun is detected after the point
        returns and its result is discarded (kept deterministic by the
        retry recomputing the identical result on success).
        """
        spec = ctx.specs[i]
        attempt = start_attempt
        while True:
            t0 = time.perf_counter()
            try:
                result = execute_point(spec, self._fault_for(i, attempt), False)
                elapsed = time.perf_counter() - t0
                if self.timeout_s is not None and elapsed > self.timeout_s:
                    raise _PointTimeout(
                        f"ran {elapsed:.3f}s > timeout_s={self.timeout_s:g} "
                        "(serial: detected post-hoc)"
                    )
            except KeyboardInterrupt:
                # run()'s finally still finalizes stats; completed points
                # were flushed to the store as they finished.
                raise
            except Exception as exc:
                elapsed = time.perf_counter() - t0
                outcome = "timeout" if isinstance(exc, _PointTimeout) else "error"
                if outcome == "timeout":
                    ctx.report.timeouts += 1
                self._record_attempt(ctx, i, attempt, outcome, exc=exc, elapsed_s=elapsed)
                if attempt < self.retries and not isinstance(exc, ConfigurationError):
                    ctx.stats.retried += 1
                    time.sleep(self._backoff_delay(spec, attempt))
                    attempt += 1
                    continue
                failure = self._point_failed(ctx, i, attempt + 1, outcome, exc)
                if failure is not None:
                    raise failure from exc
                return
            else:
                self._record_attempt(ctx, i, attempt, "ok", elapsed_s=elapsed)
                self._point_succeeded(ctx, i, result)
                return

    # -- pool supervision ------------------------------------------------------

    def _run_pool(self, ctx: _RunCtx, pending: List[int]) -> None:
        workers = min(self.jobs, len(pending))
        ready: deque = deque((i, 0) for i in pending)
        delayed: List[Tuple[float, int, int]] = []  # (eligible_at, index, attempt)
        in_flight: Dict = {}  # future -> (index, attempt, deadline)
        pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(max_workers=workers)
        rebuilds_left = self.max_pool_rebuilds
        try:
            while ready or delayed or in_flight:
                now = time.perf_counter()
                if delayed:
                    still = []
                    for eligible, i, attempt in delayed:
                        if eligible <= now:
                            ready.append((i, attempt))
                        else:
                            still.append((eligible, i, attempt))
                    delayed[:] = still

                # Throttled to the pool width so a point's deadline clock
                # starts at (approximately) execution start, not while it
                # sits queued behind the whole grid.
                broken: Optional[BaseException] = None
                while ready and broken is None and len(in_flight) < workers:
                    i, attempt = ready.popleft()
                    try:
                        fut = pool.submit(
                            execute_point, ctx.specs[i], self._fault_for(i, attempt), True
                        )
                    except BrokenExecutor as exc:
                        ready.appendleft((i, attempt))
                        broken = exc
                        break
                    deadline = (
                        time.perf_counter() + self.timeout_s
                        if self.timeout_s is not None
                        else None
                    )
                    in_flight[fut] = (i, attempt, deadline)

                if broken is None and not in_flight:
                    # Only backoff-delayed retries remain: sleep to the nearest.
                    next_at = min(eligible for eligible, _, _ in delayed)
                    time.sleep(max(0.0, min(next_at - time.perf_counter(), 0.25)))
                    continue

                if broken is None:
                    now = time.perf_counter()
                    deadlines = [dl for (_, _, dl) in in_flight.values() if dl is not None]
                    # Any state change arrives as a completion, so with no
                    # deadline or backoff timers pending we can block until
                    # one — exactly like an unsupervised pool.
                    if not deadlines and not delayed:
                        tick: Optional[float] = None
                    else:
                        tick = 0.1
                        if deadlines:
                            tick = min(tick, max(0.005, min(deadlines) - now))
                        if delayed:
                            nearest = min(eligible for eligible, _, _ in delayed)
                            tick = min(tick, max(0.005, nearest - now))
                    finished, _ = wait(
                        set(in_flight), timeout=tick, return_when=FIRST_COMPLETED
                    )
                    for fut in finished:
                        i, attempt, _dl = in_flight.pop(fut)
                        broken = self._process_finished(ctx, fut, i, attempt, delayed)
                        if broken is not None:
                            break

                if broken is not None:
                    pool, rebuilds_left = self._handle_pool_break(
                        ctx, pool, in_flight, delayed, broken, workers, rebuilds_left
                    )
                    if pool is None:  # degraded to serial
                        break
                    continue

                pool = self._kill_overdue(ctx, pool, in_flight, ready, delayed, workers)

            if pool is None:
                # Degraded mode: finish everything outstanding in-process,
                # in plan order, preserving per-point attempt counts.
                outstanding = sorted(
                    list(ready) + [(i, attempt) for (_e, i, attempt) in delayed]
                )
                ready.clear()
                delayed.clear()
                for i, attempt in outstanding:
                    self._run_point_serial(ctx, i, start_attempt=attempt)
        except BaseException:
            # fail_fast or KeyboardInterrupt: persist every already-finished
            # sibling before propagating — an aborted --resume run must not
            # discard completed in-flight points.
            self._drain_finished(ctx, in_flight)
            raise
        finally:
            if pool is not None:
                self._terminate_pool(pool)

    def _process_finished(
        self,
        ctx: _RunCtx,
        fut,
        i: int,
        attempt: int,
        delayed: List[Tuple[float, int, int]],
    ) -> Optional[BaseException]:
        """Handle one completed future; returns the exception that broke the
        pool (all siblings are casualties) or None."""
        try:
            result = fut.result()
        except BrokenExecutor as exc:
            ctx.report.crashes += 1
            self._record_attempt(ctx, i, attempt, "crash", exc=exc)
            failure = self._after_failed_attempt(ctx, i, attempt, "crash", exc, delayed)
            if failure is not None:
                raise failure from exc
            return exc
        except Exception as exc:
            self._record_attempt(ctx, i, attempt, "error", exc=exc)
            failure = self._after_failed_attempt(ctx, i, attempt, "error", exc, delayed)
            if failure is not None:
                raise failure from exc
            return None
        self._record_attempt(ctx, i, attempt, "ok", elapsed_s=result.elapsed_s)
        self._point_succeeded(ctx, i, result)
        return None

    def _handle_pool_break(
        self,
        ctx: _RunCtx,
        pool: ProcessPoolExecutor,
        in_flight: Dict,
        delayed: List[Tuple[float, int, int]],
        broken: BaseException,
        workers: int,
        rebuilds_left: int,
    ) -> Tuple[Optional[ProcessPoolExecutor], int]:
        """A worker died. Harvest finished siblings, charge a crashed
        attempt to every casualty, then rebuild the pool — or, once the
        rebuild budget is spent, degrade to serial (returns pool=None)."""
        for fut in list(in_flight):
            i, attempt, _dl = in_flight.pop(fut)
            if fut.done() and not fut.cancelled() and fut.exception() is None:
                result = fut.result()
                self._record_attempt(ctx, i, attempt, "ok", elapsed_s=result.elapsed_s)
                self._point_succeeded(ctx, i, result)
                continue
            ctx.report.crashes += 1
            self._record_attempt(ctx, i, attempt, "crash", exc=broken)
            failure = self._after_failed_attempt(ctx, i, attempt, "crash", broken, delayed)
            if failure is not None:
                raise failure from broken
        self._terminate_pool(pool)
        if rebuilds_left > 0:
            ctx.report.pool_rebuilds += 1
            warnings.warn(
                f"process pool broke ({broken!r}); rebuilding "
                f"({rebuilds_left - 1} rebuild(s) left before degrading to serial)",
                RuntimeWarning,
                stacklevel=2,
            )
            return ProcessPoolExecutor(max_workers=workers), rebuilds_left - 1
        ctx.report.degraded_serial = True
        warnings.warn(
            f"process pool broke again ({broken!r}) with no rebuild budget left; "
            "degrading to in-process serial execution",
            RuntimeWarning,
            stacklevel=2,
        )
        return None, 0

    def _kill_overdue(
        self,
        ctx: _RunCtx,
        pool: ProcessPoolExecutor,
        in_flight: Dict,
        ready: deque,
        delayed: List[Tuple[float, int, int]],
        workers: int,
    ) -> ProcessPoolExecutor:
        """Enforce per-point deadlines. A hung worker cannot be preempted,
        so the pool's processes are terminated wholesale: the overdue point
        is charged a timeout attempt, innocent in-flight points are
        rescheduled at their same attempt number, and a fresh pool replaces
        the dead one (an intentional rebuild, outside the crash budget)."""
        if self.timeout_s is None or not in_flight:
            return pool
        now = time.perf_counter()
        overdue = [
            fut
            for fut, (_i, _a, deadline) in in_flight.items()
            if deadline is not None and now > deadline
        ]
        if not overdue:
            return pool
        for fut in overdue:
            i, attempt, _dl = in_flight.pop(fut)
            if fut.done():
                # Completed in the window between wait() and this scan.
                self._process_finished(ctx, fut, i, attempt, delayed)
                continue
            ctx.report.timeouts += 1
            self._record_attempt(
                ctx, i, attempt, "timeout", elapsed_s=float(self.timeout_s)
            )
            failure = self._after_failed_attempt(ctx, i, attempt, "timeout", None, delayed)
            if failure is not None:
                raise failure
        for fut in list(in_flight):
            i, attempt, _dl = in_flight.pop(fut)
            if fut.done():
                self._process_finished(ctx, fut, i, attempt, delayed)
            else:
                ready.append((i, attempt))
        self._terminate_pool(pool)
        ctx.report.pool_rebuilds += 1
        return ProcessPoolExecutor(max_workers=workers)

    def _drain_finished(self, ctx: _RunCtx, in_flight: Dict) -> None:
        """Persist results of already-finished futures (no waiting) before a
        fail-fast or interrupt propagates."""
        for fut, (i, attempt, _dl) in list(in_flight.items()):
            if not fut.done() or fut.cancelled() or fut.exception() is not None:
                continue
            result = fut.result()
            self._record_attempt(ctx, i, attempt, "ok", elapsed_s=result.elapsed_s)
            self._point_succeeded(ctx, i, result)
        in_flight.clear()

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on hung or dead workers."""
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:
                pass
