"""Content-addressed on-disk result store (``--cache-dir`` / ``--resume``).

Every executed point is stored under a key derived from the *computation*,
not the figure it feeds: SHA-256 over the spec's canonical content (kind +
fully-resolved params + seed) plus a code-version salt. Consequences:

* Re-running a figure against a warm store performs zero simulations.
* An interrupted sweep resumes: completed points are hits, the rest run.
* Two panels sharing a grid corner (same config, different presentation)
  share one entry — ``series``/``x`` are excluded from the key.
* A package release (or a bump of :data:`STORE_SCHEMA` after a modeling
  change) salts every key, so stale physics is never replayed.

Entries are single JSON files sharded two hex characters deep; writes are
atomic (temp file + ``os.replace``), and unreadable/foreign files are
treated as misses, never errors — a cache must not be able to break a run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro._version import __version__
from repro.exp.plan import PointResult, PointSpec
from repro.mem.result import LevelStats

#: Bump when stored-result semantics change without a version bump.
STORE_SCHEMA = 1


def default_salt() -> str:
    """The code-version salt mixed into every content key."""
    return f"repro-{__version__}/store-{STORE_SCHEMA}"


class ResultStore:
    """A directory of content-addressed :class:`PointResult` entries."""

    def __init__(self, root: Union[str, Path], *, salt: Optional[str] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.salt = default_salt() if salt is None else salt
        #: Hit/miss/put counters for the lifetime of this instance.
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # -- keys ------------------------------------------------------------------

    def key_for(self, spec: PointSpec) -> str:
        """The salted content key of one spec."""
        doc = {"content": spec.content(), "salt": self.salt}
        text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def path_for(self, spec: PointSpec) -> Path:
        """Where the spec's entry lives (whether or not it exists)."""
        key = self.key_for(spec)
        return self.root / key[:2] / f"{key}.json"

    # -- read/write ------------------------------------------------------------

    def get(self, spec: PointSpec) -> Optional[PointResult]:
        """The stored result, or None on any kind of miss."""
        path = self.path_for(spec)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            result = PointResult(
                y=float(doc["y"]),
                yerr=float(doc.get("yerr", 0.0)),
                mem_stats=(
                    LevelStats.from_snapshot(doc["mem_stats"])
                    if doc.get("mem_stats") is not None
                    else None
                ),
                extras={str(k): float(v) for k, v in (doc.get("extras") or {}).items()},
                elapsed_s=float(doc.get("elapsed_s", 0.0)),
            )
        except (OSError, ValueError, KeyError, TypeError):
            # Absent, truncated, or foreign file: a miss, never an error.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: PointSpec, result: PointResult) -> Path:
        """Persist one result atomically; returns the entry path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "spec": spec.content(),
            "series": spec.series,
            "x": spec.x,
            "salt": self.salt,
            "y": result.y,
            "yerr": result.yerr,
            "mem_stats": result.mem_stats.snapshot() if result.mem_stats is not None else None,
            "extras": result.extras,
            "elapsed_s": result.elapsed_s,
        }
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1
        return path

    # -- maintenance -----------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
