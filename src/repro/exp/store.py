"""Content-addressed on-disk result store (``--cache-dir`` / ``--resume``).

Every executed point is stored under a key derived from the *computation*,
not the figure it feeds: SHA-256 over the spec's canonical content (kind +
fully-resolved params + seed) plus a code-version salt. Consequences:

* Re-running a figure against a warm store performs zero simulations.
* An interrupted sweep resumes: completed points are hits, the rest run.
* Two panels sharing a grid corner (same config, different presentation)
  share one entry — ``series``/``x`` are excluded from the key.
* A package release (or a bump of :data:`STORE_SCHEMA` after a modeling
  change) salts every key, so stale physics is never replayed.

Entries are single JSON files sharded two hex characters deep; writes are
atomic (temp file + ``os.replace``). Integrity is end-to-end: every entry
carries a SHA-256 checksum of its payload, verified on :meth:`ResultStore.get`.
A damaged entry — truncated JSON, flipped bytes, a checksum mismatch — is
**quarantined** (renamed to ``*.corrupt``) and reported as a miss, so the
point silently re-executes while the rot stays visible on disk and in the
run report, instead of either poisoning a figure or vanishing without a
trace. A cache must not be able to break a run — an *absent* entry is a
plain miss and a foreign/unreadable one can cost at most one re-execution.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro._version import __version__
from repro.exp.plan import PointResult, PointSpec
from repro.mem.result import LevelStats

#: Bump when stored-result semantics change without a version bump.
#: 2: entries carry a payload checksum (``sha256``) verified on read.
STORE_SCHEMA = 2

#: Entry fields covered by the integrity checksum. ``series``/``x`` are
#: presentation, ``elapsed_s`` is timing noise — none can change a figure,
#: so none can invalidate an entry.
_CHECKSUM_FIELDS = ("spec", "salt", "y", "yerr", "mem_stats", "extras")


def default_salt() -> str:
    """The code-version salt mixed into every content key."""
    return f"repro-{__version__}/store-{STORE_SCHEMA}"


def _payload_checksum(doc: dict) -> str:
    """Canonical SHA-256 over the checksummed subset of an entry doc."""
    subset = {name: doc.get(name) for name in _CHECKSUM_FIELDS}
    text = json.dumps(subset, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """A point-in-time inventory of one store directory plus the owning
    instance's lifetime counters (``repro list --cache-dir`` fodder)."""

    #: Live entries on disk right now (``*.json``).
    entries: int = 0
    #: Quarantined entries on disk (``*.corrupt``).
    corrupt: int = 0
    #: Temp files on disk (in-progress writers or orphans of killed ones).
    tmp: int = 0
    #: Total bytes of the live entries.
    entry_bytes: int = 0
    hits: int = 0
    misses: int = 0
    puts: int = 0
    quarantined: int = 0
    evicted: int = 0

    @property
    def hit_rate_pct(self) -> float:
        looked = self.hits + self.misses
        return 100.0 * self.hits / looked if looked else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "entries": self.entries,
            "corrupt": self.corrupt,
            "tmp": self.tmp,
            "entry_bytes": self.entry_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "quarantined": self.quarantined,
            "evicted": self.evicted,
            "hit_rate_pct": self.hit_rate_pct,
        }


class ResultStore:
    """A directory of content-addressed :class:`PointResult` entries."""

    def __init__(self, root: Union[str, Path], *, salt: Optional[str] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.salt = default_salt() if salt is None else salt
        #: Hit/miss/put/quarantine counters for the lifetime of this instance.
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.quarantined = 0
        #: Entries deleted by :meth:`evict_lru` over this instance's lifetime.
        self.evicted = 0
        #: Paths of entries quarantined by this instance (report fodder).
        self.quarantined_paths: List[Path] = []

    # -- keys ------------------------------------------------------------------

    def key_for(self, spec: PointSpec) -> str:
        """The salted content key of one spec."""
        doc = {"content": spec.content(), "salt": self.salt}
        text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def path_for(self, spec: PointSpec) -> Path:
        """Where the spec's entry lives (whether or not it exists)."""
        key = self.key_for(spec)
        return self.root / key[:2] / f"{key}.json"

    # -- read/write ------------------------------------------------------------

    def get(self, spec: PointSpec) -> Optional[PointResult]:
        """The stored result, or None on any kind of miss.

        A present-but-damaged entry (unparseable, missing or mismatched
        checksum, malformed fields) is quarantined before returning None.
        """
        path = self.path_for(spec)
        try:
            raw = path.read_bytes()
        except OSError:
            # Absent entry: the ordinary cold-cache miss.
            self.misses += 1
            return None
        try:
            doc = json.loads(raw.decode("utf-8"))
            if not isinstance(doc, dict):
                raise ValueError("entry is not a JSON object")
            recorded = doc.get("sha256")
            if recorded != _payload_checksum(doc):
                raise ValueError(
                    f"checksum mismatch (recorded {str(recorded)[:12]}...)"
                )
            result = PointResult(
                y=float(doc["y"]),
                yerr=float(doc.get("yerr", 0.0)),
                mem_stats=(
                    LevelStats.from_snapshot(doc["mem_stats"])
                    if doc.get("mem_stats") is not None
                    else None
                ),
                extras={str(k): float(v) for k, v in (doc.get("extras") or {}).items()},
                elapsed_s=float(doc.get("elapsed_s", 0.0)),
            )
        except (ValueError, KeyError, TypeError):
            # Bit-rot, truncation, or a foreign file where an entry should
            # be: still a miss — never an error — but a *loud* one.
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: PointSpec, result: PointResult) -> Path:
        """Persist one result atomically; returns the entry path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "spec": spec.content(),
            "series": spec.series,
            "x": spec.x,
            "salt": self.salt,
            "y": result.y,
            "yerr": result.yerr,
            "mem_stats": result.mem_stats.snapshot() if result.mem_stats is not None else None,
            "extras": result.extras,
            "elapsed_s": result.elapsed_s,
        }
        doc["sha256"] = _payload_checksum(doc)
        # The temp name embeds the writer's pid on top of mkstemp's own
        # uniqueness: concurrent writers (service workers, parallel CLI
        # runs) can never collide, and an orphan left by a killed process
        # names its culprit. The final os.replace is atomic either way —
        # two racing writers of the same key both land a complete entry,
        # last one wins, and both wrote identical content by construction.
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f"put-{os.getpid()}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1
        return path

    # -- integrity -------------------------------------------------------------

    def _quarantine(self, path: Path) -> None:
        """Rename a damaged entry to ``*.corrupt`` (best effort)."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            return
        self.quarantined += 1
        self.quarantined_paths.append(path.with_suffix(".corrupt"))

    def corrupt(self, spec: PointSpec) -> bool:
        """Flip bytes in the spec's stored entry (deterministic bit-rot).

        The fault-injection hook behind ``--inject-faults corrupt@i`` and
        the integrity tests; returns False when the entry does not exist.
        """
        path = self.path_for(spec)
        try:
            data = bytearray(path.read_bytes())
        except OSError:
            return False
        if not data:
            return False
        # Flip one byte mid-payload: enough to break the checksum, small
        # enough that the entry usually still parses as JSON — exercising
        # the verification path, not just the parser.
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        return True

    # -- maintenance -----------------------------------------------------------

    #: Everything a store directory may accumulate: live entries,
    #: quarantined entries, and temp files orphaned by a killed process.
    _PATTERNS = ("*/*.json", "*/*.corrupt", "*/*.tmp")

    def _files(self, patterns=None):
        """Store files matching *patterns* (default: everything).

        Tolerates concurrent writers: a shard directory (or the root)
        deleted between listing and descent is skipped, never an error —
        another process clearing or evicting must not break this one's
        inventory scan.
        """
        for pattern in patterns if patterns is not None else self._PATTERNS:
            walker = self.root.glob(pattern)
            while True:
                try:
                    yield next(walker)
                except StopIteration:
                    break
                except OSError:
                    break

    def __len__(self) -> int:
        """All store files: entries + quarantined + stale temp files."""
        return sum(1 for _ in self._files())

    def clear(self) -> int:
        """Delete every store file (see :meth:`__len__`); returns the count."""
        removed = 0
        for path in list(self._files()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> StoreStats:
        """Current on-disk inventory plus this instance's counters."""
        stats = StoreStats(
            hits=self.hits,
            misses=self.misses,
            puts=self.puts,
            quarantined=self.quarantined,
            evicted=self.evicted,
        )
        for path in self._files():
            name = path.name
            if name.endswith(".json"):
                stats.entries += 1
                try:
                    stats.entry_bytes += path.stat().st_size
                except OSError:
                    pass  # entry evicted/cleared under us: still a race-free count
            elif name.endswith(".corrupt"):
                stats.corrupt += 1
            else:
                stats.tmp += 1
        return stats

    # -- lifecycle (the service's shared-cache duties) -------------------------

    def integrity_sweep(self) -> int:
        """Verify every live entry's checksum; quarantine failures.

        The service's startup duty: bit-rot that crept in while nothing was
        reading must not wait for an unlucky ``get`` mid-sweep — it is
        surfaced (and the slot freed for re-execution) before any
        submission is admitted. Returns the number quarantined.
        """
        before = self.quarantined
        for path in list(self._files(patterns=("*/*.json",))):
            try:
                doc = json.loads(path.read_bytes().decode("utf-8"))
                if not isinstance(doc, dict):
                    raise ValueError("entry is not a JSON object")
                if doc.get("sha256") != _payload_checksum(doc):
                    raise ValueError("checksum mismatch")
            except OSError:
                continue  # deleted or unreadable mid-scan: nothing to verify
            except (ValueError, KeyError, TypeError):
                self._quarantine(path)
        return self.quarantined - before

    def evict_lru(self, max_bytes: int) -> int:
        """Shrink live entries to ``max_bytes``, oldest mtime first.

        The semi-permanent-occupancy question one layer up: the store is a
        shared cache, and without a capacity it grows monotonically.
        Eviction is by modification time (a rewrite refreshes recency), so
        entries the active scenarios keep re-reading survive — ``get``
        does not touch mtime, making this LRU over *writes*, FIFO over
        readers, which is cheap and deletion-safe under concurrency (a
        vanished file is simply skipped). Returns the number evicted.
        """
        if max_bytes < 0:
            return 0
        entries = []
        total = 0
        for path in self._files(patterns=("*/*.json",)):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        evicted = 0
        for _mtime, size, path in sorted(entries, key=lambda e: (e[0], e[2].name)):
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue  # another evictor/clearer got there first
            total -= size
            evicted += 1
        self.evicted += evicted
        return evicted
