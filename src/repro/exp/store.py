"""Content-addressed on-disk result store (``--cache-dir`` / ``--resume``).

Every executed point is stored under a key derived from the *computation*,
not the figure it feeds: SHA-256 over the spec's canonical content (kind +
fully-resolved params + seed) plus a code-version salt. Consequences:

* Re-running a figure against a warm store performs zero simulations.
* An interrupted sweep resumes: completed points are hits, the rest run.
* Two panels sharing a grid corner (same config, different presentation)
  share one entry — ``series``/``x`` are excluded from the key.
* A package release (or a bump of :data:`STORE_SCHEMA` after a modeling
  change) salts every key, so stale physics is never replayed.

Entries are single JSON files sharded two hex characters deep; writes are
atomic (temp file + ``os.replace``). Integrity is end-to-end: every entry
carries a SHA-256 checksum of its payload, verified on :meth:`ResultStore.get`.
A damaged entry — truncated JSON, flipped bytes, a checksum mismatch — is
**quarantined** (renamed to ``*.corrupt``) and reported as a miss, so the
point silently re-executes while the rot stays visible on disk and in the
run report, instead of either poisoning a figure or vanishing without a
trace. A cache must not be able to break a run — an *absent* entry is a
plain miss and a foreign/unreadable one can cost at most one re-execution.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import List, Optional, Union

from repro._version import __version__
from repro.exp.plan import PointResult, PointSpec
from repro.mem.result import LevelStats

#: Bump when stored-result semantics change without a version bump.
#: 2: entries carry a payload checksum (``sha256``) verified on read.
STORE_SCHEMA = 2

#: Entry fields covered by the integrity checksum. ``series``/``x`` are
#: presentation, ``elapsed_s`` is timing noise — none can change a figure,
#: so none can invalidate an entry.
_CHECKSUM_FIELDS = ("spec", "salt", "y", "yerr", "mem_stats", "extras")


def default_salt() -> str:
    """The code-version salt mixed into every content key."""
    return f"repro-{__version__}/store-{STORE_SCHEMA}"


def _payload_checksum(doc: dict) -> str:
    """Canonical SHA-256 over the checksummed subset of an entry doc."""
    subset = {name: doc.get(name) for name in _CHECKSUM_FIELDS}
    text = json.dumps(subset, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultStore:
    """A directory of content-addressed :class:`PointResult` entries."""

    def __init__(self, root: Union[str, Path], *, salt: Optional[str] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.salt = default_salt() if salt is None else salt
        #: Hit/miss/put/quarantine counters for the lifetime of this instance.
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.quarantined = 0
        #: Paths of entries quarantined by this instance (report fodder).
        self.quarantined_paths: List[Path] = []

    # -- keys ------------------------------------------------------------------

    def key_for(self, spec: PointSpec) -> str:
        """The salted content key of one spec."""
        doc = {"content": spec.content(), "salt": self.salt}
        text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def path_for(self, spec: PointSpec) -> Path:
        """Where the spec's entry lives (whether or not it exists)."""
        key = self.key_for(spec)
        return self.root / key[:2] / f"{key}.json"

    # -- read/write ------------------------------------------------------------

    def get(self, spec: PointSpec) -> Optional[PointResult]:
        """The stored result, or None on any kind of miss.

        A present-but-damaged entry (unparseable, missing or mismatched
        checksum, malformed fields) is quarantined before returning None.
        """
        path = self.path_for(spec)
        try:
            raw = path.read_bytes()
        except OSError:
            # Absent entry: the ordinary cold-cache miss.
            self.misses += 1
            return None
        try:
            doc = json.loads(raw.decode("utf-8"))
            if not isinstance(doc, dict):
                raise ValueError("entry is not a JSON object")
            recorded = doc.get("sha256")
            if recorded != _payload_checksum(doc):
                raise ValueError(
                    f"checksum mismatch (recorded {str(recorded)[:12]}...)"
                )
            result = PointResult(
                y=float(doc["y"]),
                yerr=float(doc.get("yerr", 0.0)),
                mem_stats=(
                    LevelStats.from_snapshot(doc["mem_stats"])
                    if doc.get("mem_stats") is not None
                    else None
                ),
                extras={str(k): float(v) for k, v in (doc.get("extras") or {}).items()},
                elapsed_s=float(doc.get("elapsed_s", 0.0)),
            )
        except (ValueError, KeyError, TypeError):
            # Bit-rot, truncation, or a foreign file where an entry should
            # be: still a miss — never an error — but a *loud* one.
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: PointSpec, result: PointResult) -> Path:
        """Persist one result atomically; returns the entry path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "spec": spec.content(),
            "series": spec.series,
            "x": spec.x,
            "salt": self.salt,
            "y": result.y,
            "yerr": result.yerr,
            "mem_stats": result.mem_stats.snapshot() if result.mem_stats is not None else None,
            "extras": result.extras,
            "elapsed_s": result.elapsed_s,
        }
        doc["sha256"] = _payload_checksum(doc)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1
        return path

    # -- integrity -------------------------------------------------------------

    def _quarantine(self, path: Path) -> None:
        """Rename a damaged entry to ``*.corrupt`` (best effort)."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            return
        self.quarantined += 1
        self.quarantined_paths.append(path.with_suffix(".corrupt"))

    def corrupt(self, spec: PointSpec) -> bool:
        """Flip bytes in the spec's stored entry (deterministic bit-rot).

        The fault-injection hook behind ``--inject-faults corrupt@i`` and
        the integrity tests; returns False when the entry does not exist.
        """
        path = self.path_for(spec)
        try:
            data = bytearray(path.read_bytes())
        except OSError:
            return False
        if not data:
            return False
        # Flip one byte mid-payload: enough to break the checksum, small
        # enough that the entry usually still parses as JSON — exercising
        # the verification path, not just the parser.
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        return True

    # -- maintenance -----------------------------------------------------------

    #: Everything a store directory may accumulate: live entries,
    #: quarantined entries, and temp files orphaned by a killed process.
    _PATTERNS = ("*/*.json", "*/*.corrupt", "*/*.tmp")

    def _files(self):
        for pattern in self._PATTERNS:
            yield from self.root.glob(pattern)

    def __len__(self) -> int:
        """All store files: entries + quarantined + stale temp files."""
        return sum(1 for _ in self._files())

    def clear(self) -> int:
        """Delete every store file (see :meth:`__len__`); returns the count."""
        removed = 0
        for path in list(self._files()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
