"""Deterministic fault injection for the sweep subsystem.

Production sweep harnesses treat point execution as unreliable by
construction: workers crash, simulations raise, points hang, cache entries
rot on disk. This package makes every one of those failure modes a
first-class, *reproducible* input so the supervision layer in
:mod:`repro.exp.runner` can be exercised — in tests, in CI, and from the
CLI (``--inject-faults SPEC`` / the ``REPRO_INJECT_FAULTS`` env var) —
without ever touching the simulation's own determinism: faults change
*when and whether* a point runs, never *what it computes*.

See :mod:`repro.faults.plan` for the model and the spec grammar.
"""

from repro.faults.plan import (
    ENV_FAULTS,
    FAULT_KINDS,
    Fault,
    FaultAction,
    FaultPlan,
    WORKER_CRASH_EXIT_CODE,
)
from repro.faults.service import (
    ENV_SERVICE_FAULTS,
    SERVICE_FAULT_KINDS,
    ServiceFault,
    ServiceFaultPlan,
)

__all__ = [
    "ENV_FAULTS",
    "ENV_SERVICE_FAULTS",
    "FAULT_KINDS",
    "Fault",
    "FaultAction",
    "FaultPlan",
    "SERVICE_FAULT_KINDS",
    "ServiceFault",
    "ServiceFaultPlan",
    "WORKER_CRASH_EXIT_CODE",
]
