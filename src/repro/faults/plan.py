"""The fault model: what goes wrong, where, and on which attempt.

A :class:`FaultPlan` is a deterministic schedule of failures against an
:class:`~repro.exp.plan.ExperimentPlan`: each :class:`Fault` targets one
plan-point *index* and fires on that point's first ``attempts`` execution
attempts (attempt numbers ``0 .. attempts-1``), after which the point runs
clean — which is exactly the shape a supervised retry must survive.

Four kinds, covering the distinct failure paths of the runner and store:

``crash``
    The executing worker process dies (``os._exit``), breaking the process
    pool; executed in-process (serial runner, degraded mode) it raises
    instead, since killing the caller would take the supervisor with it.
``raise``
    The point raises :class:`~repro.errors.InjectedFaultError` (a
    :class:`~repro.errors.SimulationError`), the "simulation reached an
    inconsistent state" path.
``hang``
    The point sleeps ``seconds`` before computing, tripping the runner's
    per-point deadline (pool: the worker is terminated and the point
    rescheduled; serial: the overrun is detected post-hoc).
``corrupt``
    After the point's result is written to the
    :class:`~repro.exp.store.ResultStore`, the entry's bytes are flipped —
    simulated bit-rot that checksum verification must quarantine on the
    next read.

Spec grammar (CLI ``--inject-faults`` / ``REPRO_INJECT_FAULTS``)::

    SPEC    := entry ("," entry)*
    entry   := kind "@" index [":" attempts [":" seconds]]

``crash@0`` crashes point 0's first attempt; ``raise@4:2`` poisons point
4's first two attempts; ``hang@2:1:0.5`` makes point 2's first attempt
sleep 0.5 s. ``seconds`` is the hang duration for ``hang`` and a
pre-failure delay for ``crash``/``raise`` (it lets sibling points finish
first, which the fail-fast flush tests rely on); it is meaningless for
``corrupt``. Indices are per-``Runner.run`` call: a CLI command that
renders several panels applies the spec to each panel's plan.

Faults target *executions*: a point served from the result store or
deduplicated against an earlier in-plan twin never runs, so its faults
never fire.

:meth:`FaultPlan.scatter` generates a seeded pseudo-random plan (the
"chaos" mode) — deterministic for a given (seed, n_points, rate), with no
dependence on Python's per-process ``hash``.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, InjectedFaultError

#: Recognised fault kinds (see module docstring).
FAULT_KINDS = ("crash", "raise", "hang", "corrupt")

#: Spec string read when no explicit plan is passed to the runner.
ENV_FAULTS = "REPRO_INJECT_FAULTS"

#: Exit status of a crash-injected pool worker (distinctive in core logs).
WORKER_CRASH_EXIT_CODE = 86

#: Default injected-hang duration when the spec omits ``seconds``.
DEFAULT_HANG_S = 30.0


def _unit_hash(*parts) -> float:
    """A deterministic float in [0, 1) from hashable labels (no ``hash()``)."""
    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") / float(1 << 64)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled failure, resolved for a specific (point, attempt).

    Picklable and self-contained: the runner computes it supervisor-side
    and ships it into :func:`~repro.exp.producers.execute_point`, so pool
    workers need no shared fault state (works under ``fork`` and ``spawn``
    alike).
    """

    kind: str
    #: Pre-action delay (``crash``/``raise``) or sleep duration (``hang``).
    seconds: float = 0.0
    note: str = ""

    def trigger(self, *, allow_hard_crash: bool = False) -> None:
        """Perform the fault in the executing process.

        ``hang`` returns after sleeping (the point then computes normally —
        the *supervisor* decides the deadline was blown); ``crash`` and
        ``raise`` do not return. A hard crash is only taken when the caller
        says the process is expendable (a pool worker); in-process execution
        degrades it to a raise so the supervisor survives its own test.
        """
        if self.kind == "hang":
            time.sleep(self.seconds)
            return
        if self.seconds > 0.0:
            time.sleep(self.seconds)
        if self.kind == "crash" and allow_hard_crash:
            os._exit(WORKER_CRASH_EXIT_CODE)
        raise InjectedFaultError(
            f"injected {self.kind} fault"
            + (" (soft: in-process execution)" if self.kind == "crash" else "")
            + (f": {self.note}" if self.note else "")
        )


@dataclass(frozen=True)
class Fault:
    """One fault declaration: *kind* against plan point *index*.

    Fires on attempt numbers ``< attempts`` (default: first attempt only),
    so ``attempts=2`` means a point must be retried twice to succeed.
    """

    kind: str
    index: int
    attempts: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: {list(FAULT_KINDS)}"
            )
        if self.index < 0:
            raise ConfigurationError(f"fault index must be >= 0, got {self.index}")
        if self.attempts < 1:
            raise ConfigurationError(f"fault attempts must be >= 1, got {self.attempts}")
        if self.seconds < 0.0:
            raise ConfigurationError(f"fault seconds must be >= 0, got {self.seconds}")

    def describe(self) -> str:
        """Canonical spec-grammar form (parse/describe round-trips)."""
        text = f"{self.kind}@{self.index}"
        if self.attempts != 1 or self.seconds:
            text += f":{self.attempts}"
        if self.seconds:
            text += f":{self.seconds:g}"
        return text


class FaultPlan:
    """An ordered collection of :class:`Fault` declarations."""

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self.faults: Tuple[Fault, ...] = tuple(faults)
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise ConfigurationError(
                    f"FaultPlan takes Fault objects, got {type(fault).__name__}"
                )

    # -- construction ----------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the spec grammar (see module docstring)."""
        faults: List[Fault] = []
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            try:
                kind, _, target = entry.partition("@")
                if not target:
                    raise ValueError("missing '@index'")
                parts = target.split(":")
                if len(parts) > 3:
                    raise ValueError("too many ':' fields")
                index = int(parts[0])
                attempts = int(parts[1]) if len(parts) > 1 else 1
                if len(parts) > 2:
                    seconds = float(parts[2])
                else:
                    seconds = DEFAULT_HANG_S if kind == "hang" else 0.0
                faults.append(Fault(kind=kind, index=index, attempts=attempts, seconds=seconds))
            except (ValueError, ConfigurationError) as exc:
                raise ConfigurationError(
                    f"bad fault entry {entry!r} (expected kind@index[:attempts[:seconds]], "
                    f"kind in {list(FAULT_KINDS)}): {exc}"
                ) from None
        return cls(faults)

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_INJECT_FAULTS``, or None when unset."""
        spec = (environ if environ is not None else os.environ).get(ENV_FAULTS, "").strip()
        return cls.parse(spec) if spec else None

    @classmethod
    def scatter(
        cls,
        n_points: int,
        *,
        seed: int,
        rate: float,
        kinds: Sequence[str] = ("raise",),
        attempts: int = 1,
        seconds: float = 0.0,
    ) -> "FaultPlan":
        """A seeded pseudo-random plan: each point faults with ``rate``.

        Deterministic across processes and Python versions (SHA-256, not
        ``hash()``), so a chaos run is exactly replayable from its seed.
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"scatter rate must be in [0, 1], got {rate}")
        if not kinds:
            raise ConfigurationError("scatter needs at least one fault kind")
        faults = []
        for index in range(n_points):
            if _unit_hash("scatter", int(seed), index) < rate:
                kind = kinds[int(_unit_hash("kind", int(seed), index) * len(kinds))]
                faults.append(Fault(kind=kind, index=index, attempts=attempts, seconds=seconds))
        return cls(faults)

    # -- queries (the runner's hooks) ------------------------------------------

    def action_for(self, index: int, attempt: int) -> Optional[FaultAction]:
        """The execution fault to inject for (point, attempt), or None.

        ``corrupt`` faults are store-side and never surface here; the first
        matching execution fault wins when a point is multiply targeted.
        """
        for fault in self.faults:
            if fault.kind != "corrupt" and fault.index == index and attempt < fault.attempts:
                return FaultAction(
                    kind=fault.kind, seconds=fault.seconds, note=fault.describe()
                )
        return None

    def corrupts(self, index: int) -> bool:
        """Whether the stored entry of point *index* should be bit-rotted."""
        return any(f.kind == "corrupt" and f.index == index for f in self.faults)

    def describe(self) -> List[str]:
        """Canonical entry list (what the RunReport records as injected)."""
        return [fault.describe() for fault in self.faults]

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({','.join(self.describe()) or 'empty'})"
