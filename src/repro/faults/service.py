"""Service-level chaos: faults against the *sweep service*, not one point.

:mod:`repro.faults.plan` targets plan-point executions; a long-running
:class:`~repro.service.SweepService` has failure surfaces a single run
never sees — a client dying mid-submission, a pool worker silently
stalling under the heartbeat watchdog, store entries rotting *while*
concurrent submissions read them. This module schedules those
deterministically, so the service's robustness ladder (admission →
journal → watchdog → rebuild → degrade) is testable end-to-end.

Three kinds, addressed by **occurrence number** (0-based) rather than
plan index, because service events interleave across submissions:

``submit-crash``
    The Nth ``submit()`` call raises
    :class:`~repro.errors.InjectedFaultError` *after* admission
    accounting but before the submission is scheduled — the moment a real
    client would die holding a ticket. The service must stay alive,
    release the queue slot, and keep serving later submissions.
``worker-stall``
    The Nth point dispatched to the worker pool sleeps ``seconds``
    before computing (a heartbeat stall, not a crash): the watchdog must
    quarantine the worker, rebuild the pool, and reschedule — extending
    the PR 3 degradation ladder to silent stalls under a shared pool.
``store-rot``
    The Nth result persisted to the store has its entry bit-flipped
    immediately after the write — rot injected during concurrent access,
    which the next reader (or the startup integrity sweep) must
    quarantine without losing or duplicating any point.

Spec grammar (CLI ``repro serve --inject-faults`` /
``REPRO_INJECT_SERVICE_FAULTS``)::

    SPEC  := entry ("," entry)*
    entry := kind "@" n [":" seconds]

``submit-crash@1`` kills the second submission at submit time;
``worker-stall@3:0.5`` stalls the fourth dispatched point for 0.5 s;
``store-rot@0`` rots the first entry written. ``seconds`` only means
something for ``worker-stall``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import FaultAction

#: Recognised service-level fault kinds (see module docstring).
SERVICE_FAULT_KINDS = ("submit-crash", "worker-stall", "store-rot")

#: Spec string read when no explicit plan is passed to the service.
ENV_SERVICE_FAULTS = "REPRO_INJECT_SERVICE_FAULTS"

#: Default injected-stall duration when the spec omits ``seconds``.
DEFAULT_STALL_S = 30.0


@dataclass(frozen=True)
class ServiceFault:
    """One service-level fault: *kind* against occurrence number *index*."""

    kind: str
    index: int
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SERVICE_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown service fault kind {self.kind!r}; known: "
                f"{list(SERVICE_FAULT_KINDS)}"
            )
        if self.index < 0:
            raise ConfigurationError(f"fault index must be >= 0, got {self.index}")
        if self.seconds < 0.0:
            raise ConfigurationError(f"fault seconds must be >= 0, got {self.seconds}")

    def describe(self) -> str:
        """Canonical spec-grammar form (parse/describe round-trips)."""
        text = f"{self.kind}@{self.index}"
        if self.seconds:
            text += f":{self.seconds:g}"
        return text


class ServiceFaultPlan:
    """An ordered collection of :class:`ServiceFault` declarations."""

    def __init__(self, faults: Iterable[ServiceFault] = ()) -> None:
        self.faults: Tuple[ServiceFault, ...] = tuple(faults)
        for fault in self.faults:
            if not isinstance(fault, ServiceFault):
                raise ConfigurationError(
                    f"ServiceFaultPlan takes ServiceFault objects, got "
                    f"{type(fault).__name__}"
                )

    # -- construction ----------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "ServiceFaultPlan":
        """Build a plan from the spec grammar (see module docstring)."""
        faults: List[ServiceFault] = []
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            try:
                kind, _, target = entry.partition("@")
                if not target:
                    raise ValueError("missing '@n'")
                parts = target.split(":")
                if len(parts) > 2:
                    raise ValueError("too many ':' fields")
                index = int(parts[0])
                if len(parts) > 1:
                    seconds = float(parts[1])
                else:
                    seconds = DEFAULT_STALL_S if kind == "worker-stall" else 0.0
                faults.append(ServiceFault(kind=kind, index=index, seconds=seconds))
            except (ValueError, ConfigurationError) as exc:
                raise ConfigurationError(
                    f"bad service fault entry {entry!r} (expected "
                    f"kind@n[:seconds], kind in {list(SERVICE_FAULT_KINDS)}): {exc}"
                ) from None
        return cls(faults)

    @classmethod
    def from_env(cls, environ=None) -> Optional["ServiceFaultPlan"]:
        """The plan named by ``REPRO_INJECT_SERVICE_FAULTS``, or None."""
        spec = (environ if environ is not None else os.environ).get(
            ENV_SERVICE_FAULTS, ""
        ).strip()
        return cls.parse(spec) if spec else None

    # -- queries (the service's hooks) -----------------------------------------

    def submit_crashes(self, nth_submit: int) -> bool:
        """Whether the *nth* submission dies at submit time."""
        return any(
            f.kind == "submit-crash" and f.index == nth_submit for f in self.faults
        )

    def stall_for(self, nth_dispatch: int) -> Optional[FaultAction]:
        """A hang :class:`FaultAction` for the *nth* dispatched point, or
        None. Rides the point-fault machinery: the worker sleeps, the
        supervisor's heartbeat deadline decides it stalled."""
        for fault in self.faults:
            if fault.kind == "worker-stall" and fault.index == nth_dispatch:
                return FaultAction(
                    kind="hang", seconds=fault.seconds, note=fault.describe()
                )
        return None

    def rots_put(self, nth_put: int) -> bool:
        """Whether the *nth* store write should be bit-rotted after landing."""
        return any(f.kind == "store-rot" and f.index == nth_put for f in self.faults)

    def describe(self) -> List[str]:
        """Canonical entry list (what the service status records)."""
        return [fault.describe() for fault in self.faults]

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceFaultPlan({','.join(self.describe()) or 'empty'})"
