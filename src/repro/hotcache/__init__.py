"""Hot caching — the paper's temporal-locality tool (section 3.2).

    "Hot caching increases temporal locality by creating a heating thread
    which periodically interacts with specified regions of memory. By
    updating the metrics used in cache eviction, the specified regions are
    prevented from being evicted."

The heater is modelled as a periodic process on a second core of the same
simulated socket. Each pass walks the registered regions, refreshing their
recency in the shared L3 (and filling the heater's own private caches, which
help nobody — exactly as in hardware). The three implementation challenges
the paper reports are first-class here:

1. **Core binding** (must share a cache level with the matching core):
   choose the heater's ``core_id`` and target level.
2. **Lock contention**: the original design guards the region list with a
   spin lock; a region removal that lands inside a heater pass waits for the
   rest of the pass. The pool-backed variant (``locked=False``) registers
   stable slab regions once and never removes on the hot path.
3. **Application interference**: heater passes consume shared-cache capacity
   (emergent: its fills really do evict other lines) and its pass duration
   scales with the heated footprint.
"""

from repro.hotcache.heater import Heater, HeaterConfig
from repro.hotcache.policies import CollaborativeHeater, DefectiveCoreHeater
from repro.hotcache.regions import RegionSet
from repro.hotcache.wrapper import HeatedQueue

__all__ = [
    "CollaborativeHeater",
    "DefectiveCoreHeater",
    "HeatedQueue",
    "Heater",
    "HeaterConfig",
    "RegionSet",
]
