"""The heater thread model.

The heater is simulated *lazily*: instead of interleaving its loop with the
matching engine instruction by instruction, it records when passes happen and
applies them to the shared cache whenever the matching engine is about to
touch memory (:meth:`Heater.catch_up`, invoked by the engine before every
load/store). Because the only channels between the heater and the matching
core are (a) shared-cache contents and (b) the region-list lock windows, this
lazy schedule is observationally equivalent to a step-by-step interleaving,
and deterministic.

Timing model of one pass starting at ``t``:

* walking the region list costs ``region_admin_cycles`` per region (pointer
  chase through the list itself) plus ``touch_cycles_per_line`` per line
  touched (the paper's heater adds the first 4 bytes of each line to a
  throwaway sum);
* the pass holds the region-list spin lock for its whole duration when the
  locked (original) variant is active;
* the next pass starts ``period_cycles`` after the *start* of this one, or
  immediately after this one ends if it overran the period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.errors import ConfigurationError
from repro.mem.alloc import Allocation
from repro.mem.cache import CLS_NETWORK
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.result import AccessResult
from repro.hotcache.regions import RegionSet
from repro.sim.resources import SpinLock


@dataclass(frozen=True)
class HeaterConfig:
    """Construction knobs for :class:`Heater`.

    ``period_ns`` is the sleep between passes ("it then sleeps for an
    arbitrary number of nanoseconds and repeats the process"). ``locked``
    selects the original spin-locked region list; the pool-backed auxiliary
    design of section 4.3 corresponds to ``locked=False``.
    """

    period_ns: float = 2000.0
    core_id: int = 1
    locked: bool = True
    touch_cycles_per_line: float = 2.0
    region_admin_cycles: float = 12.0
    # MPI-side costs of maintaining the heater's region list per queue
    # operation in the locked design (list search + insert/delete).
    register_cycles: float = 60.0
    deregister_cycles: float = 80.0
    # Shared-cache bandwidth interference charged per matching-core memory
    # access while the heater is *saturated* (its pass takes longer than its
    # period, so it is touching the LLC continuously). This is the paper's
    # third challenge — "the hot caching thread utilizes processor
    # resources, occupying both cycles on a core and lines in cache".
    interference_cycles: float = 2.0
    # Spin locks are unfair: a saturated heater re-acquires the region-list
    # lock the instant it releases it, so the matching core loses the race
    # about half the time and waits this many expected extra full passes per
    # register/deregister. Combined with high region churn this is the
    # contention that makes hot caching a net loss for FDS at scale
    # (section 4.5: "we must remove elements from the hot caching list
    # before MPI can deallocate them").
    saturated_retry_passes: float = 1.0


class Heater:
    """Periodic region toucher keeping match state LLC-resident."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        ghz: float,
        config: Optional[HeaterConfig] = None,
        *,
        region_provider: Optional[Callable[[], Iterable[Allocation]]] = None,
        mem_class: int = CLS_NETWORK,
    ) -> None:
        self.config = config if config is not None else HeaterConfig()
        if self.config.core_id >= hierarchy.n_cores:
            raise ConfigurationError(
                f"heater core {self.config.core_id} outside hierarchy "
                f"({hierarchy.n_cores} cores)"
            )
        if self.config.period_ns <= 0:
            raise ConfigurationError("heater period must be positive")
        self.hierarchy = hierarchy
        self.ghz = ghz
        self.period_cycles = self.config.period_ns * ghz
        self.mem_class = mem_class
        self.regions = RegionSet()
        # When a provider is given the heater re-reads the full region set at
        # the start of every pass (models the heater walking MPI's live
        # list); explicit register/deregister is then only charged for its
        # lock/admin cost.
        self.region_provider = region_provider
        self.lock = SpinLock("hotcache-region-list")
        self.next_pass_start = 0.0
        self.passes = 0
        self.lines_touched = 0
        # Split of every touched line: already LLC-resident (recency refresh,
        # the heater doing its job) vs installed from DRAM (the heater paying
        # to rebuild state a flush destroyed).
        self.lines_refreshed = 0
        self.lines_installed = 0
        self.busy_cycles = 0.0
        self.last_pass_duration = 0.0
        self.last_pass_lines = 0
        self.last_pass_refreshed = 0
        self.enabled = True
        self._tx = AccessResult()  # scratch for touch transactions

    # -- pass machinery ------------------------------------------------------

    def catch_up(self, now: float) -> None:
        """Apply every pass that should have started by *now*."""
        if not self.enabled:
            return
        while self.next_pass_start <= now:
            self._run_pass(self.next_pass_start)

    def quiescent_until(self, horizon: float) -> bool:
        """True when no pass can start at any clock value below *horizon*.

        The engine's batched scan path charges a whole run under one
        :meth:`catch_up`; that is only equivalent to the per-slot replay
        (which re-syncs before every probe) when every intermediate clock
        value the replay would sync at stays below the next pass start.
        Callers must have already called :meth:`catch_up` for the current
        time; this is then a pure inspection.
        """
        return not self.enabled or self.next_pass_start > horizon

    def force_pass(self, now: float) -> None:
        """Run one pass immediately (e.g. right after a cache-clearing
        compute phase, before the communication phase begins)."""
        if not self.enabled:
            return
        self.catch_up(now)
        self._run_pass(max(now, self.next_pass_start - self.period_cycles))

    def _run_pass(self, start: float) -> None:
        cfg = self.config
        if self.region_provider is not None:
            self.regions.replace_all(self.region_provider())
        duration = 0.0
        lines = 0
        refreshed = 0
        installed = 0
        touch = self.hierarchy.touch_shared_tx
        tx = self._tx
        for region in self.regions:
            duration += cfg.region_admin_cycles
            touch(cfg.core_id, region.addr, region.size, self.mem_class, out=tx)
            lines += tx.lines
            refreshed += tx.l3_hits
            installed += tx.dram_fills
        duration += lines * cfg.touch_cycles_per_line
        if cfg.locked:
            self.lock.hold(start, duration)
        self.passes += 1
        self.lines_touched += lines
        self.lines_refreshed += refreshed
        self.lines_installed += installed
        self.busy_cycles += duration
        self.last_pass_duration = duration
        self.last_pass_lines = lines
        self.last_pass_refreshed = refreshed
        self.next_pass_start = start + max(self.period_cycles, duration)

    # -- MPI-side region maintenance -------------------------------------------

    def on_register(self, region: Optional[Allocation], now: float) -> float:
        """MPI registers a region (a new queue node). Returns cycles the
        matching core spends doing so (admin + possible lock wait)."""
        if not self.enabled:
            return 0.0
        if region is not None and self.region_provider is None:
            self.regions.add(region)
        if not self.config.locked:
            return 0.0
        wait = self.lock.acquire(now)
        wait += self._starvation_penalty()
        return wait + self.config.register_cycles

    def on_deregister(self, region: Optional[Allocation], now: float) -> float:
        """MPI removes a region before freeing it. In the locked design this
        is the expensive path: it must win the spin lock against a possibly
        mid-pass heater."""
        if not self.enabled:
            return 0.0
        if region is not None and self.region_provider is None:
            self.regions.discard(region)
        if not self.config.locked:
            return 0.0
        wait = self.lock.acquire(now)
        wait += self._starvation_penalty()
        return wait + self.config.deregister_cycles

    def _starvation_penalty(self) -> float:
        """Extra waits from losing spin-lock races to a saturated heater."""
        if not self.saturated:
            return 0.0
        return self.config.saturated_retry_passes * self.last_pass_duration

    # -- introspection --------------------------------------------------------

    @property
    def saturated(self) -> bool:
        """True when a pass takes longer than the period: the heater never
        sleeps, so it contends with the matching core continuously."""
        return self.enabled and self.last_pass_duration >= self.period_cycles

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the heater spends touching (vs sleeping)."""
        if self.passes == 0:
            return 0.0
        horizon = self.next_pass_start
        return min(1.0, self.busy_cycles / horizon) if horizon > 0 else 0.0

    @property
    def refreshed_per_pass(self) -> float:
        """Mean lines refreshed (found LLC-resident) per completed pass."""
        return self.lines_refreshed / self.passes if self.passes else 0.0

    def pass_stats(self) -> dict:
        """Pass counters as a plain dict (reporter/CLI friendly)."""
        return {
            "passes": self.passes,
            "lines_touched": self.lines_touched,
            "lines_refreshed": self.lines_refreshed,
            "lines_installed": self.lines_installed,
            "refreshed_per_pass": self.refreshed_per_pass,
            "last_pass_lines": self.last_pass_lines,
            "last_pass_refreshed": self.last_pass_refreshed,
            "busy_cycles": self.busy_cycles,
            "duty_cycle": self.duty_cycle,
            "saturated": self.saturated,
        }

    def reset(self, now: float = 0.0) -> None:
        """Clear accumulated state/counters."""
        self.next_pass_start = now
        self.passes = 0
        self.lines_touched = 0
        self.lines_refreshed = 0
        self.lines_installed = 0
        self.busy_cycles = 0.0
        self.last_pass_lines = 0
        self.last_pass_refreshed = 0
        self.lock.reset_stats()
