"""Heater deployment policies (paper section 3.2's mitigation strategies).

The paper sketches three ways to keep hot caching from interfering with the
application's compute phases:

1. **Collaborative pause/resume** — "the heater can collaborate with the
   application to pause when needed. The challenge with this approach is to
   resume the heater in time to ensure the match list is in cache before the
   first access in a communication phase."
   :class:`CollaborativeHeater` implements exactly that contract: paused
   during compute, resumed ``lead_ns`` before the phase starts; if the lead
   is shorter than one pass, only a prefix of the regions is warm when the
   phase begins.

2. **Defective-core heater** — "gain access to defective cores on the die
   that still have the potential to load data from memory into a shared
   cache ... a core that is turned off for yield purposes, that is still
   capable of load/store operations". :class:`DefectiveCoreHeater`: zero
   interference with live cores (it owns no shared execution resources), but
   a degraded touch rate — the part was binned for a reason.

3. **A dedicated network cache** — modelled in hardware instead of software:
   :class:`repro.mem.hierarchy.NetworkCacheConfig`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.hotcache.heater import Heater, HeaterConfig
from repro.mem.layout import line_span


class CollaborativeHeater(Heater):
    """A heater that pauses during compute and resumes just before comm.

    While paused it runs no passes at all (zero interference, zero lock
    windows). :meth:`resume_before_phase` models the application calling it
    ``lead_ns`` ahead of the communication phase: the heater gets that much
    time to re-warm the regions, covering them in registration order. A
    short lead leaves the tail of the region set cold — the "challenge" the
    paper calls out, measurable as first-access misses.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.paused = False
        self.partial_passes = 0

    def pause(self) -> None:
        """Application entering a compute phase: stop heating."""
        self.paused = True

    def catch_up(self, now: float) -> None:
        """Apply every heater pass due by *now* (no-op while paused)."""
        if self.paused:
            self.next_pass_start = max(self.next_pass_start, now)
            return
        super().catch_up(now)

    def resume_before_phase(self, phase_start: float, lead_ns: float) -> float:
        """Resume ``lead_ns`` (wall time) before *phase_start*.

        Returns the fraction of the heated footprint that is warm when the
        phase begins (1.0 = fully re-warmed in time).
        """
        if lead_ns < 0:
            raise ConfigurationError(f"negative lead time: {lead_ns}")
        self.paused = False
        lead_cycles = lead_ns * self.ghz
        if self.region_provider is not None:
            self.regions.replace_all(self.region_provider())
        cfg = self.config
        # How much touching fits into the lead window?
        budget = lead_cycles
        warmed_lines = 0
        total_lines = 0
        refreshed = 0
        installed = 0
        duration = 0.0
        touch = self.hierarchy.touch_shared_tx
        tx = self._tx
        for region in self.regions:
            lines = line_span(region.addr, region.size)
            total_lines += lines
            cost = cfg.region_admin_cycles + lines * cfg.touch_cycles_per_line
            if budget >= cost:
                touch(cfg.core_id, region.addr, region.size, self.mem_class, out=tx)
                refreshed += tx.l3_hits
                installed += tx.dram_fills
                warmed_lines += lines
                budget -= cost
                duration += cost
        if cfg.locked and duration > 0:
            self.lock.hold(phase_start - lead_cycles, duration)
        self.partial_passes += 1
        self.lines_touched += warmed_lines
        self.lines_refreshed += refreshed
        self.lines_installed += installed
        self.busy_cycles += duration
        self.last_pass_duration = duration
        self.last_pass_lines = warmed_lines
        self.last_pass_refreshed = refreshed
        self.next_pass_start = max(self.next_pass_start, phase_start)
        return warmed_lines / total_lines if total_lines else 1.0


class DefectiveCoreHeater(Heater):
    """A heater on a yield-harvested core: free, but slow.

    The core was fused off for a reason — we model a degraded clock via a
    touch-rate multiplier. Because it owns no shared execution resources of
    any live core, its saturation causes no per-access interference (the
    LLC capacity it occupies is still real and emergent).
    """

    DEFAULT_SLOWDOWN = 3.0

    def __init__(
        self,
        hierarchy,
        ghz: float,
        config: Optional[HeaterConfig] = None,
        *,
        slowdown: float = DEFAULT_SLOWDOWN,
        **kwargs,
    ) -> None:
        if slowdown < 1.0:
            raise ConfigurationError(f"slowdown must be >= 1, got {slowdown}")
        cfg = config if config is not None else HeaterConfig()
        cfg = replace(
            cfg,
            touch_cycles_per_line=cfg.touch_cycles_per_line * slowdown,
            region_admin_cycles=cfg.region_admin_cycles * slowdown,
            interference_cycles=0.0,  # no shared pipeline with live cores
        )
        super().__init__(hierarchy, ghz, cfg, **kwargs)
        self.slowdown = slowdown
