"""The heater's region list.

A region is an ``(addr, size)`` span the heater re-touches every pass. The
paper's first implementation kept these in a spin-locked list; because MPI
must remove a region before deallocating its memory (or the heater would
touch freed memory — "could cause a segmentation fault"), every removal
crosses the heater's critical section. The improved design re-uses elements
from a dedicated pool so the region set stays fixed.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.mem.alloc import Allocation


class RegionSet:
    """Ordered set of heated regions with O(1) add/discard.

    Regions are keyed by ``(addr, size)``; iteration follows insertion order
    (the order the heater walks them in each pass).
    """

    def __init__(self, regions: Iterable[Allocation] = ()) -> None:
        self._regions: dict[tuple[int, int], Allocation] = {}
        for region in regions:
            self.add(region)

    @staticmethod
    def _key(region: Allocation) -> tuple[int, int]:
        return (region.addr, region.size)

    def add(self, region: Allocation) -> bool:
        """Register a region; returns False if it was already present."""
        key = self._key(region)
        if key in self._regions:
            return False
        self._regions[key] = region
        return True

    def discard(self, region: Allocation) -> bool:
        """Remove a region; returns False if it was not present."""
        return self._regions.pop(self._key(region), None) is not None

    def replace_all(self, regions: Iterable[Allocation]) -> None:
        """Swap in a whole new region set (used by region providers)."""
        self._regions = {self._key(r): r for r in regions}

    def __iter__(self) -> Iterator[Allocation]:
        return iter(self._regions.values())

    def __len__(self) -> int:
        return len(self._regions)

    def __contains__(self, region: Allocation) -> bool:
        return self._key(region) in self._regions

    def total_bytes(self) -> int:
        """Total bytes across all regions."""
        return sum(r.size for r in self._regions.values())

    def total_lines(self) -> int:
        """Total cache lines across all regions."""
        from repro.mem.layout import line_span

        return sum(line_span(r.addr, r.size) for r in self._regions.values())
