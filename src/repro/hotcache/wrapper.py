"""HeatedQueue: couple any match queue to a heater.

This is the integration point the paper describes for MVAPICH: "we add those
memory regions associated with the matching engine to the list of regions for
the hot caching thread". Concretely:

* every ``post`` registers the new node's region (locked design) or nothing
  (pool design, where the stable slab regions were registered up front);
* every successful ``match_remove`` deregisters the node's region before the
  queue frees it — the lock-crossing operation responsible for the HC
  slowdowns at scale in Figure 10;
* all heater-induced waits are charged to the match engine's clock.

The wrapper is duck-typed as a :class:`~repro.matching.base.MatchQueue` and
forwards everything else to the wrapped queue.

Interaction with batched scans: the engine synchronizes the heater once at
the start of every scan run (:meth:`~repro.hotcache.heater.Heater.catch_up`)
and charges the whole run under that sync only when
:meth:`~repro.hotcache.heater.Heater.quiescent_until` proves no pass could
start inside the run's projected span; otherwise it replays the run probe by
probe, syncing before each — so heated results are bit-identical under both
``REPRO_SCAN_BATCH`` spellings. Heater lock charges issued here (register/
deregister) always happen outside the engine's scan bracket: the queue's
``match_remove`` has fully returned, so no pending header load can straddle
the charge.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.hotcache.heater import Heater
from repro.matching.base import MatchQueue
from repro.matching.engine import MatchEngine
from repro.matching.entry import MatchItem
from repro.matching.lla import LinkedListOfArrays


class HeatedQueue:
    """A match queue whose memory is kept hot by a heater."""

    def __init__(self, inner: MatchQueue, heater: Heater, engine: MatchEngine) -> None:
        self.inner = inner
        self.heater = heater
        self.engine = engine
        engine.attach_heater(heater)
        if isinstance(inner, LinkedListOfArrays):
            # Pool-backed structure: register the stable slabs once and keep
            # them registered; node churn never touches the region list.
            self._per_node_regions = False
            heater.region_provider = inner.regions
        else:
            # Original design: the heater tracks every node.
            self._per_node_regions = True
            heater.region_provider = inner.regions

    @property
    def family(self) -> str:
        """Queue-family label including the hc+ prefix."""
        return f"hc+{self.inner.family}"

    @property
    def stats(self):
        """The wrapped queue's search statistics."""
        return self.inner.stats

    # -- queue protocol --------------------------------------------------------

    def post(self, item: MatchItem) -> None:
        """Append *item*; its FIFO position is its posting order."""
        self.inner.post(item)
        if self._per_node_regions:
            # Registering the new node with the heater crosses the lock.
            cost = self.heater.on_register(None, self.engine.clock.now)
            if cost:
                self.engine.charge(cost)

    def match_remove(self, probe: MatchItem) -> Optional[MatchItem]:
        """Find, remove and return the earliest item matching *probe*, or None."""
        found = self.inner.match_remove(probe)
        if found is not None and self._per_node_regions:
            # The node is being freed: it must leave the heated set first.
            cost = self.heater.on_deregister(None, self.engine.clock.now)
            if cost:
                self.engine.charge(cost)
        return found

    def __len__(self) -> int:
        return len(self.inner)

    def iter_items(self) -> Iterator[MatchItem]:
        """Yield live items in FIFO (posting) order, without memory charges."""
        return self.inner.iter_items()

    def regions(self):
        """Simulated memory regions backing this structure (heater targets)."""
        return self.inner.regions()

    def footprint_bytes(self) -> int:
        """Total simulated bytes currently backing the structure."""
        return self.inner.footprint_bytes()

    # -- phase hooks -------------------------------------------------------------

    def prepare_phase(self) -> None:
        """Call at a communication-phase boundary: the heater has been running
        during the compute phase, so the match state is already hot."""
        self.heater.force_pass(self.engine.clock.now)
