"""MPI message-matching substrate.

Implements the matching semantics of the paper's section 2.1/2.2 — posted
receive queue (PRQ) and unexpected message queue (UMQ), matching on
(source rank, tag, communicator) with MPI wildcards — over several queue
organizations:

* :class:`~repro.matching.linkedlist.BaselineLinkedList` — the single linked
  list used by MPICH-lineage implementations (the paper's baseline).
* :class:`~repro.matching.lla.LinkedListOfArrays` — **the paper's spatial
  locality tool**: k match entries packed contiguously per list node
  (Figure 2), holes managed by invalidation.
* :class:`~repro.matching.openmpi.OpenMpiHierarchicalQueue` — Open MPI's
  per-communicator array of per-source lists (O(1) to a short list, O(N^2)
  total memory, section 2.2).
* :class:`~repro.matching.hashmap.BinnedHashQueue` — Flajslik et al.'s hash
  bins (related work the paper positions against).
* :class:`~repro.matching.fourd.FourDimensionalQueue` — Zounmevo & Afsahi's
  rank-decomposed 4-D structure.

Every queue issues its probe loads through a :class:`MemoryPort`, so the same
data structure code runs against the cycle-accounted cache hierarchy
(:class:`~repro.matching.engine.MatchEngine`) or a free
:class:`~repro.matching.port.NullPort` for pure semantics tests.
"""

from repro.matching.envelope import (
    ANY_SOURCE,
    ANY_TAG,
    FULL_MASK,
    Envelope,
    items_match,
    make_pattern,
)
from repro.matching.entry import (
    LLA_NODE_OVERHEAD,
    PRQ_ENTRY_BYTES,
    UMQ_ENTRY_BYTES,
    MatchItem,
    lla_entries_per_line,
    lla_node_bytes,
)
from repro.matching.base import MatchQueue, QueueStats
from repro.matching.bounded import ADMISSION_POLICIES, AdmissionStats, BoundedQueue
from repro.matching.port import MemoryPort, NullPort
from repro.matching.engine import MatchEngine
from repro.matching.linkedlist import BaselineLinkedList
from repro.matching.lla import LinkedListOfArrays
from repro.matching.openmpi import OpenMpiHierarchicalQueue
from repro.matching.hashmap import BinnedHashQueue
from repro.matching.fourd import FourDimensionalQueue
from repro.matching.ch4 import Ch4PerCommunicatorQueue
from repro.matching.adaptive import AdaptiveHybridQueue
from repro.matching.factory import QUEUE_FAMILIES, make_queue

__all__ = [
    "ADMISSION_POLICIES",
    "ANY_SOURCE",
    "ANY_TAG",
    "AdaptiveHybridQueue",
    "AdmissionStats",
    "BaselineLinkedList",
    "BinnedHashQueue",
    "BoundedQueue",
    "Ch4PerCommunicatorQueue",
    "Envelope",
    "FourDimensionalQueue",
    "FULL_MASK",
    "LinkedListOfArrays",
    "LLA_NODE_OVERHEAD",
    "MatchEngine",
    "MatchItem",
    "MatchQueue",
    "MemoryPort",
    "NullPort",
    "OpenMpiHierarchicalQueue",
    "PRQ_ENTRY_BYTES",
    "QUEUE_FAMILIES",
    "QueueStats",
    "UMQ_ENTRY_BYTES",
    "items_match",
    "lla_entries_per_line",
    "lla_node_bytes",
    "make_pattern",
    "make_queue",
]
