"""Bayatpour et al.'s adaptive matching (related work, section 5).

    "Bayatpour, et al. extend the hash-table approach by creating a dynamic
    runtime approach to swap between hashing and traditional matching when
    appropriate."

The adaptive queue watches its own length and search depths: while the list
stays short it runs the plain linked list (no bin-selection overhead, the
fast path hash tables slow down); when the length crosses ``promote_at`` it
migrates every live entry into hash bins, and demotes again when the queue
drains below ``demote_at``. Hysteresis (promote > demote) prevents
thrashing at the boundary; migration cost is charged through the port like
any other memory work.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.matching.base import MatchQueue
from repro.matching.hashmap import BinnedHashQueue
from repro.matching.linkedlist import BaselineLinkedList
from repro.matching.entry import MatchItem
from repro.matching.port import MemoryPort


class AdaptiveHybridQueue(MatchQueue):
    """Linked list below the threshold, hash bins above it."""

    family = "adaptive"

    def __init__(
        self,
        *,
        entry_bytes: int = 24,
        port: Optional[MemoryPort] = None,
        rng: Optional[np.random.Generator] = None,
        promote_at: int = 64,
        demote_at: int = 16,
        nbins: int = 256,
    ) -> None:
        if demote_at >= promote_at:
            raise ConfigurationError(
                f"need demote_at < promote_at, got {demote_at} >= {promote_at}"
            )
        super().__init__(entry_bytes=entry_bytes, port=port)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.promote_at = promote_at
        self.demote_at = demote_at
        self._list = BaselineLinkedList(entry_bytes=entry_bytes, port=self.port, rng=rng)
        self._hash = BinnedHashQueue(nbins, entry_bytes=entry_bytes, port=self.port, rng=rng)
        self._hashed = False
        self.migrations = 0

    # -- mode management -----------------------------------------------------

    @property
    def hashed(self) -> bool:
        """True while the hash-bin representation is active."""
        return self._hashed

    @property
    def _active(self) -> MatchQueue:
        return self._hash if self._hashed else self._list

    def _migrate(self, to_hash: bool) -> None:
        source = self._list if to_hash else self._hash
        target = self._hash if to_hash else self._list
        for item in source.drain():
            target.post(item)
        self._hashed = to_hash
        self.migrations += 1

    def _maybe_adapt(self) -> None:
        n = len(self._active)
        if not self._hashed and n >= self.promote_at:
            self._migrate(to_hash=True)
        elif self._hashed and n <= self.demote_at:
            self._migrate(to_hash=False)

    # -- queue protocol ---------------------------------------------------------

    def post(self, item: MatchItem) -> None:
        """Append *item*; its FIFO position is its posting order."""
        self._active.post(item)
        self.stats.posts += 1
        self._maybe_adapt()

    def match_remove(self, probe: MatchItem) -> Optional[MatchItem]:
        """Find, remove and return the earliest item matching *probe*, or None."""
        active = self._active
        found = active.match_remove(probe)
        self.stats.record_search(active.stats.last_probes, found is not None)
        self._maybe_adapt()
        return found

    def __len__(self) -> int:
        return len(self._active)

    def iter_items(self) -> Iterator[MatchItem]:
        """Yield live items in FIFO (posting) order, without memory charges."""
        return self._active.iter_items()

    def regions(self) -> list:
        """Simulated memory regions backing this structure (heater targets)."""
        return self._active.regions()

    def footprint_bytes(self) -> int:
        """Total simulated bytes currently backing the structure."""
        return self._active.footprint_bytes()
