"""Abstract match queue interface and shared statistics.

Both MPI queues (PRQ and UMQ) are instances of the same structures; an item
is a wildcardable *pattern* in the PRQ and a concrete *envelope* in the UMQ,
and the symmetric rule in :func:`repro.matching.envelope.items_match` covers
both directions.

Contract (MPI semantics, paper section 2.1):

* :meth:`post` appends an item; posting order defines FIFO priority.
* :meth:`match_remove` finds **the earliest-posted** item matching the probe,
  removes it, and returns it (or ``None``). Search work is reported through
  the port (loads) and the ``probes`` counter (entries inspected).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.matching.entry import MatchItem
from repro.matching.port import MemoryPort, NullPort
from repro.mem.alloc import Allocation


@dataclass
class QueueStats:
    """Search-work counters for one queue."""

    posts: int = 0
    matches: int = 0
    failed_searches: int = 0
    probes: int = 0  # entries inspected across all searches
    last_probes: int = 0  # entries inspected by the most recent search

    @property
    def searches(self) -> int:
        """Total searches performed (matched + failed)."""
        return self.matches + self.failed_searches

    @property
    def mean_search_depth(self) -> float:
        """Mean entries inspected per search."""
        return self.probes / self.searches if self.searches else 0.0

    def record_search(self, probes: int, found: bool) -> None:
        """Account one search: *probes* entries inspected, hit or miss."""
        self.probes += probes
        self.last_probes = probes
        if found:
            self.matches += 1
        else:
            self.failed_searches += 1

    def reset(self) -> None:
        """Clear accumulated state/counters."""
        self.posts = 0
        self.matches = 0
        self.failed_searches = 0
        self.probes = 0
        self.last_probes = 0


@dataclass
class QueueConfig:
    """Common construction knobs shared by all queue families."""

    entry_bytes: int = 24
    port: MemoryPort = field(default_factory=NullPort)


class MatchQueue(ABC):
    """Base class for all match-queue organizations."""

    family: str = "abstract"

    def __init__(self, *, entry_bytes: int, port: Optional[MemoryPort] = None) -> None:
        self.entry_bytes = entry_bytes
        self.port = port if port is not None else NullPort()
        self.stats = QueueStats()

    # -- required operations -------------------------------------------------

    @abstractmethod
    def post(self, item: MatchItem) -> None:
        """Append *item* (FIFO position = posting order)."""

    @abstractmethod
    def match_remove(self, probe: MatchItem) -> Optional[MatchItem]:
        """Find, remove and return the earliest item matching *probe*."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of live (non-hole) items."""

    @abstractmethod
    def iter_items(self) -> Iterator[MatchItem]:
        """Live items in FIFO order (no memory charges; for tests/tools)."""

    # -- memory introspection -------------------------------------------------

    def regions(self) -> list[Allocation]:
        """Simulated memory regions backing the queue (heater targets)."""
        return []

    def footprint_bytes(self) -> int:
        """Total simulated bytes currently backing the structure."""
        return sum(r.size for r in self.regions())

    # -- conveniences ----------------------------------------------------------

    def peek_match(self, probe: MatchItem) -> Optional[MatchItem]:
        """Non-destructive best match (no removal, still charges searches)."""
        # Default: subclasses that can do better may override. This base
        # version scans iter_items without memory charges; only used by
        # tools, never on the hot path.
        best: Optional[MatchItem] = None
        from repro.matching.envelope import items_match

        for item in self.iter_items():
            if items_match(item, probe):
                if best is None or item.seq < best.seq:
                    best = item
                break  # iter_items is FIFO: first hit is earliest
        return best

    def drain(self) -> list[MatchItem]:
        """Remove and return all items in FIFO order (teardown helper)."""
        items = list(self.iter_items())
        for item in items:
            removed = self.match_remove(_exact_probe(item))
            if removed is None:  # pragma: no cover - defensive
                from repro.errors import MatchingError

                raise MatchingError(f"drain failed to remove {item}")
        return items


def _exact_probe(item: MatchItem) -> MatchItem:
    """A probe that matches *item* exactly (concrete fields, full masks)."""
    return MatchItem(
        seq=item.seq,
        src=item.src,
        tag=item.tag,
        cid=item.cid,
        src_mask=0xFFFFFFFF if item.src_mask else 0,
        tag_mask=0xFFFFFFFF if item.tag_mask else 0,
    )
