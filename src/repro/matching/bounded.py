"""Finite-capacity admission control for match queues.

Real transports bound the unexpected message queue: an eager message that
arrives when the receiver has no buffer left is dropped (and NACKed /
retransmitted at a cost), it does not grow the queue without limit. The
icarus packet-level workloads the traffic subsystem models report exactly
this as ``PERCENTAGE_OF_REJECTION`` per node. :class:`BoundedQueue` wraps
any :class:`~repro.matching.base.MatchQueue` (or duck-typed equivalent such
as :class:`~repro.hotcache.wrapper.HeatedQueue`) with a capacity and an
admission policy:

* ``drop-tail`` — a post that finds the queue full is *rejected*: the item
  is discarded, the queue is untouched, and ``reject_cycles`` (the NACK /
  cleanup cost) is charged to the engine.
* ``drop-head`` — the FIFO-oldest live item is *evicted* to make room; the
  newcomer is always admitted. Eviction goes through the wrapped queue's
  own ``match_remove`` with an exact probe, so its search charge (one probe
  — the head is first in FIFO order) flows through the same
  :class:`~repro.matching.port.MemoryPort` accounting as every other
  operation.

The wrapper is strictly additive: ``make_queue(..., capacity=None)`` never
constructs one, so every existing unbounded path is bit-identical by
construction (no admission code runs at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.errors import ConfigurationError, MatchingError
from repro.matching.base import _exact_probe
from repro.matching.entry import MatchItem

#: Legal admission policies, in documentation order.
ADMISSION_POLICIES = ("drop-tail", "drop-head")


@dataclass
class AdmissionStats:
    """Counters for one bounded queue's admission decisions."""

    offered: int = 0  # posts attempted
    accepted: int = 0  # posts that entered the queue
    rejected: int = 0  # drop-tail: newcomers discarded at a full queue
    evicted: int = 0  # drop-head: FIFO heads discarded to admit newcomers

    @property
    def rejection_pct(self) -> float:
        """Percentage of offered posts that were rejected outright."""
        return 100.0 * self.rejected / self.offered if self.offered else 0.0

    def reset(self) -> None:
        """Clear all counters."""
        self.offered = 0
        self.accepted = 0
        self.rejected = 0
        self.evicted = 0


class BoundedQueue:
    """A match queue with finite capacity and an admission policy.

    Duck-typed as a :class:`~repro.matching.base.MatchQueue`; everything
    except ``post`` forwards to the wrapped queue unchanged. ``try_post``
    exposes the admission verdict; the protocol-compatible ``post`` applies
    the policy silently (callers that need the verdict — the traffic driver
    — read :attr:`admission` deltas or call ``try_post`` directly).
    """

    def __init__(
        self,
        inner,
        capacity: int,
        *,
        policy: str = "drop-tail",
        reject_cycles: float = 0.0,
        port=None,
        on_evict: Optional[Callable[[MatchItem], None]] = None,
    ) -> None:
        if capacity < 0:
            raise ConfigurationError(f"queue capacity must be >= 0, got {capacity}")
        if policy not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"unknown admission policy {policy!r}; known: "
                + ", ".join(ADMISSION_POLICIES)
            )
        self.inner = inner
        self.capacity = int(capacity)
        self.policy = policy
        self.reject_cycles = float(reject_cycles)
        self.port = port if port is not None else getattr(inner, "port", None)
        self.on_evict = on_evict
        self.admission = AdmissionStats()

    # -- admission -------------------------------------------------------------

    def _charge_reject(self) -> None:
        if self.reject_cycles and self.port is not None:
            charge = getattr(self.port, "charge", None)
            if charge is not None:
                charge(self.reject_cycles)

    def try_post(self, item: MatchItem) -> bool:
        """Post *item* subject to the admission policy; True if admitted."""
        self.admission.offered += 1
        if len(self.inner) >= self.capacity:
            if self.policy == "drop-tail" or self.capacity == 0:
                self.admission.rejected += 1
                self._charge_reject()
                return False
            head = next(iter(self.inner.iter_items()), None)
            if head is None:  # pragma: no cover - len>0 implies a head
                raise MatchingError("bounded queue full but has no FIFO head")
            removed = self.inner.match_remove(_exact_probe(head))
            if removed is None:  # pragma: no cover - defensive
                raise MatchingError(f"drop-head eviction failed to remove {head}")
            self.admission.evicted += 1
            if self.on_evict is not None:
                self.on_evict(removed)
        self.inner.post(item)
        self.admission.accepted += 1
        return True

    # -- MatchQueue protocol ---------------------------------------------------

    @property
    def family(self) -> str:
        """The wrapped queue's family label."""
        return self.inner.family

    @property
    def stats(self):
        """The wrapped queue's search statistics."""
        return self.inner.stats

    @property
    def entry_bytes(self) -> int:
        return self.inner.entry_bytes

    def post(self, item: MatchItem) -> None:
        """MatchQueue-compatible post: applies the admission policy silently."""
        self.try_post(item)

    def match_remove(self, probe: MatchItem) -> Optional[MatchItem]:
        return self.inner.match_remove(probe)

    def __len__(self) -> int:
        return len(self.inner)

    def iter_items(self) -> Iterator[MatchItem]:
        return self.inner.iter_items()

    def regions(self):
        return self.inner.regions()

    def footprint_bytes(self) -> int:
        return self.inner.footprint_bytes()

    def peek_match(self, probe: MatchItem) -> Optional[MatchItem]:
        return self.inner.peek_match(probe)

    def drain(self):
        return self.inner.drain()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BoundedQueue({self.inner!r}, capacity={self.capacity}, "
            f"policy={self.policy!r})"
        )
