"""MPICH CH4-style per-communicator queues (paper section 2.2).

    "Implementations based on the open source MPICH implementation typically
    use a single linked list for all communicators. Newer approaches like
    CH4 in MPICH, however, use more than one list."

CH4 splits the single global list into one list per communicator context id,
removing cross-communicator interference while keeping the simple FIFO scan
within each communicator. Wildcards still work naturally because MPI
wildcards never span communicators — a receive always names its
communicator, so a probe touches exactly one list.

Structurally this is a dict of per-cid baseline lists; each per-cid list
allocates from the shared heap, so spatial locality matches the baseline's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from repro.matching.base import MatchQueue
from repro.matching.entry import LL_NODE_POINTERS, MatchItem
from repro.matching.envelope import items_match
from repro.matching.port import MemoryPort, emit_node_runs
from repro.mem.alloc import Allocation, SequentialHeap

_PTR_BYTES = 8


@dataclass
class _Node:
    item: MatchItem
    alloc: Allocation


class Ch4PerCommunicatorQueue(MatchQueue):
    """One FIFO linked list per communicator context id."""

    family = "ch4"

    DEFAULT_BASE = 0xD000_0000
    DEFAULT_CAPACITY = 1 << 30

    def __init__(
        self,
        *,
        entry_bytes: int = 24,
        port: Optional[MemoryPort] = None,
        heap=None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(entry_bytes=entry_bytes, port=port)
        if heap is None:
            heap = SequentialHeap(
                self.DEFAULT_BASE,
                self.DEFAULT_CAPACITY,
                rng if rng is not None else np.random.default_rng(0),
            )
        self.heap = heap
        self.node_bytes = LL_NODE_POINTERS + entry_bytes
        # cid -> list head; the communicator table itself is a small
        # pointer structure we charge one load for per operation.
        self._table_alloc = heap.alloc(64 * _PTR_BYTES)
        self._lists: Dict[int, list] = {}
        self._live = 0

    def _table_slot(self, cid: int) -> int:
        return self._table_alloc.addr + (cid % 64) * _PTR_BYTES

    def post(self, item: MatchItem) -> None:
        """Append *item*; its FIFO position is its posting order."""
        alloc = self.heap.alloc(self.node_bytes)
        item.addr = alloc.addr + LL_NODE_POINTERS
        self.port.store(alloc.addr, self.node_bytes)
        self.port.load(self._table_slot(item.cid), _PTR_BYTES)
        lst = self._lists.setdefault(item.cid, [])
        if lst:
            self.port.store(lst[-1].alloc.addr, _PTR_BYTES)
        lst.append(_Node(item, alloc))
        self._live += 1
        self.stats.posts += 1

    def match_remove(self, probe: MatchItem) -> Optional[MatchItem]:
        """Find, remove and return the earliest item matching *probe*, or None."""
        if self.port.scan_batch:
            return self._match_remove_runs(probe)
        return self._match_remove_slots(probe)

    def _match_remove_slots(self, probe: MatchItem) -> Optional[MatchItem]:
        """Per-slot scan: one port load per node inspected."""
        self.port.load(self._table_slot(probe.cid), _PTR_BYTES)
        lst = self._lists.get(probe.cid)
        probes = 0
        if lst is not None:
            for idx, node in enumerate(lst):
                self.port.load(node.alloc.addr, self.node_bytes)
                probes += 1
                if items_match(node.item, probe):
                    lst.pop(idx)
                    if idx > 0:
                        self.port.store(lst[idx - 1].alloc.addr, _PTR_BYTES)
                    self.heap.free(node.alloc)
                    self._live -= 1
                    self.stats.record_search(probes, True)
                    return node.item
        self.stats.record_search(probes, False)
        return None

    def _match_remove_runs(self, probe: MatchItem) -> Optional[MatchItem]:
        """Batched scan: communicator list charged as contiguous runs."""
        port = self.port
        port.load(self._table_slot(probe.cid), _PTR_BYTES)
        lst = self._lists.get(probe.cid)
        if not lst:
            self.stats.record_search(0, False)
            return None
        found = -1
        for idx, node in enumerate(lst):
            if items_match(node.item, probe):
                found = idx
                break
        stop = found if found >= 0 else len(lst) - 1
        emit_node_runs(
            port, [lst[i].alloc.addr for i in range(stop + 1)], self.node_bytes
        )
        if found >= 0:
            node = lst.pop(found)
            if found > 0:
                port.store(lst[found - 1].alloc.addr, _PTR_BYTES)
            self.heap.free(node.alloc)
            self._live -= 1
            self.stats.record_search(found + 1, True)
            return node.item
        self.stats.record_search(len(lst), False)
        return None

    def __len__(self) -> int:
        return self._live

    def iter_items(self) -> Iterator[MatchItem]:
        """Yield live items in FIFO (posting) order, without memory charges."""
        nodes = [node for lst in self._lists.values() for node in lst]
        for node in sorted(nodes, key=lambda n: n.item.seq):
            yield node.item

    def regions(self) -> list:
        """Simulated memory regions backing this structure (heater targets)."""
        regions = [self._table_alloc]
        for lst in self._lists.values():
            regions.extend(node.alloc for node in lst)
        return regions

    def footprint_bytes(self) -> int:
        """Total simulated bytes currently backing the structure."""
        return self._table_alloc.size + self._live * self.node_bytes

    def communicator_count(self) -> int:
        """Number of communicators with live entries."""
        return sum(1 for lst in self._lists.values() if lst)
