"""The match engine: queues x memory hierarchy x clock.

`MatchEngine` is a :class:`~repro.matching.port.MemoryPort` whose loads and
stores are charged against a simulated core's cache hierarchy and accumulate
on a shared clock. Attach it to any queue implementation and every probe of a
search becomes a cycle-accounted memory access — this is the instrument the
whole study is built on.

If a hot-cache heater is attached, the engine synchronizes it before every
memory operation, so heater passes that should have happened "in the
background" are applied to the shared cache before the matching core touches
it (see :mod:`repro.hotcache.heater`).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, TypeVar

from repro.matching.port import MemoryPort
from repro.mem.cache import CLS_NETWORK
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.layout import LINE_SHIFT
from repro.mem.result import AccessResult, LevelStats
from repro.sim.clock import Clock

T = TypeVar("T")

#: Non-memory work per probe: envelope comparison, loop control (~cycles).
DEFAULT_COMPARE_CYCLES = 2.0

#: Cost of a store absorbed by the write buffer, per line touched.
DEFAULT_STORE_CYCLES = 1.0


class MatchEngine(MemoryPort):
    """Cycle-accounted memory port bound to one core of a hierarchy."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        *,
        clock: Optional[Clock] = None,
        core_id: int = 0,
        mem_class: int = CLS_NETWORK,
        compare_cycles: float = DEFAULT_COMPARE_CYCLES,
        store_cycles: float = DEFAULT_STORE_CYCLES,
        software_prefetch: bool = False,
        sw_prefetch_coverage: float = 0.9,
        sw_prefetch_issue_cycles: float = 1.0,
    ) -> None:
        self.hierarchy = hierarchy
        self.clock = clock if clock is not None else Clock()
        self.core_id = core_id
        self.mem_class = mem_class
        self.compare_cycles = compare_cycles
        self.store_cycles = store_cycles
        # Section 6 proposal: middleware-directed prefetch. The matching
        # code knows its own traversal order (even across pointer chases the
        # hardware cannot predict), so it can issue hints ahead of the scan.
        # A hint costs an issue slot and fills with high coverage — software
        # knows *exactly* what comes next, it just cannot issue infinitely
        # early.
        self.software_prefetch = software_prefetch
        self.sw_prefetch_coverage = sw_prefetch_coverage
        self.sw_prefetch_issue_cycles = sw_prefetch_issue_cycles
        self.heater = None  # set via attach_heater
        self.loads = 0
        self.stores = 0
        self.sw_prefetches = 0
        self.load_cycles = 0.0
        self.store_cycles_total = 0.0
        # Per-level hit attribution over every load transaction (where each
        # traversed line was served: netcache/L1/L2/L3/DRAM).
        self.level_stats = LevelStats()
        # Scratch transaction reused across loads/stores: the hot path
        # allocates nothing.
        self._tx = AccessResult()

    # -- heater wiring -------------------------------------------------------

    def attach_heater(self, heater) -> None:
        """Couple a :class:`~repro.hotcache.heater.Heater` to this engine."""
        self.heater = heater

    def _sync_heater(self) -> float:
        """Catch the heater up; returns per-access interference cycles."""
        heater = self.heater
        if heater is None:
            return 0.0
        heater.catch_up(self.clock.now)
        return heater.config.interference_cycles if heater.saturated else 0.0

    # -- MemoryPort -----------------------------------------------------------

    def load(self, addr: int, nbytes: int) -> None:
        """Record/charge a load of *nbytes* at *addr*."""
        interference = self._sync_heater()
        if nbytes <= 0:
            cycles = 0.0
        else:
            tx = self.hierarchy.access_lines(
                self.core_id,
                addr >> LINE_SHIFT,
                (addr + nbytes - 1) >> LINE_SHIFT,
                self.mem_class,
                self._tx,
            )
            self.level_stats.add(tx)
            cycles = tx.cycles
        cycles += self.compare_cycles + interference
        self.clock.advance(cycles)
        self.loads += 1
        self.load_cycles += cycles

    def store(self, addr: int, nbytes: int) -> None:
        """Record/charge a store of *nbytes* at *addr*."""
        interference = self._sync_heater()
        tx = self.hierarchy.write_tx(self.core_id, addr, nbytes, self.mem_class, out=self._tx)
        cycles = tx.lines * self.store_cycles + interference
        self.clock.advance(cycles)
        self.stores += 1
        self.store_cycles_total += cycles

    def hint(self, addr: int, nbytes: int) -> None:
        """Middleware prefetch hint (no-op unless software_prefetch is on)."""
        if not self.software_prefetch or nbytes <= 0:
            return
        hier = self.hierarchy
        core = hier.cores[self.core_id]
        first = addr >> LINE_SHIFT
        last = (addr + nbytes - 1) >> LINE_SHIFT
        cycles = 0.0
        for line in range(first, last + 1):
            if core.l1.contains(line) or core.l2.contains(line):
                continue
            penalty = (1.0 - self.sw_prefetch_coverage) * (
                hier.l3.latency if hier.l3.contains(line) else hier.dram_latency
            )
            core.l2.fill(line, self.mem_class, prefetched=True, penalty=penalty)
            hier.l3.fill(line, self.mem_class, prefetched=True)
            cycles += self.sw_prefetch_issue_cycles
            self.sw_prefetches += 1
        if cycles:
            self.clock.advance(cycles)

    # -- measurement helpers ------------------------------------------------------

    def charge(self, cycles: float) -> None:
        """Charge arbitrary non-memory work to the engine's clock."""
        self.clock.advance(cycles)

    def timed(self, fn: Callable[[], T]) -> Tuple[T, float]:
        """Run *fn* and return ``(result, cycles_elapsed)`` on this clock."""
        start = self.clock.now
        result = fn()
        return result, self.clock.now - start

    def mem_stats(self) -> LevelStats:
        """Per-level hit attribution over this engine's load transactions."""
        return self.level_stats

    def reset_counters(self) -> None:
        """Zero the engine's load/store/prefetch counters and attribution."""
        self.loads = 0
        self.stores = 0
        self.sw_prefetches = 0
        self.load_cycles = 0.0
        self.store_cycles_total = 0.0
        self.level_stats.reset()
