"""The match engine: queues x memory hierarchy x clock.

`MatchEngine` is a :class:`~repro.matching.port.MemoryPort` whose loads and
stores are charged against a simulated core's cache hierarchy and accumulate
on a shared clock. Attach it to any queue implementation and every probe of a
search becomes a cycle-accounted memory access — this is the instrument the
whole study is built on.

If a hot-cache heater is attached, the engine synchronizes it before every
memory operation, so heater passes that should have happened "in the
background" are applied to the shared cache before the matching core touches
it (see :mod:`repro.hotcache.heater`).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, TypeVar, Union

from repro.errors import ConfigurationError
from repro.matching.port import MemoryPort, resolve_scan_batch
from repro.mem.cache import CLS_NETWORK
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.layout import LINE_SHIFT
from repro.mem.result import AccessResult, LevelStats
from repro.sim.clock import Clock

T = TypeVar("T")

#: Non-memory work per probe: envelope comparison, loop control (~cycles).
DEFAULT_COMPARE_CYCLES = 2.0

#: Cost of a store absorbed by the write buffer, per line touched.
DEFAULT_STORE_CYCLES = 1.0

#: Run geometry is a pure function of (header, addr, size, probes, spacing),
#: so it is memoized across scans — a queue re-walking stable node addresses
#: (every warm deep search) pays the line-extent arithmetic once per node.
#: The cache is flushed wholesale past this size (address churn in
#: fragmented/recycling allocators), which keeps it O(live nodes) in steady
#: state without an eviction policy.
_GEOMETRY_CACHE_MAX = 65536

#: Integer-valued floats add exactly below 2**53, so per-probe accumulation
#: order stops mattering and the run's clock/cycle deltas collapse to one
#: addition each. The margin below 2**53 is pure paranoia — simulated clocks
#: sit around 1e6-1e9 cycles.
_EXACT_LIMIT = 2.0**52


class MatchEngine(MemoryPort):
    """Cycle-accounted memory port bound to one core of a hierarchy."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        *,
        clock: Optional[Clock] = None,
        core_id: int = 0,
        mem_class: int = CLS_NETWORK,
        compare_cycles: float = DEFAULT_COMPARE_CYCLES,
        store_cycles: float = DEFAULT_STORE_CYCLES,
        software_prefetch: bool = False,
        sw_prefetch_coverage: float = 0.9,
        sw_prefetch_issue_cycles: float = 1.0,
        scan_batch: Optional[Union[bool, str]] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.clock = clock if clock is not None else Clock()
        self.core_id = core_id
        self.mem_class = mem_class
        self.compare_cycles = compare_cycles
        self.store_cycles = store_cycles
        # Section 6 proposal: middleware-directed prefetch. The matching
        # code knows its own traversal order (even across pointer chases the
        # hardware cannot predict), so it can issue hints ahead of the scan.
        # A hint costs an issue slot and fills with high coverage — software
        # knows *exactly* what comes next, it just cannot issue infinitely
        # early.
        self.software_prefetch = software_prefetch
        self.sw_prefetch_coverage = sw_prefetch_coverage
        self.sw_prefetch_issue_cycles = sw_prefetch_issue_cycles
        # Scan batching (arg beats REPRO_SCAN_BATCH beats on). Interleaved
        # prefetch hints are part of the per-slot traversal order, so the
        # batched spelling — which reorders hints ahead of the coalesced
        # loads — is only offered when hints are inert.
        self.scan_batch = resolve_scan_batch(scan_batch) and not software_prefetch
        # Hints are pure middleware-prefetch signals on this port; when the
        # prefetcher is off they have no simulated effect, and batched scans
        # may skip emitting them entirely.
        self.hint_is_noop = not software_prefetch
        self.heater = None  # set via attach_heater
        self._scan_active = False
        self._pending: Optional[Tuple[int, int]] = None
        self._geometry: dict = {}
        # run_latency is static per (hierarchy, core, class) — netcache
        # interception, L1 policy and L1 latency are fixed at construction —
        # so it is resolved lazily once and cached.
        self._run_lat: Optional[float] = None
        self._run_lat_valid = False
        self.loads = 0
        self.stores = 0
        self.sw_prefetches = 0
        self.runs = 0
        self.run_probes = 0
        self.fast_runs = 0
        self.load_cycles = 0.0
        self.store_cycles_total = 0.0
        # Per-level hit attribution over every load transaction (where each
        # traversed line was served: netcache/L1/L2/L3/DRAM).
        self.level_stats = LevelStats()
        # Scratch transaction reused across loads/stores: the hot path
        # allocates nothing.
        self._tx = AccessResult()

    # -- heater wiring -------------------------------------------------------

    def attach_heater(self, heater) -> None:
        """Couple a :class:`~repro.hotcache.heater.Heater` to this engine."""
        self.heater = heater

    def _sync_heater(self) -> float:
        """Catch the heater up; returns per-access interference cycles."""
        heater = self.heater
        if heater is None:
            return 0.0
        heater.catch_up(self.clock.now)
        return heater.config.interference_cycles if heater.saturated else 0.0

    # -- MemoryPort -----------------------------------------------------------

    def load(self, addr: int, nbytes: int) -> None:
        """Record/charge a load of *nbytes* at *addr*.

        Inside a scan bracket (see :meth:`begin_scan`) a non-empty load is
        held pending so an immediately following contiguous
        :meth:`load_run` can absorb it as the run's header probe; any other
        operation flushes it through the normal path first, so the charge
        order observable on the clock never changes.
        """
        if self._scan_active:
            pending = self._pending
            if pending is not None:
                self._pending = None
                self._load_now(pending[0], pending[1])
            if nbytes > 0:
                self._pending = (addr, nbytes)
                return
        self._load_now(addr, nbytes)

    def _load_now(self, addr: int, nbytes: int) -> None:
        """The per-slot load charge (heater sync, one transaction, clock)."""
        interference = self._sync_heater()
        if nbytes <= 0:
            cycles = 0.0
        else:
            tx = self.hierarchy.access_lines(
                self.core_id,
                addr >> LINE_SHIFT,
                (addr + nbytes - 1) >> LINE_SHIFT,
                self.mem_class,
                self._tx,
            )
            self.level_stats.add(tx)
            cycles = tx.cycles
        cycles += self.compare_cycles + interference
        self.clock.advance(cycles)
        self.loads += 1
        self.load_cycles += cycles

    def _flush_pending(self) -> None:
        pending = self._pending
        if pending is not None:
            self._pending = None
            self._load_now(pending[0], pending[1])

    # -- scan transactions ---------------------------------------------------

    def begin_scan(self) -> None:
        """Open a scan bracket: the next load may merge into a run."""
        self._scan_active = True

    def end_scan(self) -> None:
        """Close the scan bracket, flushing any still-pending header load."""
        self._scan_active = False
        self._flush_pending()

    @staticmethod
    def _run_geometry(
        header: Optional[Tuple[int, int]],
        addr: int,
        size: int,
        probes: int,
        spacing: int,
    ):
        """Line-visit geometry of a run: a pure function of its key.

        Probe spans ascend and never overlap (spacing >= size), so each
        line's visits are contiguous in the global visit sequence — the
        property all kernel backends' recency replays rely on. Lines nobody
        visits (inside inter-probe gaps) are dropped here so the apply
        path never sees them. Returns ``(pv, lines, vis, total, nloads)``:
        per-probe line counts in probe order, the visited absolute line
        numbers ascending, their visit counts, the grand total, and the
        number of per-slot loads the run stands for.
        """
        shift = LINE_SHIFT
        if header is not None:
            first_g = header[0] >> shift
            nloads = probes + 1
        else:
            first_g = addr >> shift
            nloads = probes
        last_g = (addr + spacing * (probes - 1) + size - 1) >> shift
        counts = [0] * (last_g - first_g + 1)
        pv = []
        append = pv.append
        if header is not None:
            hl = (header[0] + header[1] - 1) >> shift
            append(hl - first_g + 1)
            for line in range(first_g, hl + 1):
                counts[line - first_g] += 1
        lo = addr
        for _ in range(probes):
            f = lo >> shift
            last = (lo + size - 1) >> shift
            append(last - f + 1)
            counts[f - first_g] += 1
            for line in range(f + 1, last + 1):
                counts[line - first_g] += 1
            lo += spacing
        lines = []
        vis = []
        for j, v in enumerate(counts):
            if v:
                lines.append(first_g + j)
                vis.append(v)
        return tuple(pv), lines, tuple(vis), sum(pv), nloads

    def load_run(
        self,
        addr: int,
        nbytes: int,
        probes: int,
        spacing: Optional[int] = None,
        header_nbytes: int = 0,
    ) -> None:
        """Charge a contiguous scan run of *probes* equal-stride loads.

        Bit-identical to the per-slot spelling (the
        :class:`~repro.matching.port.MemoryPort` contract): one heater
        catch-up covers the whole run, then the per-probe charges are
        replayed — arithmetically when every line of the run is a clean L1
        hit and no heater pass can fall inside it (see
        :meth:`~repro.mem.hierarchy.MemoryHierarchy.access_run`), probe by
        probe through the ordinary load path otherwise. A header probe —
        *header_nbytes* ending exactly at *addr*, or equivalently a pending
        bracketed header load that ends there — joins the run as its
        leading probe; it keeps its own compare+interference charge, so
        merged and unmerged spellings cost the same.
        """
        if self._scan_active:
            pending = self._pending
            if pending is not None:
                self._pending = None
                if probes > 0 and not header_nbytes and pending[0] + pending[1] == addr:
                    header_nbytes = pending[1]
                else:
                    self._load_now(pending[0], pending[1])
        if probes <= 0:
            if header_nbytes:
                self._load_now(addr - header_nbytes, header_nbytes)
            return
        heater = self.heater
        if heater is None:
            interference = 0.0
        else:
            heater.catch_up(self.clock.now)
            interference = heater.config.interference_cycles if heater.saturated else 0.0
        # Raw-argument key: a cache hit also vouches for validation.
        key = (addr, nbytes, probes, spacing, header_nbytes)
        geometry = self._geometry
        geo = geometry.get(key)
        if geo is None:
            size, rem = divmod(nbytes, probes)
            if rem or size <= 0:
                raise ConfigurationError(
                    f"load_run of {nbytes} bytes is not {probes} equal strides"
                )
            sp = size if spacing is None else spacing
            if sp < size:
                raise ConfigurationError(
                    f"load_run spacing {sp} overlaps {size}-byte probes"
                )
            header = (addr - header_nbytes, header_nbytes) if header_nbytes else None
            if len(geometry) >= _GEOMETRY_CACHE_MAX:
                geometry.clear()
            geo = geometry[key] = self._run_geometry(header, addr, size, probes, sp) + (
                size,
                sp,
            )
        pv, lines, vis, total, nloads, size, sp = geo
        self.runs += 1
        self.run_probes += nloads
        if self._run_lat_valid:
            lat = self._run_lat
        else:
            lat = self._run_lat = self.hierarchy.run_latency(self.core_id, self.mem_class)
            self._run_lat_valid = True
        cc = self.compare_cycles + interference
        fast = lat is not None
        if fast:
            mem = total * lat
            if heater is not None:
                # The whole run is charged under one catch-up: legal only
                # when no pass could have started at any clock value the
                # per-slot replay would have synced at (all are below this
                # projection; the +1.0 slack dominates float summation
                # error by orders of magnitude).
                projected = self.clock.now + mem + nloads * cc + 1.0
                fast = heater.quiescent_until(projected)
            if fast:
                fast = self.hierarchy.access_run(self.core_id, lines, vis, total)
        if not fast:
            # Replay probe by probe: trivially bit-identical; re-syncing the
            # heater per probe is what the projection above could not rule
            # out.
            load = self._load_now
            if header_nbytes:
                load(addr - header_nbytes, header_nbytes)
            lo = addr
            for _ in range(probes):
                load(lo, size)
                lo += sp
            return
        self.fast_runs += 1
        ls = self.level_stats
        now = self.clock.now
        lc = self.load_cycles
        lsc = ls.cycles
        delta = mem + nloads * cc
        if (
            cc.is_integer()
            and now.is_integer()
            and lc.is_integer()
            and lsc.is_integer()
            and now + delta < _EXACT_LIMIT
            and lc + delta < _EXACT_LIMIT
            and lsc + mem < _EXACT_LIMIT
        ):
            # Every per-probe addend (v*lat, cc) and every partial sum is an
            # integer-valued float below 2**53: the accumulation is exact,
            # so any association — including this one-shot fold — is
            # bit-identical to the per-slot order.
            now += delta
            lc += delta
            lsc += mem
        else:
            for v in pv:
                c = v * lat
                lsc += c
                c += cc
                now += c
                lc += c
        self.clock.now = now
        self.load_cycles = lc
        ls.cycles = lsc
        ls.loads += nloads
        ls.lines += total
        ls.l1_hits += total
        self.loads += nloads
        # Leave the scratch transaction as the last per-slot probe would.
        tx = self._tx
        v = pv[-1]
        tx.lines = v
        tx.cycles = v * lat
        tx.netcache_hits = 0
        tx.l1_hits = v
        tx.l2_hits = 0
        tx.l3_hits = 0
        tx.dram_fills = 0
        tx.prefetch_covered = 0
        tx.penalty_cycles = 0.0

    def store(self, addr: int, nbytes: int) -> None:
        """Record/charge a store of *nbytes* at *addr*."""
        self._flush_pending()
        interference = self._sync_heater()
        tx = self.hierarchy.write_tx(self.core_id, addr, nbytes, self.mem_class, out=self._tx)
        cycles = tx.lines * self.store_cycles + interference
        self.clock.advance(cycles)
        self.stores += 1
        self.store_cycles_total += cycles

    def hint(self, addr: int, nbytes: int) -> None:
        """Middleware prefetch hint (no-op unless software_prefetch is on)."""
        if not self.software_prefetch or nbytes <= 0:
            return
        self._flush_pending()
        hier = self.hierarchy
        core = hier.cores[self.core_id]
        first = addr >> LINE_SHIFT
        last = (addr + nbytes - 1) >> LINE_SHIFT
        cycles = 0.0
        for line in range(first, last + 1):
            if core.l1.contains(line) or core.l2.contains(line):
                continue
            penalty = (1.0 - self.sw_prefetch_coverage) * (
                hier.l3.latency if hier.l3.contains(line) else hier.dram_latency
            )
            core.l2.fill(line, self.mem_class, prefetched=True, penalty=penalty)
            hier.l3.fill(line, self.mem_class, prefetched=True)
            cycles += self.sw_prefetch_issue_cycles
            self.sw_prefetches += 1
        if cycles:
            self.clock.advance(cycles)

    # -- measurement helpers ------------------------------------------------------

    def charge(self, cycles: float) -> None:
        """Charge arbitrary non-memory work to the engine's clock."""
        self.clock.advance(cycles)

    def timed(self, fn: Callable[[], T]) -> Tuple[T, float]:
        """Run *fn* and return ``(result, cycles_elapsed)`` on this clock."""
        start = self.clock.now
        result = fn()
        return result, self.clock.now - start

    def mem_stats(self) -> LevelStats:
        """Per-level hit attribution over this engine's load transactions."""
        return self.level_stats

    def reset_counters(self) -> None:
        """Zero the engine's load/store/prefetch counters and attribution."""
        self.loads = 0
        self.stores = 0
        self.sw_prefetches = 0
        self.runs = 0
        self.run_probes = 0
        self.fast_runs = 0
        self.load_cycles = 0.0
        self.store_cycles_total = 0.0
        self._run_lat_valid = False
        self.level_stats.reset()
