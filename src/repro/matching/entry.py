"""Match entry byte layouts (paper section 3.1 and Figure 2).

    "Each queue element for the posted receive queue contains 24 bytes of
    information, 4 bytes for the tag, 2 bytes each for the rank and context
    id, 8 bytes of bit masks for matching, and an 8 byte pointer to the
    request. The unexpected message queue does not require masks, so it only
    requires 16 bytes per entry. There are also 3 per array items that are
    stored: a pointer to the next array and indexes to the array indicating
    the start and end of the used section."

Figure 2 packs an LLA node into exactly one 64-byte cache line for the PRQ:
8 bytes of head/tail indexes, two 24-byte entries, and the 8-byte external
next pointer. For the UMQ the 16-byte entries pack three per line.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from repro.matching.envelope import FULL_MASK
from repro.mem.layout import LINE_SIZE, align_up

# Every post/arrival allocates a MatchItem; slotted dataclasses keep the
# hot-path allocation small (slots=True needs 3.10+, older interpreters
# just skip it).
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}

#: Posted-receive entry: tag(4) + rank(2) + cid(2) + masks(8) + req ptr(8).
PRQ_ENTRY_BYTES = 24

#: Unexpected-message entry: tag(4) + rank(2) + cid(2) + buffer ptr(8).
UMQ_ENTRY_BYTES = 16

#: LLA per-node bookkeeping: 4+4 head/tail indexes and the 8-byte next ptr.
LLA_NODE_OVERHEAD = 16

#: Baseline linked-list node: prev/next pointers around the entry.
LL_NODE_POINTERS = 16


@dataclass(**_SLOTS)
class MatchItem:
    """A live matching element (pattern in the PRQ, envelope in the UMQ).

    ``seq`` is the global posting order; FIFO matching (an MPI requirement)
    is decided by comparing sequence numbers. ``addr`` is assigned by the
    owning queue when the item is placed in simulated memory.
    """

    seq: int
    src: int
    tag: int
    cid: int
    src_mask: int = FULL_MASK
    tag_mask: int = FULL_MASK
    req: object = None
    addr: int = 0
    entry_bytes: int = PRQ_ENTRY_BYTES
    meta: dict = field(default_factory=dict, compare=False, repr=False)

    @classmethod
    def from_envelope(
        cls, env, seq: int, *, req: object = None, entry_bytes: int = UMQ_ENTRY_BYTES
    ) -> "MatchItem":
        """Build a concrete (full-mask) item from an envelope."""
        return cls(
            seq=seq,
            src=env.src,
            tag=env.tag,
            cid=env.cid,
            src_mask=FULL_MASK,
            tag_mask=FULL_MASK,
            req=req,
            entry_bytes=entry_bytes,
        )

    @property
    def wildcard_source(self) -> bool:
        """True when the source field is MPI_ANY_SOURCE."""
        return self.src_mask == 0

    @property
    def wildcard_tag(self) -> bool:
        """True when the tag field is MPI_ANY_TAG."""
        return self.tag_mask == 0


def lla_node_bytes(entries_per_node: int, entry_bytes: int = PRQ_ENTRY_BYTES) -> int:
    """Size in bytes of one LLA node, rounded up to whole cache lines."""
    raw = LLA_NODE_OVERHEAD + entries_per_node * entry_bytes
    return align_up(raw, LINE_SIZE)


def lla_entries_per_line(entry_bytes: int = PRQ_ENTRY_BYTES) -> int:
    """How many entries fit in one 64-byte node line next to the overhead.

    Reproduces Figure 2's arithmetic: 2 PRQ entries or 3 UMQ entries.
    """
    return (LINE_SIZE - LLA_NODE_OVERHEAD) // entry_bytes


def baseline_node_bytes(entry_bytes: int = PRQ_ENTRY_BYTES) -> int:
    """Payload footprint of one baseline linked-list node (before the
    allocator's own header): pointers + entry."""
    return LL_NODE_POINTERS + entry_bytes
