"""Match envelopes, patterns, and the matching rule.

MPI matching works on three key elements (paper section 2.1): a source rank,
a tag, and a communicator id. Receives may wildcard source and/or tag
(``MPI_ANY_SOURCE`` / ``MPI_ANY_TAG``); the implementation realizes the
wildcards as bit masks — the paper's posted-receive entry carries "8 bytes of
bit masks for matching".

The matching rule used throughout is symmetric::

    match(a, b)  <=>  a.cid == b.cid
                  and (a.src ^ b.src) & a.src_mask & b.src_mask == 0
                  and (a.tag ^ b.tag) & a.tag_mask & b.tag_mask == 0

A concrete envelope has full masks; a wildcard pattern has a zero mask in the
wildcarded field. MPI forbids wildcard *sends*, so at least one side of every
comparison is concrete.
"""

from __future__ import annotations

from dataclasses import dataclass

ANY_SOURCE = -1
ANY_TAG = -1

FULL_MASK = 0xFFFFFFFF


@dataclass(frozen=True)
class Envelope:
    """A concrete message envelope (what a send carries)."""

    src: int
    tag: int
    cid: int

    def __post_init__(self) -> None:
        if self.src < 0:
            raise ValueError(f"send envelopes need a concrete source, got {self.src}")
        if self.tag < 0:
            raise ValueError(f"send envelopes need a concrete tag, got {self.tag}")


def make_pattern(src: int, tag: int, cid: int, seq: int, req: object = None) -> "MatchItem":
    """Build a posted-receive pattern item, honoring ANY_SOURCE / ANY_TAG."""
    from repro.matching.entry import MatchItem

    src_mask = 0 if src == ANY_SOURCE else FULL_MASK
    tag_mask = 0 if tag == ANY_TAG else FULL_MASK
    return MatchItem(
        seq=seq,
        src=0 if src == ANY_SOURCE else src,
        tag=0 if tag == ANY_TAG else tag,
        cid=cid,
        src_mask=src_mask,
        tag_mask=tag_mask,
        req=req,
    )


def items_match(a, b) -> bool:
    """The symmetric matching rule between two items (see module docstring)."""
    return (
        a.cid == b.cid
        and not ((a.src ^ b.src) & a.src_mask & b.src_mask)
        and not ((a.tag ^ b.tag) & a.tag_mask & b.tag_mask)
    )
