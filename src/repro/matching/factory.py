"""Queue construction by configuration name.

The experiment drivers refer to queue organizations by the labels the paper's
figures use: ``baseline``, ``LLA - 2`` ... ``LLA - 32``, plus ``lla-large``
(Figure 10's "linked list of large arrays") and the related-work structures.

``make_queue`` also wires up the memory side: each family gets its own
allocator seeded from a named RNG stream so layouts are reproducible, and all
of them can be pointed at a shared :class:`~repro.matching.port.MemoryPort`.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.matching.base import MatchQueue
from repro.matching.fourd import FourDimensionalQueue
from repro.matching.hashmap import BinnedHashQueue
from repro.matching.linkedlist import BaselineLinkedList
from repro.matching.lla import LinkedListOfArrays
from repro.matching.openmpi import OpenMpiHierarchicalQueue
from repro.matching.port import MemoryPort
from repro.mem.alloc import BumpAllocator, FragmentedHeap, SequentialHeap, SlabPool

#: Figure 10's "early linked list of large arrays approach" array size.
LLA_LARGE_ENTRIES = 128

#: The k sweep used throughout Figures 4-7.
LLA_SWEEP = (2, 4, 8, 16, 32)

_LLA_RE = re.compile(r"^lla-(\d+)$")


def canonical_name(name: str) -> str:
    """Normalize a figure label ('LLA - 8') to a config name ('lla-8')."""
    return name.strip().lower().replace(" ", "").replace("--", "-").replace("lla-large", "lla-large")


#: Human-readable legal-values description (``repro list``, error messages).
QUEUE_FAMILY_DOC = "baseline, lla-<k>, lla-large, openmpi, hashmap, hash-<n>, fourd, ch4, adaptive"

_HASH_RE = re.compile(r"^hash-(\d+)$")


def is_queue_family(name: str) -> bool:
    """Whether *name* (any figure-label spelling) names a buildable queue."""
    key = canonical_name(str(name))
    if key in ("baseline", "lla-large", "openmpi", "hashmap", "fourd", "ch4", "adaptive"):
        return True
    m = _LLA_RE.match(key)
    if m:
        return int(m.group(1)) >= 1
    return bool(_HASH_RE.match(key))


def make_queue(
    name: str,
    *,
    entry_bytes: int = 24,
    port: Optional[MemoryPort] = None,
    rng: Optional[np.random.Generator] = None,
    arena_base: int = 0x4000_0000,
    fragmented: bool = False,
    nranks: int = 1024,
    capacity: Optional[int] = None,
    admission: str = "drop-tail",
):
    """Build the queue organization called *name*.

    Parameters
    ----------
    fragmented:
        When true, list-node families draw from a churned
        :class:`FragmentedHeap` instead of the mostly-sequential heap —
        the long-running-application layout (used for the FDS study).
    arena_base:
        Base address for this queue's allocations; give different queues in
        one hierarchy disjoint bases.
    capacity:
        ``None`` (the default) builds the historical unbounded structure.
        An integer wraps it in a :class:`~repro.matching.bounded.BoundedQueue`
        applying *admission* (``drop-tail`` rejects newcomers at a full
        queue, ``drop-head`` evicts the FIFO-oldest item to admit them).
    """
    queue = _build_queue(
        name,
        entry_bytes=entry_bytes,
        port=port,
        rng=rng,
        arena_base=arena_base,
        fragmented=fragmented,
        nranks=nranks,
    )
    if capacity is None:
        return queue
    from repro.matching.bounded import BoundedQueue

    return BoundedQueue(queue, capacity, policy=admission, port=port)


def _build_queue(
    name: str,
    *,
    entry_bytes: int,
    port: Optional[MemoryPort],
    rng: Optional[np.random.Generator],
    arena_base: int,
    fragmented: bool,
    nranks: int,
) -> MatchQueue:
    key = canonical_name(name)
    rng = rng if rng is not None else np.random.default_rng(0)
    capacity = 1 << 30

    def node_heap():
        if fragmented:
            return FragmentedHeap(arena_base, capacity, rng)
        return SequentialHeap(arena_base, capacity, rng)

    if key == "baseline":
        return BaselineLinkedList(entry_bytes=entry_bytes, port=port, heap=node_heap())
    m = _LLA_RE.match(key)
    if m:
        k = int(m.group(1))
        if k < 1:
            raise ConfigurationError(f"bad LLA arity in {name!r}")
        arena = BumpAllocator(arena_base, capacity)
        from repro.matching.entry import lla_node_bytes

        pool = SlabPool(lla_node_bytes(k, entry_bytes), arena=arena)
        return LinkedListOfArrays(k, entry_bytes=entry_bytes, port=port, pool=pool)
    if key == "lla-large":
        arena = BumpAllocator(arena_base, capacity)
        from repro.matching.entry import lla_node_bytes

        pool = SlabPool(
            lla_node_bytes(LLA_LARGE_ENTRIES, entry_bytes), arena=arena, blocks_per_slab=8
        )
        return LinkedListOfArrays(
            LLA_LARGE_ENTRIES, entry_bytes=entry_bytes, port=port, pool=pool
        )
    if key == "openmpi":
        return OpenMpiHierarchicalQueue(
            entry_bytes=entry_bytes, port=port, heap=node_heap(), default_nranks=nranks
        )
    if key in ("hashmap", "hash-256"):
        return BinnedHashQueue(256, entry_bytes=entry_bytes, port=port, heap=node_heap())
    m = re.match(r"^hash-(\d+)$", key)
    if m:
        return BinnedHashQueue(
            int(m.group(1)), entry_bytes=entry_bytes, port=port, heap=node_heap()
        )
    if key == "fourd":
        return FourDimensionalQueue(
            nranks, entry_bytes=entry_bytes, port=port, heap=node_heap()
        )
    if key == "ch4":
        from repro.matching.ch4 import Ch4PerCommunicatorQueue

        return Ch4PerCommunicatorQueue(
            entry_bytes=entry_bytes, port=port, heap=node_heap()
        )
    if key == "adaptive":
        from repro.matching.adaptive import AdaptiveHybridQueue

        return AdaptiveHybridQueue(entry_bytes=entry_bytes, port=port, rng=rng)
    raise ConfigurationError(
        f"unknown queue family {name!r}; known: baseline, lla-<k>, lla-large, "
        f"openmpi, hash-<n>, fourd, ch4, adaptive"
    )


#: Callables for the standard experiment line-up, keyed by figure label.
QUEUE_FAMILIES: Dict[str, Callable[..., MatchQueue]] = {
    "baseline": lambda **kw: make_queue("baseline", **kw),
    **{f"lla-{k}": (lambda k=k: lambda **kw: make_queue(f"lla-{k}", **kw))() for k in LLA_SWEEP},
    "lla-large": lambda **kw: make_queue("lla-large", **kw),
    "openmpi": lambda **kw: make_queue("openmpi", **kw),
    "hashmap": lambda **kw: make_queue("hashmap", **kw),
    "fourd": lambda **kw: make_queue("fourd", **kw),
    "ch4": lambda **kw: make_queue("ch4", **kw),
    "adaptive": lambda **kw: make_queue("adaptive", **kw),
}
