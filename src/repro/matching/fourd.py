"""Zounmevo & Afsahi's 4-dimensional match queue (related work, section 5).

    "This approach decomposes ranks to multiple dimensions to reduce the
    number of MPI queue operations. The main goal of this data structure is
    to skip portions of the match list for where no match can be found. This
    data structure decomposes ranks into a 4D lookup."

A rank ``r`` is decomposed into four digits base ``b = ceil(N^(1/4))``; the
structure is a four-level radix tree whose leaves hold per-rank FIFO lists.
Concrete probes descend in O(1) per level; wildcard-source probes fall back
to a global FIFO scan (skipping empty subtrees is the structure's win; a
wildcard must consider all of them, and FIFO across leaves requires a merged
order).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.matching.base import MatchQueue
from repro.matching.entry import LL_NODE_POINTERS, MatchItem
from repro.matching.envelope import items_match
from repro.matching.port import MemoryPort, emit_node_runs
from repro.mem.alloc import Allocation, SequentialHeap

_PTR_BYTES = 8


def rank_digits(rank: int, base: int) -> Tuple[int, int, int, int]:
    """Decompose *rank* into four base-*base* digits (most significant first)."""
    d0, rem = divmod(rank, base**3)
    d1, rem = divmod(rem, base**2)
    d2, d3 = divmod(rem, base)
    return d0, d1, d2, d3


@dataclass
class _Cell:
    item: MatchItem
    alloc: Allocation
    key: Optional[Tuple[int, int, int, int]]  # None for wildcard-posted


class FourDimensionalQueue(MatchQueue):
    """Four-level rank-radix structure with per-leaf FIFO lists."""

    family = "fourd"

    DEFAULT_BASE = 0xB000_0000
    DEFAULT_CAPACITY = 1 << 30

    def __init__(
        self,
        nranks: int = 65536,
        *,
        entry_bytes: int = 24,
        port: Optional[MemoryPort] = None,
        heap=None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if nranks < 1:
            raise ConfigurationError(f"nranks must be >= 1, got {nranks}")
        super().__init__(entry_bytes=entry_bytes, port=port)
        if heap is None:
            heap = SequentialHeap(
                self.DEFAULT_BASE,
                self.DEFAULT_CAPACITY,
                rng if rng is not None else np.random.default_rng(0),
            )
        self.heap = heap
        self.nranks = nranks
        self.base = max(2, int(np.ceil(nranks ** 0.25)))
        self.node_bytes = LL_NODE_POINTERS + entry_bytes
        # Level tables are small pointer arrays; we charge one pointer load
        # per level descended. Leaf lists are keyed by the digit tuple.
        self._level_array = heap.alloc(4 * self.base * _PTR_BYTES)
        self._leaves: Dict[Tuple[int, int, int, int], Deque[_Cell]] = {}
        self._wild: Deque[_Cell] = deque()
        self._all: "OrderedDict[int, _Cell]" = OrderedDict()

    # -- posting ------------------------------------------------------------

    def post(self, item: MatchItem) -> None:
        """Append *item*; its FIFO position is its posting order."""
        alloc = self.heap.alloc(self.node_bytes)
        item.addr = alloc.addr + LL_NODE_POINTERS
        self.port.store(alloc.addr, self.node_bytes)
        if item.wildcard_source:
            cell = _Cell(item, alloc, None)
            self._wild.append(cell)
        else:
            key = rank_digits(item.src % self.nranks, self.base)
            for level, digit in enumerate(key):
                self.port.store(
                    self._level_array.addr + (level * self.base + digit) * _PTR_BYTES,
                    _PTR_BYTES,
                )
            cell = _Cell(item, alloc, key)
            self._leaves.setdefault(key, deque()).append(cell)
        self._all[item.seq] = cell
        self.stats.posts += 1

    # -- searching ------------------------------------------------------------

    def match_remove(self, probe: MatchItem) -> Optional[MatchItem]:
        """Find, remove and return the earliest item matching *probe*, or None."""
        if probe.wildcard_source:
            if self.port.scan_batch:
                return self._match_remove_scan_runs(probe)
            return self._match_remove_scan(probe)
        if self.port.scan_batch:
            return self._match_remove_runs(probe)
        return self._match_remove_slots(probe)

    def _match_remove_slots(self, probe: MatchItem) -> Optional[MatchItem]:
        """Per-slot scan: one port load per cell inspected."""
        probes = 0
        key = rank_digits(probe.src % self.nranks, self.base)
        for level, digit in enumerate(key):
            self.port.load(
                self._level_array.addr + (level * self.base + digit) * _PTR_BYTES,
                _PTR_BYTES,
            )
        best: Optional[_Cell] = None
        for cell in self._leaves.get(key, ()):
            self.port.load(cell.alloc.addr, self.node_bytes)
            probes += 1
            if items_match(cell.item, probe):
                best = cell
                break
        for cell in self._wild:
            if best is not None and cell.item.seq >= best.item.seq:
                break
            self.port.load(cell.alloc.addr, self.node_bytes)
            probes += 1
            if items_match(cell.item, probe):
                best = cell
                break
        if best is None:
            self.stats.record_search(probes, False)
            return None
        self._remove_cell(best)
        self.stats.record_search(probes, True)
        return best.item

    def _match_remove_runs(self, probe: MatchItem) -> Optional[MatchItem]:
        """Batched scan: level descent stays per-pointer (non-contiguous),
        leaf and wildcard traversals are charged as contiguous runs."""
        port = self.port
        key = rank_digits(probe.src % self.nranks, self.base)
        for level, digit in enumerate(key):
            port.load(
                self._level_array.addr + (level * self.base + digit) * _PTR_BYTES,
                _PTR_BYTES,
            )
        best: Optional[_Cell] = None
        leaf_addrs = []
        for cell in self._leaves.get(key, ()):
            leaf_addrs.append(cell.alloc.addr)
            if items_match(cell.item, probe):
                best = cell
                break
        emit_node_runs(port, leaf_addrs, self.node_bytes)
        probes = len(leaf_addrs)
        wild_addrs = []
        for cell in self._wild:
            if best is not None and cell.item.seq >= best.item.seq:
                break
            wild_addrs.append(cell.alloc.addr)
            if items_match(cell.item, probe):
                best = cell
                break
        emit_node_runs(port, wild_addrs, self.node_bytes)
        probes += len(wild_addrs)
        if best is None:
            self.stats.record_search(probes, False)
            return None
        self._remove_cell(best)
        self.stats.record_search(probes, True)
        return best.item

    def _match_remove_scan(self, probe: MatchItem) -> Optional[MatchItem]:
        probes = 0
        for cell in self._all.values():
            self.port.load(cell.alloc.addr, self.node_bytes)
            probes += 1
            if items_match(cell.item, probe):
                self._remove_cell(cell)
                self.stats.record_search(probes, True)
                return cell.item
        self.stats.record_search(probes, False)
        return None

    def _match_remove_scan_runs(self, probe: MatchItem) -> Optional[MatchItem]:
        """Wildcard probe, batched: the global FIFO scan charged as runs."""
        addrs = []
        found: Optional[_Cell] = None
        for cell in self._all.values():
            addrs.append(cell.alloc.addr)
            if items_match(cell.item, probe):
                found = cell
                break
        emit_node_runs(self.port, addrs, self.node_bytes)
        if found is None:
            self.stats.record_search(len(addrs), False)
            return None
        self._remove_cell(found)
        self.stats.record_search(len(addrs), True)
        return found.item

    def _remove_cell(self, cell: _Cell) -> None:
        if cell.key is None:
            self._wild.remove(cell)
        else:
            self._leaves[cell.key].remove(cell)
        del self._all[cell.item.seq]
        self.heap.free(cell.alloc)
        self.port.store(cell.alloc.addr, _PTR_BYTES)

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._all)

    def iter_items(self) -> Iterator[MatchItem]:
        """Yield live items in FIFO (posting) order, without memory charges."""
        for cell in self._all.values():
            yield cell.item

    def regions(self) -> list[Allocation]:
        """Simulated memory regions backing this structure (heater targets)."""
        regions = [self._level_array]
        regions.extend(cell.alloc for cell in self._all.values())
        return regions

    def footprint_bytes(self) -> int:
        """Total simulated bytes currently backing the structure."""
        return self._level_array.size + len(self._all) * self.node_bytes
