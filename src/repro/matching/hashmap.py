"""Flajslik et al.'s binned hash-map matching (related work, section 5).

    "The match lists are replaced by a fixed hash map that maps matching data
    to separate linked lists. The number of linked lists and the hash
    function are configurable parameters. ... the proposed design with 256
    bins reduce the number of match attempts per message significantly.
    Moreover, this data structure has a constant overhead in queue selection,
    which slows down the most common case of a very short list traversal."

Wildcard receives cannot be binned; they live in a dedicated wildcard list.
When the probe itself carries wildcards (a UMQ search for a wildcard recv),
the structure degrades to a FIFO scan over all live items — the slow path
the original paper also pays.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.matching.base import MatchQueue
from repro.matching.entry import LL_NODE_POINTERS, MatchItem
from repro.matching.envelope import items_match
from repro.matching.port import MemoryPort, emit_node_runs
from repro.mem.alloc import Allocation, SequentialHeap

_PTR_BYTES = 8


def bin_index(src: int, tag: int, cid: int, nbins: int) -> int:
    """Deterministic multiplicative hash over the full matching criteria."""
    h = (src * 1_000_003) ^ (tag * 10_007) ^ (cid * 97)
    return (h & 0x7FFF_FFFF) % nbins


@dataclass
class _Cell:
    item: MatchItem
    alloc: Allocation
    bin: int  # -1 for the wildcard list


class BinnedHashQueue(MatchQueue):
    """Fixed-size hash bins keyed on (src, tag, cid) + a wildcard list."""

    family = "hashmap"

    DEFAULT_BASE = 0x9000_0000
    DEFAULT_CAPACITY = 1 << 30

    def __init__(
        self,
        nbins: int = 256,
        *,
        entry_bytes: int = 24,
        port: Optional[MemoryPort] = None,
        heap=None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if nbins < 1:
            raise ConfigurationError(f"nbins must be >= 1, got {nbins}")
        super().__init__(entry_bytes=entry_bytes, port=port)
        if heap is None:
            heap = SequentialHeap(
                self.DEFAULT_BASE,
                self.DEFAULT_CAPACITY,
                rng if rng is not None else np.random.default_rng(0),
            )
        self.heap = heap
        self.nbins = nbins
        self.node_bytes = LL_NODE_POINTERS + entry_bytes
        self._bin_array = heap.alloc(nbins * _PTR_BYTES)
        self._bins: Dict[int, Deque[_Cell]] = {}
        self._wild: Deque[_Cell] = deque()
        # Global FIFO index (seq -> cell) for wildcard probes and iteration.
        self._all: "OrderedDict[int, _Cell]" = OrderedDict()

    # -- posting --------------------------------------------------------------

    def post(self, item: MatchItem) -> None:
        """Append *item*; its FIFO position is its posting order."""
        alloc = self.heap.alloc(self.node_bytes)
        item.addr = alloc.addr + LL_NODE_POINTERS
        self.port.store(alloc.addr, self.node_bytes)
        if item.wildcard_source or item.wildcard_tag:
            cell = _Cell(item, alloc, -1)
            self._wild.append(cell)
        else:
            b = bin_index(item.src, item.tag, item.cid, self.nbins)
            self.port.store(self._bin_array.addr + b * _PTR_BYTES, _PTR_BYTES)
            cell = _Cell(item, alloc, b)
            self._bins.setdefault(b, deque()).append(cell)
        self._all[item.seq] = cell
        self.stats.posts += 1

    # -- searching ---------------------------------------------------------------

    def match_remove(self, probe: MatchItem) -> Optional[MatchItem]:
        """Find, remove and return the earliest item matching *probe*, or None."""
        if probe.wildcard_source or probe.wildcard_tag:
            if self.port.scan_batch:
                return self._match_remove_slow_runs(probe)
            return self._match_remove_slow(probe)
        if self.port.scan_batch:
            return self._match_remove_runs(probe)
        return self._match_remove_slots(probe)

    def _match_remove_slots(self, probe: MatchItem) -> Optional[MatchItem]:
        """Per-slot scan: one port load per cell inspected."""
        probes = 0
        b = bin_index(probe.src, probe.tag, probe.cid, self.nbins)
        # The constant queue-selection overhead: hashing + bin head load.
        self.port.load(self._bin_array.addr + b * _PTR_BYTES, _PTR_BYTES)
        best: Optional[_Cell] = None
        for cell in self._bins.get(b, ()):  # FIFO within the bin
            self.port.load(cell.alloc.addr, self.node_bytes)
            probes += 1
            if items_match(cell.item, probe):
                best = cell
                break
        # The wildcard list may hold an earlier-posted match.
        for cell in self._wild:
            if best is not None and cell.item.seq >= best.item.seq:
                break
            self.port.load(cell.alloc.addr, self.node_bytes)
            probes += 1
            if items_match(cell.item, probe):
                best = cell
                break
        if best is None:
            self.stats.record_search(probes, False)
            return None
        self._remove_cell(best)
        self.stats.record_search(probes, True)
        return best.item

    def _match_remove_runs(self, probe: MatchItem) -> Optional[MatchItem]:
        """Batched scan: bin traversal then wildcard traversal, as runs."""
        port = self.port
        b = bin_index(probe.src, probe.tag, probe.cid, self.nbins)
        port.load(self._bin_array.addr + b * _PTR_BYTES, _PTR_BYTES)
        best: Optional[_Cell] = None
        bin_addrs = []
        for cell in self._bins.get(b, ()):  # FIFO within the bin
            bin_addrs.append(cell.alloc.addr)
            if items_match(cell.item, probe):
                best = cell
                break
        emit_node_runs(port, bin_addrs, self.node_bytes)
        probes = len(bin_addrs)
        # The wildcard list may hold an earlier-posted match; the seq guard
        # sits before the load, exactly as in the per-slot spelling.
        wild_addrs = []
        for cell in self._wild:
            if best is not None and cell.item.seq >= best.item.seq:
                break
            wild_addrs.append(cell.alloc.addr)
            if items_match(cell.item, probe):
                best = cell
                break
        emit_node_runs(port, wild_addrs, self.node_bytes)
        probes += len(wild_addrs)
        if best is None:
            self.stats.record_search(probes, False)
            return None
        self._remove_cell(best)
        self.stats.record_search(probes, True)
        return best.item

    def _match_remove_slow(self, probe: MatchItem) -> Optional[MatchItem]:
        """Wildcard probe: FIFO scan over every live item."""
        probes = 0
        for cell in self._all.values():
            self.port.load(cell.alloc.addr, self.node_bytes)
            probes += 1
            if items_match(cell.item, probe):
                self._remove_cell(cell)
                self.stats.record_search(probes, True)
                return cell.item
        self.stats.record_search(probes, False)
        return None

    def _match_remove_slow_runs(self, probe: MatchItem) -> Optional[MatchItem]:
        """Wildcard probe, batched: the global FIFO scan charged as runs."""
        addrs = []
        found: Optional[_Cell] = None
        for cell in self._all.values():
            addrs.append(cell.alloc.addr)
            if items_match(cell.item, probe):
                found = cell
                break
        emit_node_runs(self.port, addrs, self.node_bytes)
        if found is None:
            self.stats.record_search(len(addrs), False)
            return None
        self._remove_cell(found)
        self.stats.record_search(len(addrs), True)
        return found.item

    def _remove_cell(self, cell: _Cell) -> None:
        if cell.bin < 0:
            self._wild.remove(cell)
        else:
            self._bins[cell.bin].remove(cell)
        del self._all[cell.item.seq]
        self.heap.free(cell.alloc)
        self.port.store(cell.alloc.addr, _PTR_BYTES)

    # -- introspection -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._all)

    def iter_items(self) -> Iterator[MatchItem]:
        """Yield live items in FIFO (posting) order, without memory charges."""
        for cell in self._all.values():
            yield cell.item

    def regions(self) -> list[Allocation]:
        """Simulated memory regions backing this structure (heater targets)."""
        regions = [self._bin_array]
        regions.extend(cell.alloc for cell in self._all.values())
        return regions

    def footprint_bytes(self) -> int:
        """Total simulated bytes currently backing the structure."""
        return self._bin_array.size + len(self._all) * self.node_bytes

    def bin_load_factor(self) -> float:
        """Mean live entries per non-empty bin (diagnostics)."""
        sizes = [len(d) for d in self._bins.values() if d]
        return float(np.mean(sizes)) if sizes else 0.0
