"""The baseline single linked-list match queue (MPICH lineage).

Paper section 2.2: "Implementations based on the open source MPICH
implementation typically use a single linked list for all communicators."

Each element lives in its own heap node: two pointers plus the entry, behind
a malloc-style header. Nodes come from a :class:`SequentialHeap` by default —
consecutive posts are *usually* adjacent in memory but each entry costs more
than a cache line and the stream is irregular, which is exactly the layout
the paper's baseline measurements reflect ("the unmodified baseline requires
more than a cache line for a single entry", section 4.2). A
:class:`FragmentedHeap` can be supplied instead to model a long-running,
churned arena (used by the FDS study, whose lists are long-lived).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.matching.base import MatchQueue
from repro.matching.entry import LL_NODE_POINTERS, MatchItem
from repro.matching.envelope import items_match
from repro.matching.port import MemoryPort, emit_node_runs
from repro.mem.alloc import Allocation, SequentialHeap


@dataclass
class _Node:
    item: MatchItem
    alloc: Allocation


class BaselineLinkedList(MatchQueue):
    """Single FIFO linked list; O(n) search, one heap node per entry."""

    family = "baseline"

    #: Default arena placement for stand-alone construction.
    DEFAULT_BASE = 0x1000_0000
    DEFAULT_CAPACITY = 1 << 30

    def __init__(
        self,
        *,
        entry_bytes: int = 24,
        port: Optional[MemoryPort] = None,
        heap=None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(entry_bytes=entry_bytes, port=port)
        if heap is None:
            heap = SequentialHeap(
                self.DEFAULT_BASE,
                self.DEFAULT_CAPACITY,
                rng if rng is not None else np.random.default_rng(0),
            )
        self.heap = heap
        self.node_bytes = LL_NODE_POINTERS + entry_bytes
        self._nodes: list[_Node] = []

    def post(self, item: MatchItem) -> None:
        """Append *item*; its FIFO position is its posting order."""
        alloc = self.heap.alloc(self.node_bytes)
        item.addr = alloc.addr + LL_NODE_POINTERS
        node = _Node(item, alloc)
        # Writing the new node and patching the old tail's next pointer.
        self.port.store(alloc.addr, self.node_bytes)
        if self._nodes:
            self.port.store(self._nodes[-1].alloc.addr, 8)
        self._nodes.append(node)
        self.stats.posts += 1

    #: How far ahead of the scan middleware prefetch hints are issued. The
    #: software knows the pointer-chase targets the hardware cannot guess.
    SW_PREFETCH_LOOKAHEAD = 4

    def match_remove(self, probe: MatchItem) -> Optional[MatchItem]:
        """Find, remove and return the earliest item matching *probe*, or None."""
        if self.port.scan_batch:
            return self._match_remove_runs(probe)
        return self._match_remove_slots(probe)

    def _match_remove_slots(self, probe: MatchItem) -> Optional[MatchItem]:
        """Per-slot scan: one port load per node inspected."""
        probes = 0
        nodes = self._nodes
        lookahead = self.SW_PREFETCH_LOOKAHEAD
        for idx, node in enumerate(nodes):
            if idx + lookahead < len(nodes):
                ahead = nodes[idx + lookahead]
                self.port.hint(ahead.alloc.addr, self.node_bytes)
            # One load covers the node's pointers and entry payload.
            self.port.load(node.alloc.addr, self.node_bytes)
            probes += 1
            if items_match(node.item, probe):
                self._unlink(idx)
                self.stats.record_search(probes, True)
                return node.item
        self.stats.record_search(probes, False)
        return None

    def _match_remove_runs(self, probe: MatchItem) -> Optional[MatchItem]:
        """Batched scan: coalesce heap-adjacent nodes into scan runs.

        The match index is decided host-side, then the nodes the per-slot
        scan would have loaded (up to and including the match) are charged
        with maximal contiguous stretches as single runs. Hint count is the
        per-slot count; they are emitted ahead of the loads, which is only
        observable to ports where hints are inert or order-insensitive (the
        engine disables batching when software prefetch is live).
        """
        nodes = self._nodes
        n = len(nodes)
        port = self.port
        found = -1
        for idx, node in enumerate(nodes):
            if items_match(node.item, probe):
                found = idx
                break
        stop = found if found >= 0 else n - 1
        if not port.hint_is_noop:
            lookahead = self.SW_PREFETCH_LOOKAHEAD
            for idx in range(max(0, min(stop + 1, n - lookahead))):
                port.hint(nodes[idx + lookahead].alloc.addr, self.node_bytes)
        emit_node_runs(
            port, [nodes[i].alloc.addr for i in range(stop + 1)], self.node_bytes
        )
        if found >= 0:
            node = nodes[found]
            self._unlink(found)
            self.stats.record_search(found + 1, True)
            return node.item
        self.stats.record_search(n, False)
        return None

    def _unlink(self, idx: int) -> None:
        node = self._nodes.pop(idx)
        # Patch neighbours' pointers.
        if idx > 0:
            self.port.store(self._nodes[idx - 1].alloc.addr, 8)
        if idx < len(self._nodes):
            self.port.store(self._nodes[idx].alloc.addr + 8, 8)
        self.heap.free(node.alloc)

    def __len__(self) -> int:
        return len(self._nodes)

    def iter_items(self) -> Iterator[MatchItem]:
        """Yield live items in FIFO (posting) order, without memory charges."""
        for node in self._nodes:
            yield node.item

    def regions(self) -> list[Allocation]:
        """One region per live node — the heater's worst case: the region
        list is long and churns on every post/remove (section 3.2's lock
        contention problem)."""
        return [n.alloc for n in self._nodes]

    def footprint_bytes(self) -> int:
        """Total simulated bytes currently backing the structure."""
        return len(self._nodes) * self.node_bytes
