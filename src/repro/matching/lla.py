"""The linked list of arrays (LLA) — the paper's spatial-locality tool.

Section 3.1: an LLA node stores ``k`` match entries contiguously, preceded by
4+4-byte head/tail indexes and followed by the 8-byte next pointer. With
24-byte PRQ entries, k=2 fills one 64-byte cache line exactly (Figure 2); the
experiments sweep k over {2, 4, 8, 16, 32} ("from there we increase spacial
locality by doubling the number of elements to perform an exponential
sweep"). "LLA-Large" (Figure 10) is the same structure with a much larger k.

Hole management follows the paper: "We manage holes in the array (from
deletions in the middle of the list) by ensuring tags and sources are invalid
and all bitmask fields are set" — i.e. a removal marks the slot invalid in
place; later searches still walk over it (it is in the contiguous scan), but
it can never match. Appends always go to the tail slot of the tail node.
Fully-drained nodes are unlinked and returned to the node pool.

Nodes come from a :class:`~repro.mem.alloc.SlabPool`: contiguous, line
aligned, with a *stable* region set — which is what lets the hot-cache
heater register the pool's slabs once instead of tracking every node
(section 4.3's "dedicated element pool" that reduces locking overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.matching.base import MatchQueue
from repro.matching.entry import MatchItem, lla_node_bytes
from repro.matching.envelope import items_match
from repro.matching.port import MemoryPort
from repro.mem.alloc import Allocation, BumpAllocator, SlabPool

#: Byte offset of slot *i* inside a node: past the 8-byte head/tail indexes.
_SLOT_BASE = 8


@dataclass
class _LlaNode:
    alloc: Allocation
    slots: List[Optional[MatchItem]]
    start: int = 0  # first potentially-live slot
    end: int = 0  # one past the last used slot
    live: int = 0

    def slot_addr(self, idx: int, entry_bytes: int) -> int:
        """Byte address of slot *idx* within this node."""
        return self.alloc.addr + _SLOT_BASE + idx * entry_bytes


class LinkedListOfArrays(MatchQueue):
    """Linked list of k-entry arrays with invalidation-based holes."""

    family = "lla"

    DEFAULT_BASE = 0x4000_0000
    DEFAULT_CAPACITY = 1 << 30

    def __init__(
        self,
        entries_per_node: int = 2,
        *,
        entry_bytes: int = 24,
        port: Optional[MemoryPort] = None,
        pool: Optional[SlabPool] = None,
        arena: Optional[BumpAllocator] = None,
    ) -> None:
        if entries_per_node < 1:
            raise ConfigurationError(
                f"entries_per_node must be >= 1, got {entries_per_node}"
            )
        super().__init__(entry_bytes=entry_bytes, port=port)
        self.entries_per_node = entries_per_node
        self.node_bytes = lla_node_bytes(entries_per_node, entry_bytes)
        if pool is None:
            if arena is None:
                arena = BumpAllocator(self.DEFAULT_BASE, self.DEFAULT_CAPACITY)
            pool = SlabPool(self.node_bytes, arena=arena)
        self.pool = pool
        self._nodes: list[_LlaNode] = []
        self._live = 0
        self.hole_probes = 0  # invalidated slots walked over during searches

    # -- posting ---------------------------------------------------------

    def _new_node(self) -> _LlaNode:
        alloc = self.pool.alloc()
        node = _LlaNode(alloc, [None] * self.entries_per_node)
        # Initialize head/tail indexes and patch the previous tail's next
        # pointer (it sits in the last 8 bytes of that node).
        self.port.store(alloc.addr, _SLOT_BASE)
        if self._nodes:
            prev = self._nodes[-1]
            self.port.store(prev.alloc.addr + self.node_bytes - 8, 8)
        self._nodes.append(node)
        return node

    def post(self, item: MatchItem) -> None:
        """Append *item*; its FIFO position is its posting order."""
        node = self._nodes[-1] if self._nodes else None
        if node is None or node.end >= self.entries_per_node:
            node = self._new_node()
        idx = node.end
        node.end += 1
        node.live += 1
        node.slots[idx] = item
        item.addr = node.slot_addr(idx, self.entry_bytes)
        self.port.store(item.addr, self.entry_bytes)
        self.port.store(node.alloc.addr, _SLOT_BASE)  # update tail index
        self._live += 1
        self.stats.posts += 1

    # -- searching ---------------------------------------------------------

    #: Middleware prefetch hints run this many *nodes* ahead of the scan.
    SW_PREFETCH_LOOKAHEAD = 2

    def match_remove(self, probe: MatchItem) -> Optional[MatchItem]:
        """Find, remove and return the earliest item matching *probe*, or None."""
        if self.port.scan_batch:
            return self._match_remove_runs(probe)
        return self._match_remove_slots(probe)

    def _match_remove_slots(self, probe: MatchItem) -> Optional[MatchItem]:
        """Per-slot scan: one port load per slot inspected."""
        probes = 0
        lookahead = self.SW_PREFETCH_LOOKAHEAD
        for node_idx, node in enumerate(self._nodes):
            if node_idx + lookahead < len(self._nodes):
                ahead = self._nodes[node_idx + lookahead]
                self.port.hint(ahead.alloc.addr, self.node_bytes)
            # Node header: head/tail indexes come in with the first line.
            self.port.load(node.alloc.addr, _SLOT_BASE)
            for idx in range(node.start, node.end):
                item = node.slots[idx]
                self.port.load(node.slot_addr(idx, self.entry_bytes), self.entry_bytes)
                if item is None:
                    # A hole: invalid tag/source, all mask bits set — it is
                    # inspected (we just loaded it) but can never match.
                    self.hole_probes += 1
                    continue
                probes += 1
                if items_match(item, probe):
                    self._remove_at(node, idx, node_idx)
                    self.stats.record_search(probes, True)
                    return item
        self.stats.record_search(probes, False)
        return None

    def _match_remove_runs(self, probe: MatchItem) -> Optional[MatchItem]:
        """Batched scan: header + inspected slots as one run per node.

        The match is decided host-side first (slot contents are simulator
        state, not simulated memory), then the exact slots the per-slot scan
        would have loaded — ``start`` up to and including the match, or the
        whole window — are charged as a single ``load_run`` bracketed with
        the node header. Probe/hole accounting is identical by construction.
        """
        probes = 0
        port = self.port
        eb = self.entry_bytes
        # Hints are part of the per-slot traversal spelling; a port that
        # provably ignores them lets the batched scan skip the emission.
        lookahead = -1 if port.hint_is_noop else self.SW_PREFETCH_LOOKAHEAD
        # The match rule inlined with the probe's fields hoisted (keep in
        # sync with repro.matching.envelope.items_match): the host-side scan
        # is the batched spelling's whole per-slot cost, so it must not pay
        # a call per slot.
        p_cid = probe.cid
        p_src = probe.src
        p_tag = probe.tag
        p_sm = probe.src_mask
        p_tm = probe.tag_mask
        for node_idx, node in enumerate(self._nodes):
            if 0 <= lookahead and node_idx + lookahead < len(self._nodes):
                ahead = self._nodes[node_idx + lookahead]
                port.hint(ahead.alloc.addr, self.node_bytes)
            slots = node.slots
            found = -1
            for idx in range(node.start, node.end):
                item = slots[idx]
                if item is None:
                    self.hole_probes += 1
                    continue
                probes += 1
                if (
                    item.cid == p_cid
                    and not ((item.src ^ p_src) & item.src_mask & p_sm)
                    and not ((item.tag ^ p_tag) & item.tag_mask & p_tm)
                ):
                    found = idx
                    break
            stop = found if found >= 0 else node.end - 1
            start = node.start
            nprobes = stop - start + 1
            base = node.alloc.addr
            if nprobes <= 0:
                port.load(base, _SLOT_BASE)
            elif start == 0:
                # Header + slots in one run: the direct spelling of the
                # begin_scan/end_scan coalescing (the header's _SLOT_BASE
                # bytes end exactly at slot 0).
                port.load_run(base + _SLOT_BASE, nprobes * eb, nprobes, None, _SLOT_BASE)
            else:
                # The window no longer starts at the header boundary (front
                # holes were tightened away): the header is charged alone,
                # exactly as the per-slot scan orders it.
                port.load(base, _SLOT_BASE)
                port.load_run(base + _SLOT_BASE + start * eb, nprobes * eb, nprobes)
            if found >= 0:
                item = slots[found]
                self._remove_at(node, found, node_idx)
                self.stats.record_search(probes, True)
                return item
        self.stats.record_search(probes, False)
        return None

    def _remove_at(self, node: _LlaNode, idx: int, node_idx: int) -> None:
        item = node.slots[idx]
        node.slots[idx] = None
        node.live -= 1
        self._live -= 1
        # Invalidate the entry in place (write the poisoned tag/masks).
        self.port.store(item.addr, self.entry_bytes)
        # Tighten the used window over boundary holes.
        while node.start < node.end and node.slots[node.start] is None:
            node.start += 1
        while node.end > node.start and node.slots[node.end - 1] is None:
            node.end -= 1
        if node.live == 0:
            self._unlink(node, node_idx)
        else:
            self.port.store(node.alloc.addr, _SLOT_BASE)  # head/tail update

    def _unlink(self, node: _LlaNode, idx: int) -> None:
        assert self._nodes[idx] is node
        self._nodes.pop(idx)
        if idx > 0:
            # Patch the predecessor's next pointer.
            prev = self._nodes[idx - 1]
            self.port.store(prev.alloc.addr + self.node_bytes - 8, 8)
        self.pool.free(node.alloc)

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return self._live

    def iter_items(self) -> Iterator[MatchItem]:
        """Yield live items in FIFO (posting) order, without memory charges."""
        for node in self._nodes:
            for idx in range(node.start, node.end):
                item = node.slots[idx]
                if item is not None:
                    yield item

    def regions(self) -> list[Allocation]:
        """The pool's slabs: a short, stable region set (heater friendly)."""
        return self.pool.regions()

    def footprint_bytes(self) -> int:
        """Total simulated bytes currently backing the structure."""
        return len(self._nodes) * self.node_bytes

    @property
    def node_count(self) -> int:
        """Live LLA nodes."""
        return len(self._nodes)

    def hole_count(self) -> int:
        """Number of invalidated slots still inside used windows."""
        return sum(
            1
            for node in self._nodes
            for idx in range(node.start, node.end)
            if node.slots[idx] is None
        )
