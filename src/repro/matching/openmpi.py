"""Open MPI's hierarchical match queue (paper section 2.2).

    "Open MPI has the most complex match list, a hierarchical list with the
    communicator as the first level and source as the second level. Each
    communicator has an array of linked lists for searching the ranks and
    tags. ... This allows the short list for a particular communicator/source
    to be reached in O(1) time. The Open MPI approach, however, is not
    scalable in terms of memory consumption, since for a communicator
    comprising N processes, each process must maintain an array of size N."

Wildcard-source receives cannot live in a per-source list; they are kept in a
per-communicator wildcard list, and correctness requires comparing sequence
numbers between the per-source candidate and the wildcard candidate so the
earliest-posted one wins (MPI FIFO ordering).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, Optional

import numpy as np

from repro.matching.base import MatchQueue
from repro.matching.entry import LL_NODE_POINTERS, MatchItem
from repro.matching.envelope import items_match
from repro.matching.port import MemoryPort, emit_node_runs
from repro.mem.alloc import Allocation, SequentialHeap

_PTR_BYTES = 8


@dataclass
class _Cell:
    item: MatchItem
    alloc: Allocation


@dataclass
class _CommState:
    array_alloc: Allocation
    nranks: int
    by_src: Dict[int, Deque[_Cell]] = field(default_factory=dict)
    wild: Deque[_Cell] = field(default_factory=deque)


class OpenMpiHierarchicalQueue(MatchQueue):
    """Per-communicator array of per-source lists plus a wildcard list."""

    family = "openmpi"

    DEFAULT_BASE = 0x7000_0000
    DEFAULT_CAPACITY = 1 << 30

    def __init__(
        self,
        *,
        entry_bytes: int = 24,
        port: Optional[MemoryPort] = None,
        heap=None,
        rng: Optional[np.random.Generator] = None,
        default_nranks: int = 1024,
    ) -> None:
        super().__init__(entry_bytes=entry_bytes, port=port)
        if heap is None:
            heap = SequentialHeap(
                self.DEFAULT_BASE,
                self.DEFAULT_CAPACITY,
                rng if rng is not None else np.random.default_rng(0),
            )
        self.heap = heap
        self.default_nranks = default_nranks
        self.node_bytes = LL_NODE_POINTERS + entry_bytes
        self._comms: Dict[int, _CommState] = {}
        self._live = 0

    # -- structure maintenance ---------------------------------------------

    def _comm(self, cid: int) -> _CommState:
        state = self._comms.get(cid)
        if state is None:
            # The O(N) per-communicator pointer array the paper calls out as
            # the memory-scalability problem (O(N^2) across N processes).
            array_alloc = self.heap.alloc(self.default_nranks * _PTR_BYTES)
            state = _CommState(array_alloc, self.default_nranks)
            self._comms[cid] = state
        return state

    def post(self, item: MatchItem) -> None:
        """Append *item*; its FIFO position is its posting order."""
        state = self._comm(item.cid)
        alloc = self.heap.alloc(self.node_bytes)
        item.addr = alloc.addr + LL_NODE_POINTERS
        cell = _Cell(item, alloc)
        self.port.store(alloc.addr, self.node_bytes)
        if item.wildcard_source:
            state.wild.append(cell)
        else:
            slot = item.src % state.nranks
            self.port.store(state.array_alloc.addr + slot * _PTR_BYTES, _PTR_BYTES)
            state.by_src.setdefault(item.src, deque()).append(cell)
        self._live += 1
        self.stats.posts += 1

    # -- searching --------------------------------------------------------------

    def _scan_list(
        self, cells: Deque[_Cell], probe: MatchItem, stop_before_seq: Optional[int]
    ) -> tuple[Optional[_Cell], int]:
        """First match in FIFO order; stops early once seq >= stop_before_seq
        (a better candidate from another list already exists)."""
        probes = 0
        for cell in cells:
            if stop_before_seq is not None and cell.item.seq >= stop_before_seq:
                break
            self.port.load(cell.alloc.addr, self.node_bytes)
            probes += 1
            if items_match(cell.item, probe):
                return cell, probes
        return None, probes

    def _scan_list_runs(
        self, cells: Deque[_Cell], probe: MatchItem, stop_before_seq: Optional[int]
    ) -> tuple[Optional[_Cell], int]:
        """Batched :meth:`_scan_list`: the match/early-stop decision is made
        host-side, then the cells the per-slot scan would have loaded are
        charged with heap-adjacent stretches coalesced into runs."""
        addrs = []
        found: Optional[_Cell] = None
        for cell in cells:
            if stop_before_seq is not None and cell.item.seq >= stop_before_seq:
                break
            addrs.append(cell.alloc.addr)
            if items_match(cell.item, probe):
                found = cell
                break
        emit_node_runs(self.port, addrs, self.node_bytes)
        return found, len(addrs)

    def match_remove(self, probe: MatchItem) -> Optional[MatchItem]:
        """Find, remove and return the earliest item matching *probe*, or None."""
        scan = self._scan_list_runs if self.port.scan_batch else self._scan_list
        state = self._comms.get(probe.cid)
        if state is None:
            self.stats.record_search(0, False)
            return None
        probes = 0
        best: Optional[_Cell] = None
        best_list: Optional[Deque[_Cell]] = None
        if probe.wildcard_source:
            # Must consider every per-source list (plus the wildcard list).
            candidates = list(state.by_src.values())
        else:
            slot_addr = state.array_alloc.addr + (probe.src % state.nranks) * _PTR_BYTES
            self.port.load(slot_addr, _PTR_BYTES)
            lst = state.by_src.get(probe.src)
            candidates = [lst] if lst is not None else []
        for cells in candidates:
            cell, p = scan(
                cells, probe, best.item.seq if best is not None else None
            )
            probes += p
            if cell is not None and (best is None or cell.item.seq < best.item.seq):
                best, best_list = cell, cells
        cell, p = scan(
            state.wild, probe, best.item.seq if best is not None else None
        )
        probes += p
        if cell is not None and (best is None or cell.item.seq < best.item.seq):
            best, best_list = cell, state.wild
        if best is None:
            self.stats.record_search(probes, False)
            return None
        best_list.remove(best)
        self.heap.free(best.alloc)
        self.port.store(best.alloc.addr, _PTR_BYTES)
        self._live -= 1
        self.stats.record_search(probes, True)
        return best.item

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return self._live

    def iter_items(self) -> Iterator[MatchItem]:
        """Yield live items in FIFO (posting) order, without memory charges."""
        cells: list[_Cell] = []
        for state in self._comms.values():
            for lst in state.by_src.values():
                cells.extend(lst)
            cells.extend(state.wild)
        for cell in sorted(cells, key=lambda c: c.item.seq):
            yield cell.item

    def regions(self) -> list[Allocation]:
        """Simulated memory regions backing this structure (heater targets)."""
        regions = [state.array_alloc for state in self._comms.values()]
        for state in self._comms.values():
            for lst in state.by_src.values():
                regions.extend(c.alloc for c in lst)
            regions.extend(c.alloc for c in state.wild)
        return regions

    def footprint_bytes(self) -> int:
        """Total simulated bytes currently backing the structure."""
        total = sum(s.array_alloc.size for s in self._comms.values())
        return total + self._live * self.node_bytes
