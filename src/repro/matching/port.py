"""Memory ports: where queue traversals send their loads.

A :class:`MemoryPort` receives every load/store a match queue performs while
searching or mutating. The production port is
:class:`~repro.matching.engine.MatchEngine` (cycle-accounted cache
hierarchy); :class:`NullPort` is free and counts operations only, for
semantics tests and the pure search-depth studies (Table 1, Figure 1).
"""

from __future__ import annotations


class MemoryPort:
    """Interface: queues call these for every simulated memory operation."""

    def load(self, addr: int, nbytes: int) -> None:
        """Record/charge a load of *nbytes* at *addr*."""
        raise NotImplementedError

    def store(self, addr: int, nbytes: int) -> None:
        """Record/charge a store of *nbytes* at *addr*."""
        raise NotImplementedError

    def hint(self, addr: int, nbytes: int) -> None:
        """Software prefetch hint: the caller knows it will touch this
        region soon (the paper's section 6 proposal of "custom prefetching
        units that can be used by middleware such as MPI"). Default: no-op;
        the MatchEngine honours it when software prefetch is enabled."""

    def mem_stats(self):
        """Per-level hit attribution accumulated by this port, if any.

        Returns a :class:`~repro.mem.result.LevelStats` for ports backed by
        a memory hierarchy (the MatchEngine), else ``None``.
        """
        return None


class NullPort(MemoryPort):
    """Cost-free port that only counts operations."""

    __slots__ = ("loads", "stores", "hints", "bytes_loaded", "bytes_stored")

    def __init__(self) -> None:
        self.loads = 0
        self.stores = 0
        self.hints = 0
        self.bytes_loaded = 0
        self.bytes_stored = 0

    def load(self, addr: int, nbytes: int) -> None:
        """Record/charge a load of *nbytes* at *addr*."""
        self.loads += 1
        self.bytes_loaded += nbytes

    def store(self, addr: int, nbytes: int) -> None:
        """Record/charge a store of *nbytes* at *addr*."""
        self.stores += 1
        self.bytes_stored += nbytes

    def hint(self, addr: int, nbytes: int) -> None:
        """Record a software prefetch hint (cost-free on this port)."""
        self.hints += 1

    def reset(self) -> None:
        """Clear accumulated state/counters."""
        self.loads = 0
        self.stores = 0
        self.hints = 0
        self.bytes_loaded = 0
        self.bytes_stored = 0
