"""Memory ports: where queue traversals send their loads.

A :class:`MemoryPort` receives every load/store a match queue performs while
searching or mutating. The production port is
:class:`~repro.matching.engine.MatchEngine` (cycle-accounted cache
hierarchy); :class:`NullPort` is free and counts operations only, for
semantics tests and the pure search-depth studies (Table 1, Figure 1).

Scan transactions
-----------------

Queue searches walk *contiguous runs*: an LLA node packs ``k`` entries
behind one header (paper section 3.1), and heap-allocated list nodes are
frequently adjacent. :meth:`MemoryPort.load_run` charges one such run —
``probes`` equal-stride loads covering ``nbytes`` at ``addr`` — in a single
port call, and :meth:`begin_scan`/:meth:`end_scan` bracket a header+slots
pair so the port may coalesce them into one transaction. The contract is
strict equivalence: ``load_run(addr, nbytes, probes)`` must leave every
observable (counters, charged cycles, cache state, RNG consumption)
**bit-identical** to the per-slot spelling::

    stride = nbytes // probes
    for i in range(probes):
        port.load(addr + i * stride, stride)

Ports that cannot batch simply inherit the default, which *is* that loop.
Queues consult :attr:`MemoryPort.scan_batch` to decide which spelling to
emit; ``REPRO_SCAN_BATCH=off`` (or ``MatchEngine(scan_batch=False)``)
selects the retained per-slot path.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.errors import ConfigurationError

#: Environment variable selecting the scan spelling queues emit.
SCAN_BATCH_ENV = "REPRO_SCAN_BATCH"

#: Scan batching is on unless an argument or the environment disables it.
DEFAULT_SCAN_BATCH = True


def resolve_scan_batch(value: Optional[Union[bool, str]] = None) -> bool:
    """Resolve the scan-batch mode: argument beats environment beats default.

    Accepts booleans or the strings ``"on"``/``"off"`` (the CLI and
    environment spelling, mirroring ``REPRO_MEM_KERNEL`` precedence).
    """
    if value is None:
        value = os.environ.get(SCAN_BATCH_ENV) or DEFAULT_SCAN_BATCH
    if isinstance(value, bool):
        return value
    if value == "on":
        return True
    if value == "off":
        return False
    raise ConfigurationError(
        f"unknown scan-batch mode {value!r}; expected 'on' or 'off'"
    )


class MemoryPort:
    """Interface: queues call these for every simulated memory operation."""

    #: Whether queues should emit batched scan runs (``load_run``) instead of
    #: per-slot ``load`` calls against this port. Both spellings are charged
    #: identically; this only selects which code path runs. Instances may
    #: override (the MatchEngine resolves it per ``REPRO_SCAN_BATCH``).
    scan_batch: bool = DEFAULT_SCAN_BATCH

    #: True when :meth:`hint` provably has no observable effect on this
    #: port (no prefetcher, no counter), letting batched scans skip
    #: emitting hints altogether. Ports that count hints (NullPort) or may
    #: act on them must leave this False so the hint stream stays
    #: mode-invariant.
    hint_is_noop: bool = False

    def load(self, addr: int, nbytes: int) -> None:
        """Record/charge a load of *nbytes* at *addr*."""
        raise NotImplementedError

    def load_run(
        self,
        addr: int,
        nbytes: int,
        probes: int,
        spacing: Optional[int] = None,
        header_nbytes: int = 0,
    ) -> None:
        """Record/charge a contiguous scan run: *probes* equal loads.

        Semantically identical to ``probes`` successive :meth:`load` calls
        of ``size = nbytes // probes`` bytes each, the *i*-th at ``addr + i
        * spacing`` (``probes`` must divide ``nbytes`` evenly). *spacing*
        defaults to *size* — back-to-back slots; a larger spacing models
        fixed-stride node layouts (allocation headers between list nodes)
        and must be ``>= size`` so probe footprints never overlap. A
        nonzero *header_nbytes* prepends a header probe — a load of that
        many bytes ending exactly at *addr* — to the run: the direct
        spelling of the header+slots coalescing the
        :meth:`begin_scan`/:meth:`end_scan` bracket expresses compositely.
        The default implementation is that loop; ports with a cheaper
        equivalent override it.
        """
        if header_nbytes:
            self.load(addr - header_nbytes, header_nbytes)
        if probes <= 0:
            return
        size, rem = divmod(nbytes, probes)
        if rem or size <= 0:
            raise ConfigurationError(
                f"load_run of {nbytes} bytes is not {probes} equal strides"
            )
        if spacing is None:
            spacing = size
        elif spacing < size:
            raise ConfigurationError(
                f"load_run spacing {spacing} overlaps {size}-byte probes"
            )
        for _ in range(probes):
            self.load(addr, size)
            addr += spacing

    def begin_scan(self) -> None:
        """Open a scan bracket: the port may defer one header load so an
        immediately following contiguous :meth:`load_run` can absorb it.
        Default: no-op (ports without coalescing need no bracket)."""

    def end_scan(self) -> None:
        """Close a scan bracket, flushing any deferred header load."""

    def store(self, addr: int, nbytes: int) -> None:
        """Record/charge a store of *nbytes* at *addr*."""
        raise NotImplementedError

    def hint(self, addr: int, nbytes: int) -> None:
        """Software prefetch hint: the caller knows it will touch this
        region soon (the paper's section 6 proposal of "custom prefetching
        units that can be used by middleware such as MPI"). Default: no-op;
        the MatchEngine honours it when software prefetch is enabled."""

    def mem_stats(self):
        """Per-level hit attribution accumulated by this port, if any.

        Returns a :class:`~repro.mem.result.LevelStats` for ports backed by
        a memory hierarchy (the MatchEngine), else ``None``.
        """
        return None


class NullPort(MemoryPort):
    """Cost-free port that only counts operations."""

    __slots__ = (
        "loads", "stores", "hints", "bytes_loaded", "bytes_stored",
        "runs", "run_probes", "scan_batch",
    )

    def __init__(self, scan_batch: Optional[Union[bool, str]] = None) -> None:
        self.scan_batch = resolve_scan_batch(scan_batch)
        self.loads = 0
        self.stores = 0
        self.hints = 0
        self.bytes_loaded = 0
        self.bytes_stored = 0
        # Diagnostics only: how much traffic arrived as batched runs. The
        # shared load/byte counters above are mode-invariant by contract.
        self.runs = 0
        self.run_probes = 0

    def load(self, addr: int, nbytes: int) -> None:
        """Record/charge a load of *nbytes* at *addr*."""
        self.loads += 1
        self.bytes_loaded += nbytes

    def load_run(
        self,
        addr: int,
        nbytes: int,
        probes: int,
        spacing: Optional[int] = None,
        header_nbytes: int = 0,
    ) -> None:
        """O(1) run accounting: counts exactly like the per-slot loads."""
        if header_nbytes:
            self.loads += 1
            self.bytes_loaded += header_nbytes
        if probes <= 0:
            return
        if nbytes % probes:
            raise ConfigurationError(
                f"load_run of {nbytes} bytes is not {probes} equal strides"
            )
        nloads = probes + 1 if header_nbytes else probes
        self.loads += probes
        self.bytes_loaded += nbytes
        self.runs += 1
        self.run_probes += nloads

    def store(self, addr: int, nbytes: int) -> None:
        """Record/charge a store of *nbytes* at *addr*."""
        self.stores += 1
        self.bytes_stored += nbytes

    def hint(self, addr: int, nbytes: int) -> None:
        """Record a software prefetch hint (cost-free on this port)."""
        self.hints += 1

    def reset(self) -> None:
        """Clear accumulated state/counters."""
        self.loads = 0
        self.stores = 0
        self.hints = 0
        self.bytes_loaded = 0
        self.bytes_stored = 0
        self.runs = 0
        self.run_probes = 0


def emit_node_runs(port: MemoryPort, addrs: list, node_bytes: int) -> None:
    """Charge equally-sized node loads at *addrs*, coalescing fixed strides.

    Maximal constant-stride stretches (``addrs[j+1] - addrs[j]`` equal and
    ``>= node_bytes``) become one :meth:`MemoryPort.load_run`; isolated
    nodes stay plain :meth:`MemoryPort.load` calls. Heap-backed queue
    families share this helper: sequential allocators place consecutive
    posts a fixed header-plus-alignment stride apart (until a foreign gap
    or a recycled hole intervenes), so scans decompose into a few runs.
    """
    i = 0
    n = len(addrs)
    load_run = port.load_run
    load = port.load
    while i < n:
        start = addrs[i]
        j = i + 1
        if j < n:
            spacing = addrs[j] - start
            if spacing >= node_bytes:
                expect = addrs[j] + spacing
                while j < n and addrs[j] == expect - spacing:
                    j += 1
                    expect += spacing
        count = j - i
        if count == 1:
            load(start, node_bytes)
        else:
            load_run(start, count * node_bytes, count, spacing)
        i = j
