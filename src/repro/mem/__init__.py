"""Simulated memory substrate.

This package stands in for the real x86 memory hierarchies the paper measures
(repro band 1/5: Python cannot express real cache occupancy). It provides:

* :mod:`~repro.mem.layout` -- cache-line address arithmetic.
* :mod:`~repro.mem.alloc` -- simulated allocators controlling *spatial
  locality*: a contiguous bump allocator, a slab/pool allocator (used by the
  LLA node pools and the hot-cache element pool), and a fragmented heap that
  emulates a long-running ``malloc`` arena (used by the baseline linked
  list).
* :mod:`~repro.mem.cache` -- set-associative caches with LRU / tree-PLRU /
  random eviction and way-partition support (the "semi-permanent occupancy"
  proposal): the auditable *reference* kernel backend.
* :mod:`~repro.mem.soa` -- the structure-of-arrays cache backend (flat
  tag/flag/penalty/recency slabs, batched run processing): the default
  kernel, bit-identical to the reference backend.
* :mod:`~repro.mem.vec` -- the numpy-vectorized cache backend (contiguous
  tag/stamp slabs, whole-span range-scan probes): fastest on warm wide
  spans, bit-identical to the other two kernels.
* :mod:`~repro.mem.kernel` -- backend selection (``--mem-kernel`` /
  ``REPRO_MEM_KERNEL`` / :data:`~repro.mem.kernel.DEFAULT_KERNEL`).
* :mod:`~repro.mem.prefetch` -- the prefetchers the paper's analysis leans
  on: L1 next-line (DCU), L2 adjacent-line pair ("spatial"), and the L2
  streamer — plus the hypothetical pointer-chase unit the ``prefetch-chase``
  ablation evaluates against LLA spatial packing.
* :mod:`~repro.mem.hierarchy` -- a multi-core socket: private L1/L2 per
  core, a shared L3, DRAM, plus the dedicated network cache the paper
  proposes in section 3.2/4.6.
"""

from repro.mem.alloc import (
    Allocation,
    BumpAllocator,
    FragmentedHeap,
    SequentialHeap,
    SlabPool,
)
from repro.mem.cache import (
    CLS_DEFAULT,
    CLS_NETWORK,
    CacheStats,
    EvictionPolicy,
    SetAssociativeCache,
    WayPartition,
)
from repro.mem.hierarchy import Core, MemoryHierarchy, NetworkCacheConfig
from repro.mem.kernel import (
    ALL_KERNELS,
    DEFAULT_KERNEL,
    KERNEL_REFERENCE,
    KERNEL_SOA,
    KERNEL_VEC,
    MEM_KERNEL_ENV,
    cache_class,
    resolve_kernel,
)
from repro.mem.layout import LINE_SIZE, line_of, line_span, lines_touched
from repro.mem.result import AccessResult, LevelStats
from repro.mem.prefetch import (
    AdjacentPairPrefetcher,
    NextLinePrefetcher,
    PointerChasePrefetcher,
    Prefetcher,
    StreamerPrefetcher,
)
from repro.mem.soa import SoACache
from repro.mem.vec import VecCache

__all__ = [
    "ALL_KERNELS",
    "AccessResult",
    "DEFAULT_KERNEL",
    "KERNEL_REFERENCE",
    "KERNEL_SOA",
    "KERNEL_VEC",
    "MEM_KERNEL_ENV",
    "SoACache",
    "VecCache",
    "cache_class",
    "resolve_kernel",
    "Allocation",
    "AdjacentPairPrefetcher",
    "BumpAllocator",
    "CLS_DEFAULT",
    "CLS_NETWORK",
    "CacheStats",
    "Core",
    "EvictionPolicy",
    "FragmentedHeap",
    "LINE_SIZE",
    "LevelStats",
    "MemoryHierarchy",
    "NetworkCacheConfig",
    "NextLinePrefetcher",
    "PointerChasePrefetcher",
    "Prefetcher",
    "SequentialHeap",
    "SetAssociativeCache",
    "SlabPool",
    "StreamerPrefetcher",
    "WayPartition",
    "line_of",
    "line_span",
    "lines_touched",
]
