"""Simulated allocators — the spatial-locality control knob.

The paper's spatial-locality tool (the linked list of arrays) works because it
changes *where* match entries live relative to each other. We therefore model
allocation explicitly:

* :class:`BumpAllocator` -- perfectly contiguous allocations. Used for the
  LLA node pools: consecutive nodes are adjacent, so the L2 streamer engages.
* :class:`SequentialHeap` -- mostly-sequential allocations with seeded
  jitter (occasional gaps and out-of-order placement). This models a real
  ``malloc`` arena early in a run: MPICH's baseline list nodes are usually
  allocated back-to-back but with headers, padding, and interleaved foreign
  allocations between them.
* :class:`FragmentedHeap` -- allocations scattered pseudo-randomly over a
  large arena, modelling a long-running application heap where the free list
  has been churned. Defeats the streamer entirely.
* :class:`SlabPool` -- fixed-size blocks carved from contiguous slabs with a
  LIFO free list. Models the dedicated element pool the paper uses to avoid
  heater lock contention (section 4.3).

All allocators hand out non-overlapping `(address, size)` regions inside a
caller-provided arena; a property-based test asserts non-overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import AllocationError
from repro.mem.layout import LINE_SIZE, align_up


@dataclass(frozen=True)
class Allocation:
    """An allocated region of the simulated address space."""

    addr: int
    size: int

    @property
    def end(self) -> int:
        """One past the last byte of the allocation."""
        return self.addr + self.size

    def overlaps(self, other: "Allocation") -> bool:
        """True if this allocation shares any byte with *other*."""
        return self.addr < other.end and other.addr < self.end


class BumpAllocator:
    """Contiguous bump-pointer allocation inside ``[base, base+capacity)``."""

    def __init__(self, base: int, capacity: int, alignment: int = 8) -> None:
        if capacity <= 0:
            raise AllocationError(f"capacity must be positive, got {capacity}")
        self.base = base
        self.capacity = capacity
        self.alignment = alignment
        self._next = base
        self.live_bytes = 0

    def alloc(self, size: int) -> Allocation:
        """Allocate a region; returns an Allocation."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        addr = align_up(self._next, self.alignment)
        if addr + size > self.base + self.capacity:
            raise AllocationError(
                f"bump arena exhausted: need {size} bytes at {addr:#x}, "
                f"arena ends at {self.base + self.capacity:#x}"
            )
        self._next = addr + size
        self.live_bytes += size
        return Allocation(addr, size)

    def free(self, allocation: Allocation) -> None:
        """Bump allocators never reuse memory; freeing only updates counters."""
        self.live_bytes -= allocation.size

    def reset(self) -> None:
        """Clear accumulated state/counters."""
        self._next = self.base
        self.live_bytes = 0


class SequentialHeap:
    """Mostly-sequential heap with per-allocation header and seeded jitter.

    Each allocation is preceded by a *header* (default 16 bytes, like glibc
    malloc bookkeeping) and, with probability *gap_prob*, followed by a gap of
    a random number of bytes (a foreign allocation landing between two of
    ours). This is the layout the paper's unmodified baseline linked list
    sees: entries are *usually* near each other, but each one costs more than
    a cache line and the stream is irregular.
    """

    def __init__(
        self,
        base: int,
        capacity: int,
        rng: np.random.Generator,
        *,
        header_bytes: int = 16,
        alignment: int = 16,
        gap_prob: float = 0.25,
        max_gap: int = 256,
    ) -> None:
        self.base = base
        self.capacity = capacity
        self.rng = rng
        self.header_bytes = header_bytes
        self.alignment = alignment
        self.gap_prob = gap_prob
        self.max_gap = max_gap
        self._next = base
        self.live_bytes = 0
        self._free: list[Allocation] = []

    def alloc(self, size: int) -> Allocation:
        """Allocate a region; returns an Allocation."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        # Prefer recycling an exact-size hole (LIFO, like a size-class free
        # list) -- recycled nodes are what makes long-lived baseline lists
        # progressively less sequential.
        for i in range(len(self._free) - 1, -1, -1):
            if self._free[i].size == size:
                alloc = self._free.pop(i)
                self.live_bytes += size
                return alloc
        addr = align_up(self._next + self.header_bytes, self.alignment)
        if addr + size > self.base + self.capacity:
            raise AllocationError("sequential heap exhausted")
        self._next = addr + size
        if self.rng.random() < self.gap_prob:
            self._next += int(self.rng.integers(self.alignment, self.max_gap + 1))
        self.live_bytes += size
        return Allocation(addr, size)

    def free(self, allocation: Allocation) -> None:
        """Return *allocation* to the allocator."""
        self.live_bytes -= allocation.size
        self._free.append(allocation)

    def reset(self) -> None:
        """Clear accumulated state/counters."""
        self._next = self.base
        self.live_bytes = 0
        self._free.clear()


class FragmentedHeap:
    """Allocations scattered uniformly over the arena (churned free list).

    Slots are precomputed per size class and handed out in a seeded shuffled
    order, so two consecutive allocations land in unrelated cache lines and
    usually unrelated pages. Freed slots return to the tail of their class's
    order and will be reused eventually.
    """

    def __init__(
        self,
        base: int,
        capacity: int,
        rng: np.random.Generator,
        *,
        alignment: int = 16,
    ) -> None:
        self.base = base
        self.capacity = capacity
        self.rng = rng
        self.alignment = alignment
        self._classes: dict[int, list[int]] = {}
        self._cursor = base
        self.live_bytes = 0

    def _size_class(self, size: int) -> int:
        return align_up(size + self.alignment, self.alignment)

    def _slots_for(self, cls_size: int) -> list[int]:
        slots = self._classes.get(cls_size)
        if slots is None or not slots:
            # Carve a new span for this class and shuffle its slot order.
            span = max(cls_size * 256, 64 * 1024)
            span = min(span, self.base + self.capacity - self._cursor)
            nslots = span // cls_size
            if nslots <= 0:
                raise AllocationError("fragmented heap exhausted")
            addrs = [self._cursor + i * cls_size for i in range(nslots)]
            self._cursor += nslots * cls_size
            order = self.rng.permutation(nslots)
            new_slots = [addrs[i] for i in order]
            if slots is None:
                self._classes[cls_size] = new_slots
                slots = new_slots
            else:
                slots.extend(new_slots)
        return slots

    def alloc(self, size: int) -> Allocation:
        """Allocate a region; returns an Allocation."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        cls_size = self._size_class(size)
        slots = self._slots_for(cls_size)
        addr = slots.pop()
        self.live_bytes += size
        return Allocation(addr, size)

    def free(self, allocation: Allocation) -> None:
        """Return *allocation* to the allocator."""
        cls_size = self._size_class(allocation.size)
        self._classes.setdefault(cls_size, []).insert(0, allocation.addr)
        self.live_bytes -= allocation.size


class SlabPool:
    """Fixed-size blocks from contiguous, line-aligned slabs (LIFO reuse).

    This is both the LLA node pool ("tighter control over memory allocation",
    section 4.3) and the hot-cache element pool that removes the heater's
    region-list lock from the critical path: slabs are registered with the
    heater once, and block reuse never changes the heated region set.
    """

    def __init__(
        self,
        block_size: int,
        *,
        arena: BumpAllocator,
        blocks_per_slab: int = 64,
        align_to_line: bool = True,
    ) -> None:
        if block_size <= 0:
            raise AllocationError(f"block size must be positive, got {block_size}")
        self.block_size = align_up(block_size, LINE_SIZE) if align_to_line else block_size
        self.arena = arena
        self.blocks_per_slab = blocks_per_slab
        self.slabs: list[Allocation] = []
        self._free: list[int] = []
        self.live_blocks = 0

    def _grow(self) -> None:
        slab_bytes = self.block_size * self.blocks_per_slab
        # Align the slab to a line boundary so packed nodes never straddle
        # lines unintentionally (Figure 2's whole point).
        slab = self.arena.alloc(slab_bytes + LINE_SIZE)
        start = align_up(slab.addr, LINE_SIZE)
        self.slabs.append(Allocation(start, slab_bytes))
        # LIFO order with the lowest addresses on top, so a fresh pool hands
        # out ascending, contiguous blocks.
        for i in range(self.blocks_per_slab - 1, -1, -1):
            self._free.append(start + i * self.block_size)

    def alloc(self, size: Optional[int] = None) -> Allocation:
        """Allocate a region; returns an Allocation."""
        if size is not None and size > self.block_size:
            raise AllocationError(
                f"request of {size} bytes exceeds pool block size {self.block_size}"
            )
        if not self._free:
            self._grow()
        addr = self._free.pop()
        self.live_blocks += 1
        return Allocation(addr, self.block_size)

    def free(self, allocation: Allocation) -> None:
        """Return *allocation* to the allocator."""
        self._free.append(allocation.addr)
        self.live_blocks -= 1

    def regions(self) -> list[Allocation]:
        """The slab regions (what a heater would register: stable set)."""
        return list(self.slabs)

    @property
    def footprint_bytes(self) -> int:
        """Total simulated bytes currently backing the structure."""
        return sum(s.size for s in self.slabs)
