"""Set-associative cache model with partitioning support.

Eviction classes
----------------
Every resident line carries a small integer *class*. ``CLS_DEFAULT`` is
ordinary application data; ``CLS_NETWORK`` marks lines belonging to the MPI
matching state. Classes exist so we can model the paper's proposal (section
4.6): *semi-permanent occupancy* via way partitioning (Intel CAT style),
where ordinary fills may not evict network lines beyond their share of ways.

Eviction policies
-----------------
``lru`` (exact, via an ordered dict), ``plru`` (tree pseudo-LRU
approximation) and ``random`` (seeded). The hot-caching technique works by
refreshing recency under (P)LRU; the random policy is included as an ablation
showing hot caching *requires* a recency-based policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.layout import LINE_SIZE

CLS_DEFAULT = 0
CLS_NETWORK = 1


class CacheStats:
    """Demand/prefetch counters for one cache level.

    A ``__slots__`` class, not a dataclass: these counters are bumped on
    every simulated line access, and slot attribute access keeps that cheap.
    """

    __slots__ = ("hits", "misses", "prefetch_fills", "prefetch_hits", "evictions", "flushes")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.prefetch_fills = 0
        self.prefetch_hits = 0  # demand hits on prefetched lines
        self.evictions = 0
        self.flushes = 0

    @property
    def accesses(self) -> int:
        """Total demand lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Demand hit fraction (0 when no accesses)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Clear accumulated state/counters."""
        self.hits = 0
        self.misses = 0
        self.prefetch_fills = 0
        self.prefetch_hits = 0
        self.evictions = 0
        self.flushes = 0

    def snapshot(self) -> dict:
        """Counters as a plain dict (round-trips everything reset() clears)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "prefetch_fills": self.prefetch_fills,
            "prefetch_hits": self.prefetch_hits,
            "evictions": self.evictions,
            "flushes": self.flushes,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class WayPartition:
    """CAT-style way reservation for the network class.

    ``network_ways`` ways per set are reserved: ordinary (``CLS_DEFAULT``)
    fills may never push network-class occupancy in a set below its current
    level once it is within the reserved share, i.e. a default-class fill
    must victimize a default-class line while network occupancy <= reserved
    ways. Network fills may evict anything.
    """

    network_ways: int

    def validate(self, assoc: int) -> None:
        """Raise ConfigurationError if the reservation exceeds the ways."""
        if not 0 < self.network_ways < assoc:
            raise ConfigurationError(
                f"network_ways must be in (0, {assoc}), got {self.network_ways}"
            )


def validate_geometry(
    name: str,
    size_bytes: int,
    assoc: int,
    policy: str,
    partition: Optional[WayPartition],
    rng: Optional[np.random.Generator],
) -> int:
    """Validate a cache geometry shared by every kernel backend.

    Returns the number of sets. Both :class:`SetAssociativeCache` and the
    structure-of-arrays backend (:class:`repro.mem.soa.SoACache`) accept the
    same constructor surface and must reject the same configurations.
    """
    if size_bytes % (assoc * LINE_SIZE):
        raise ConfigurationError(
            f"{name}: size {size_bytes} not divisible by assoc*line ({assoc}*{LINE_SIZE})"
        )
    nsets = size_bytes // (assoc * LINE_SIZE)
    if nsets & (nsets - 1):
        raise ConfigurationError(
            f"{name}: number of sets must be a power of two, got {nsets}"
        )
    if policy not in EvictionPolicy.ALL:
        raise ConfigurationError(f"unknown eviction policy {policy!r}")
    if policy == EvictionPolicy.RANDOM and rng is None:
        raise ConfigurationError("random eviction policy requires an rng")
    if partition is not None:
        partition.validate(assoc)
    return nsets


class _LineMeta:
    __slots__ = ("cls", "prefetched", "penalty")

    def __init__(self, cls: int, prefetched: bool, penalty: float = 0.0) -> None:
        self.cls = cls
        self.prefetched = prefetched
        # Residual latency a demand access still pays on its first hit to a
        # prefetched line (the prefetch was issued too late to hide
        # everything).
        self.penalty = penalty


class EvictionPolicy:
    """Names of the supported eviction policies."""

    LRU = "lru"
    PLRU = "plru"
    RANDOM = "random"
    ALL = (LRU, PLRU, RANDOM)


class SetAssociativeCache:
    """One cache level.

    Each set is a plain dict from line index to :class:`_LineMeta` plus an
    array-backed recency list of line indices (oldest first). Keeping the
    recency order in a list instead of an :class:`OrderedDict` makes the
    PLRU mid-queue promotion two C-level list operations instead of a full
    dict rebuild, and lets eviction scan candidates without copying — this
    ``lookup``/``fill`` pair is the hottest call in the repository. For
    RANDOM, the list degenerates to insertion order and is ignored by
    victim selection.
    """

    __slots__ = (
        "name",
        "size_bytes",
        "assoc",
        "latency",
        "nsets",
        "_set_mask",
        "_sets",
        "_order",
        "_dirty",
        "policy",
        "partition",
        "stats",
        "_rng",
    )

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        latency: float,
        *,
        policy: str = EvictionPolicy.LRU,
        partition: Optional[WayPartition] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        nsets = validate_geometry(name, size_bytes, assoc, policy, partition, rng)
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.latency = latency
        self.nsets = nsets
        self._set_mask = nsets - 1
        self._sets: list[dict] = [{} for _ in range(nsets)]
        self._order: list[list] = [[] for _ in range(nsets)]  # recency, oldest first
        self._dirty: set = set()  # indices of sets that may hold lines
        self.policy = policy
        self.partition = partition
        self.stats = CacheStats()
        self._rng = rng

    # -- lookup / fill ----------------------------------------------------

    def lookup(self, line: int) -> Optional[_LineMeta]:
        """Demand lookup. Updates recency and hit/miss statistics.

        Returns the line's metadata on a hit (truthy) or ``None`` on a miss.
        A first demand hit on a prefetched line exposes any residual
        ``penalty`` exactly once: the caller reads it off the returned meta,
        and this method clears it.
        """
        idx = line & self._set_mask
        meta = self._sets[idx].get(line)
        if meta is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if meta.prefetched:
            self.stats.prefetch_hits += 1
            meta.prefetched = False
        self._promote(self._order[idx], line)
        return meta

    def contains(self, line: int) -> bool:
        """Presence check without touching recency or statistics."""
        return line in self._sets[line & self._set_mask]

    def _promote(self, order: list, line: int) -> None:
        policy = self.policy
        if policy == EvictionPolicy.LRU:
            if order[-1] != line:
                order.remove(line)
                order.append(line)
        elif policy == EvictionPolicy.PLRU:
            # Tree-PLRU approximation: a hit protects the line but does not
            # make it strictly MRU; emulate by moving it to the middle of the
            # recency order.
            order.remove(line)
            order.insert(len(order) // 2, line)
        # RANDOM: recency is irrelevant.

    def fill(
        self,
        line: int,
        cls: int = CLS_DEFAULT,
        *,
        prefetched: bool = False,
        penalty: float = 0.0,
    ) -> None:
        """Insert *line*; evicts a victim if the set is full."""
        idx = line & self._set_mask
        s = self._sets[idx]
        meta = s.get(line)
        if meta is not None:
            # Refill of a resident line (e.g. prefetch racing demand).
            meta.cls = cls
            if not prefetched:
                meta.prefetched = False
                meta.penalty = 0.0
            self._promote(self._order[idx], line)
            return
        if len(s) >= self.assoc:
            self._evict(s, self._order[idx], filling_cls=cls)
        elif not s:
            self._dirty.add(idx)
        s[line] = _LineMeta(cls, prefetched, penalty if prefetched else 0.0)
        self._order[idx].append(line)
        if prefetched:
            self.stats.prefetch_fills += 1

    def _evict(self, s: dict, order: list, filling_cls: int) -> None:
        random = self.policy == EvictionPolicy.RANDOM
        if self.partition is not None and filling_cls == CLS_DEFAULT:
            # Only the partition scan needs a full candidate ordering; RANDOM
            # draws one permutation here. The SoA backend consumes the RNG
            # identically, so seeded victim sequences match across backends.
            if random:
                candidates = [order[i] for i in self._rng.permutation(len(order))]
            else:
                candidates = order  # oldest first; scanned in place, never copied
            victim = candidates[0]
            network_lines = sum(1 for m in s.values() if m.cls == CLS_NETWORK)
            if network_lines <= self.partition.network_ways:
                # Network share is protected: victimize the first default
                # candidate. When the whole set is network data the guarantee
                # only extends to network_ways, so the scan falls back to the
                # pre-seeded candidates[0].
                for cand in candidates:
                    if s[cand].cls != CLS_NETWORK:
                        victim = cand
                        break
        elif random:
            # No partition scan: one uniform draw replaces the permutation
            # (same victim distribution, one variate instead of assoc).
            victim = order[int(self._rng.integers(len(order)))]
        else:
            victim = order[0]
        del s[victim]
        order.remove(victim)
        self.stats.evictions += 1

    def invalidate(self, line: int) -> bool:
        """Drop *line* if resident; returns whether it was present."""
        idx = line & self._set_mask
        s = self._sets[idx]
        if line in s:
            del s[line]
            self._order[idx].remove(line)
            if not s:
                self._dirty.discard(idx)
            return True
        return False

    def flush(self) -> None:
        """Drop every line (the benchmarks' inter-iteration cache clear)."""
        sets = self._sets
        orders = self._order
        for idx in self._dirty:
            sets[idx].clear()
            orders[idx].clear()
        self._dirty.clear()
        self.stats.flushes += 1

    def flush_keep_network(self, reserved: int) -> None:
        """Flush, preserving up to *reserved* network lines per set.

        The way-partition flush: at most the partition's way share of
        network-class lines survives, keeping the most recently used ones
        (recency order is preserved among survivors). Counts as one flush.
        """
        sets = self._sets
        orders = self._order
        still_dirty = set()
        for idx in self._dirty:
            s = sets[idx]
            order = orders[idx]
            network = [k for k in order if s[k].cls == CLS_NETWORK]
            keep = network[-reserved:] if reserved > 0 else []
            kept = {k: s[k] for k in keep}
            s.clear()
            order.clear()
            s.update(kept)
            order.extend(keep)
            if s:
                still_dirty.add(idx)
        self._dirty.clear()
        self._dirty.update(still_dirty)
        self.stats.flushes += 1

    # -- introspection -----------------------------------------------------

    def occupancy(self, cls: Optional[int] = None) -> int:
        """Resident line count, optionally restricted to one class.

        Scans only sets known to hold lines (``_dirty``), so introspection
        on a mostly-empty multi-MiB L3 does not walk thousands of empty
        dicts; ``invalidate`` prunes a set's entry when it empties.
        """
        sets = self._sets
        if cls is None:
            return sum(len(sets[idx]) for idx in self._dirty)
        return sum(1 for idx in self._dirty for m in sets[idx].values() if m.cls == cls)

    def recency(self, set_index: int) -> list:
        """Resident lines of one set in recency order (oldest first).

        For RANDOM the order is insertion order (recency is never updated).
        """
        return list(self._order[set_index])

    @property
    def capacity_lines(self) -> int:
        """Total line capacity (sets x ways)."""
        return self.nsets * self.assoc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SetAssociativeCache({self.name}, {self.size_bytes >> 10}KiB, "
            f"{self.assoc}-way, {self.policy})"
        )
