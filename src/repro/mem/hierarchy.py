"""A multi-core socket: private L1/L2, shared L3, DRAM.

This is the stage on which the whole study plays out:

* The *matching core* runs the MPI matching engine; its queue traversals are
  demand accesses here.
* The *heater core* (hot caching, section 3.2) periodically touches the match
  regions; its accesses fill the **shared** L3, which is exactly why the
  matching core later finds the data close by ("Compute core fetches data
  from shared cache instead of DRAM", Figure 3).
* ``flush()`` models the cache-destroying compute phase between benchmark
  iterations (section 4.1: "we cleared the cache between each iteration").
  When a way partition or a dedicated network cache is configured, flush
  leaves the protected network lines alone — that is the *semi-permanent
  occupancy* the paper argues for.

Simplifications (documented, deliberate):

* Prefetched fills are free and instantaneous; realism comes from the
  bounded prefetch distance and stream-detection rules instead.
* No back-invalidation between levels (treated as non-inclusive); the
  benchmarks' flushes reset all levels anyway.
* Latency is charged per touched line with no memory-level parallelism; MPI
  list traversal is serial pointer-chasing, which is the regime the paper
  identifies as latency-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.cache import (
    CLS_DEFAULT,
    CLS_NETWORK,
    EvictionPolicy,
    SetAssociativeCache,
    WayPartition,
)
from repro.mem.layout import LINE_SHIFT
from repro.mem.prefetch import (
    AdjacentPairPrefetcher,
    NextLinePrefetcher,
    Prefetcher,
    StreamerPrefetcher,
)


@dataclass(frozen=True)
class NetworkCacheConfig:
    """The paper's proposed per-core dedicated network cache (section 3.2:
    "a small 1-2KiB network specific cache to the core design")."""

    size_bytes: int = 2048
    latency: float = 4.0

    def build(self, core_id: int) -> SetAssociativeCache:
        # Fully associative within a single set keeps the tiny cache simple.
        """Construct the per-core cache this config describes."""
        nlines = self.size_bytes >> LINE_SHIFT
        if nlines < 1:
            raise ConfigurationError(
                f"network cache too small: {self.size_bytes} bytes"
            )
        return SetAssociativeCache(
            f"netcache{core_id}", self.size_bytes, nlines, self.latency
        )


class Core:
    """Private L1 + L2 and their prefetchers, plus the optional net cache."""

    __slots__ = ("core_id", "l1", "l2", "l1_prefetchers", "l2_prefetchers", "netcache")

    def __init__(
        self,
        core_id: int,
        l1: SetAssociativeCache,
        l2: SetAssociativeCache,
        l1_prefetchers: Sequence[Prefetcher],
        l2_prefetchers: Sequence[Prefetcher],
        netcache: Optional[SetAssociativeCache] = None,
    ) -> None:
        self.core_id = core_id
        self.l1 = l1
        self.l2 = l2
        self.l1_prefetchers = list(l1_prefetchers)
        self.l2_prefetchers = list(l2_prefetchers)
        self.netcache = netcache


def default_l1_prefetchers() -> list[Prefetcher]:
    """The default L1 unit set: next-line (DCU)."""
    return [NextLinePrefetcher()]


def default_l2_prefetchers() -> list[Prefetcher]:
    """The default L2 unit set: adjacent-pair + streamer."""
    return [AdjacentPairPrefetcher(), StreamerPrefetcher()]


class MemoryHierarchy:
    """A socket with *n_cores* cores sharing one L3 and a DRAM behind it."""

    def __init__(
        self,
        *,
        n_cores: int = 2,
        l1_size: int = 32 * 1024,
        l1_assoc: int = 8,
        l1_latency: float = 4.0,
        l2_size: int = 256 * 1024,
        l2_assoc: int = 8,
        l2_latency: float = 12.0,
        l3_size: int = 16 * 1024 * 1024,
        l3_assoc: int = 16,
        l3_latency: float = 30.0,
        dram_latency: float = 200.0,
        policy: str = EvictionPolicy.LRU,
        l1_prefetcher_factory: Callable[[], list] = default_l1_prefetchers,
        l2_prefetcher_factory: Callable[[], list] = default_l2_prefetchers,
        partition: Optional[WayPartition] = None,
        network_cache: Optional[NetworkCacheConfig] = None,
        rng: Optional[np.random.Generator] = None,
        dram_stream_coverage: float = 0.75,
        l3_stream_coverage: float = 0.75,
    ) -> None:
        if n_cores < 1:
            raise ConfigurationError(f"need at least one core, got {n_cores}")
        if not (0.0 <= dram_stream_coverage <= 1.0 and 0.0 <= l3_stream_coverage <= 1.0):
            raise ConfigurationError("stream coverage fractions must be in [0, 1]")
        self.n_cores = n_cores
        self.dram_latency = dram_latency
        self.partition = partition
        # Fraction of the source latency a timely prefetch hides, by where
        # the prefetched line came from. Sandy Bridge's core-clock L3 streams
        # well into L2 (high l3 coverage); Haswell/Broadwell's decoupled,
        # slower LLC does not — but their improved streamer covers DRAM
        # streams better. These two knobs carry the paper's section 4.3
        # architecture contrast.
        self.dram_stream_coverage = dram_stream_coverage
        self.l3_stream_coverage = l3_stream_coverage
        self.l3 = SetAssociativeCache(
            "l3", l3_size, l3_assoc, l3_latency,
            policy=policy, partition=partition, rng=rng,
        )
        self.cores: list[Core] = []
        for cid in range(n_cores):
            l1 = SetAssociativeCache(
                f"l1.{cid}", l1_size, l1_assoc, l1_latency, policy=policy, rng=rng
            )
            l2 = SetAssociativeCache(
                f"l2.{cid}", l2_size, l2_assoc, l2_latency, policy=policy, rng=rng
            )
            netc = network_cache.build(cid) if network_cache is not None else None
            self.cores.append(
                Core(cid, l1, l2, l1_prefetcher_factory(), l2_prefetcher_factory(), netc)
            )
        self.demand_accesses = 0

    # -- the demand path ----------------------------------------------------

    def access(self, core_id: int, addr: int, nbytes: int, cls: int = CLS_DEFAULT) -> float:
        """Demand access of *nbytes* at *addr* from *core_id*; returns cycles."""
        if nbytes <= 0:
            return 0.0
        first = addr >> LINE_SHIFT
        last = (addr + nbytes - 1) >> LINE_SHIFT
        cycles = 0.0
        line = first
        while line <= last:
            cycles += self._access_line(self.cores[core_id], line, cls)
            line += 1
        return cycles

    def _prefetch_penalty(self, l2, line: int) -> float:
        """Residual latency of a prefetch for *line*, by its source level."""
        if l2.contains(line):
            return 0.0  # already close: nothing left to hide
        if self.l3.contains(line):
            return (1.0 - self.l3_stream_coverage) * self.l3.latency
        return (1.0 - self.dram_stream_coverage) * self.dram_latency

    def _access_line(self, core: Core, line: int, cls: int) -> float:
        self.demand_accesses += 1
        netc = core.netcache
        if netc is not None and cls == CLS_NETWORK and netc.lookup(line):
            return netc.latency
        l1, l2, l3 = core.l1, core.l2, self.l3
        meta1 = l1.lookup(line)
        if meta1 is not None:
            cycles = l1.latency + meta1.penalty
            meta1.penalty = 0.0
            return cycles
        # L1 miss: the DCU may fetch ahead.
        for pf in core.l1_prefetchers:
            for pline in pf.observe(line, False):
                l1.fill(pline, cls, prefetched=True,
                        penalty=self._prefetch_penalty(l2, pline))
        meta2 = l2.lookup(line)
        if meta2 is not None:
            cycles = l2.latency + meta2.penalty
            meta2.penalty = 0.0
            hit2 = True
        else:
            hit2 = False
            meta3 = l3.lookup(line)
            if meta3 is not None:
                cycles = l3.latency + meta3.penalty
                meta3.penalty = 0.0
            else:
                cycles = self.dram_latency
                l3.fill(line, cls)
            l2.fill(line, cls)
        # L2 prefetchers observe every access that reached L2.
        for pf in core.l2_prefetchers:
            for pline in pf.observe(line, hit2):
                pen = self._prefetch_penalty(l2, pline)
                l2.fill(pline, cls, prefetched=True, penalty=pen)
                l3.fill(pline, cls, prefetched=True)
        l1.fill(line, cls)
        if netc is not None and cls == CLS_NETWORK:
            netc.fill(line, cls)
        return cycles

    def write(self, core_id: int, addr: int, nbytes: int, cls: int = CLS_DEFAULT) -> float:
        """A store of *nbytes* at *addr*: write-allocate into the core's
        caches without demand latency (the write buffer absorbs it).

        Returns the number of lines touched; the caller scales this by its
        per-line store cost.
        """
        if nbytes <= 0:
            return 0.0
        core = self.cores[core_id]
        first = addr >> LINE_SHIFT
        last = (addr + nbytes - 1) >> LINE_SHIFT
        for line in range(first, last + 1):
            core.l1.fill(line, cls)
            core.l2.fill(line, cls)
            self.l3.fill(line, cls)
            if core.netcache is not None and cls == CLS_NETWORK:
                core.netcache.fill(line, cls)
        return float(last - first + 1)

    # -- the heater path ----------------------------------------------------

    def touch_shared(self, core_id: int, addr: int, nbytes: int, cls: int = CLS_NETWORK) -> int:
        """A heater pass over [addr, addr+nbytes): fills the shared L3 (and
        the heater core's private caches, which nobody else benefits from).

        Returns the number of lines touched, so the caller can charge the
        heater's own time budget (its loads are off the critical path of the
        matching core, but they determine pass duration and lock windows).
        """
        if nbytes <= 0:
            return 0
        core = self.cores[core_id]
        first = addr >> LINE_SHIFT
        last = (addr + nbytes - 1) >> LINE_SHIFT
        for line in range(first, last + 1):
            # Refresh recency in the shared cache; fill if absent.
            if not self.l3.lookup(line):
                self.l3.fill(line, cls)
            core.l2.fill(line, cls)
            core.l1.fill(line, cls)
        return last - first + 1

    # -- maintenance ---------------------------------------------------------

    def flush(self, *, respect_protection: bool = True) -> None:
        """Clear the caches, as the compute phase between iterations would.

        Protected network state survives when *respect_protection* is true:
        lines held by a way partition stay in L3, and dedicated network
        caches are untouched — they are not subject to ordinary capacity
        eviction, which is precisely the "semi-permanent occupancy" proposal.
        """
        for core in self.cores:
            core.l1.flush()
            core.l2.flush()
            for pf in core.l1_prefetchers:
                pf.reset()
            for pf in core.l2_prefetchers:
                pf.reset()
            if core.netcache is not None and not respect_protection:
                core.netcache.flush()
        if self.partition is not None and respect_protection:
            self._flush_l3_unprotected()
        else:
            self.l3.flush()

    def _flush_l3_unprotected(self) -> None:
        reserved = self.partition.network_ways
        l3 = self.l3
        still_dirty = set()
        for idx in l3._dirty:
            s = l3._sets[idx]
            network = [(k, m) for k, m in s.items() if m.cls == CLS_NETWORK]
            s.clear()
            # The partition guarantees at most its way share survives.
            for k, m in network[-reserved:]:
                s[k] = m
            if s:
                still_dirty.add(idx)
        l3._dirty = still_dirty
        l3.stats.flushes += 1

    def stats(self) -> dict:
        """Aggregated per-level counters."""
        out = {"l3": self.l3.stats.snapshot(), "demand_accesses": self.demand_accesses}
        for core in self.cores:
            out[f"l1.{core.core_id}"] = core.l1.stats.snapshot()
            out[f"l2.{core.core_id}"] = core.l2.stats.snapshot()
            if core.netcache is not None:
                out[f"netcache.{core.core_id}"] = core.netcache.stats.snapshot()
        return out

    def reset_stats(self) -> None:
        """Zero the accumulated statistics counters."""
        self.l3.stats.reset()
        self.demand_accesses = 0
        for core in self.cores:
            core.l1.stats.reset()
            core.l2.stats.reset()
            if core.netcache is not None:
                core.netcache.stats.reset()
