"""A multi-core socket: private L1/L2, shared L3, DRAM.

This is the stage on which the whole study plays out:

* The *matching core* runs the MPI matching engine; its queue traversals are
  demand accesses here.
* The *heater core* (hot caching, section 3.2) periodically touches the match
  regions; its accesses fill the **shared** L3, which is exactly why the
  matching core later finds the data close by ("Compute core fetches data
  from shared cache instead of DRAM", Figure 3).
* ``flush()`` models the cache-destroying compute phase between benchmark
  iterations (section 4.1: "we cleared the cache between each iteration").
  When a way partition or a dedicated network cache is configured, flush
  leaves the protected network lines alone — that is the *semi-permanent
  occupancy* the paper argues for.

Simplifications (documented, deliberate):

* Prefetched fills are free and instantaneous; realism comes from the
  bounded prefetch distance and stream-detection rules instead.
* No back-invalidation between levels (treated as non-inclusive); the
  benchmarks' flushes reset all levels anyway.
* Latency is charged per touched line with no memory-level parallelism; MPI
  list traversal is serial pointer-chasing, which is the regime the paper
  identifies as latency-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.cache import (
    CLS_DEFAULT,
    CLS_NETWORK,
    EvictionPolicy,
    SetAssociativeCache,
    WayPartition,
)
from repro.mem.kernel import (
    KERNEL_REFERENCE,
    KERNEL_VEC,
    cache_class,
    resolve_kernel,
)
from repro.mem.layout import LINE_SHIFT
from repro.mem.prefetch import (
    AdjacentPairPrefetcher,
    NextLinePrefetcher,
    Prefetcher,
    StreamerPrefetcher,
)
from repro.mem.result import AccessResult

#: Narrowest span/run the vec kernel probes as an array primitive; shorter
#: transactions (the match engine's 1-2 line node loads, short payloads)
#: delegate straight to the SoA scalar paths, which beat numpy's fixed
#: per-op costs below roughly two cache-lines-per-set worth of lines.
_VEC_MIN_SPAN = 128
_VEC_MIN_RUN = 128


@dataclass(frozen=True)
class NetworkCacheConfig:
    """The paper's proposed per-core dedicated network cache (section 3.2:
    "a small 1-2KiB network specific cache to the core design")."""

    size_bytes: int = 2048
    latency: float = 4.0

    def build(self, core_id: int, kernel: Optional[str] = None):
        # Fully associative within a single set keeps the tiny cache simple.
        """Construct the per-core cache this config describes."""
        nlines = self.size_bytes >> LINE_SHIFT
        if nlines < 1:
            raise ConfigurationError(
                f"network cache too small: {self.size_bytes} bytes"
            )
        return cache_class(kernel)(
            f"netcache{core_id}", self.size_bytes, nlines, self.latency
        )


class Core:
    """Private L1 + L2 and their prefetchers, plus the optional net cache."""

    __slots__ = (
        "core_id", "l1", "l2", "l1_prefetchers", "l2_prefetchers", "netcache", "hot", "hot1",
    )

    def __init__(
        self,
        core_id: int,
        l1: SetAssociativeCache,
        l2: SetAssociativeCache,
        l1_prefetchers: Sequence[Prefetcher],
        l2_prefetchers: Sequence[Prefetcher],
        netcache: Optional[SetAssociativeCache] = None,
    ) -> None:
        self.core_id = core_id
        self.l1 = l1
        self.l2 = l2
        self.l1_prefetchers = list(l1_prefetchers)
        self.l2_prefetchers = list(l2_prefetchers)
        self.netcache = netcache
        # Construction-time invariants of the demand path, prebound so the
        # batched access paths pay one attribute load plus a tuple unpack
        # instead of ~20 chained lookups per call. Everything here is fixed
        # after construction (prefetcher lists are mutated in place by
        # ``reset()``, never replaced; SoA slabs are mutated in place, never
        # rebound). The tuple *shapes* differ per backend — each backend's
        # access method unpacks only its own shape.
        lru = l1.policy == EvictionPolicy.LRU
        plru = l1.policy == EvictionPolicy.PLRU
        if isinstance(l1, SetAssociativeCache):
            self.hot = (
                l1,
                l2,
                l1._sets,
                l1._order,
                l1._set_mask,
                lru,
                plru,
                l1.latency,
                l1.stats,
                l2.stats,
                self.l1_prefetchers,
                self.l2_prefetchers,
            )
            # Smaller variant for the leading L1-hit run (the match engine's
            # node loads are almost always exactly this shape).
            self.hot1 = (
                l1._sets,
                l1._order,
                l1._set_mask,
                lru,
                plru,
                l1.latency,
                l1.stats,
            )
        else:
            # SoA backend: the slabs tuple carries (index.get, flag, pref,
            # penalty, stamp, order, set_mask); the stamp fast loop also
            # needs to know whether one multiply can replace the per-hit
            # latency adds (exact only for integer-valued latencies).
            self.hot1 = l1.slabs + (
                lru,
                plru,
                l1.latency,
                float(l1.latency).is_integer(),
                l1.stats,
                l1,
            )
            self.hot = (l1, l2) + l2.slabs + (
                l2.latency,
                l2.stats,
                self.l1_prefetchers,
                self.l2_prefetchers,
            )


def default_l1_prefetchers() -> list[Prefetcher]:
    """The default L1 unit set: next-line (DCU)."""
    return [NextLinePrefetcher()]


def default_l2_prefetchers() -> list[Prefetcher]:
    """The default L2 unit set: adjacent-pair + streamer."""
    return [AdjacentPairPrefetcher(), StreamerPrefetcher()]


class MemoryHierarchy:
    """A socket with *n_cores* cores sharing one L3 and a DRAM behind it."""

    def __init__(
        self,
        *,
        n_cores: int = 2,
        l1_size: int = 32 * 1024,
        l1_assoc: int = 8,
        l1_latency: float = 4.0,
        l2_size: int = 256 * 1024,
        l2_assoc: int = 8,
        l2_latency: float = 12.0,
        l3_size: int = 16 * 1024 * 1024,
        l3_assoc: int = 16,
        l3_latency: float = 30.0,
        dram_latency: float = 200.0,
        policy: str = EvictionPolicy.LRU,
        l1_prefetcher_factory: Callable[[], list] = default_l1_prefetchers,
        l2_prefetcher_factory: Callable[[], list] = default_l2_prefetchers,
        partition: Optional[WayPartition] = None,
        network_cache: Optional[NetworkCacheConfig] = None,
        rng: Optional[np.random.Generator] = None,
        dram_stream_coverage: float = 0.75,
        l3_stream_coverage: float = 0.75,
        kernel: Optional[str] = None,
    ) -> None:
        if n_cores < 1:
            raise ConfigurationError(f"need at least one core, got {n_cores}")
        if not (0.0 <= dram_stream_coverage <= 1.0 and 0.0 <= l3_stream_coverage <= 1.0):
            raise ConfigurationError("stream coverage fractions must be in [0, 1]")
        self.kernel = resolve_kernel(kernel)
        cache_cls = cache_class(self.kernel)
        self.n_cores = n_cores
        self.dram_latency = dram_latency
        self.partition = partition
        # Fraction of the source latency a timely prefetch hides, by where
        # the prefetched line came from. Sandy Bridge's core-clock L3 streams
        # well into L2 (high l3 coverage); Haswell/Broadwell's decoupled,
        # slower LLC does not — but their improved streamer covers DRAM
        # streams better. These two knobs carry the paper's section 4.3
        # architecture contrast.
        self.dram_stream_coverage = dram_stream_coverage
        self.l3_stream_coverage = l3_stream_coverage
        self.l3 = cache_cls(
            "l3", l3_size, l3_assoc, l3_latency,
            policy=policy, partition=partition, rng=rng,
        )
        self.cores: list[Core] = []
        for cid in range(n_cores):
            l1 = cache_cls(
                f"l1.{cid}", l1_size, l1_assoc, l1_latency, policy=policy, rng=rng
            )
            l2 = cache_cls(
                f"l2.{cid}", l2_size, l2_assoc, l2_latency, policy=policy, rng=rng
            )
            netc = (
                network_cache.build(cid, kernel=self.kernel)
                if network_cache is not None
                else None
            )
            self.cores.append(
                Core(cid, l1, l2, l1_prefetcher_factory(), l2_prefetcher_factory(), netc)
            )
        self.demand_accesses = 0
        # Scratch transaction reused by the float-returning legacy wrappers,
        # so they stay allocation-free on the hot path.
        self._scratch = AccessResult()
        # Socket-level demand-path invariants, prebound like Core.hot (the
        # bound ``_prefetch_penalty`` in particular is costly to rebuild per
        # call).
        self._hot = (self.l3, self.l3.stats, self.dram_latency, self._prefetch_penalty)
        if self.kernel != KERNEL_REFERENCE:
            self._hot_soa = (
                self.l3,
                self.l3.stats,
                self.dram_latency,
                self._prefetch_penalty,
                policy == EvictionPolicy.LRU,
                policy == EvictionPolicy.PLRU,
            )
            # Bound instance attributes shadow the reference class methods:
            # backend dispatch costs nothing per call, and callers that
            # prebind ``hierarchy.access_lines``/``touch_shared_tx`` (the
            # match engine, the heater) transparently get the SoA kernel.
            self.access_lines = self._access_lines_soa
            self.touch_shared_tx = self._touch_shared_tx_soa
            self.run_latency = self._run_latency_soa
            self.access_run = self._access_run_soa
            if self.kernel == KERNEL_VEC:
                # The vec kernel rides the SoA slab paths (VecCache slabs
                # are op-compatible) and puts a whole-span vector probe in
                # front of them: all-hit flag-free spans are served as
                # array primitives, everything else delegates untouched.
                self.access_lines = self._access_lines_vec
                self.access_run = self._access_run_vec

    # -- the demand path ----------------------------------------------------

    def access(self, core_id: int, addr: int, nbytes: int, cls: int = CLS_DEFAULT) -> float:
        """Demand access of *nbytes* at *addr* from *core_id*; returns cycles.

        Thin wrapper over :meth:`access_tx` for call sites that only need
        the total; the batched transaction path underneath is the single
        implementation of the demand protocol.
        """
        if nbytes <= 0:
            return 0.0
        return self.access_lines(
            core_id,
            addr >> LINE_SHIFT,
            (addr + nbytes - 1) >> LINE_SHIFT,
            cls,
            self._scratch,
        ).cycles

    def access_tx(
        self,
        core_id: int,
        addr: int,
        nbytes: int,
        cls: int = CLS_DEFAULT,
        *,
        out: Optional[AccessResult] = None,
    ) -> AccessResult:
        """Demand access returning the full :class:`AccessResult`.

        Pass ``out`` to reuse a transaction object and keep the hot path
        allocation-free; it is reset before use and returned.
        """
        if nbytes <= 0:
            if out is None:
                return AccessResult()
            out.reset()
            return out
        return self.access_lines(
            core_id,
            addr >> LINE_SHIFT,
            (addr + nbytes - 1) >> LINE_SHIFT,
            cls,
            out,
        )

    def _prefetch_penalty(self, l2, line: int) -> float:
        """Residual latency of a prefetch for *line*, by its source level."""
        if l2.contains(line):
            return 0.0  # already close: nothing left to hide
        if self.l3.contains(line):
            return (1.0 - self.l3_stream_coverage) * self.l3.latency
        return (1.0 - self.dram_stream_coverage) * self.dram_latency

    def access_lines(
        self,
        core_id: int,
        first: int,
        last: int,
        cls: int = CLS_DEFAULT,
        out: Optional[AccessResult] = None,
    ) -> AccessResult:
        """Batched demand traversal of the line range [*first*, *last*].

        One call processes a whole node's line span: the per-core cache
        objects, their prefetcher lists and latencies are bound once instead
        of per line, which is where the wall-clock of the scalar loop went
        (see ``benchmarks/bench_access_path.py``). Simulated behaviour is
        bit-identical to :meth:`access_legacy` — same lookup/fill/prefetch
        order per line, same float accumulation order — the batching is
        purely a host-side optimization plus per-level attribution.
        """
        n = last - first + 1
        if n <= 0:
            if out is None:
                return AccessResult()
            out.reset()
            return out
        self.demand_accesses += n
        core = self.cores[core_id]
        netc = core.netcache
        cycles = 0.0
        l1_hits = 0
        l1_covered = 0
        pf_covered = 0
        penalty_cycles = 0.0
        line = first
        if netc is None or cls != CLS_NETWORK:
            # Fast prefix: consume leading L1 hits with minimal setup. Node
            # loads from a warm queue are entirely this shape, and a pure-hit
            # transaction never touches the general machinery below. Counter
            # updates mirror ``SetAssociativeCache.lookup`` exactly, with
            # L1 stats batched into one add per call (nothing reads them
            # mid-transaction); the first missing line breaks out uncounted
            # and the general loop resumes from it.
            l1_sets, l1_order, l1_mask, l1_lru, l1_plru, l1_lat, l1_stats = core.hot1
            while line <= last:
                idx = line & l1_mask
                meta = l1_sets[idx].get(line)
                if meta is None:
                    break
                if meta.prefetched:
                    meta.prefetched = False
                    l1_covered += 1
                if l1_lru:
                    order = l1_order[idx]
                    if order[-1] != line:
                        order.remove(line)
                        order.append(line)
                elif l1_plru:
                    order = l1_order[idx]
                    order.remove(line)
                    order.insert(len(order) // 2, line)
                l1_hits += 1
                pen = meta.penalty
                if pen:
                    meta.penalty = 0.0
                    penalty_cycles += pen
                cycles += l1_lat + pen
                line += 1
            if line > last:
                l1_stats.hits += l1_hits
                if l1_covered:
                    l1_stats.prefetch_hits += l1_covered
                res = out if out is not None else AccessResult()
                res.lines = n
                res.cycles = cycles
                res.netcache_hits = 0
                res.l1_hits = l1_hits
                res.l2_hits = 0
                res.l3_hits = 0
                res.dram_fills = 0
                res.prefetch_covered = l1_covered
                res.penalty_cycles = penalty_cycles
                return res
        # Every field of `res` is overwritten below, so a passed-in `out`
        # needs no reset here.
        res = out if out is not None else AccessResult()
        want_netc = netc is not None and cls == CLS_NETWORK
        (l1, l2, l1_sets, l1_order, l1_mask, l1_lru, l1_plru, l1_lat,
         l1_stats, l2_stats, l1_pf, l2_pf) = core.hot
        l3, l3_stats, dram_lat, penalty_of = self._hot
        l2_hits = l3_hits = netc_hits = dram_fills = 0
        l1_misses = 0
        for line in range(line, last + 1):
            if want_netc and netc.lookup(line):
                netc_hits += 1
                cycles += netc.latency
                continue
            idx = line & l1_mask
            meta = l1_sets[idx].get(line)
            if meta is not None:
                # Inlined ``l1.lookup()`` hit path — must stay bit-identical
                # to it (the equivalence tests pin this against
                # :meth:`access_legacy`); L1 stats are batched below.
                if meta.prefetched:
                    meta.prefetched = False
                    l1_covered += 1
                if l1_lru:
                    order = l1_order[idx]
                    if order[-1] != line:
                        order.remove(line)
                        order.append(line)
                elif l1_plru:
                    order = l1_order[idx]
                    order.remove(line)
                    order.insert(len(order) // 2, line)
                l1_hits += 1
                pen = meta.penalty
                if pen:
                    meta.penalty = 0.0
                    penalty_cycles += pen
                cycles += l1_lat + pen
                continue
            # L1 demand miss, counted exactly as l1.lookup() would have
            # (deferred to the batched update below).
            l1_misses += 1
            # The DCU may fetch ahead.
            for pf in l1_pf:
                for pline in pf.observe(line, False):
                    l1.fill(pline, cls, prefetched=True, penalty=penalty_of(l2, pline))
            covered = l2_stats.prefetch_hits
            meta = l2.lookup(line)
            if meta is not None:
                l2_hits += 1
                if l2_stats.prefetch_hits != covered:
                    pf_covered += 1
                pen = meta.penalty
                if pen:
                    meta.penalty = 0.0
                    penalty_cycles += pen
                cycles += l2.latency + pen
                hit2 = True
            else:
                hit2 = False
                covered = l3_stats.prefetch_hits
                meta = l3.lookup(line)
                if meta is not None:
                    l3_hits += 1
                    if l3_stats.prefetch_hits != covered:
                        pf_covered += 1
                    pen = meta.penalty
                    if pen:
                        meta.penalty = 0.0
                        penalty_cycles += pen
                    cycles += l3.latency + pen
                else:
                    dram_fills += 1
                    cycles += dram_lat
                    l3.fill(line, cls)
                l2.fill(line, cls)
            # L2 prefetchers observe every access that reached L2.
            for pf in l2_pf:
                for pline in pf.observe(line, hit2):
                    pen = penalty_of(l2, pline)
                    l2.fill(pline, cls, prefetched=True, penalty=pen)
                    l3.fill(pline, cls, prefetched=True)
            l1.fill(line, cls)
            if want_netc:
                netc.fill(line, cls)
        if l1_hits:
            l1_stats.hits += l1_hits
        if l1_misses:
            l1_stats.misses += l1_misses
        if l1_covered:
            l1_stats.prefetch_hits += l1_covered
        res.lines = n
        res.cycles = cycles
        res.netcache_hits = netc_hits
        res.l1_hits = l1_hits
        res.l2_hits = l2_hits
        res.l3_hits = l3_hits
        res.dram_fills = dram_fills
        res.prefetch_covered = pf_covered + l1_covered
        res.penalty_cycles = penalty_cycles
        return res

    def _access_lines_soa(
        self,
        core_id: int,
        first: int,
        last: int,
        cls: int = CLS_DEFAULT,
        out: Optional[AccessResult] = None,
    ) -> AccessResult:
        """Batched demand traversal on the structure-of-arrays backend.

        Shadows :meth:`access_lines` when the SoA kernel is selected. The
        leading L1-hit run — the entire transaction for warm queue spans —
        is processed by a monomorphic stamp loop over the flat slabs: one
        dict probe, one combined attention-flag test and one recency-stamp
        store per line, with the charged cycles materialized as a single
        multiply at the end (exact for integer-valued L1 latencies; the
        first penalized hit falls back to the reference accumulation order
        so float results stay bit-identical). No per-line allocation
        anywhere: misses fall through to a general loop whose L1/L2/L3 and
        netcache probes are inlined slab operations.
        """
        n = last - first + 1
        if n <= 0:
            if out is None:
                return AccessResult()
            out.reset()
            return out
        self.demand_accesses += n
        core = self.cores[core_id]
        netc = core.netcache
        cycles = 0.0
        l1_hits = 0
        l1_covered = 0
        pf_covered = 0
        penalty_cycles = 0.0
        line = first
        (l1_get, l1_flag, l1_pref, l1_pen, l1_stamp, l1_orders, l1_mask,
         l1_lru, l1_plru, l1_lat, l1_lat_int, l1_stats, l1) = core.hot1
        if netc is None or cls != CLS_NETWORK:
            seq = True
            if l1_lru and l1_lat_int:
                # Stamp loop over the leading hit run: one dict probe, one
                # stamp store and one flag test per line, no cache-object
                # attribute access. Short runs (1-2 line node loads, the
                # match engine's dominant shape) take a plain while loop;
                # longer spans amortize an ``enumerate``/``range`` iterator
                # whose C-level increment beats per-line Python adds.
                t = l1._tick
                miss_at = -1
                pen = 0.0
                ln = first
                if not l1._nflagged:
                    # No prefetched/penalized line anywhere in L1 (the
                    # steady state of a warm stream): pure probe + stamp.
                    # A hit cannot need flag handling, and fills only
                    # happen after a miss breaks out, so the counter
                    # cannot become nonzero mid-run.
                    if n <= 3:
                        while ln <= last:
                            slot = l1_get(ln)
                            if slot is None:
                                miss_at = ln
                                break
                            l1_stamp[slot] = t
                            t += 1
                            ln += 1
                    else:
                        # ``map`` runs the dict probe at C level; the line
                        # number is recovered from the tick delta on a miss.
                        t0 = t
                        for t, slot in enumerate(map(l1_get, range(first, last + 1)), t):
                            if slot is None:
                                miss_at = first + t - t0
                                break
                            l1_stamp[slot] = t
                        else:
                            t += 1
                elif n <= 3:
                    while ln <= last:
                        slot = l1_get(ln)
                        if slot is None:
                            miss_at = ln
                            break
                        l1_stamp[slot] = t
                        t += 1
                        if l1_flag[slot]:
                            l1_flag[slot] = 0
                            l1._nflagged -= 1
                            if l1_pref[slot]:
                                l1_pref[slot] = 0
                                l1_covered += 1
                            pen = l1_pen[slot]
                            if pen:
                                l1_pen[slot] = 0.0
                                break
                        ln += 1
                else:
                    t0 = t
                    for t, slot in enumerate(map(l1_get, range(first, last + 1)), t):
                        if slot is None:
                            miss_at = first + t - t0
                            break
                        l1_stamp[slot] = t
                        if l1_flag[slot]:
                            l1_flag[slot] = 0
                            l1._nflagged -= 1
                            if l1_pref[slot]:
                                l1_pref[slot] = 0
                                l1_covered += 1
                            pen = l1_pen[slot]
                            if pen:
                                l1_pen[slot] = 0.0
                                break
                    else:
                        t += 1
                    if pen:
                        ln = first + t - t0
                        t += 1  # the penalized line's stamp was consumed
                l1._tick = t  # t is the next unused tick in every case
                if pen:
                    # First penalized hit: materialize the deferred cycles
                    # in the reference accumulation order, then continue
                    # line by line (penalized runs are rare).
                    hits = ln - first
                    cycles = hits * l1_lat
                    penalty_cycles += pen
                    cycles += l1_lat + pen
                    l1_hits = hits + 1
                    line = ln + 1
                elif miss_at >= 0:
                    # The breaking line consumed no tick.
                    l1_hits = miss_at - first
                    cycles = l1_hits * l1_lat
                    line = miss_at
                    seq = False
                else:
                    # Pure-hit transaction: one multiply replaces n adds
                    # (bit-exact: integer-valued floats accumulate exactly).
                    l1_stats.hits += n
                    if l1_covered:
                        l1_stats.prefetch_hits += l1_covered
                    res = out if out is not None else AccessResult()
                    res.lines = n
                    res.cycles = n * l1_lat
                    res.netcache_hits = 0
                    res.l1_hits = n
                    res.l2_hits = 0
                    res.l3_hits = 0
                    res.dram_fills = 0
                    res.prefetch_covered = l1_covered
                    res.penalty_cycles = 0.0
                    return res
            if seq:
                # Scalar prefix for PLRU/RANDOM/non-integer latencies (and
                # the tail of a penalized run): reference op order on slabs.
                while line <= last:
                    slot = l1_get(line)
                    if slot is None:
                        break
                    if l1_flag[slot]:
                        l1_flag[slot] = 0
                        l1._nflagged -= 1
                        if l1_pref[slot]:
                            l1_pref[slot] = 0
                            l1_covered += 1
                        pen = l1_pen[slot]
                        if pen:
                            l1_pen[slot] = 0.0
                            penalty_cycles += pen
                    else:
                        pen = 0.0
                    if l1_lru:
                        l1_stamp[slot] = l1._tick
                        l1._tick += 1
                    elif l1_plru:
                        order = l1_orders[line & l1_mask]
                        order.remove(line)
                        order.insert(len(order) // 2, line)
                    l1_hits += 1
                    cycles += l1_lat + pen
                    line += 1
                if line > last:
                    l1_stats.hits += l1_hits
                    if l1_covered:
                        l1_stats.prefetch_hits += l1_covered
                    res = out if out is not None else AccessResult()
                    res.lines = n
                    res.cycles = cycles
                    res.netcache_hits = 0
                    res.l1_hits = l1_hits
                    res.l2_hits = 0
                    res.l3_hits = 0
                    res.dram_fills = 0
                    res.prefetch_covered = l1_covered
                    res.penalty_cycles = penalty_cycles
                    return res
        # Every field of `res` is overwritten below, so a passed-in `out`
        # needs no reset here.
        res = out if out is not None else AccessResult()
        want_netc = netc is not None and cls == CLS_NETWORK
        (_l1, l2, l2_get, l2_flag, l2_pref, l2_pen, l2_stamp, l2_orders, l2_mask,
         l2_lat, l2_stats, l1_pf, l2_pf) = core.hot
        l3, l3_stats, dram_lat, penalty_of, lru, plru = self._hot_soa
        l3_get, l3_flag, l3_pref, l3_pen, l3_stamp, l3_orders, l3_mask = l3.slabs
        l3_lat = l3.latency
        l1_fill = l1.fill
        l2_fill = l2.fill
        l3_fill = l3.fill
        l2_hits = l3_hits = netc_hits = dram_fills = 0
        l1_misses = 0
        if want_netc:
            (netc_get, netc_flag, netc_pref, netc_pen, netc_stamp,
             netc_orders, netc_mask) = netc.slabs
            netc_stats = netc.stats
            netc_lat = netc.latency
            netc_lru = netc._lru
            netc_plru = netc._plru
        for line in range(line, last + 1):
            if want_netc:
                # Inlined ``netc.lookup()``: a hit consumes the prefetched
                # flag but — matching the reference path, which discards the
                # returned meta — not any residual penalty.
                slot = netc_get(line)
                if slot is not None:
                    netc_stats.hits += 1
                    if netc_flag[slot] and netc_pref[slot]:
                        netc_stats.prefetch_hits += 1
                        netc_pref[slot] = 0
                        if netc_pen[slot]:
                            netc_flag[slot] = 1
                        else:
                            netc_flag[slot] = 0
                            netc._nflagged -= 1
                    if netc_lru:
                        netc_stamp[slot] = netc._tick
                        netc._tick += 1
                    elif netc_plru:
                        order = netc_orders[line & netc_mask]
                        order.remove(line)
                        order.insert(len(order) // 2, line)
                    netc_hits += 1
                    cycles += netc_lat
                    continue
                netc_stats.misses += 1
            slot = l1_get(line)
            if slot is not None:
                # Inlined SoA L1 hit, bit-identical to ``lookup()`` plus the
                # caller's penalty consumption; L1 stats batched below.
                if l1_flag[slot]:
                    l1_flag[slot] = 0
                    l1._nflagged -= 1
                    if l1_pref[slot]:
                        l1_pref[slot] = 0
                        l1_covered += 1
                    pen = l1_pen[slot]
                    if pen:
                        l1_pen[slot] = 0.0
                        penalty_cycles += pen
                else:
                    pen = 0.0
                if l1_lru:
                    l1_stamp[slot] = l1._tick
                    l1._tick += 1
                elif l1_plru:
                    order = l1_orders[line & l1_mask]
                    order.remove(line)
                    order.insert(len(order) // 2, line)
                l1_hits += 1
                cycles += l1_lat + pen
                continue
            # L1 demand miss, counted exactly as l1.lookup() would have
            # (deferred to the batched update below).
            l1_misses += 1
            # The DCU may fetch ahead.
            for pf in l1_pf:
                for pline in pf.observe(line, False):
                    l1_fill(pline, cls, prefetched=True, penalty=penalty_of(l2, pline))
            slot = l2_get(line)
            if slot is not None:
                l2_stats.hits += 1
                if l2_flag[slot]:
                    l2_flag[slot] = 0
                    l2._nflagged -= 1
                    if l2_pref[slot]:
                        l2_pref[slot] = 0
                        l2_stats.prefetch_hits += 1
                        pf_covered += 1
                    pen = l2_pen[slot]
                    if pen:
                        l2_pen[slot] = 0.0
                        penalty_cycles += pen
                else:
                    pen = 0.0
                if lru:
                    l2_stamp[slot] = l2._tick
                    l2._tick += 1
                elif plru:
                    order = l2_orders[line & l2_mask]
                    order.remove(line)
                    order.insert(len(order) // 2, line)
                l2_hits += 1
                cycles += l2_lat + pen
                hit2 = True
            else:
                l2_stats.misses += 1
                hit2 = False
                slot = l3_get(line)
                if slot is not None:
                    l3_stats.hits += 1
                    if l3_flag[slot]:
                        l3_flag[slot] = 0
                        l3._nflagged -= 1
                        if l3_pref[slot]:
                            l3_pref[slot] = 0
                            l3_stats.prefetch_hits += 1
                            pf_covered += 1
                        pen = l3_pen[slot]
                        if pen:
                            l3_pen[slot] = 0.0
                            penalty_cycles += pen
                    else:
                        pen = 0.0
                    if lru:
                        l3_stamp[slot] = l3._tick
                        l3._tick += 1
                    elif plru:
                        order = l3_orders[line & l3_mask]
                        order.remove(line)
                        order.insert(len(order) // 2, line)
                    l3_hits += 1
                    cycles += l3_lat + pen
                else:
                    l3_stats.misses += 1
                    dram_fills += 1
                    cycles += dram_lat
                    l3_fill(line, cls)
                l2_fill(line, cls)
            # L2 prefetchers observe every access that reached L2.
            for pf in l2_pf:
                for pline in pf.observe(line, hit2):
                    pen = penalty_of(l2, pline)
                    l2_fill(pline, cls, prefetched=True, penalty=pen)
                    l3_fill(pline, cls, prefetched=True)
            l1_fill(line, cls)
            if want_netc:
                netc.fill(line, cls)
        if l1_hits:
            l1_stats.hits += l1_hits
        if l1_misses:
            l1_stats.misses += l1_misses
        if l1_covered:
            l1_stats.prefetch_hits += l1_covered
        res.lines = n
        res.cycles = cycles
        res.netcache_hits = netc_hits
        res.l1_hits = l1_hits
        res.l2_hits = l2_hits
        res.l3_hits = l3_hits
        res.dram_fills = dram_fills
        res.prefetch_covered = pf_covered + l1_covered
        res.penalty_cycles = penalty_cycles
        return res

    # -- the scan-run fast path ---------------------------------------------

    def run_latency(self, core_id: int, cls: int = CLS_DEFAULT):
        """Static eligibility of the scan-run fast path; L1 latency or None.

        A scan run (see :meth:`access_run`) can only be charged
        arithmetically when every per-visit side effect is reproducible
        from visit counts alone: the dedicated network cache must not
        intercept the class, the L1 policy must be LRU or RANDOM (PLRU's
        mid-queue promotion is path-dependent), and the L1 latency must be
        integer-valued so ``visits * latency`` is bit-identical to the
        per-visit float adds. Returns the L1 hit latency when eligible,
        ``None`` otherwise. Never mutates state.
        """
        core = self.cores[core_id]
        if core.netcache is not None and cls == CLS_NETWORK:
            return None
        l1 = core.l1
        if l1.policy == EvictionPolicy.PLRU or not float(l1.latency).is_integer():
            return None
        return l1.latency

    def access_run(self, core_id, lines, vis, total):
        """Apply an all-L1-hit scan run over the visited *lines*.

        *lines* holds the ascending absolute line numbers a run's probes
        visit and ``vis[i]`` how many probes visit ``lines[i]`` (each
        probe's line span is contiguous and probe spans ascend, so
        per-line visits are contiguous in the global visit sequence;
        inter-probe gap lines are excluded by the caller — the replay
        never loads them); ``total`` is ``sum(vis)``. If every line is
        L1-resident with no pending prefetch flag or penalty, the method
        applies exactly the state the per-probe replay would have left —
        recency (one move-to-back per distinct line, ascending; repeat
        visits are no-ops because ``order[-1]`` is already the line),
        ``stats.hits`` and ``demand_accesses`` advanced by *total* — and
        returns True. Otherwise returns False with **nothing mutated**,
        and the caller must replay the run probe by probe through
        :meth:`access_lines`. Eligibility by construction (the caller
        checked :meth:`run_latency`): the L1 policy is not PLRU and the
        network cache does not intercept the run's class.
        """
        core = self.cores[core_id]
        l1_sets, l1_order, l1_mask, l1_lru, _l1_plru, _l1_lat, l1_stats = core.hot1
        for line in lines:
            meta = l1_sets[line & l1_mask].get(line)
            if meta is None or meta.prefetched or meta.penalty:
                return False
        if l1_lru:
            for line in lines:
                order = l1_order[line & l1_mask]
                if order[-1] != line:
                    order.remove(line)
                    order.append(line)
        l1_stats.hits += total
        self.demand_accesses += total
        return True

    def _run_latency_soa(self, core_id: int, cls: int = CLS_DEFAULT):
        """SoA variant of :meth:`run_latency` (same contract)."""
        core = self.cores[core_id]
        if core.netcache is not None and cls == CLS_NETWORK:
            return None
        hot1 = core.hot1
        # hot1 = slabs + (lru, plru, lat, lat_int, stats, l1)
        if hot1[8] or not hot1[10]:  # plru, or non-integer latency
            return None
        return hot1[9]

    def _access_run_soa(self, core_id, lines, vis, total):
        """SoA variant of :meth:`access_run` (same contract).

        The per-visit LRU stamp sequence collapses arithmetically: visits
        are globally ordered and per-line contiguous, so line ``i``'s final
        stamp is ``tick0 + cumulative_visits(i) - 1`` and the tick advances
        by *total* — exactly what per-visit stamping would leave.
        """
        core = self.cores[core_id]
        (l1_get, l1_flag, _l1_pref, _l1_pen, l1_stamp, _l1_orders, _l1_mask,
         l1_lru, _l1_plru, _l1_lat, _l1_lat_int, l1_stats, l1) = core.hot1
        slots = list(map(l1_get, lines))
        if None in slots:
            return False
        if l1._nflagged and any(map(l1_flag.__getitem__, slots)):
            return False
        if l1_lru:
            t = l1._tick
            for slot, v in zip(slots, vis):
                t += v
                l1_stamp[slot] = t - 1
            l1._tick = t
        l1_stats.hits += total
        self.demand_accesses += total
        return True

    # -- the vectorized span paths (vec kernel) ------------------------------

    def _access_lines_vec(
        self,
        core_id: int,
        first: int,
        last: int,
        cls: int = CLS_DEFAULT,
        out: Optional[AccessResult] = None,
    ) -> AccessResult:
        """Whole-span demand probe on the numpy-backed ``vec`` kernel.

        Shadows :meth:`access_lines` when the vec kernel is selected. The
        probe is a single range scan of the L1 tag slab: tags are unique,
        so ``count(first <= tags <= last) == n`` iff every line of the
        contiguous span is resident — one boolean reduction answers
        "all L1 hit?" in O(L1 slots) regardless of span width. All-hit
        flag-free spans are then served entirely with array primitives
        (one vectorized ``any`` over the span's attention flags, one
        scatter for the recency stamps, one multiply for the cycles —
        exact, since the path requires an integer-valued L1 latency).
        Anything else — a miss anywhere, a pending prefetch flag or
        penalty, PLRU recency, netcache interception, or a span too
        narrow to amortize the numpy fixed costs — delegates the whole
        untouched span to :meth:`_access_lines_soa`, whose scalar op
        order is the bit-identity reference.
        """
        n = last - first + 1
        if n < _VEC_MIN_SPAN:
            return self._access_lines_soa(core_id, first, last, cls, out)
        core = self.cores[core_id]
        if core.netcache is not None and cls == CLS_NETWORK:
            return self._access_lines_soa(core_id, first, last, cls, out)
        (_l1_get, l1_flag, _l1_pref, _l1_pen, l1_stamp, _l1_orders, _l1_mask,
         l1_lru, l1_plru, l1_lat, l1_lat_int, l1_stats, l1) = core.hot1
        if l1_plru or not l1_lat_int:
            return self._access_lines_soa(core_id, first, last, cls, out)
        tags = l1._tags
        intag = (tags >= first) & (tags <= last)
        if int(np.count_nonzero(intag)) != n:
            return self._access_lines_soa(core_id, first, last, cls, out)
        slots = np.nonzero(intag)[0]
        if l1._nflagged and l1_flag[slots].any():
            # A prefetched/penalized line inside the span: the scalar path
            # owns the flag protocol (nothing was mutated yet).
            return self._access_lines_soa(core_id, first, last, cls, out)
        if l1_lru:
            # Line ``first + i`` takes stamp ``tick + i``; recovering the
            # offset from the tag makes the scatter order-free.
            t = l1._tick
            l1_stamp[slots] = (tags[slots] - first) + t
            l1._tick = t + n
        # RANDOM keeps insertion-order stamps: hits touch no recency state.
        l1_stats.hits += n
        self.demand_accesses += n
        res = out if out is not None else AccessResult()
        res.lines = n
        res.cycles = n * l1_lat
        res.netcache_hits = 0
        res.l1_hits = n
        res.l2_hits = 0
        res.l3_hits = 0
        res.dram_fills = 0
        res.prefetch_covered = 0
        res.penalty_cycles = 0.0
        return res

    def _access_run_vec(self, core_id, lines, vis, total):
        """Vectorized all-L1-hit scan run (same contract as
        :meth:`access_run`; eligibility was checked via ``run_latency``).

        Residency of the (ascending, distinct, possibly gapped) visited
        lines is decided from the same single range scan of the tag slab
        as :meth:`_access_lines_vec`: every in-range resident tag is
        collected once, so ``len(in-range slots) < len(lines)`` is an
        immediate miss, a gap-free run is confirmed by count alone, and a
        gapped run is confirmed by a sorted-tag ``searchsorted``
        membership test. The per-visit LRU stamp sequence collapses to
        one scatter of ``tick - 1 + cumsum(vis)`` exactly as in
        :meth:`_access_run_soa`. Returns False with nothing mutated
        unless every line is resident and flag-free.
        """
        n = len(lines)
        if n < _VEC_MIN_RUN:
            return self._access_run_soa(core_id, lines, vis, total)
        core = self.cores[core_id]
        (_l1_get, l1_flag, _l1_pref, _l1_pen, l1_stamp, _l1_orders, _l1_mask,
         l1_lru, _l1_plru, _l1_lat, _l1_lat_int, l1_stats, l1) = core.hot1
        tags = l1._tags
        first = lines[0]
        last = lines[-1]
        intag = (tags >= first) & (tags <= last)
        slots_in = np.nonzero(intag)[0]
        if len(slots_in) < n:
            return False
        tin = tags[slots_in]
        if n == last - first + 1:
            # Gap-free run covering [first, last]: in-range residents are a
            # subset of the run's lines, so count == n means all resident.
            if len(slots_in) != n:
                return False
            slots = slots_in
            if l1._nflagged and l1_flag[slots].any():
                return False
            if l1_lru:
                t = l1._tick
                cum = np.cumsum(vis)
                l1_stamp[slots] = (t - 1) + cum[tin - first]
                l1._tick = t + total
        else:
            # Gapped run: resident gap lines may sit inside the range, so
            # membership needs the sorted in-range tags.
            arr = np.asarray(lines, dtype=np.int64)
            order = np.argsort(tin)
            tsort = tin[order]
            pos = np.searchsorted(tsort, arr)
            if int(pos[-1]) >= len(tsort) or not np.array_equal(
                tsort[pos], arr
            ):
                return False
            slots = slots_in[order][pos]
            if l1._nflagged and l1_flag[slots].any():
                return False
            if l1_lru:
                t = l1._tick
                l1_stamp[slots] = (t - 1) + np.cumsum(vis)
                l1._tick = t + total
        l1_stats.hits += total
        self.demand_accesses += total
        return True

    def access_legacy(self, core_id: int, addr: int, nbytes: int, cls: int = CLS_DEFAULT) -> float:
        """The pre-batching scalar loop, kept as the reference semantics.

        Calls :meth:`_access_line` once per line exactly as the original
        ``access()`` did. Equivalence tests pin ``access_lines`` against it,
        and ``benchmarks/bench_access_path.py`` measures the gap.
        """
        if nbytes <= 0:
            return 0.0
        first = addr >> LINE_SHIFT
        last = (addr + nbytes - 1) >> LINE_SHIFT
        cycles = 0.0
        line = first
        while line <= last:
            cycles += self._access_line(self.cores[core_id], line, cls)
            line += 1
        return cycles

    def _access_line(self, core: Core, line: int, cls: int) -> float:
        self.demand_accesses += 1
        netc = core.netcache
        if netc is not None and cls == CLS_NETWORK and netc.lookup(line):
            return netc.latency
        l1, l2, l3 = core.l1, core.l2, self.l3
        meta1 = l1.lookup(line)
        if meta1 is not None:
            cycles = l1.latency + meta1.penalty
            meta1.penalty = 0.0
            return cycles
        # L1 miss: the DCU may fetch ahead.
        for pf in core.l1_prefetchers:
            for pline in pf.observe(line, False):
                l1.fill(pline, cls, prefetched=True,
                        penalty=self._prefetch_penalty(l2, pline))
        meta2 = l2.lookup(line)
        if meta2 is not None:
            cycles = l2.latency + meta2.penalty
            meta2.penalty = 0.0
            hit2 = True
        else:
            hit2 = False
            meta3 = l3.lookup(line)
            if meta3 is not None:
                cycles = l3.latency + meta3.penalty
                meta3.penalty = 0.0
            else:
                cycles = self.dram_latency
                l3.fill(line, cls)
            l2.fill(line, cls)
        # L2 prefetchers observe every access that reached L2.
        for pf in core.l2_prefetchers:
            for pline in pf.observe(line, hit2):
                pen = self._prefetch_penalty(l2, pline)
                l2.fill(pline, cls, prefetched=True, penalty=pen)
                l3.fill(pline, cls, prefetched=True)
        l1.fill(line, cls)
        if netc is not None and cls == CLS_NETWORK:
            netc.fill(line, cls)
        return cycles

    def write(self, core_id: int, addr: int, nbytes: int, cls: int = CLS_DEFAULT) -> float:
        """A store of *nbytes* at *addr*: write-allocate into the core's
        caches without demand latency (the write buffer absorbs it).

        Returns the number of lines touched; the caller scales this by its
        per-line store cost.
        """
        if nbytes <= 0:
            return 0.0
        return float(self.write_tx(core_id, addr, nbytes, cls, out=self._scratch).lines)

    def write_tx(
        self,
        core_id: int,
        addr: int,
        nbytes: int,
        cls: int = CLS_DEFAULT,
        *,
        out: Optional[AccessResult] = None,
    ) -> AccessResult:
        """Store transaction: write-allocate fills, no demand latency.

        The returned result carries ``lines`` (the caller scales this by its
        per-line store cost); level counters stay zero — stores expose no
        serving level in this model.
        """
        if out is None:
            res = AccessResult()
        else:
            res = out
            res.reset()
        if nbytes <= 0:
            return res
        core = self.cores[core_id]
        first = addr >> LINE_SHIFT
        last = (addr + nbytes - 1) >> LINE_SHIFT
        l1_fill, l2_fill, l3_fill = core.l1.fill, core.l2.fill, self.l3.fill
        netc = core.netcache if cls == CLS_NETWORK else None
        for line in range(first, last + 1):
            l1_fill(line, cls)
            l2_fill(line, cls)
            l3_fill(line, cls)
            if netc is not None:
                netc.fill(line, cls)
        res.lines = last - first + 1
        return res

    # -- the heater path ----------------------------------------------------

    def touch_shared(self, core_id: int, addr: int, nbytes: int, cls: int = CLS_NETWORK) -> int:
        """A heater pass over [addr, addr+nbytes): fills the shared L3 (and
        the heater core's private caches, which nobody else benefits from).

        Returns the number of lines touched, so the caller can charge the
        heater's own time budget (its loads are off the critical path of the
        matching core, but they determine pass duration and lock windows).
        """
        if nbytes <= 0:
            return 0
        return self.touch_shared_tx(core_id, addr, nbytes, cls, out=self._scratch).lines

    def touch_shared_tx(
        self,
        core_id: int,
        addr: int,
        nbytes: int,
        cls: int = CLS_NETWORK,
        *,
        out: Optional[AccessResult] = None,
    ) -> AccessResult:
        """Heater touch transaction over [addr, addr+nbytes).

        ``l3_hits`` counts lines that were already LLC-resident (a recency
        refresh — the heater doing its job), ``dram_fills`` lines it had to
        install; the split is what the heater reports as refreshed-per-pass.
        """
        if out is None:
            res = AccessResult()
        else:
            res = out
            res.reset()
        if nbytes <= 0:
            return res
        core = self.cores[core_id]
        first = addr >> LINE_SHIFT
        last = (addr + nbytes - 1) >> LINE_SHIFT
        l3_lookup, l3_fill = self.l3.lookup, self.l3.fill
        l2_fill, l1_fill = core.l2.fill, core.l1.fill
        refreshed = installed = 0
        for line in range(first, last + 1):
            # Refresh recency in the shared cache; fill if absent.
            if not l3_lookup(line):
                l3_fill(line, cls)
                installed += 1
            else:
                refreshed += 1
            l2_fill(line, cls)
            l1_fill(line, cls)
        res.lines = last - first + 1
        res.l3_hits = refreshed
        res.dram_fills = installed
        return res

    def _touch_shared_tx_soa(
        self,
        core_id: int,
        addr: int,
        nbytes: int,
        cls: int = CLS_NETWORK,
        *,
        out: Optional[AccessResult] = None,
    ) -> AccessResult:
        """Heater touch transaction on the structure-of-arrays backend.

        Shadows :meth:`touch_shared_tx` when the SoA kernel is selected.
        The L3 recency refresh — the heater's entire job — is an inlined
        slab lookup; a refresh consumes the prefetched flag (bumping
        ``prefetch_hits``) but, matching the reference path which discards
        the returned meta, leaves any residual penalty in place.
        """
        if out is None:
            res = AccessResult()
        else:
            res = out
            res.reset()
        if nbytes <= 0:
            return res
        core = self.cores[core_id]
        first = addr >> LINE_SHIFT
        last = (addr + nbytes - 1) >> LINE_SHIFT
        l3, l3_stats, _dram_lat, _penalty_of, lru, plru = self._hot_soa
        l3_get, l3_flag, l3_pref, l3_pen, l3_stamp, l3_orders, l3_mask = l3.slabs
        l3_fill = l3.fill
        l2_fill, l1_fill = core.l2.fill, core.l1.fill
        refreshed = installed = 0
        for line in range(first, last + 1):
            # Refresh recency in the shared cache; fill if absent.
            slot = l3_get(line)
            if slot is None:
                l3_stats.misses += 1
                l3_fill(line, cls)
                installed += 1
            else:
                l3_stats.hits += 1
                if l3_flag[slot] and l3_pref[slot]:
                    l3_stats.prefetch_hits += 1
                    l3_pref[slot] = 0
                    if l3_pen[slot]:
                        l3_flag[slot] = 1
                    else:
                        l3_flag[slot] = 0
                        l3._nflagged -= 1
                if lru:
                    l3_stamp[slot] = l3._tick
                    l3._tick += 1
                elif plru:
                    order = l3_orders[line & l3_mask]
                    order.remove(line)
                    order.insert(len(order) // 2, line)
                refreshed += 1
            l2_fill(line, cls)
            l1_fill(line, cls)
        res.lines = last - first + 1
        res.l3_hits = refreshed
        res.dram_fills = installed
        return res

    # -- maintenance ---------------------------------------------------------

    def flush(self, *, respect_protection: bool = True) -> None:
        """Clear the caches, as the compute phase between iterations would.

        Protected network state survives when *respect_protection* is true:
        lines held by a way partition stay in L3, and dedicated network
        caches are untouched — they are not subject to ordinary capacity
        eviction, which is precisely the "semi-permanent occupancy" proposal.
        """
        for core in self.cores:
            core.l1.flush()
            core.l2.flush()
            for pf in core.l1_prefetchers:
                if not pf.survives_flush:
                    pf.reset()
            for pf in core.l2_prefetchers:
                if not pf.survives_flush:
                    pf.reset()
            if core.netcache is not None and not respect_protection:
                core.netcache.flush()
        if self.partition is not None and respect_protection:
            # The partition guarantees at most its way share survives; keep
            # the most recently used of the network lines.
            self.l3.flush_keep_network(self.partition.network_ways)
        else:
            self.l3.flush()

    def stats(self) -> dict:
        """Aggregated per-level counters."""
        out = {"l3": self.l3.stats.snapshot(), "demand_accesses": self.demand_accesses}
        for core in self.cores:
            out[f"l1.{core.core_id}"] = core.l1.stats.snapshot()
            out[f"l2.{core.core_id}"] = core.l2.stats.snapshot()
            if core.netcache is not None:
                out[f"netcache.{core.core_id}"] = core.netcache.stats.snapshot()
        return out

    def reset_stats(self) -> None:
        """Zero the accumulated statistics counters."""
        self.l3.stats.reset()
        self.demand_accesses = 0
        for core in self.cores:
            core.l1.stats.reset()
            core.l2.stats.reset()
            if core.netcache is not None:
                core.netcache.stats.reset()
