"""Selection of the memory-kernel backend.

The simulator ships three implementations of the cache level:

* ``soa`` — :class:`~repro.mem.soa.SoACache`, a structure-of-arrays kernel
  (flat tag/class/flag/penalty/recency slabs indexed by ``set*assoc+way``)
  with batched run processing in the hierarchy hot path. The default.
* ``vec`` — :class:`~repro.mem.vec.VecCache`, the SoA layout with ndarray
  tag/stamp/flag slabs: whole line spans are probed, stamped and evicted
  as numpy array primitives, with the SoA scalar paths as fallback for
  the rare cases (flags, partitions, PLRU, RANDOM RNG draws).
* ``reference`` — :class:`~repro.mem.cache.SetAssociativeCache`, the
  original dict-per-set + recency-list implementation. Slower, but simple
  enough to audit by eye; both other kernels are required to be
  bit-identical to it (counters, charged cycles, recency order, RNG
  consumption).

Selection precedence, highest first:

1. an explicit ``kernel=...`` argument (CLI ``--mem-kernel``, config
   fields, baked sweep-plan params),
2. the ``REPRO_MEM_KERNEL`` environment variable,
3. :data:`DEFAULT_KERNEL`.

Sweep plans resolve the kernel at *plan build* time and bake the resolved
name into every point's params, so :class:`~repro.exp.store.ResultStore`
content keys differ per backend and cached results can never be served
across backends.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ConfigurationError

#: Structure-of-arrays kernel (the default).
KERNEL_SOA = "soa"
#: Numpy-vectorized kernel: SoA layout with ndarray slabs + span primitives.
KERNEL_VEC = "vec"
#: Original dict-per-set implementation, kept as the equivalence oracle.
KERNEL_REFERENCE = "reference"
#: Every selectable backend name.
ALL_KERNELS = (KERNEL_SOA, KERNEL_VEC, KERNEL_REFERENCE)
#: Backend used when neither an argument nor the environment chooses one.
DEFAULT_KERNEL = KERNEL_SOA
#: Environment variable consulted when no explicit kernel is given.
MEM_KERNEL_ENV = "REPRO_MEM_KERNEL"


def resolve_kernel(name: Optional[str] = None) -> str:
    """Resolve a backend name: argument beats environment beats default."""
    if name is None:
        name = os.environ.get(MEM_KERNEL_ENV) or DEFAULT_KERNEL
    if name not in ALL_KERNELS:
        raise ConfigurationError(
            f"unknown memory kernel {name!r}; expected one of {', '.join(ALL_KERNELS)}"
        )
    return name


def cache_class(kernel: Optional[str] = None):
    """The cache class implementing ``kernel`` (resolved per precedence)."""
    # Imported lazily: cache/soa import this module for the env constant.
    resolved = resolve_kernel(kernel)
    if resolved == KERNEL_SOA:
        from repro.mem.soa import SoACache

        return SoACache
    if resolved == KERNEL_VEC:
        from repro.mem.vec import VecCache

        return VecCache
    from repro.mem.cache import SetAssociativeCache

    return SetAssociativeCache
