"""Cache-line address arithmetic.

Addresses are plain integers in a simulated 48-bit address space. All caches
in this reproduction use 64-byte lines, matching the x86 machines in the
paper (its Figure 2 packs two 24-byte posted-receive entries plus pointers
into exactly one 64-byte line).
"""

from __future__ import annotations

from typing import Iterator

LINE_SIZE = 64
LINE_SHIFT = 6
assert (1 << LINE_SHIFT) == LINE_SIZE

PAGE_SIZE = 4096
PAGE_SHIFT = 12


def line_of(addr: int) -> int:
    """Cache-line index containing byte address *addr*."""
    return addr >> LINE_SHIFT


def page_of(addr: int) -> int:
    """4 KiB page index containing byte address *addr* (streamer scope)."""
    return addr >> PAGE_SHIFT


def line_span(addr: int, nbytes: int) -> int:
    """Number of cache lines an access of *nbytes* at *addr* touches."""
    if nbytes <= 0:
        return 0
    return (addr + nbytes - 1 >> LINE_SHIFT) - (addr >> LINE_SHIFT) + 1


def lines_touched(addr: int, nbytes: int) -> Iterator[int]:
    """Iterate the line indices an access of *nbytes* at *addr* touches."""
    if nbytes <= 0:
        return
    first = addr >> LINE_SHIFT
    last = addr + nbytes - 1 >> LINE_SHIFT
    for line in range(first, last + 1):
        yield line


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to a multiple of *alignment* (a power of two)."""
    mask = alignment - 1
    if alignment & mask:
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + mask) & ~mask
