"""Hardware prefetcher models.

The paper's section 4.2 analysis hinges on the interaction between the LLA
layout and the prefetch units of Sandy Bridge / Broadwell: *"one of the L2
level prefetch units specializes in fetching cache line pairs for adjacent
data ... in total we observe 4 cache line loads per load operation due to
prefetching; which at 2 entries per cache line equates to 8 items fetched per
load"* — explaining why the spatial-locality gain plateaus at 8 entries per
array.

We model the three units that matter, plus one hypothetical:

* :class:`NextLinePrefetcher` (L1 DCU): on a miss, fetch line+1.
* :class:`AdjacentPairPrefetcher` (L2 "spatial"): complete the 128-byte
  aligned line pair of any miss.
* :class:`StreamerPrefetcher` (L2): detect ascending line streams within a
  4 KiB page and run ahead a bounded distance.
* :class:`PointerChasePrefetcher` (L2, *hypothetical hardware*): record the
  successor line of non-contiguous jumps — the next-pointer load pattern of
  a linked traversal — and run ahead a bounded depth along the recorded
  chain. This is the ablation unit for the question "does LLA spatial
  packing still win when the hardware can chase pointers?"

A prefetcher observes demand accesses at its level and returns the line
indices it wants filled, as a (possibly empty) tuple — tuples because the
common "nothing to do" answer is the shared empty tuple and the fixed-size
answers are cheap literals, keeping the batched access loops free of
per-line list allocation. Prefetched fills carry no latency (the model's
idealization: a prefetch issued early enough hides memory latency entirely;
the *bounded distance* is what keeps it from being a free lunch).

Every stateful detector is **capacity-bounded** (LRU-evicting tables, like
the silicon they model): the open-loop traffic subsystem pushes
million-event schedules through these objects, so tracking state must not
grow with the footprint of the workload. ``tests/test_mem_prefetch.py``
scans a million distinct pages through each detector to enforce this.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.mem.layout import LINE_SHIFT, PAGE_SHIFT

_LINES_PER_PAGE_SHIFT = PAGE_SHIFT - LINE_SHIFT  # 64 lines per 4KiB page

#: Streams tracked concurrently by the L2 streamer (real streamers track
#: 16-32); the oldest stream is recycled when a new page starts one.
STREAM_TABLE_SIZE = 16

#: Successor edges remembered by the pointer-chase unit. 256 edges cover a
#: 256-node chain — far beyond the depth any timely run-ahead can use, and
#: a few KiB of modelled SRAM, matching the scale of a plausible unit.
CHASE_TABLE_SIZE = 256

#: How many recorded successors the chase unit follows per trigger. Depth 2
#: mirrors the run-ahead the paper observes for the spatial units (4 line
#: loads per demand load, section 4.2).
CHASE_DEPTH = 2

#: Smallest line jump treated as a pointer dereference rather than spatial
#: locality; +-1 steps are the spatial units' territory.
CHASE_MIN_JUMP = 2


class Prefetcher:
    """Base class: observe a demand access, propose prefetch lines."""

    name = "null"
    summary = "inert placeholder: never prefetches"
    #: Whether detector state survives a cache flush. Predictor SRAM is not
    #: coherent with the caches, so in real silicon *all* of it survives;
    #: the spatial units re-detect within one or two accesses, so modelling
    #: them as reset keeps the historical (pre-chase) figures bit-identical.
    #: The chase unit's whole value is its memory of the previous traversal,
    #: so it opts out of the reset.
    survives_flush = False

    def observe(self, line: int, hit: bool) -> tuple:
        """Called for every demand access reaching this level.

        Returns the line indices to prefetch-fill at this level.
        """
        return ()

    def reset(self) -> None:
        """Forget any detector state (called on cache flush)."""


class NextLinePrefetcher(Prefetcher):
    """L1 DCU next-line unit: a miss pulls in the following line."""

    name = "next-line"
    summary = "L1 DCU unit: a miss pulls in the following line"

    def observe(self, line: int, hit: bool) -> tuple:
        """Called per demand access at this level; returns lines to prefetch."""
        if hit:
            return ()
        return (line + 1,)


class AdjacentPairPrefetcher(Prefetcher):
    """L2 spatial unit: complete the aligned 128-byte pair on a miss."""

    name = "adjacent-pair"
    summary = "L2 spatial unit: completes the aligned 128B line pair on a miss"

    def observe(self, line: int, hit: bool) -> tuple:
        """Called per demand access at this level; returns lines to prefetch."""
        if hit:
            return ()
        return (line ^ 1,)


class _Stream:
    __slots__ = ("last_line", "run", "distance")

    def __init__(self, last_line: int, run: int, distance: int) -> None:
        self.last_line = last_line
        self.run = run  # consecutive ascending accesses seen
        self.distance = distance  # current run-ahead distance, ramps up to max


class StreamerPrefetcher(Prefetcher):
    """L2 streamer: per-page ascending stream detection with ramp-up.

    After ``trigger_run`` ascending accesses within one 4 KiB page, the
    streamer prefetches ahead of the demand line, ramping its distance from
    1 up to ``max_distance`` lines. Streams are tracked per page with a
    capacity-bounded LRU table of :data:`STREAM_TABLE_SIZE` entries (real
    streamers track 16-32 streams): a scan over arbitrarily many pages
    recycles table entries instead of growing state.
    """

    name = "streamer"
    summary = "L2 streamer: ascending per-page streams, ramped bounded run-ahead"

    def __init__(
        self,
        *,
        max_distance: int = 4,
        trigger_run: int = 2,
        table_size: int = STREAM_TABLE_SIZE,
        max_step: int = 2,
    ) -> None:
        self.max_distance = max_distance
        self.trigger_run = trigger_run
        self.table_size = table_size
        # Largest forward jump (in lines) the detector tolerates without
        # dropping the stream. Broadwell's streamer rides through bigger
        # allocation gaps than Sandy Bridge's; Nehalem's drops on any gap.
        self.max_step = max_step
        self._streams: "OrderedDict[int, _Stream]" = OrderedDict()

    def observe(self, line: int, hit: bool) -> tuple:
        """Called per demand access at this level; returns lines to prefetch."""
        page = line >> _LINES_PER_PAGE_SHIFT
        stream = self._streams.get(page)
        if stream is None:
            if len(self._streams) >= self.table_size:
                self._streams.popitem(last=False)
            self._streams[page] = _Stream(last_line=line, run=1, distance=0)
            return ()
        self._streams.move_to_end(page)
        step = line - stream.last_line
        if step == 0:
            return ()
        if 0 < step <= self.max_step:
            stream.run += 1
            stream.last_line = line
            if stream.run >= self.trigger_run:
                stream.distance = min(self.max_distance, stream.distance + 2)
                return tuple(range(line + 1, line + stream.distance + 1))
            return ()
        # Direction break: restart detection at this line.
        stream.last_line = line
        stream.run = 1
        stream.distance = 0
        return ()

    def reset(self) -> None:
        """Clear accumulated state/counters."""
        self._streams.clear()


class PointerChasePrefetcher(Prefetcher):
    """Hypothetical L2 unit that chases recorded pointer jumps.

    Linked traversal produces a signature access pattern the spatial units
    cannot help with: each node's next-pointer load jumps to a line far
    from the current one (Srivastava & Navalakha's pointer-chase
    prefetching, arXiv:1801.08088, is the hardware proposal aimed at
    exactly this). The model is a bounded successor table:

    * **learn** — when consecutive observed lines jump by at least
      ``min_jump`` lines (in either direction: long-lived arenas hand out
      nodes at descending addresses too), record ``previous -> current``
      as a successor edge. Short steps are spatial locality, the
      adjacent-pair/streamer units' territory, and are ignored.
    * **chase** — on every observed line, follow the recorded successor
      chain up to ``depth`` edges, proposing each line on the chain. On a
      re-traversal of a stable list this runs ahead of the demand stream
      by ``depth`` nodes.

    The table holds at most ``table_size`` edges, LRU-evicted
    (re-recording an edge refreshes it), so state is bounded no matter
    how many distinct traversals an open-loop schedule pushes through.
    The unit is deliberately idealized — no confidence counters, no TLB
    constraints — because the ablation question is whether *even an
    optimistic* pointer-chase unit closes the gap to LLA spatial packing
    (it cannot shorten the serial latency of the first traversal, and it
    fetches one line per node where k-packing turns one line into k
    entries).
    """

    name = "pointer-chase"
    summary = (
        "L2 chase unit: records pointer-jump successors, runs ahead a "
        "bounded depth along the chain"
    )
    # The successor table is predictor SRAM: a cache flush (the modelled
    # compute phase) evicts the *data*, but the recorded chain is exactly
    # what lets the unit run ahead on the next traversal of the same list.
    survives_flush = True

    def __init__(
        self,
        *,
        depth: int = CHASE_DEPTH,
        table_size: int = CHASE_TABLE_SIZE,
        min_jump: int = CHASE_MIN_JUMP,
    ) -> None:
        self.depth = depth
        self.table_size = table_size
        self.min_jump = min_jump
        self._succ: "OrderedDict[int, int]" = OrderedDict()  # line -> next line
        self._last: int | None = None

    def observe(self, line: int, hit: bool) -> tuple:
        """Called per demand access at this level; returns lines to prefetch."""
        succ = self._succ
        prev = self._last
        self._last = line
        if prev is not None:
            step = line - prev
            if step >= self.min_jump or step <= -self.min_jump:
                if prev in succ:
                    succ.move_to_end(prev)
                elif len(succ) >= self.table_size:
                    succ.popitem(last=False)
                succ[prev] = line
        nxt = succ.get(line)
        if nxt is None:
            return ()
        if self.depth == 1:
            return (nxt,)
        chain = [nxt]
        for _ in range(self.depth - 1):
            nxt = succ.get(nxt)
            if nxt is None:
                break
            chain.append(nxt)
        return tuple(chain)

    def reset(self) -> None:
        """Forget the successor table.

        Unlike the spatial units this is *not* called on cache flush
        (``survives_flush``); it exists for explicit teardown in tests.
        """
        self._succ.clear()
        self._last = None


#: Selectable prefetcher configurations (the ``prefetcher`` scenario axis):
#: (mode, one-line summary). ``default`` is what every figure uses unless a
#: scenario says otherwise; the chase modes are the ablation arms.
PREFETCHER_MODES = (
    ("default", "the architecture's own units (L1 next-line + L2 spatial/streamer)"),
    ("none", "all prefetch units disabled"),
    ("chase", "architecture defaults plus the pointer-chase unit at L2"),
    ("chase-only", "only the pointer-chase unit at L2 (isolates the chase model)"),
)

#: Every prefetch unit the simulator models, for ``repro list`` and docs:
#: (name, one-line model summary) in catalogue order.
PREFETCHER_CATALOGUE = tuple(
    (cls.name, cls.summary)
    for cls in (
        NextLinePrefetcher,
        AdjacentPairPrefetcher,
        StreamerPrefetcher,
        PointerChasePrefetcher,
    )
)
