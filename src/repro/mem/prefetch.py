"""Hardware prefetcher models.

The paper's section 4.2 analysis hinges on the interaction between the LLA
layout and the prefetch units of Sandy Bridge / Broadwell: *"one of the L2
level prefetch units specializes in fetching cache line pairs for adjacent
data ... in total we observe 4 cache line loads per load operation due to
prefetching; which at 2 entries per cache line equates to 8 items fetched per
load"* — explaining why the spatial-locality gain plateaus at 8 entries per
array.

We model the three units that matter:

* :class:`NextLinePrefetcher` (L1 DCU): on a miss, fetch line+1.
* :class:`AdjacentPairPrefetcher` (L2 "spatial"): complete the 128-byte
  aligned line pair of any miss.
* :class:`StreamerPrefetcher` (L2): detect ascending line streams within a
  4 KiB page and run ahead a bounded distance.

A prefetcher observes demand accesses at its level and returns the line
indices it wants filled, as a (possibly empty) tuple — tuples because the
common "nothing to do" answer is the shared empty tuple and the fixed-size
answers are cheap literals, keeping the batched access loops free of
per-line list allocation. Prefetched fills carry no latency (the model's
idealization: a prefetch issued early enough hides memory latency entirely;
the *bounded distance* is what keeps it from being a free lunch).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.mem.layout import LINE_SHIFT, PAGE_SHIFT

_LINES_PER_PAGE_SHIFT = PAGE_SHIFT - LINE_SHIFT  # 64 lines per 4KiB page


class Prefetcher:
    """Base class: observe a demand access, propose prefetch lines."""

    name = "null"

    def observe(self, line: int, hit: bool) -> tuple:
        """Called for every demand access reaching this level.

        Returns the line indices to prefetch-fill at this level.
        """
        return ()

    def reset(self) -> None:
        """Forget any detector state (called on cache flush)."""


class NextLinePrefetcher(Prefetcher):
    """L1 DCU next-line unit: a miss pulls in the following line."""

    name = "next-line"

    def observe(self, line: int, hit: bool) -> tuple:
        """Called per demand access at this level; returns lines to prefetch."""
        if hit:
            return ()
        return (line + 1,)


class AdjacentPairPrefetcher(Prefetcher):
    """L2 spatial unit: complete the aligned 128-byte pair on a miss."""

    name = "adjacent-pair"

    def observe(self, line: int, hit: bool) -> tuple:
        """Called per demand access at this level; returns lines to prefetch."""
        if hit:
            return ()
        return (line ^ 1,)


class _Stream:
    __slots__ = ("last_line", "run", "distance")

    def __init__(self, last_line: int, run: int, distance: int) -> None:
        self.last_line = last_line
        self.run = run  # consecutive ascending accesses seen
        self.distance = distance  # current run-ahead distance, ramps up to max


class StreamerPrefetcher(Prefetcher):
    """L2 streamer: per-page ascending stream detection with ramp-up.

    After ``trigger_run`` ascending accesses within one 4 KiB page, the
    streamer prefetches ahead of the demand line, ramping its distance from
    1 up to ``max_distance`` lines. Streams are tracked per page with a small
    LRU table (real streamers track 16-32 streams).
    """

    name = "streamer"

    def __init__(
        self,
        *,
        max_distance: int = 4,
        trigger_run: int = 2,
        table_size: int = 16,
        max_step: int = 2,
    ) -> None:
        self.max_distance = max_distance
        self.trigger_run = trigger_run
        self.table_size = table_size
        # Largest forward jump (in lines) the detector tolerates without
        # dropping the stream. Broadwell's streamer rides through bigger
        # allocation gaps than Sandy Bridge's; Nehalem's drops on any gap.
        self.max_step = max_step
        self._streams: "OrderedDict[int, _Stream]" = OrderedDict()

    def observe(self, line: int, hit: bool) -> tuple:
        """Called per demand access at this level; returns lines to prefetch."""
        page = line >> _LINES_PER_PAGE_SHIFT
        stream = self._streams.get(page)
        if stream is None:
            if len(self._streams) >= self.table_size:
                self._streams.popitem(last=False)
            self._streams[page] = _Stream(last_line=line, run=1, distance=0)
            return ()
        self._streams.move_to_end(page)
        step = line - stream.last_line
        if step == 0:
            return ()
        if 0 < step <= self.max_step:
            stream.run += 1
            stream.last_line = line
            if stream.run >= self.trigger_run:
                stream.distance = min(self.max_distance, stream.distance + 2)
                return tuple(range(line + 1, line + stream.distance + 1))
            return ()
        # Direction break: restart detection at this line.
        stream.last_line = line
        stream.run = 1
        stream.distance = 0
        return ()

    def reset(self) -> None:
        """Clear accumulated state/counters."""
        self._streams.clear()
