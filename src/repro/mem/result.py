"""Access transactions: per-level attribution for the demand path.

The legacy hot path (`MemoryHierarchy.access`) returns a bare float — total
cycles — and discards *where* each line was served, even though the paper's
whole argument is about who hits in which level (a match traversal that hits
in the shared L3 instead of DRAM *is* the hot-caching effect, Figure 3).

:class:`AccessResult` is the per-transaction record: one instance describes
one demand access (possibly spanning many lines) with per-level hit counts,
prefetch coverage, residual prefetch penalty and total cycles.
:class:`LevelStats` is the cheap accumulator used up the stack: the match
engine folds every transaction into one, benchmarks snapshot it per measured
phase, and the reporters render the per-level hit-attribution tables.

Both are ``__slots__`` classes rather than dataclasses: they live on the
hottest call path in the repository and are mutated millions of times per
figure; attribute slots keep them allocation- and access-cheap, and the
``out=`` reuse convention on the hierarchy's ``*_tx`` methods means steady
state allocates nothing at all.
"""

from __future__ import annotations

from typing import Iterable, Optional

#: Attribution column order used by snapshots and reporters.
LEVEL_FIELDS = ("netcache_hits", "l1_hits", "l2_hits", "l3_hits", "dram_fills")

#: Human labels for :data:`LEVEL_FIELDS`, in the same order.
LEVEL_LABELS = ("netcache", "L1", "L2", "L3", "DRAM")


class AccessResult:
    """Outcome of one demand transaction through the hierarchy.

    ``lines`` counts the cache lines the transaction traversed; exactly one
    of the per-level counters is incremented per line (the level that served
    it), so the level counters always sum to ``lines`` on the demand path.
    ``prefetch_covered`` counts lines whose serving hit landed on a
    previously prefetched line, and ``penalty_cycles`` is the residual
    latency those late prefetches still exposed. Write/heater transactions
    reuse the same shape (see ``write_tx`` / ``touch_shared_tx``).
    """

    __slots__ = (
        "lines",
        "cycles",
        "netcache_hits",
        "l1_hits",
        "l2_hits",
        "l3_hits",
        "dram_fills",
        "prefetch_covered",
        "penalty_cycles",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every field (reused via the ``out=`` convention)."""
        self.lines = 0
        self.cycles = 0.0
        self.netcache_hits = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.l3_hits = 0
        self.dram_fills = 0
        self.prefetch_covered = 0
        self.penalty_cycles = 0.0

    # -- derived views --------------------------------------------------------

    @property
    def hits(self) -> int:
        """Lines served by any cache level (everything but DRAM)."""
        return self.netcache_hits + self.l1_hits + self.l2_hits + self.l3_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lines served without going to DRAM."""
        return self.hits / self.lines if self.lines else 0.0

    def as_dict(self) -> dict:
        """All counters as a plain dict (stable keys, reporter-friendly)."""
        return {
            "lines": self.lines,
            "cycles": self.cycles,
            "netcache_hits": self.netcache_hits,
            "l1_hits": self.l1_hits,
            "l2_hits": self.l2_hits,
            "l3_hits": self.l3_hits,
            "dram_fills": self.dram_fills,
            "prefetch_covered": self.prefetch_covered,
            "penalty_cycles": self.penalty_cycles,
        }

    def signature(self) -> tuple:
        """Bit-exact comparable identity of the transaction.

        Floats are ``repr``-encoded so two results compare equal only when
        every accumulated cycle count is identical to the last bit — the
        comparison the cross-kernel equivalence suite is built on.
        """
        return (
            self.lines,
            repr(self.cycles),
            self.netcache_hits,
            self.l1_hits,
            self.l2_hits,
            self.l3_hits,
            self.dram_fills,
            self.prefetch_covered,
            repr(self.penalty_cycles),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        served = ", ".join(
            f"{label}={getattr(self, field)}"
            for label, field in zip(LEVEL_LABELS, LEVEL_FIELDS)
            if getattr(self, field)
        )
        return f"AccessResult(lines={self.lines}, cycles={self.cycles}, {served})"


class LevelStats:
    """Accumulator over many :class:`AccessResult` transactions.

    The match engine holds one and folds every load transaction into it;
    ``snapshot()`` is what travels up to benchmark points, figure sweeps and
    the CLI's ``--mem-stats`` table.
    """

    __slots__ = (
        "loads",
        "lines",
        "cycles",
        "netcache_hits",
        "l1_hits",
        "l2_hits",
        "l3_hits",
        "dram_fills",
        "prefetch_covered",
        "penalty_cycles",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Clear accumulated state/counters."""
        self.loads = 0
        self.lines = 0
        self.cycles = 0.0
        self.netcache_hits = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.l3_hits = 0
        self.dram_fills = 0
        self.prefetch_covered = 0
        self.penalty_cycles = 0.0

    def add(self, tx: AccessResult) -> None:
        """Fold one transaction in."""
        self.loads += 1
        self.lines += tx.lines
        self.cycles += tx.cycles
        self.netcache_hits += tx.netcache_hits
        self.l1_hits += tx.l1_hits
        self.l2_hits += tx.l2_hits
        self.l3_hits += tx.l3_hits
        self.dram_fills += tx.dram_fills
        self.prefetch_covered += tx.prefetch_covered
        self.penalty_cycles += tx.penalty_cycles

    def merge(self, other: "LevelStats") -> None:
        """Fold another accumulator in (e.g. across sweep points)."""
        self.loads += other.loads
        self.lines += other.lines
        self.cycles += other.cycles
        self.netcache_hits += other.netcache_hits
        self.l1_hits += other.l1_hits
        self.l2_hits += other.l2_hits
        self.l3_hits += other.l3_hits
        self.dram_fills += other.dram_fills
        self.prefetch_covered += other.prefetch_covered
        self.penalty_cycles += other.penalty_cycles

    def copy(self) -> "LevelStats":
        """An independent copy (benchmark points keep one per phase)."""
        out = LevelStats()
        out.merge(self)
        return out

    # -- derived views --------------------------------------------------------

    @property
    def hits(self) -> int:
        """Lines served by any cache level (everything but DRAM)."""
        return self.netcache_hits + self.l1_hits + self.l2_hits + self.l3_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lines served without going to DRAM."""
        return self.hits / self.lines if self.lines else 0.0

    def attribution(self) -> dict:
        """Fraction of lines served per level (sums to 1 when lines > 0)."""
        lines = self.lines
        if not lines:
            return {label: 0.0 for label in LEVEL_LABELS}
        return {
            label: getattr(self, field) / lines
            for label, field in zip(LEVEL_LABELS, LEVEL_FIELDS)
        }

    def snapshot(self) -> dict:
        """All counters plus the derived rates, as a plain dict."""
        return {
            "loads": self.loads,
            "lines": self.lines,
            "cycles": self.cycles,
            "netcache_hits": self.netcache_hits,
            "l1_hits": self.l1_hits,
            "l2_hits": self.l2_hits,
            "l3_hits": self.l3_hits,
            "dram_fills": self.dram_fills,
            "prefetch_covered": self.prefetch_covered,
            "penalty_cycles": self.penalty_cycles,
            "hit_rate": self.hit_rate,
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "LevelStats":
        """Rebuild an accumulator from a :meth:`snapshot` dict.

        Derived keys (``hit_rate``) and unknown keys are ignored; missing
        counters default to zero, so snapshots from older schemas load.
        """
        out = cls()
        out.loads = int(data.get("loads", 0))
        out.lines = int(data.get("lines", 0))
        out.cycles = float(data.get("cycles", 0.0))
        out.netcache_hits = int(data.get("netcache_hits", 0))
        out.l1_hits = int(data.get("l1_hits", 0))
        out.l2_hits = int(data.get("l2_hits", 0))
        out.l3_hits = int(data.get("l3_hits", 0))
        out.dram_fills = int(data.get("dram_fills", 0))
        out.prefetch_covered = int(data.get("prefetch_covered", 0))
        out.penalty_cycles = float(data.get("penalty_cycles", 0.0))
        return out

    @classmethod
    def merged(cls, parts: Iterable[Optional["LevelStats"]]) -> "LevelStats":
        """Merge any number of accumulators (``None`` entries are skipped)."""
        out = cls()
        for part in parts:
            if part is not None:
                out.merge(part)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LevelStats(loads={self.loads}, lines={self.lines}, "
            f"hit_rate={self.hit_rate:.3f})"
        )
