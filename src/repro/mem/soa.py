"""Structure-of-arrays cache backend (the default memory kernel).

:class:`SoACache` is drop-in compatible with
:class:`~repro.mem.cache.SetAssociativeCache` (same constructor, same
``lookup``/``fill``/``invalidate``/``flush``/introspection surface, same
statistics) but stores its state as flat per-cache slabs indexed by
``slot = set_index * assoc + way``:

``_tags``
    resident line index per slot, ``-1`` when the way is empty;
``_cls`` / ``_pref`` / ``_pen``
    line class, prefetched flag and residual prefetch penalty;
``_flag``
    a combined "needs attention" byte — nonzero iff the slot is prefetched
    *or* carries a nonzero penalty — so the batched hot loops test one slab
    entry instead of two on the (overwhelmingly common) clean hit;
``_stamp``
    a monotonically increasing recency stamp. LRU order is
    sort-by-stamp; for RANDOM the stamps are never updated after insertion,
    so they encode insertion order, exactly like the reference backend's
    recency list. PLRU's mid-queue promotion is path-dependent and cannot
    be stamp-encoded, so PLRU (and only PLRU) keeps explicit per-set
    ``_order`` lists.

One dict ``_index`` maps line → slot for the whole cache; the batched
access paths in :mod:`repro.mem.hierarchy` prebind ``_index.get`` plus the
slabs (the :attr:`SoACache.slabs` tuple) and walk whole contiguous line
runs without any per-line allocation.

Equivalence with the reference backend is a hard contract, enforced by
``tests/test_mem_kernel_equivalence.py``: counters, charged cycles,
recency order and RNG consumption (hence seeded RANDOM victim sequences)
are bit-identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mem.cache import (
    CLS_DEFAULT,
    CLS_NETWORK,
    CacheStats,
    EvictionPolicy,
    WayPartition,
    validate_geometry,
)


class _SoAMeta:
    """Metadata view of one occupied slot, API-compatible with ``_LineMeta``.

    Returned by :meth:`SoACache.lookup` for the scalar (non-batched)
    access paths and tests. The view aliases the slot, not the line: it is
    valid only until the next operation that evicts or moves the line.
    Every caller in the repository consumes it immediately.
    """

    __slots__ = ("_cache", "_slot")

    def __init__(self, cache: "SoACache", slot: int) -> None:
        self._cache = cache
        self._slot = slot

    @property
    def cls(self) -> int:
        return self._cache._cls[self._slot]

    @cls.setter
    def cls(self, value: int) -> None:
        self._cache._cls[self._slot] = value

    @property
    def prefetched(self) -> bool:
        return bool(self._cache._pref[self._slot])

    @prefetched.setter
    def prefetched(self, value: bool) -> None:
        c, s = self._cache, self._slot
        c._pref[s] = 1 if value else 0
        flag = 1 if (value or c._pen[s]) else 0
        c._nflagged += flag - c._flag[s]
        c._flag[s] = flag

    @property
    def penalty(self) -> float:
        return self._cache._pen[self._slot]

    @penalty.setter
    def penalty(self, value: float) -> None:
        c, s = self._cache, self._slot
        c._pen[s] = value
        flag = 1 if (c._pref[s] or value) else 0
        c._nflagged += flag - c._flag[s]
        c._flag[s] = flag


class SoACache:
    """One cache level, structure-of-arrays layout.

    Interface-compatible with :class:`~repro.mem.cache.SetAssociativeCache`
    and bit-identical in observable behaviour (see module docstring).
    """

    __slots__ = (
        "name",
        "size_bytes",
        "assoc",
        "latency",
        "nsets",
        "_set_mask",
        "policy",
        "partition",
        "stats",
        "_rng",
        "_index",
        "_tags",
        "_cls",
        "_pref",
        "_pen",
        "_flag",
        "_stamp",
        "_count",
        "_order",
        "_dirty",
        "_nflagged",
        "_tick",
        "_lru",
        "_plru",
        "slabs",
    )

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        latency: float,
        *,
        policy: str = EvictionPolicy.LRU,
        partition: Optional[WayPartition] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        nsets = validate_geometry(name, size_bytes, assoc, policy, partition, rng)
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.latency = latency
        self.nsets = nsets
        self._set_mask = nsets - 1
        self.policy = policy
        self.partition = partition
        self.stats = CacheStats()
        self._rng = rng
        nslots = nsets * assoc
        self._index: dict = {}  # line -> slot, whole cache
        self._tags = [-1] * nslots
        self._cls = [0] * nslots
        self._pref = [0] * nslots
        self._pen = [0.0] * nslots
        self._flag = [0] * nslots
        self._stamp = [0] * nslots
        self._count = [0] * nsets  # occupied ways per set
        self._lru = policy == EvictionPolicy.LRU
        self._plru = policy == EvictionPolicy.PLRU
        # PLRU promotion (mid-queue insertion) is path-dependent; only that
        # policy pays for explicit recency lists.
        self._order: Optional[list] = [[] for _ in range(nsets)] if self._plru else None
        self._dirty: set = set()  # indices of sets that may hold lines
        # Count of resident flagged slots (prefetched or penalized). When
        # zero, the batched hot loops skip the per-line attention-flag test
        # entirely — the steady state of warm demand streams.
        self._nflagged = 0
        self._tick = 0
        # Prebound hot-loop bindings. The batched paths unpack this once per
        # transaction; nothing here may ever be rebound (flush and friends
        # mutate the slabs in place).
        self.slabs = (
            self._index.get,
            self._flag,
            self._pref,
            self._pen,
            self._stamp,
            self._order,
            self._set_mask,
        )

    # -- lookup / fill ----------------------------------------------------

    def lookup(self, line: int) -> Optional[_SoAMeta]:
        """Demand lookup. Updates recency and hit/miss statistics.

        Same contract as the reference backend: truthy metadata on a hit,
        ``None`` on a miss; the first demand hit on a prefetched line bumps
        ``prefetch_hits`` and clears the prefetched flag (the caller reads
        any residual penalty off the returned meta).
        """
        slot = self._index.get(line)
        if slot is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if self._pref[slot]:
            self.stats.prefetch_hits += 1
            self._pref[slot] = 0
            if self._pen[slot]:
                self._flag[slot] = 1
            else:
                self._flag[slot] = 0
                self._nflagged -= 1
        self._promote_slot(slot, line)
        return _SoAMeta(self, slot)

    def contains(self, line: int) -> bool:
        """Presence check without touching recency or statistics."""
        return line in self._index

    def _promote_slot(self, slot: int, line: int) -> None:
        if self._lru:
            self._stamp[slot] = self._tick
            self._tick += 1
        elif self._plru:
            order = self._order[line & self._set_mask]
            order.remove(line)
            order.insert(len(order) // 2, line)
        # RANDOM: recency is irrelevant (stamps keep insertion order).

    def fill(
        self,
        line: int,
        cls: int = CLS_DEFAULT,
        *,
        prefetched: bool = False,
        penalty: float = 0.0,
    ) -> None:
        """Insert *line*; evicts a victim if the set is full."""
        index = self._index
        slot = index.get(line)
        if slot is not None:
            # Refill of a resident line (e.g. prefetch racing demand).
            self._cls[slot] = cls
            if not prefetched:
                self._pref[slot] = 0
                self._pen[slot] = 0.0
                if self._flag[slot]:
                    self._flag[slot] = 0
                    self._nflagged -= 1
            self._promote_slot(slot, line)
            return
        idx = line & self._set_mask
        base = idx * self.assoc
        count = self._count
        if count[idx] >= self.assoc:
            slot = self._evict_slot(idx, base, filling_cls=cls)
        else:
            slot = self._free_slot(base)
            if not count[idx]:
                self._dirty.add(idx)
            count[idx] += 1
        self._tags[slot] = line
        index[line] = slot
        self._cls[slot] = cls
        if prefetched:
            self._pref[slot] = 1
            self._pen[slot] = penalty
            self._flag[slot] = 1
            self._nflagged += 1
            self.stats.prefetch_fills += 1
        else:
            self._pref[slot] = 0
            self._pen[slot] = 0.0
            self._flag[slot] = 0
        self._stamp[slot] = self._tick
        self._tick += 1
        if self._plru:
            self._order[idx].append(line)

    def _free_slot(self, base: int) -> int:
        """First empty way of the set starting at *base* (one exists).

        Split out of :meth:`fill` because ``list.index`` is the one slab
        operation with no ndarray equivalent — the ``vec`` subclass
        overrides exactly this.
        """
        return self._tags.index(-1, base, base + self.assoc)

    def _set_slots_by_stamp(self, idx: int) -> list:
        """Occupied slots of one set, oldest stamp first."""
        base = idx * self.assoc
        tags = self._tags
        slots = [s for s in range(base, base + self.assoc) if tags[s] != -1]
        slots.sort(key=self._stamp.__getitem__)
        return slots

    def _recency_lines(self, idx: int) -> list:
        """Resident lines of one set, oldest first (LRU/RANDOM policies)."""
        tags = self._tags
        return [tags[s] for s in self._set_slots_by_stamp(idx)]

    def _evict_slot(self, idx: int, base: int, filling_cls: int) -> int:
        """Pick and clear a victim; returns the freed slot for reuse.

        Candidate ordering and RNG consumption mirror the reference
        backend's ``_evict`` exactly, so seeded victim sequences match.
        """
        tags = self._tags
        index = self._index
        plru = self._plru
        random = not self._lru and not plru
        if self.partition is not None and filling_cls == CLS_DEFAULT:
            if plru:
                order = self._order[idx]
            else:
                order = self._recency_lines(idx)
            if random:
                candidates = [order[i] for i in self._rng.permutation(len(order))]
            else:
                candidates = order
            victim = candidates[0]
            cls_slab = self._cls
            network_lines = 0
            for s in range(base, base + self.assoc):
                if tags[s] != -1 and cls_slab[s] == CLS_NETWORK:
                    network_lines += 1
            if network_lines <= self.partition.network_ways:
                for cand in candidates:
                    if cls_slab[index[cand]] != CLS_NETWORK:
                        victim = cand
                        break
            vslot = index[victim]
        elif random:
            # k-th line in insertion order == k-th smallest stamp.
            k = int(self._rng.integers(self._count[idx]))
            vslot = self._set_slots_by_stamp(idx)[k]
            victim = tags[vslot]
        elif plru:
            victim = self._order[idx][0]
            vslot = index[victim]
        else:
            # LRU: argmin stamp over the occupied ways.
            stamp = self._stamp
            vslot = -1
            best = None
            for s in range(base, base + self.assoc):
                if tags[s] != -1 and (best is None or stamp[s] < best):
                    best = stamp[s]
                    vslot = s
            victim = tags[vslot]
        del index[victim]
        tags[vslot] = -1
        if self._flag[vslot]:
            self._flag[vslot] = 0
            self._nflagged -= 1
        if plru:
            self._order[idx].remove(victim)
        self.stats.evictions += 1
        return vslot

    def invalidate(self, line: int) -> bool:
        """Drop *line* if resident; returns whether it was present."""
        slot = self._index.pop(line, None)
        if slot is None:
            return False
        idx = line & self._set_mask
        self._tags[slot] = -1
        if self._flag[slot]:
            self._flag[slot] = 0
            self._nflagged -= 1
        self._count[idx] -= 1
        if not self._count[idx]:
            self._dirty.discard(idx)
        if self._plru:
            self._order[idx].remove(line)
        return True

    def flush(self) -> None:
        """Drop every line (the benchmarks' inter-iteration cache clear)."""
        tags = self._tags
        count = self._count
        assoc = self.assoc
        empty = [-1] * assoc
        for idx in self._dirty:
            base = idx * assoc
            tags[base : base + assoc] = empty
            count[idx] = 0
            if self._plru:
                self._order[idx].clear()
        self._index.clear()
        self._dirty.clear()
        self._nflagged = 0
        self.stats.flushes += 1

    def flush_keep_network(self, reserved: int) -> None:
        """Flush, preserving up to *reserved* network lines per set.

        Same contract as the reference backend: the most recently used
        network-class lines survive with their relative recency preserved
        (stamps are untouched, so sort-by-stamp still orders survivors).
        """
        index = self._index
        tags = self._tags
        cls_slab = self._cls
        assoc = self.assoc
        still_dirty = set()
        for idx in self._dirty:
            base = idx * assoc
            order = self._order[idx] if self._plru else self._recency_lines(idx)
            network = [k for k in order if cls_slab[index[k]] == CLS_NETWORK]
            keep = network[len(network) - reserved :] if reserved > 0 else []
            keep_set = set(keep)
            for s in range(base, base + assoc):
                tag = tags[s]
                if tag != -1 and tag not in keep_set:
                    del index[tag]
                    tags[s] = -1
            if self._plru:
                order[:] = keep
            self._count[idx] = len(keep)
            if keep:
                still_dirty.add(idx)
        self._dirty.clear()
        self._dirty.update(still_dirty)
        flag = self._flag
        self._nflagged = sum(1 for s in index.values() if flag[s])
        self.stats.flushes += 1

    # -- introspection -----------------------------------------------------

    def occupancy(self, cls: Optional[int] = None) -> int:
        """Resident line count, optionally restricted to one class."""
        if cls is None:
            return len(self._index)
        tags = self._tags
        cls_slab = self._cls
        assoc = self.assoc
        total = 0
        for idx in self._dirty:
            base = idx * assoc
            for s in range(base, base + assoc):
                if tags[s] != -1 and cls_slab[s] == cls:
                    total += 1
        return total

    def recency(self, set_index: int) -> list:
        """Resident lines of one set in recency order (oldest first).

        For RANDOM the order is insertion order (stamps never refresh).
        """
        if self._plru:
            return list(self._order[set_index])
        return self._recency_lines(set_index)

    @property
    def capacity_lines(self) -> int:
        """Total line capacity (sets x ways)."""
        return self.nsets * self.assoc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SoACache({self.name}, {self.size_bytes >> 10}KiB, "
            f"{self.assoc}-way, {self.policy})"
        )
