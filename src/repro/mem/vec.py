"""Numpy-vectorized cache backend (the ``vec`` memory kernel).

:class:`VecCache` is the third selectable kernel, layered on top of
:class:`~repro.mem.soa.SoACache`: same constructor, same slot layout
(``slot = set_index * assoc + way``), same ``_index`` dict and the same
``slabs`` tuple contract — but the slabs the batched hot paths *scan*
(``_tags``, ``_stamp``, ``_flag``) are flat ndarrays, so the hierarchy can
service whole line spans as array primitives instead of per-line Python
work (see ``MemoryHierarchy._access_lines_vec`` / ``_access_run_vec``).

The probe primitive is deliberately *inverted*: rather than gathering each
line's set and broadcasting a tag compare per line (O(span x assoc) with
large constant factors), a whole-span probe scans the tag slab once for
tags inside ``[first, last]``. Tags are unique, so for a contiguous span
``count(first <= tags <= last) == span length`` if and only if every line
is resident — one boolean reduction over the (small, L1-sized) slab
answers "all hit?" for any span width, and the matching slots come back
from the same mask. Recency stamps then scatter in one store: line
``first + i`` takes stamp ``tick + i``, i.e. ``stamp[slots] = tick +
(tags[slots] - first)``, no per-line ordering required.

Slab dtypes are chosen per consumer:

* ``_tags``  (int64)  — scanned by the vector probes;
* ``_stamp`` (int64)  — scatter-target of the vectorized recency update,
  and source of the per-set argmin eviction;
* ``_flag``  (uint8)  — one vectorized ``any()`` decides whether a span
  needs the scalar attention-flag path;
* ``_cls`` / ``_pref`` / ``_pen`` stay Python lists: they are only touched
  by the scalar rare paths, and keeping them as lists means every value
  read out of them is a builtin ``int``/``float`` — numpy scalar types
  (whose ``repr`` differs) can never leak into charged cycles or results.

Everything not vectorized is inherited from :class:`SoACache` unchanged,
so the scalar fallbacks (RANDOM eviction RNG draw order, partition
candidate ordering, netcache flag interaction, PLRU promotion) are the
*same code* the ``soa`` kernel runs — bit-identity with ``reference`` and
``soa`` (state, counters, charged cycles, recency order, RNG consumption)
is enforced by ``tests/test_mem_kernel_equivalence.py``.

LRU eviction is the one scalar path reimplemented here: the victim is the
argmin of the stamp slice over the set's occupied ways. Stamps are unique
(every insertion and every LRU promotion consumes a fresh tick), so the
masked argmin picks exactly the slot the reference backend's recency list
would have evicted; ``np.argmin`` returning the *first* minimum also
matches the reference scan order when the mask leaves a single oldest way.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mem.cache import (
    CLS_DEFAULT,
    EvictionPolicy,
    WayPartition,
)
from repro.mem.soa import SoACache

#: Sentinel larger than any live recency stamp: masked (empty) ways take
#: this value in the eviction argmin so they are never picked.
_STAMP_INF = np.iinfo(np.int64).max


class VecCache(SoACache):
    """One cache level with ndarray tag/stamp/flag slabs.

    Interface- and bit-compatible with :class:`SoACache` (and therefore
    with the reference backend); see the module docstring for the layout.
    """

    __slots__ = ("_tags2d", "_stamp2d")

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        latency: float,
        *,
        policy: str = EvictionPolicy.LRU,
        partition: Optional[WayPartition] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(
            name, size_bytes, assoc, latency,
            policy=policy, partition=partition, rng=rng,
        )
        nslots = self.nsets * assoc
        self._tags = np.full(nslots, -1, dtype=np.int64)
        self._stamp = np.zeros(nslots, dtype=np.int64)
        self._flag = np.zeros(nslots, dtype=np.uint8)
        # Per-set views share the flat slabs' memory; scalar ops write
        # through the flat arrays, vector ops may use either shape.
        self._tags2d = self._tags.reshape(self.nsets, assoc)
        self._stamp2d = self._stamp.reshape(self.nsets, assoc)
        # Rebind the prebound hot-loop tuple over the ndarray slabs (the
        # parent bound the list versions). Same shape contract as SoACache.
        self.slabs = (
            self._index.get,
            self._flag,
            self._pref,
            self._pen,
            self._stamp,
            self._order,
            self._set_mask,
        )

    # -- scalar-path overrides (ndarray-incompatible list APIs) -------------

    def _free_slot(self, base: int) -> int:
        """First empty way of the set starting at *base* (caller checked
        one exists). ``list.index`` has no ndarray equivalent; associativity
        is tiny, so a scalar scan beats a temporary-allocating argmax."""
        tags = self._tags
        slot = base
        while tags[slot] != -1:
            slot += 1
        return slot

    def _recency_lines(self, idx: int) -> list:
        """Resident lines of one set, oldest first, as builtin ints.

        The cast matters: these lines flow into partition-eviction
        candidate lists, ``recency()`` introspection and
        ``flush_keep_network`` bookkeeping, where a leaked ``np.int64``
        would survive as a dict key or in rendered output.
        """
        tags = self._tags
        return [int(tags[s]) for s in self._set_slots_by_stamp(idx)]

    def _evict_slot(self, idx: int, base: int, filling_cls: int) -> int:
        """Victim selection; the plain-LRU leaf is a masked stamp argmin.

        Stamps of occupied ways are unique and monotone in recency, so
        ``argmin`` over the set's stamp slice — with empty ways masked to
        ``_STAMP_INF`` — is exactly the reference backend's oldest-first
        choice. Partition, RANDOM and PLRU evictions delegate to the
        inherited scalar path, which consumes the RNG in the reference
        draw order (the equivalence suite's RANDOM victim sequences).
        """
        if not self._lru or (
            self.partition is not None and filling_cls == CLS_DEFAULT
        ):
            return super()._evict_slot(idx, base, filling_cls)
        end = base + self.assoc
        tag_slice = self._tags[base:end]
        masked = np.where(tag_slice != -1, self._stamp[base:end], _STAMP_INF)
        vslot = base + int(np.argmin(masked))
        victim = int(self._tags[vslot])
        del self._index[victim]
        self._tags[vslot] = -1
        if self._flag[vslot]:
            self._flag[vslot] = 0
            self._nflagged -= 1
        self.stats.evictions += 1
        return vslot

    def flush(self) -> None:
        """Drop every line: one vector store instead of per-dirty-set
        slicing. Stamps survive (as in the parent), ticks keep rising."""
        self._tags[:] = -1
        self._count[:] = [0] * self.nsets
        if self._plru:
            for idx in self._dirty:
                self._order[idx].clear()
        self._index.clear()
        self._dirty.clear()
        self._nflagged = 0
        self.stats.flushes += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VecCache({self.name}, {self.size_bytes >> 10}KiB, "
            f"{self.assoc}-way, {self.policy})"
        )
