"""Communication-pattern motifs (the paper's SST stand-in, Figure 1).

The paper instruments SST motif simulations of three patterns — AMR at 64K
ranks, a 3-D sweep at 128K ranks, and a 3-D halo exchange at 256K ranks —
sampling the posted and unexpected queue lengths at every list addition and
deletion, and reports occurrence histograms (Figure 1a-c).

We reproduce the instrument, not SST itself: each motif generates, per rank
and per communication phase, the peak numbers of outstanding posted receives
and unexpected messages; a queue that fills and drains passes through every
intermediate length, which the closed-form occurrence counter in
:mod:`~repro.motifs.base` turns into the same bucketed histograms (validated
against an explicit event-level simulation in the tests).
"""

from repro.motifs.base import (
    MotifResult,
    QueueLengthSampler,
    occurrences_closed_form,
    occurrences_event_level,
)
from repro.motifs.amr import AmrMotif
from repro.motifs.sweep3d import Sweep3dMotif
from repro.motifs.halo3d import Halo3dMotif

MOTIFS = {
    "amr": AmrMotif,
    "sweep3d": Sweep3dMotif,
    "halo3d": Halo3dMotif,
}

__all__ = [
    "AmrMotif",
    "Halo3dMotif",
    "MOTIFS",
    "MotifResult",
    "QueueLengthSampler",
    "Sweep3dMotif",
    "occurrences_closed_form",
    "occurrences_event_level",
]
