"""Adaptive mesh refinement motif (Figure 1a, 64K ranks).

AMR communication is irregular: a rank's neighbour set depends on the local
refinement level, and refinement/coarsening events trigger bursts far above
the steady state. The paper's reading of the SST data: "most list lengths
maintain zero to mid-hundreds of elements for the majority of the
application run; however, extremes do occur out to the mid 400s" — i.e. a
heavy-tailed peak distribution with the bulk at O(10-200) and a hard ceiling
around ~440.

We draw per-(rank, phase) peaks from a refinement-level mixture: a rank at
level L talks to roughly ``base * 2^L`` finer/coarser neighbours, plus a
lognormal imbalance factor; rare regrid phases multiply the count again.
"""

from __future__ import annotations

import numpy as np

from repro.motifs.base import Motif

#: Hard ceiling observed in Figure 1a (x axis ends at the 420-439 bucket).
AMR_MAX_PEAK = 439


class AmrMotif(Motif):
    """Figure 1a: adaptive mesh refinement at 64K ranks."""
    name = "amr"
    nranks = 64 * 1024
    phases = 120
    bucket_width = 20

    #: P(refinement level); deeper levels have more neighbours.
    level_probs = (0.45, 0.35, 0.15, 0.05)
    level_base = (12, 45, 110, 150)

    #: Probability a phase is a regrid (burst) phase.
    regrid_prob = 0.004
    regrid_factor = 2.0

    #: Fraction of a peak that typically arrives before its receives are
    #: posted (drives the unexpected queue).
    unexpected_fraction = 0.55

    def _peaks(self, rng: np.random.Generator) -> np.ndarray:
        n = self.n_draws
        levels = rng.choice(len(self.level_probs), size=n, p=self.level_probs)
        base = np.asarray(self.level_base)[levels].astype(np.float64)
        imbalance = rng.lognormal(mean=0.0, sigma=0.30, size=n)
        peaks = base * imbalance
        regrid = rng.random(n) < self.regrid_prob
        peaks[regrid] *= self.regrid_factor
        return np.clip(np.round(peaks), 0, AMR_MAX_PEAK).astype(np.int64)

    def posted_peaks(self) -> np.ndarray:
        """Per-(sim rank, phase) posted-queue peak lengths."""
        return self._peaks(self.rng)

    def unexpected_peaks(self) -> np.ndarray:
        """Per-(sim rank, phase) unexpected-queue peak lengths."""
        peaks = self._peaks(self.rng)
        return np.round(peaks * self.unexpected_fraction).astype(np.int64)
