"""Queue-length occurrence accounting shared by all motifs.

Model: within one communication phase a queue fills monotonically to its
peak ``k`` and then drains back to zero (one sample per addition and per
deletion, exactly the paper's "all list additions and deletions are
captured"). Such a phase samples every length ``1..k`` twice (once rising,
once falling) and length ``0`` once (the final deletion).

``occurrences_closed_form`` converts an array of per-(rank, phase) peaks
into per-length occurrence counts with one vectorized pass, which is what
lets a laptop reproduce 256K-rank histograms. ``occurrences_event_level``
replays the same phases event by event through a sampler; a hypothesis test
pins the two to identical outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class QueueLengthSampler:
    """Event-level reference: record a length after every add/delete."""

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}

    def record(self, length: int) -> None:
        """Record one queue-length observation."""
        self.counts[length] = self.counts.get(length, 0) + 1

    def as_array(self, max_len: Optional[int] = None) -> np.ndarray:
        """Occurrence counts as a dense array indexed by length."""
        top = max(self.counts) if self.counts else 0
        if max_len is not None:
            top = max(top, max_len)
        out = np.zeros(top + 1, dtype=np.int64)
        for length, count in self.counts.items():
            out[length] = count
        return out


def occurrences_event_level(peaks: Sequence[int]) -> np.ndarray:
    """Replay fill-to-peak/drain-to-zero phases through a sampler."""
    sampler = QueueLengthSampler()
    for k in peaks:
        length = 0
        for _ in range(int(k)):  # additions
            length += 1
            sampler.record(length)
        for _ in range(int(k)):  # deletions
            length -= 1
            sampler.record(length)
    return sampler.as_array(max_len=int(max(peaks, default=0)))


def occurrences_closed_form(peaks: np.ndarray) -> np.ndarray:
    """Occurrence counts per length for fill/drain phases with these peaks.

    A length l in [1, k-1] is visited twice per phase (rising and falling),
    the peak l == k exactly once, and length 0 once per non-empty phase
    (after the final deletion).
    """
    peaks = np.asarray(peaks, dtype=np.int64)
    if peaks.size == 0:
        return np.zeros(1, dtype=np.int64)
    kmax = int(peaks.max())
    hist = np.bincount(peaks, minlength=kmax + 1)
    # phases_with_peak_ge[l] = number of phases whose peak >= l
    tail = np.cumsum(hist[::-1])[::-1]
    out = np.zeros(kmax + 1, dtype=np.int64)
    if kmax >= 1:
        # 2 * (peak > l) + 1 * (peak == l)  ==  2 * tail[l+1] + hist[l]
        out[1:kmax] = 2 * tail[2 : kmax + 1] + hist[1:kmax]
        out[kmax] = hist[kmax]
        out[0] = tail[1]
    return out


def bucketize(occurrences: np.ndarray, bucket_width: int) -> "List[Tuple[str, int]]":
    """Figure-1-style buckets: [(label '0-19', count), ...]."""
    labels: List[Tuple[str, int]] = []
    n = len(occurrences)
    for start in range(0, n, bucket_width):
        end = min(start + bucket_width, n)
        labels.append(
            (f"{start}-{start + bucket_width - 1}", int(occurrences[start:end].sum()))
        )
    return labels


@dataclass
class MotifResult:
    """Posted/unexpected occurrence histograms for one motif run."""

    name: str
    nranks: int
    phases: int
    bucket_width: int
    posted: np.ndarray
    unexpected: np.ndarray
    meta: dict = field(default_factory=dict)

    def posted_buckets(self) -> List[Tuple[str, int]]:
        """Figure-1-style (label, count) buckets for the posted queue."""
        return bucketize(self.posted, self.bucket_width)

    def unexpected_buckets(self) -> List[Tuple[str, int]]:
        """Figure-1-style (label, count) buckets for the unexpected queue."""
        return bucketize(self.unexpected, self.bucket_width)

    @property
    def max_posted_length(self) -> int:
        """Largest posted-queue length with nonzero occurrences."""
        nz = np.nonzero(self.posted)[0]
        return int(nz[-1]) if nz.size else 0

    @property
    def max_unexpected_length(self) -> int:
        """Largest unexpected-queue length with nonzero occurrences."""
        nz = np.nonzero(self.unexpected)[0]
        return int(nz[-1]) if nz.size else 0


class Motif:
    """Base class: subclasses provide per-(rank, phase) peak distributions.

    Ranks in these patterns are statistically exchangeable within their
    role, so instead of drawing peaks for all 64K-256K ranks we draw them
    for ``sim_ranks`` representative ranks and scale the occurrence counts
    by ``nranks / sim_ranks`` — the histograms are unbiased estimates of the
    full-scale ones (and on a log axis, indistinguishable).
    """

    name = "abstract"
    nranks = 0
    phases = 0
    bucket_width = 10
    sim_ranks_default = 4096

    def __init__(
        self,
        *,
        seed: int = 0,
        nranks: Optional[int] = None,
        phases: Optional[int] = None,
        sim_ranks: Optional[int] = None,
    ) -> None:
        self.rng = np.random.default_rng(seed ^ 0x5EED_0000)
        if nranks is not None:
            self.nranks = nranks
        if phases is not None:
            self.phases = phases
        self.sim_ranks = min(
            self.nranks, sim_ranks if sim_ranks is not None else self.sim_ranks_default
        )

    @property
    def n_draws(self) -> int:
        """Number of (sim rank, phase) peak draws."""
        return self.sim_ranks * self.phases

    @property
    def scale(self) -> float:
        """Occurrence scale factor from sim ranks to full machine size."""
        return self.nranks / self.sim_ranks

    def posted_peaks(self) -> np.ndarray:
        """Per-(sim rank, phase) posted-queue peaks (flattened array)."""
        raise NotImplementedError

    def unexpected_peaks(self) -> np.ndarray:
        """Per-(sim rank, phase) unexpected-queue peaks (flattened array)."""
        raise NotImplementedError

    def run(self) -> MotifResult:
        """Execute and return the result object."""
        posted = occurrences_closed_form(self.posted_peaks())
        unexpected = occurrences_closed_form(self.unexpected_peaks())
        scale = self.scale
        return MotifResult(
            name=self.name,
            nranks=self.nranks,
            phases=self.phases,
            bucket_width=self.bucket_width,
            posted=np.round(posted * scale).astype(np.int64),
            unexpected=np.round(unexpected * scale).astype(np.int64),
            meta={"sim_ranks": self.sim_ranks, "scale": scale},
        )
