"""Halo3D nearest-neighbour exchange motif (Figure 1c, 256K ranks).

A 3-D halo exchange has a fixed, small neighbour set (6 faces, up to 26 with
edges/corners), so queues stay tiny: "relatively few elements in the queue
and many very small queue length operations. Consequently, applications of
this sort require good short list length performance." Figure 1c's x axis
runs only to the 95-99 bucket, with the overwhelming mass in 0-4.

Peaks are the neighbour count (faces + sometimes edges/corners) plus a thin
jitter tail from iteration overlap (a rank starting phase i+1 while a
straggler's phase-i messages are still queued).
"""

from __future__ import annotations

import numpy as np

from repro.motifs.base import Motif

HALO_MAX_PEAK = 99


class Halo3dMotif(Motif):
    """Figure 1c: 3-D halo exchange at 256K ranks."""
    name = "halo3d"
    nranks = 256 * 1024
    phases = 400

    bucket_width = 5

    #: Probability the exchange is faces-only / +edges / +corners.
    shape_probs = (0.70, 0.22, 0.08)
    shape_neighbours = (3, 9, 13)  # half-exchange: only one direction queued

    #: Straggler overlap: extra phase(s) worth of messages pile up.
    overlap_prob = 0.015
    overlap_mean_extra = 2.0

    unexpected_fraction = 0.5

    def _peaks(self, rng: np.random.Generator) -> np.ndarray:
        n = self.n_draws
        shapes = rng.choice(len(self.shape_probs), size=n, p=self.shape_probs)
        peaks = np.asarray(self.shape_neighbours)[shapes].astype(np.float64)
        # Small jitter: not all neighbours are in flight at once.
        peaks = np.maximum(1, peaks - rng.integers(0, 3, size=n))
        overlap = rng.random(n) < self.overlap_prob
        extra = rng.exponential(self.overlap_mean_extra, size=n)
        peaks[overlap] *= 1.0 + extra[overlap]
        return np.clip(np.round(peaks), 0, HALO_MAX_PEAK).astype(np.int64)

    def posted_peaks(self) -> np.ndarray:
        """Per-(sim rank, phase) posted-queue peak lengths."""
        return self._peaks(self.rng)

    def unexpected_peaks(self) -> np.ndarray:
        """Per-(sim rank, phase) unexpected-queue peak lengths."""
        peaks = self._peaks(self.rng)
        return np.maximum(
            0, np.round(peaks * self.unexpected_fraction).astype(np.int64)
        )
