"""Sweep3D / KBA wavefront motif (Figure 1b, 128K ranks).

In a KBA sweep, each rank receives from its upstream neighbours once per
(angle block, k-plane block) stage; queue build-up reflects pipeline skew:
ranks near the corner the sweep starts from see short queues, ranks far
along the wavefront accumulate more outstanding receives as multiple octant
sweeps overlap. The paper: "similar results to AMR, with the exception of
the length of exceptionally long queues. Sweep3D needs good performance for
queue lengths into the low hundreds of elements" (axis capped at 190-199).

Peaks follow a geometric-like pipeline-occupancy distribution: most stages
have only a few outstanding receives, with an exponentially-decaying tail to
just under 200.
"""

from __future__ import annotations

import numpy as np

from repro.motifs.base import Motif

SWEEP_MAX_PEAK = 199


class Sweep3dMotif(Motif):
    """Figure 1b: KBA wavefront sweep at 128K ranks."""
    name = "sweep3d"
    nranks = 128 * 1024
    phases = 256  # 8 octants x 32 pipeline stages

    bucket_width = 10

    #: Geometric decay of pipeline occupancy.
    occupancy_p = 0.10

    #: Octant overlaps occasionally stack several sweep fronts.
    overlap_prob = 0.06
    overlap_factor = 3.0

    unexpected_fraction = 0.45

    def _peaks(self, rng: np.random.Generator) -> np.ndarray:
        n = self.n_draws
        peaks = rng.geometric(self.occupancy_p, size=n).astype(np.float64)
        stacked = rng.random(n) < self.overlap_prob
        peaks[stacked] *= self.overlap_factor
        return np.clip(np.round(peaks), 0, SWEEP_MAX_PEAK).astype(np.int64)

    def posted_peaks(self) -> np.ndarray:
        """Per-(sim rank, phase) posted-queue peak lengths."""
        return self._peaks(self.rng)

    def unexpected_peaks(self) -> np.ndarray:
        """Per-(sim rank, phase) unexpected-queue peak lengths."""
        peaks = self._peaks(self.rng)
        return np.round(peaks * self.unexpected_fraction).astype(np.int64)
