"""Mini-MPI runtime: the receive-path semantics of paper section 2.1.

    "Each process keeps two matching lists, a posted receive queue for
    messages that are expected to arrive, and an unexpected message queue for
    messages that have been received but did not find a corresponding match
    in the posted receive list. When a process wishes to receive a message,
    it calls MPI_Recv, which first searches the unexpected message list for a
    match. If a match is found in the unexpected list, MPI moves the buffered
    message into the correct location or fetches it if it is not buffered.
    If no match was found, MPI places the recv on the posted receive list."

:class:`~repro.mpi.process.MpiProcess` implements exactly that state machine
over any pair of match queues; :class:`~repro.mpi.runtime.MpiWorld` runs
multiple ranks as coroutine processes over the discrete-event kernel with a
fabric model in between; :mod:`~repro.mpi.threads` emulates
MPI_THREAD_MULTIPLE posting (seeded nondeterministic interleavings), the
mechanism behind the paper's Table 1.
"""

from repro.mpi.communicator import COMM_WORLD_CID, Communicator
from repro.mpi.collectives import COLLECTIVE_CID, allreduce, bcast, gather, reduce
from repro.mpi.message import Message
from repro.mpi.process import MpiProcess, RecvRequest
from repro.mpi.runtime import MpiWorld, RankContext
from repro.mpi.threads import interleave_streams

__all__ = [
    "COLLECTIVE_CID",
    "COMM_WORLD_CID",
    "allreduce",
    "bcast",
    "gather",
    "reduce",
    "Communicator",
    "Message",
    "MpiProcess",
    "MpiWorld",
    "RankContext",
    "RecvRequest",
    "interleave_streams",
]
