"""Collective operations over the mini-MPI point-to-point layer.

Binomial-tree broadcast and reduction (the textbook log2(P) algorithms),
plus allreduce (reduce + bcast) and a linear gather. All are generator
functions driven by the coroutine kernel: ``value = yield from
bcast(ctx, value, root=0)``.

Collectives draw their matching traffic through the same PRQ/UMQ machinery
as everything else (on a reserved context id, as real MPI implementations
reserve communicator contexts for collectives), so collective-heavy
workloads exercise the matching engine realistically.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

#: Context id reserved for collective traffic (disjoint from user cids).
COLLECTIVE_CID = 0x3FFF


def _coll_tag(ctx) -> int:
    """Per-instance tag: all ranks call collectives in the same order."""
    count = getattr(ctx, "_coll_count", 0) + 1
    ctx._coll_count = count
    return count


def bcast(ctx, value: Any, root: int = 0, nbytes: int = 64) -> Generator:
    """Binomial-tree broadcast; returns the root's value on every rank."""
    size, rank = ctx.size, ctx.rank
    tag = _coll_tag(ctx)
    vrank = (rank - root) % size
    # Receive from the parent (the set bit that covers us)...
    mask = 1
    while mask < size:
        if vrank & mask:
            src = ((vrank & ~mask) + root) % size
            req = yield from ctx.recv(src=src, tag=tag, cid=COLLECTIVE_CID, nbytes=nbytes)
            value = req.message.payload
            break
        mask <<= 1
    # ...then forward to our children (bits below the one we received on;
    # for the root, everything below the top of the tree).
    mask >>= 1
    while mask > 0:
        if vrank + mask < size and not (vrank & mask):
            dest = ((vrank | mask) + root) % size
            yield from ctx.send(dest, tag=tag, nbytes=nbytes, cid=COLLECTIVE_CID, payload=value)
        mask >>= 1
    return value


def reduce(
    ctx,
    value: Any,
    op: Callable[[Any, Any], Any],
    root: int = 0,
    nbytes: int = 64,
) -> Generator:
    """Binomial-tree reduction; returns the combined value on *root*,
    ``None`` elsewhere. *op* must be associative (and is applied in a
    deterministic tree order)."""
    size, rank = ctx.size, ctx.rank
    tag = _coll_tag(ctx)
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            yield from ctx.send(parent, tag=tag, nbytes=nbytes, cid=COLLECTIVE_CID, payload=value)
            return None
        peer = vrank | mask
        if peer < size:
            src = (peer + root) % size
            req = yield from ctx.recv(src=src, tag=tag, cid=COLLECTIVE_CID, nbytes=nbytes)
            value = op(value, req.message.payload)
        mask <<= 1
    return value if rank == root else None


def allreduce(
    ctx, value: Any, op: Callable[[Any, Any], Any], nbytes: int = 64
) -> Generator:
    """Reduce to rank 0, then broadcast the result (two tree phases)."""
    combined = yield from reduce(ctx, value, op, root=0, nbytes=nbytes)
    result = yield from bcast(ctx, combined, root=0, nbytes=nbytes)
    return result


def gather(ctx, value: Any, root: int = 0, nbytes: int = 64) -> Generator:
    """Linear gather; returns the rank-ordered list on *root*, None elsewhere."""
    size, rank = ctx.size, ctx.rank
    tag = _coll_tag(ctx)
    if rank != root:
        yield from ctx.send(root, tag=tag, nbytes=nbytes, cid=COLLECTIVE_CID, payload=value)
        return None
    out: List[Optional[Any]] = [None] * size
    out[root] = value
    for src in range(size):
        if src == root:
            continue
        req = yield from ctx.recv(src=src, tag=tag, cid=COLLECTIVE_CID, nbytes=nbytes)
        out[src] = req.message.payload
    return out
