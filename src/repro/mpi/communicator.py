"""Communicators: the isolation mechanism of MPI matching."""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count

from repro.errors import MpiUsageError

#: Context id of the world communicator.
COMM_WORLD_CID = 0

_next_cid = count(1)


@dataclass(frozen=True)
class Communicator:
    """A set of ranks with a private matching context id."""

    cid: int
    size: int
    name: str = "comm"

    def __post_init__(self) -> None:
        if self.size < 1:
            raise MpiUsageError(f"communicator needs at least one rank, got {self.size}")
        if self.cid < 0:
            raise MpiUsageError(f"cid must be non-negative, got {self.cid}")

    def check_rank(self, rank: int) -> None:
        """Raise MpiUsageError if *rank* is outside this communicator."""
        if not 0 <= rank < self.size:
            raise MpiUsageError(
                f"rank {rank} out of range for {self.name} (size {self.size})"
            )

    @classmethod
    def world(cls, size: int) -> "Communicator":
        """The world communicator (cid 0) over *size* ranks."""
        return cls(COMM_WORLD_CID, size, "MPI_COMM_WORLD")

    @classmethod
    def derive(cls, size: int, name: str = "comm") -> "Communicator":
        """A new communicator with a fresh context id (like MPI_Comm_dup)."""
        return cls(next(_next_cid), size, name)
