"""Messages on the wire."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.matching.envelope import Envelope


@dataclass
class Message:
    """A message as seen by the receive side."""

    envelope: Envelope
    nbytes: int
    payload: Any = None
    #: Simulated time the message was injected (for queue-time studies).
    inject_time: float = 0.0

    @property
    def src(self) -> int:
        """Source rank from the envelope."""
        return self.envelope.src

    @property
    def tag(self) -> int:
        """Message tag from the envelope."""
        return self.envelope.tag

    @property
    def cid(self) -> int:
        """Communicator context id from the envelope."""
        return self.envelope.cid
