"""Per-rank matching state machine (PRQ + UMQ).

This is the component under study: every ``post_recv`` searches the UMQ and
every arrival searches the PRQ, exactly as section 2.1 specifies. Queue
organizations are injected, so the same process logic runs over the baseline
linked list, the LLA, or any of the related-work structures — with or without
a hot-cache heater wrapped around them.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from itertools import count
from typing import Callable, List, Optional, Union

from repro.errors import MpiUsageError
from repro.matching.base import MatchQueue
from repro.matching.entry import (
    MatchItem,
    PRQ_ENTRY_BYTES,
    UMQ_ENTRY_BYTES,
)
from repro.matching.envelope import make_pattern
from repro.mpi.message import Message

QueueLike = Union[MatchQueue, "object"]  # HeatedQueue is duck-typed

# Open-loop runs allocate one RecvRequest per posted receive; slotted
# dataclasses keep that allocation small and attribute access direct
# (slots=True needs 3.10+, so older interpreters just skip it).
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(**_SLOTS)
class RecvRequest:
    """A posted receive and its completion state."""

    src: int
    tag: int
    cid: int
    nbytes: int = 0
    completed: bool = False
    matched_unexpected: bool = False
    message: Optional[Message] = None
    #: entries inspected by the search that completed (or posted) this recv
    search_depth: int = 0
    on_complete: Optional[Callable[["RecvRequest"], None]] = None
    #: wakeup handle the simpy-style runtime attaches to pending receives
    #: (declared here so the class can be slotted; not part of the value)
    meta_waiter: object = field(default=None, compare=False, repr=False)

    def complete(self, message: Optional[Message]) -> None:
        """Mark the request complete (exactly once) and fire its callback."""
        if self.completed:
            raise MpiUsageError("receive request completed twice")
        self.completed = True
        self.message = message
        if self.on_complete is not None:
            self.on_complete(self)


@dataclass(**_SLOTS)
class QueueDepthSample:
    """One (time, prq_len, umq_len) observation."""

    time: float
    prq_len: int
    umq_len: int


class MpiProcess:
    """Matching state of one MPI rank."""

    def __init__(
        self,
        rank: int,
        prq: QueueLike,
        umq: QueueLike,
        *,
        sample_depths: bool = False,
        clock=None,
        record_traces: bool = True,
    ) -> None:
        self.rank = rank
        self.prq = prq
        self.umq = umq
        self._seq = count()
        self.sample_depths = sample_depths
        self.samples: List[QueueDepthSample] = []
        self.clock = clock
        # Open-loop drivers run million-event schedules; they disable the
        # per-search trace lists below so process state stays O(1) in the
        # event count (the traffic subsystem keeps its own bounded
        # reservoir-sampled statistics instead).
        self.record_traces = record_traces
        # Search-depth traces (entries inspected per search that *found* a
        # match), separated by which queue was searched.
        self.prq_search_depths: List[int] = []
        self.umq_search_depths: List[int] = []
        # Unexpected-message queue times (Keller & Graham study the "length
        # of time such messages spend in these queues"): clock delta between
        # a message becoming unexpected and the receive that drains it.
        self.umq_queue_times: List[float] = []

    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def _sample(self) -> None:
        if self.sample_depths:
            self.samples.append(
                QueueDepthSample(self._now(), len(self.prq), len(self.umq))
            )

    # -- receive side ---------------------------------------------------------

    def post_recv(
        self, src: int, tag: int, cid: int = 0, nbytes: int = 0
    ) -> RecvRequest:
        """MPI_(I)recv: search the UMQ; on miss, append to the PRQ."""
        req = RecvRequest(src=src, tag=tag, cid=cid, nbytes=nbytes)
        probe = make_pattern(src, tag, cid, seq=next(self._seq))
        probe.entry_bytes = UMQ_ENTRY_BYTES
        found = self.umq.match_remove(probe)
        req.search_depth = self.umq.stats.last_probes
        if found is not None:
            if self.record_traces:
                self.umq_search_depths.append(req.search_depth)
                self.umq_queue_times.append(
                    self._now() - found.meta.get("enqueued_at", 0.0)
                )
            req.matched_unexpected = True
            req.complete(found.req)
        else:
            item = make_pattern(src, tag, cid, seq=probe.seq, req=req)
            item.entry_bytes = PRQ_ENTRY_BYTES
            self.prq.post(item)
        self._sample()
        return req

    def handle_arrival(self, message: Message) -> Optional[RecvRequest]:
        """An incoming message: search the PRQ; on miss, append to the UMQ.

        Returns the completed receive request, or ``None`` if the message
        became unexpected.
        """
        probe = MatchItem.from_envelope(
            message.envelope, seq=next(self._seq), entry_bytes=PRQ_ENTRY_BYTES
        )
        found = self.prq.match_remove(probe)
        if found is not None:
            if self.record_traces:
                self.prq_search_depths.append(self.prq.stats.last_probes)
            req: RecvRequest = found.req
            req.search_depth = self.prq.stats.last_probes
            req.complete(message)
            self._sample()
            return req
        item = MatchItem.from_envelope(
            message.envelope, seq=probe.seq, req=message, entry_bytes=UMQ_ENTRY_BYTES
        )
        if self.record_traces:
            # Only the trace path reads the enqueue stamp (queue-time
            # traces); untraced million-event runs skip the dict write.
            item.meta["enqueued_at"] = self._now()
        self.umq.post(item)
        self._sample()
        return None

    # -- statistics -------------------------------------------------------------

    @property
    def mean_prq_search_depth(self) -> float:
        """Mean probes per successful PRQ search."""
        depths = self.prq_search_depths
        return sum(depths) / len(depths) if depths else 0.0

    @property
    def mean_umq_search_depth(self) -> float:
        """Mean probes per successful UMQ search."""
        depths = self.umq_search_depths
        return sum(depths) / len(depths) if depths else 0.0

    @property
    def mean_umq_queue_time(self) -> float:
        """Mean clock time unexpected messages waited before matching."""
        times = self.umq_queue_times
        return sum(times) / len(times) if times else 0.0

    def reset_traces(self) -> None:
        """Clear recorded search-depth/queue-time traces and samples."""
        self.prq_search_depths.clear()
        self.umq_search_depths.clear()
        self.umq_queue_times.clear()
        self.samples.clear()
