"""Multi-rank discrete-event MPI runtime.

Each rank runs as a coroutine process over :class:`~repro.sim.kernel
.Simulator` (time unit: nanoseconds). Sends travel through a
:class:`~repro.net.link.LinkSpec`; the receive side drives an
:class:`~repro.mpi.process.MpiProcess`, so every arrival and receive performs
real matching work against the configured queue organization — optionally
cycle-accounted through per-rank cache hierarchies.

This runtime exists for the end-to-end path (examples, integration tests,
and small-scale studies). The large-scale motif and application studies use
the dedicated generators in :mod:`repro.motifs` and :mod:`repro.apps`, which
avoid simulating hundreds of thousands of coroutines.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

import numpy as np

from repro.errors import MpiUsageError
from repro.matching.engine import MatchEngine
from repro.matching.envelope import Envelope
from repro.matching.factory import make_queue
from repro.matching.port import NullPort
from repro.mpi.communicator import Communicator
from repro.mpi.message import Message
from repro.mpi.process import MpiProcess, RecvRequest
from repro.net.link import LinkSpec, QLOGIC_QDR
from repro.sim.kernel import Process, Simulator, Timeout, Waiter


class RankContext:
    """The MPI-ish API handed to each rank's program.

    All communication methods are generators: ``yield from ctx.send(...)``.
    """

    def __init__(self, world: "MpiWorld", rank: int) -> None:
        self.world = world
        self.rank = rank
        self.proc = world.procs[rank]
        self.engine: Optional[MatchEngine] = world.engines[rank]

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self.world.nranks

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.world.sim.now

    def _charge_matching(self) -> Generator:
        """Convert engine cycles accumulated since the last charge to ns."""
        if self.engine is None:
            return
        cycles = self.engine.clock.now - self.world._charged_cycles[self.rank]
        self.world._charged_cycles[self.rank] = self.engine.clock.now
        if cycles > 0:
            yield Timeout(cycles / self.world.ghz)

    # -- point to point ----------------------------------------------------

    def send(self, dest: int, tag: int, nbytes: int = 0, cid: int = 0, payload=None) -> Generator:
        """Blocking-ish send: returns once the message is on the wire."""
        if not 0 <= dest < self.world.nranks:
            raise MpiUsageError(f"send to invalid rank {dest}")
        link = self.world.link
        env = Envelope(src=self.rank, tag=tag, cid=cid)
        msg = Message(env, nbytes, payload, inject_time=self.now)
        arrive = self.now + link.transfer_us(nbytes) * 1000.0
        self.world.sim.queue.schedule(arrive, self.world._deliver, dest, msg)
        yield Timeout(link.serialization_us(nbytes) * 1000.0)

    def irecv(self, src: int, tag: int, cid: int = 0, nbytes: int = 0) -> RecvRequest:
        """Post a receive; completion is observable via ``req.completed``."""
        req = self.proc.post_recv(src, tag, cid, nbytes)
        if not req.completed:
            waiter = Waiter()
            self.world._waiters.setdefault(self.rank, []).append((req, waiter))
            req.meta_waiter = waiter  # type: ignore[attr-defined]
        return req

    def recv(self, src: int, tag: int, cid: int = 0, nbytes: int = 0) -> Generator:
        """Blocking receive; returns the completed request."""
        req = self.irecv(src, tag, cid, nbytes)
        yield from self._charge_matching()
        if not req.completed:
            yield req.meta_waiter  # type: ignore[attr-defined]
        yield from self._charge_matching()
        return req

    def wait(self, req: RecvRequest) -> Generator:
        """Block until *req* completes; returns it."""
        if not req.completed:
            yield getattr(req, "meta_waiter")
        return req

    # -- collectives ---------------------------------------------------------

    def bcast(self, value, root: int = 0, nbytes: int = 64) -> Generator:
        """Binomial broadcast; returns the root's value on every rank."""
        from repro.mpi.collectives import bcast

        result = yield from bcast(self, value, root=root, nbytes=nbytes)
        return result

    def reduce(self, value, op, root: int = 0, nbytes: int = 64) -> Generator:
        """Binomial reduction; result on *root*, None elsewhere."""
        from repro.mpi.collectives import reduce

        result = yield from reduce(self, value, op, root=root, nbytes=nbytes)
        return result

    def allreduce(self, value, op, nbytes: int = 64) -> Generator:
        """Reduce-then-broadcast; the combined value on every rank."""
        from repro.mpi.collectives import allreduce

        result = yield from allreduce(self, value, op, nbytes=nbytes)
        return result

    def gather(self, value, root: int = 0, nbytes: int = 64) -> Generator:
        """Gather to *root*; the rank-ordered list there, None elsewhere."""
        from repro.mpi.collectives import gather

        result = yield from gather(self, value, root=root, nbytes=nbytes)
        return result

    def barrier(self) -> Generator:
        """A centralized barrier (counter + broadcast wake)."""
        world = self.world
        world._barrier_count += 1
        if world._barrier_count == world.nranks:
            world._barrier_count = 0
            waiters, world._barrier_waiters = world._barrier_waiters, []
            for w in waiters:
                w.trigger(world.sim)
            yield Timeout(0.0)
        else:
            w = Waiter()
            world._barrier_waiters.append(w)
            yield w


class MpiWorld:
    """N ranks + fabric + per-rank matching state."""

    def __init__(
        self,
        nranks: int,
        *,
        link: LinkSpec = QLOGIC_QDR,
        queue_family: str = "baseline",
        seed: int = 0,
        arch=None,
        engine_ranks: tuple = (),
        sample_depths: bool = False,
    ) -> None:
        """
        Parameters
        ----------
        engine_ranks:
            Ranks whose queues should be cycle-accounted through a simulated
            cache hierarchy of *arch* (requires *arch*). Other ranks match at
            zero memory cost (NullPort) — semantics identical, time free.
        """
        if nranks < 1:
            raise MpiUsageError(f"world needs at least one rank, got {nranks}")
        self.nranks = nranks
        self.link = link
        self.sim = Simulator()
        self.comm_world = Communicator.world(nranks)
        self.ghz = arch.ghz if arch is not None else 1.0
        self.procs: List[MpiProcess] = []
        self.engines: List[Optional[MatchEngine]] = []
        self._charged_cycles = [0.0] * nranks
        rng = np.random.default_rng(seed)
        for rank in range(nranks):
            if rank in engine_ranks:
                if arch is None:
                    raise MpiUsageError("engine_ranks requires an arch")
                hier = arch.build_hierarchy()
                engine = MatchEngine(hier)
                port = engine
            else:
                engine = None
                port = NullPort()
            prq = make_queue(
                queue_family, port=port, rng=np.random.default_rng(rng.integers(2**63)),
                arena_base=0x4000_0000,
            )
            umq = make_queue(
                queue_family, entry_bytes=16, port=port,
                rng=np.random.default_rng(rng.integers(2**63)),
                arena_base=0x2000_0000,
            )
            self.procs.append(
                MpiProcess(rank, prq, umq, sample_depths=sample_depths)
            )
            self.engines.append(engine)
        self._waiters: dict[int, list] = {}
        self._barrier_count = 0
        self._barrier_waiters: List[Waiter] = []

    # -- delivery ----------------------------------------------------------------

    def _deliver(self, rank: int, msg: Message) -> None:
        req = self.procs[rank].handle_arrival(msg)
        if req is not None:
            pending = self._waiters.get(rank, [])
            for i, (r, waiter) in enumerate(pending):
                if r is req:
                    pending.pop(i)
                    waiter.trigger(self.sim, req)
                    break

    # -- running ----------------------------------------------------------------

    def spawn(self, program: Callable[[RankContext], Generator], rank: int) -> Process:
        """Start *program* as rank *rank*'s coroutine process."""
        ctx = RankContext(self, rank)
        return self.sim.spawn(program(ctx), name=f"rank{rank}")

    def run(
        self,
        program: Callable[[RankContext], Generator],
        *,
        until: Optional[float] = None,
    ) -> float:
        """Run *program* on every rank; returns the finish time in ns."""
        procs = [self.spawn(program, r) for r in range(self.nranks)]
        self.sim.run(until=until)
        if until is None and not self.sim.all_finished(procs):
            raise MpiUsageError(
                "deadlock: some ranks never finished "
                f"({[p.name for p in procs if not p.finished]})"
            )
        return self.sim.now
