"""Multithreaded matching under a shared engine lock (paper section 2.3).

    "Since multithreaded communication increases message counts while
    introducing nondeterminacy through scheduling and lock contention, list
    lengths and search depths are anticipated to grow."

This module simulates MPI_THREAD_MULTIPLE directly: T posting threads and T
sending threads run as coroutine processes over the DES kernel; every
matching operation (UMQ search + PRQ post, or PRQ search) happens inside the
matching engine's mutex (:class:`~repro.sim.resources.KernelLock`), and
per-thread compute jitter scrambles the interleaving. The measured outputs
are exactly what section 2.3 predicts: search depths that grow with thread
count (fixed total message volume, increasingly scrambled order) and lock
contention that grows with it too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.arch.spec import ArchSpec
from repro.errors import ConfigurationError
from repro.matching.engine import MatchEngine
from repro.matching.envelope import Envelope
from repro.matching.factory import make_queue
from repro.mpi.message import Message
from repro.mpi.process import MpiProcess
from repro.sim.kernel import Simulator, Timeout
from repro.sim.resources import KernelLock

_SENDER_RANK = 1


@dataclass
class ThreadedMatchResult:
    """Outcome of one multithreaded matching run."""

    threads: int
    total_messages: int
    mean_search_depth: float
    max_prq_len: int
    lock_acquisitions: int
    lock_contended: int
    finish_ns: float
    match_cycles: float

    @property
    def contention_rate(self) -> float:
        """Fraction of lock acquisitions that had to wait."""
        return self.lock_contended / self.lock_acquisitions if self.lock_acquisitions else 0.0


def run_threaded_matching(
    nthreads: int,
    total_messages: int,
    *,
    arch: Optional[ArchSpec] = None,
    queue_family: str = "baseline",
    seed: int = 0,
    mean_compute_ns: float = 200.0,
) -> ThreadedMatchResult:
    """Simulate T receive threads + T send threads over one match engine.

    ``total_messages`` receives are split across the posting threads (so
    depth growth with T isolates the *ordering* effect, not volume); each
    thread sleeps an exponential compute delay between operations, and all
    queue operations serialize through the engine lock.
    """
    if nthreads < 1:
        raise ConfigurationError(f"need at least one thread, got {nthreads}")
    if total_messages < nthreads:
        raise ConfigurationError("need at least one message per thread")

    rng = np.random.default_rng(seed)
    sim = Simulator()
    lock = KernelLock("match-engine")

    engine = None
    port = None
    ghz = arch.ghz if arch is not None else 1.0
    if arch is not None:
        hier = arch.build_hierarchy(rng=np.random.default_rng(seed + 1))
        engine = MatchEngine(hier)
        port = engine
    prq = make_queue(queue_family, port=port, rng=np.random.default_rng(seed + 2))
    umq = make_queue(
        queue_family, entry_bytes=16, port=port,
        rng=np.random.default_rng(seed + 3), arena_base=0x2000_0000,
    )
    proc = MpiProcess(0, prq, umq, sample_depths=True,
                      clock=engine.clock if engine else None)

    # Partition tags across posting threads; each sender thread sends the
    # matching messages for one posting thread, in its own shuffled order.
    tags = np.arange(total_messages)
    chunks: List[np.ndarray] = np.array_split(tags, nthreads)

    last_charged = [0.0]

    def charge() -> float:
        """ns of engine time accumulated since the last charge."""
        if engine is None:
            return 50.0  # nominal fixed op cost without a cache model
        cycles = engine.clock.now - last_charged[0]
        last_charged[0] = engine.clock.now
        return cycles / ghz

    def poster(chunk: np.ndarray, thread_rng: np.random.Generator):
        for tag in chunk:
            yield Timeout(float(thread_rng.exponential(mean_compute_ns)))
            yield from lock.acquire(sim)
            proc.post_recv(src=_SENDER_RANK, tag=int(tag), cid=0)
            yield Timeout(charge())
            lock.release(sim)

    def sender(chunk: np.ndarray, thread_rng: np.random.Generator):
        # Each sender thread sends *its* messages in posting order — the
        # single-threaded case is the well-ordered one; "random-like
        # distributions of match entries" emerge purely from unsynchronized
        # cross-thread interleaving (section 4.5's observation).
        yield Timeout(float(thread_rng.exponential(4 * mean_compute_ns)))
        for tag in chunk:
            yield Timeout(float(thread_rng.exponential(mean_compute_ns)))
            yield from lock.acquire(sim)
            proc.handle_arrival(Message(Envelope(_SENDER_RANK, int(tag), 0), 8))
            yield Timeout(charge())
            lock.release(sim)

    for i, chunk in enumerate(chunks):
        sim.spawn(poster(chunk, np.random.default_rng(seed * 977 + i)), f"post{i}")
        sim.spawn(sender(chunk, np.random.default_rng(seed * 661 + i)), f"send{i}")
    sim.run()

    max_prq = max((s.prq_len for s in proc.samples), default=0)
    return ThreadedMatchResult(
        threads=nthreads,
        total_messages=total_messages,
        mean_search_depth=proc.mean_prq_search_depth,
        max_prq_len=max_prq,
        lock_acquisitions=lock.acquisitions,
        lock_contended=lock.contended,
        finish_ns=sim.now,
        match_cycles=engine.clock.now if engine else 0.0,
    )


def thread_scaling_study(
    thread_counts=(1, 2, 4, 8, 16),
    *,
    total_messages: int = 256,
    trials: int = 3,
    seed: int = 0,
    **kwargs,
) -> List[ThreadedMatchResult]:
    """Mean results per thread count (fixed total volume)."""
    out: List[ThreadedMatchResult] = []
    for t in thread_counts:
        runs = [
            run_threaded_matching(
                t, total_messages, seed=seed * 7919 + trial, **kwargs
            )
            for trial in range(trials)
        ]
        out.append(
            ThreadedMatchResult(
                threads=t,
                total_messages=total_messages,
                mean_search_depth=float(np.mean([r.mean_search_depth for r in runs])),
                max_prq_len=int(np.max([r.max_prq_len for r in runs])),
                lock_acquisitions=int(np.mean([r.lock_acquisitions for r in runs])),
                lock_contended=int(np.mean([r.lock_contended for r in runs])),
                finish_ns=float(np.mean([r.finish_ns for r in runs])),
                match_cycles=float(np.mean([r.match_cycles for r in runs])),
            )
        )
    return out
