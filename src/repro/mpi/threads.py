"""MPI_THREAD_MULTIPLE emulation: nondeterministic thread interleavings.

Section 2.3: "Threads are assumed to enter the communication phase
concurrently, so the order in which entries are added depends on scheduling
and lock contention." We model that by interleaving per-thread operation
streams under a seeded random scheduler: at every step, a uniformly random
non-empty stream issues its next operation. This is the source of the
randomness behind Table 1's mean search depths.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def interleave_streams(
    streams: Sequence[Sequence[T]], rng: np.random.Generator
) -> Iterator[T]:
    """Yield items from *streams* in a random fair interleaving.

    Each step picks one of the streams that still has items, uniformly at
    random, and yields its next item; per-stream order is preserved (a thread
    issues its own receives in program order), global order is scrambled by
    "scheduling and lock contention".
    """
    cursors = [0] * len(streams)
    live: List[int] = [i for i, s in enumerate(streams) if len(s) > 0]
    while live:
        pick = int(rng.integers(len(live)))
        idx = live[pick]
        stream = streams[idx]
        yield stream[cursors[idx]]
        cursors[idx] += 1
        if cursors[idx] >= len(stream):
            # Swap-remove keeps selection O(1).
            live[pick] = live[-1]
            live.pop()


def shuffled(items: Sequence[T], rng: np.random.Generator) -> List[T]:
    """A seeded random permutation of *items* (send arrival order)."""
    order = rng.permutation(len(items))
    return [items[i] for i in order]
