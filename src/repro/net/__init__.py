"""Fabric/link models for the clusters in the paper.

Only two properties of the network matter to the figures: the large-message
bandwidth ceiling the curves converge to, and the per-message wire cost that
bounds small-message rates from above. A latency + bandwidth (LogGP-flavour)
model captures both.
"""

from repro.net.link import (
    ARIES,
    MELLANOX_QDR,
    OMNIPATH,
    QLOGIC_QDR,
    LinkSpec,
    get_link,
)

__all__ = [
    "ARIES",
    "LinkSpec",
    "MELLANOX_QDR",
    "OMNIPATH",
    "QLOGIC_QDR",
    "get_link",
]
