"""Link specifications and transfer-time model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

MiB = 1024.0 * 1024.0


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point fabric model.

    *bandwidth_bytes_per_us* is the effective streaming bandwidth observed by
    a bandwidth benchmark (not the signalling rate); *latency_us* is the
    one-way half round trip; *per_msg_overhead_us* is the fabric's fixed
    per-packet cost, which caps the small-message rate.
    """

    name: str
    latency_us: float
    bandwidth_bytes_per_us: float  # == MB/s / 1e0 (bytes per microsecond)
    per_msg_overhead_us: float = 0.15

    def __post_init__(self) -> None:
        if self.latency_us < 0 or self.bandwidth_bytes_per_us <= 0:
            raise ConfigurationError(f"invalid link spec {self!r}")

    def serialization_us(self, nbytes: int) -> float:
        """Time to push *nbytes* onto the wire (no propagation latency)."""
        return self.per_msg_overhead_us + nbytes / self.bandwidth_bytes_per_us

    def transfer_us(self, nbytes: int) -> float:
        """End-to-end time for one message of *nbytes*."""
        return self.latency_us + self.serialization_us(nbytes)

    def transfer_cycles(self, nbytes: int, ghz: float) -> float:
        """End-to-end time in cycles of a clock at *ghz*."""
        return self.transfer_us(nbytes) * 1000.0 * ghz

    def serialization_cycles(self, nbytes: int, ghz: float) -> float:
        """Serialization time in cycles of a clock at *ghz*."""
        return self.serialization_us(nbytes) * 1000.0 * ghz

    def peak_bandwidth_mibps(self) -> float:
        """Asymptotic streaming bandwidth in MiB/s."""
        return self.bandwidth_bytes_per_us * 1e6 / MiB


# Effective (benchmark-observed) numbers, not signalling rates. The modified
# OSU benchmark in the paper tops out near 3.0-3.5 GiB/s on all three
# systems (Figures 4a/5a/6a/7a), so the ceilings here are set accordingly.
QLOGIC_QDR = LinkSpec(
    name="qlogic-ib-qdr",
    latency_us=1.3,
    bandwidth_bytes_per_us=3400.0,  # ~3.24 GiB/s effective
)

OMNIPATH = LinkSpec(
    name="omnipath",
    latency_us=1.0,
    bandwidth_bytes_per_us=3300.0,
)

MELLANOX_QDR = LinkSpec(
    name="mellanox-qdr",
    latency_us=1.5,
    bandwidth_bytes_per_us=3200.0,
)

ARIES = LinkSpec(
    name="aries",
    latency_us=1.2,
    bandwidth_bytes_per_us=8000.0,
)

_LINKS = {spec.name: spec for spec in (QLOGIC_QDR, OMNIPATH, MELLANOX_QDR, ARIES)}


def get_link(name: str) -> LinkSpec:
    """Look up a link preset by name."""
    key = name.strip().lower()
    try:
        return _LINKS[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown link {name!r}; known: {sorted(_LINKS)}"
        ) from None
