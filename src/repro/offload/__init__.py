"""Hardware matching offload (paper section 2.2).

    "Some hardware will perform matching so that MPI does not have to.
    Examples of such hardware include Intel's OmniPath PSM2 devices that
    handle matching in software layer messaging, and Atos-Bull's BXI
    interconnect which performs MPI-style message matching entirely in
    hardware. Such solutions will only benefit from software MPI matching
    improvements when list lengths are longer than that which can be
    supported in hardware."

:class:`~repro.offload.nic.OffloadedMatchQueue` models exactly that split: a
bounded number of posted receives live in on-NIC match entries (searched at
wire speed, no host-memory traffic), and the overflow spills to any software
queue organization — where all of the paper's locality effects reappear.
"""

from repro.offload.nic import NicMatchConfig, OffloadedMatchQueue, BXI_LIKE, PSM2_LIKE

__all__ = ["BXI_LIKE", "NicMatchConfig", "OffloadedMatchQueue", "PSM2_LIKE"]
