"""NIC match-offload model.

The NIC holds the FIFO *prefix* of the posted-receive queue in its on-chip
match entries (capacity ``hw_entries``); later receives overflow to the host
software queue. Searches visit the NIC first (its entries are the
earliest-posted, so any NIC hit beats any software hit), then the overflow.
When NIC entries free up, the earliest overflow entries are promoted so the
prefix invariant is maintained — the behaviour of Portals-style hardware
with an overflow/priority list split.

Costs:

* NIC search: ``base_ns`` per operation plus ``per_entry_ns`` per entry
  inspected, charged straight to the engine clock (no host-memory traffic —
  that is the entire point of offload).
* Promotion: ``promote_ns`` per entry DMA'd from host to NIC.
* Overflow search: ordinary software matching through the wrapped queue's
  memory port (cache-accounted, locality-sensitive).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, Optional

from repro.errors import ConfigurationError
from repro.matching.base import MatchQueue
from repro.matching.engine import MatchEngine
from repro.matching.entry import MatchItem
from repro.matching.envelope import items_match


@dataclass(frozen=True)
class NicMatchConfig:
    """Capacity and timing of the on-NIC matching engine."""

    name: str = "nic"
    hw_entries: int = 1024
    base_ns: float = 80.0  # PCIe/command overhead per search
    per_entry_ns: float = 0.8  # pipelined CAM/ALU match rate
    promote_ns: float = 40.0  # host->NIC refill per entry

    def __post_init__(self) -> None:
        if self.hw_entries < 1:
            raise ConfigurationError("hw_entries must be >= 1")


#: BXI-style: large on-NIC list, matching entirely in hardware.
BXI_LIKE = NicMatchConfig(name="bxi-like", hw_entries=4096, base_ns=60.0, per_entry_ns=0.5)

#: PSM2-style: software-layer matching with a modest fast-path table.
PSM2_LIKE = NicMatchConfig(name="psm2-like", hw_entries=512, base_ns=90.0, per_entry_ns=1.2)


class OffloadedMatchQueue:
    """NIC prefix + software overflow, duck-typed as a MatchQueue."""

    family = "offload"

    def __init__(
        self,
        overflow: MatchQueue,
        config: NicMatchConfig,
        *,
        engine: Optional[MatchEngine] = None,
        ghz: float = 2.6,
    ) -> None:
        self.overflow = overflow
        self.config = config
        self.engine = engine
        self.ghz = ghz
        self._nic: Deque[MatchItem] = deque()
        self.stats = overflow.stats  # software-side stats
        self.nic_searches = 0
        self.nic_hits = 0
        self.nic_entries_inspected = 0
        self.promotions = 0

    @property
    def entry_bytes(self) -> int:
        """Entry size of the wrapped software queue."""
        return self.overflow.entry_bytes

    # -- cost charging -------------------------------------------------------

    def _charge_ns(self, ns: float) -> None:
        if self.engine is not None and ns > 0:
            self.engine.charge(ns * self.ghz)

    # -- queue protocol --------------------------------------------------------

    def post(self, item: MatchItem) -> None:
        """Append *item*; its FIFO position is its posting order."""
        if len(self._nic) < self.config.hw_entries and len(self.overflow) == 0:
            # Goes straight to a free NIC entry (FIFO prefix maintained).
            self._charge_ns(self.config.promote_ns)
            self._nic.append(item)
        else:
            self.overflow.post(item)

    def match_remove(self, probe: MatchItem) -> Optional[MatchItem]:
        """Find, remove and return the earliest item matching *probe*, or None."""
        cfg = self.config
        self.nic_searches += 1
        inspected = 0
        found: Optional[MatchItem] = None
        for item in self._nic:
            inspected += 1
            if items_match(item, probe):
                found = item
                break
        self.nic_entries_inspected += inspected
        self._charge_ns(cfg.base_ns + cfg.per_entry_ns * inspected)
        if found is not None:
            self._nic.remove(found)
            self.nic_hits += 1
            self._refill()
            return found
        # NIC miss: the overflow list is searched in software.
        result = self.overflow.match_remove(probe)
        if result is not None:
            self._refill()
        return result

    def _refill(self) -> None:
        """Promote the earliest overflow entries into free NIC slots."""
        while len(self._nic) < self.config.hw_entries and len(self.overflow) > 0:
            item = next(iter(self.overflow.iter_items()))
            promoted = self.overflow.match_remove(_exact_probe(item))
            if promoted is None:  # pragma: no cover - defensive
                break
            self._charge_ns(self.config.promote_ns)
            self._nic.append(promoted)
            self.promotions += 1

    def __len__(self) -> int:
        return len(self._nic) + len(self.overflow)

    def iter_items(self) -> Iterator[MatchItem]:
        """Yield live items in FIFO (posting) order, without memory charges."""
        yield from self._nic
        yield from self.overflow.iter_items()

    def regions(self) -> list:
        """Simulated memory regions backing this structure (heater targets)."""
        return self.overflow.regions()

    def footprint_bytes(self) -> int:
        """Total simulated bytes currently backing the structure."""
        return self.overflow.footprint_bytes()

    @property
    def overflow_depth(self) -> int:
        """Entries currently spilled to the software queue."""
        return len(self.overflow)

    @property
    def nic_depth(self) -> int:
        """Entries currently held in on-NIC match slots."""
        return len(self._nic)


def _exact_probe(item: MatchItem) -> MatchItem:
    return MatchItem(
        seq=item.seq,
        src=item.src,
        tag=item.tag,
        cid=item.cid,
        src_mask=0xFFFFFFFF if item.src_mask else 0,
        tag_mask=0xFFFFFFFF if item.tag_mask else 0,
    )
