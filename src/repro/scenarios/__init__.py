"""Declarative scenario registry: config-driven experiment expansion.

The paper's study is a cartesian space — queue layout x architecture x
heater/netcache strategy x message/search-length grid. This package makes
that space *data* instead of drivers:

* :mod:`repro.scenarios.axes` — named axis factories (arch preset, queue
  family, heater policy, netcache/offload mode, workload scalars) that
  validate raw config values and emit point parameters;
* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`, the declarative
  schema (``base`` scalars + ``matrix`` cartesian axes + series/x
  templates) that compiles into the frozen
  :class:`~repro.exp.plan.ExperimentPlan` machinery;
* :mod:`repro.scenarios.loader` — TOML/JSON scenario files
  (``repro run scenarios.toml``);
* :mod:`repro.scenarios.builtins` — every figure/ablation of the paper,
  registered at import time; the legacy ``plan_*`` builders delegate here
  and the equivalence suite pins the expansions repr-identical.

A new ablation is a config file, not a driver: declare the matrix, point
``repro run`` at it, and the plan/runner/store subsystem does the rest.
"""

from repro.scenarios.axes import (
    AUTO_LINK,
    Axis,
    get_axis,
    has_axis,
    iter_axes,
    platform_link_name,
    register_axis,
)
from repro.scenarios.loader import (
    SCENARIO_SUFFIXES,
    load_scenario,
    load_scenario_mapping,
    toml_available,
)
from repro.scenarios.spec import (
    X_INDEX,
    GridSpec,
    ScenarioSpec,
    get_scenario,
    iter_scenarios,
    register_scenario,
)

# Registering the built-ins is an import side effect by design: anything
# that can expand scenarios can also enumerate the paper's figures.
from repro.scenarios import builtins as _builtins  # noqa: F401  (registration)

__all__ = [
    "AUTO_LINK",
    "Axis",
    "GridSpec",
    "SCENARIO_SUFFIXES",
    "ScenarioSpec",
    "X_INDEX",
    "get_axis",
    "get_scenario",
    "has_axis",
    "iter_axes",
    "iter_scenarios",
    "load_scenario",
    "load_scenario_mapping",
    "platform_link_name",
    "register_axis",
    "register_scenario",
    "toml_available",
]
