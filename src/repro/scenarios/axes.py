"""Named axis factories: how one scenario key becomes point parameters.

A scenario spec never talks to simulation classes directly — every key in
its ``base`` and ``matrix`` sections names an **axis** registered here, and
the axis is what validates the raw TOML/JSON value and turns it into the
flat scalar parameters a :class:`~repro.exp.plan.PointSpec` carries:

* choice axes (``arch``, ``link``, ``queue_family``, ``app``, ``nic``,
  ``mechanism``, ``mem_kernel``) validate against the live registries —
  the arch presets, link presets, queue factory, proxy apps — so a typo in
  a config file fails at expansion time with the registry's legal values,
  not three minutes into a sweep;
* integer axes (``msg_bytes``, ``search_depth``, ``nranks``, ...) are the
  workload grid: any of them can be a ``matrix`` list and serve as the
  figure's x axis;
* flag axes (``heated``, ``fragmented``, ``prefetch_enabled``) are the
  heater/hotcache and layout policy switches;
* *variant* axes take labelled mappings (``{label = "HC", heated = true}``)
  whose remaining keys are resolved through this same registry, which is
  how a figure's legend line bundles several parameters under one name.

Axes also carry a *label* for each value — the fragment series/title
templates interpolate (``series = "{variant}"``, ``title = "... ({arch})"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.errors import ScenarioError

#: Sentinel ``link`` value: resolve the platform's default fabric per point
#: (after the arch axis has been applied; see :func:`platform_link_name`).
AUTO_LINK = "auto"


@dataclass(frozen=True)
class Axis:
    """One named scenario axis.

    ``expand`` maps a validated raw value to the point parameters it
    contributes; ``label`` maps the value to the fragment used by series
    and title templates. ``values`` is the human-readable legal-value
    description shown by ``repro list`` and embedded in error messages.
    """

    name: str
    help: str
    values: str
    expand: Callable[[object], Dict[str, object]]
    label: Callable[[object], str] = str


_AXES: Dict[str, Axis] = {}


def register_axis(axis: Axis) -> Axis:
    """Install (or replace) an axis factory under its name."""
    _AXES[axis.name] = axis
    return axis


def get_axis(name: str) -> Axis:
    """Look up an axis; unknown names list the registered ones."""
    try:
        return _AXES[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario axis {name!r}; registered axes: {', '.join(sorted(_AXES))}"
        ) from None


def has_axis(name: str) -> bool:
    """Whether *name* is a registered axis."""
    return name in _AXES


def iter_axes() -> Iterable[Axis]:
    """All registered axes in name order (``repro list``)."""
    return [_AXES[name] for name in sorted(_AXES)]


def _bad(axis: str, value, expected: str) -> ScenarioError:
    return ScenarioError(
        f"axis {axis!r}: bad value {value!r} — expected {expected}"
    )


# -- concrete axes -------------------------------------------------------------


def platform_link_name(arch_name: str) -> str:
    """The fabric each platform of the paper is attached to (by name)."""
    if arch_name == "broadwell":
        return "omnipath"
    if arch_name == "nehalem":
        return "mellanox-qdr"
    return "qlogic-ib-qdr"


def _expand_arch(value) -> Dict[str, object]:
    from repro.arch.spec import ArchSpec
    from repro.exp.producers import encode_arch

    if isinstance(value, ArchSpec):
        return {"arch": encode_arch(value)}
    if isinstance(value, str):
        from repro.arch.presets import get_arch

        try:
            return {"arch": encode_arch(get_arch(value))}
        except Exception:
            from repro.arch.presets import ALL_ARCHS

            raise _bad("arch", value, f"one of {', '.join(sorted(ALL_ARCHS))}") from None
    raise _bad("arch", value, "an architecture preset name or ArchSpec")


def _arch_label(value) -> str:
    from repro.arch.spec import ArchSpec

    return value.name if isinstance(value, ArchSpec) else str(value)


def _expand_link(value) -> Dict[str, object]:
    if value == AUTO_LINK:
        return {"link": AUTO_LINK}
    if isinstance(value, str):
        from repro.errors import ConfigurationError
        from repro.net.link import get_link

        try:
            return {"link": get_link(value).name}
        except ConfigurationError:
            pass
    raise _bad(
        "link", value,
        f"'{AUTO_LINK}' or one of aries, mellanox-qdr, omnipath, qlogic-ib-qdr",
    )


def _expand_queue_family(value) -> Dict[str, object]:
    from repro.matching.factory import QUEUE_FAMILY_DOC, is_queue_family

    if isinstance(value, str) and is_queue_family(value):
        return {"queue_family": value}
    raise _bad("queue_family", value, QUEUE_FAMILY_DOC)


def _expand_app(value) -> Dict[str, object]:
    from repro.apps import APP_CLASSES

    if isinstance(value, str) and value in APP_CLASSES:
        return {"app": value}
    raise _bad("app", value, f"one of {', '.join(sorted(APP_CLASSES))}")


def _expand_nic(value) -> Dict[str, object]:
    nics = ("software-only", "psm2-like", "bxi-like")
    if value in nics:
        return {"nic": value}
    raise _bad("nic", value, f"one of {', '.join(nics)}")


def _expand_mechanism(value) -> Dict[str, object]:
    mechanisms = ("none", "hot-caching", "cat-partition")
    if value in mechanisms:
        return {"mechanism": value}
    raise _bad("mechanism", value, f"one of {', '.join(mechanisms)}")


def _expand_mem_kernel(value) -> Dict[str, object]:
    from repro.mem.kernel import ALL_KERNELS, resolve_kernel

    if value in ALL_KERNELS:
        return {"mem_kernel": resolve_kernel(value)}
    raise _bad("mem_kernel", value, f"one of {', '.join(ALL_KERNELS)}")


def _expand_prefetcher(value) -> Dict[str, object]:
    from repro.mem.prefetch import PREFETCHER_MODES

    modes = tuple(name for name, _ in PREFETCHER_MODES)
    if value in modes:
        return {"prefetcher": value}
    raise _bad("prefetcher", value, f"one of {', '.join(modes)}")


def _bool_axis(name: str, help_text: str) -> Axis:
    def expand(value, _name=name) -> Dict[str, object]:
        if isinstance(value, bool):
            return {_name: value}
        raise _bad(_name, value, "a boolean")

    return Axis(name=name, help=help_text, values="true | false", expand=expand)


def _int_axis(name: str, help_text: str, *, minimum: int = 0) -> Axis:
    def expand(value, _name=name, _min=minimum) -> Dict[str, object]:
        if isinstance(value, bool) or not isinstance(value, int) or value < _min:
            raise _bad(_name, value, f"an integer >= {_min}")
        return {_name: int(value)}

    return Axis(name=name, help=help_text, values=f"integer >= {minimum}", expand=expand)


def _float_axis(
    name: str,
    help_text: str,
    *,
    minimum: float = 0.0,
    exclusive: bool = False,
    expected: Optional[str] = None,
) -> Axis:
    """A finite-number axis with a lower bound (strict when *exclusive*).

    *expected* overrides the error-message description — spell out the unit
    and the fix, so a bad value in a scenario file is actionable on sight.
    """
    bound = f"> {minimum:g}" if exclusive else f">= {minimum:g}"
    legal = expected if expected is not None else f"a finite number {bound}"

    def expand(value, _name=name) -> Dict[str, object]:
        import math

        ok = (
            not isinstance(value, bool)
            and isinstance(value, (int, float))
            and math.isfinite(value)
            and (value > minimum if exclusive else value >= minimum)
        )
        if not ok:
            raise _bad(_name, value, legal)
        return {_name: float(value)}

    return Axis(name=name, help=help_text, values=f"number {bound}", expand=expand)


def _choice_axis(name: str, help_text: str, choices: Tuple[str, ...]) -> Axis:
    def expand(value, _name=name) -> Dict[str, object]:
        if value in choices:
            return {_name: value}
        raise _bad(_name, value, f"one of {', '.join(choices)}")

    return Axis(name=name, help=help_text, values=" | ".join(choices), expand=expand)


def _variant_axis(name: str, help_text: str) -> Axis:
    return Axis(
        name=name,
        help=help_text,
        values='{ label = "...", <axis> = <value>, ... }',
        expand=lambda value: expand_variant_value(name, value),
        label=lambda value: str(value["label"]),
    )


def expand_variant_value(axis_name: str, value) -> Dict[str, object]:
    """Expand one labelled-mapping value through the sub-axes it names."""
    if not isinstance(value, dict) or "label" not in value:
        raise _bad(axis_name, value, 'a mapping with a "label" key')
    params: Dict[str, object] = {}
    for key, sub in value.items():
        if key == "label":
            continue
        params.update(get_axis(key).expand(sub))
    return params


def is_variant_values(values) -> bool:
    """Whether every value of a matrix axis is a labelled mapping."""
    return bool(values) and all(
        isinstance(v, dict) and "label" in v for v in values
    )


_CHOICE_AXES: Tuple[Axis, ...] = (
    Axis("arch", "architecture preset (cache geometry, latencies, clocks)",
         "nehalem | sandy-bridge | haswell | broadwell | knl | ArchSpec",
         _expand_arch, _arch_label),
    Axis("link", "fabric preset; 'auto' picks the platform's paper fabric",
         "auto | qlogic-ib-qdr | omnipath | mellanox-qdr | aries",
         _expand_link),
    Axis("queue_family", "match-queue organization",
         "baseline | lla-<k> | lla-large | openmpi | hashmap | hash-<n> | fourd | ch4 | adaptive",
         _expand_queue_family),
    Axis("app", "proxy application (kind = 'app' points)",
         "amg2013 | minife | minimd | fds", _expand_app),
    Axis("nic", "hardware matching offload model (kind = 'offload' points)",
         "software-only | psm2-like | bxi-like", _expand_nic),
    Axis("mechanism", "co-located occupancy mechanism (kind = 'colocated')",
         "none | hot-caching | cat-partition", _expand_mechanism),
    Axis("mem_kernel", "cache-kernel backend (default: env/soa)",
         "soa | vec | reference", _expand_mem_kernel),
    Axis("prefetcher", "prefetch-unit configuration (default: arch units)",
         "default | none | chase | chase-only", _expand_prefetcher),
)

_FLAG_AXES: Tuple[Axis, ...] = (
    _bool_axis("heated", "software cache heater (hot caching) on/off"),
    _bool_axis("fragmented", "churned (long-running-app) heap layout"),
    _bool_axis("prefetch_enabled", "hardware prefetcher model on/off"),
)

_INT_AXES: Tuple[Axis, ...] = (
    _int_axis("msg_bytes", "message payload size in bytes", minimum=0),
    _int_axis("search_depth", "posted-receive-queue search length"),
    _int_axis("iterations", "measured benchmark iterations", minimum=1),
    _int_axis("warmup", "warmup iterations before measurement"),
    _int_axis("nranks", "simulated MPI ranks", minimum=1),
    _int_axis("match_list_length", "MiniFE tunable match-list length", minimum=1),
    _int_axis("ranks", "co-located compute ranks", minimum=0),
    _int_axis("depth", "queue depth (posted entries)", minimum=0),
    _int_axis("working_set_bytes", "per-rank compute working set", minimum=0),
    _int_axis("samples", "random-access samples (heater micro)", minimum=1),
    _int_axis("region_bytes", "heated region size (heater micro)", minimum=1),
    _int_axis("partition_ways", "CAT-reserved LLC ways", minimum=1),
    _int_axis("network_cache_bytes", "dedicated network-cache capacity", minimum=1),
)

_VARIANT_AXES: Tuple[Axis, ...] = (
    _variant_axis("variant", "labelled parameter bundle (a figure legend line)"),
    _variant_axis("platform", "labelled arch+link bundle (a hardware platform)"),
)


def _traffic_metric_axis() -> Axis:
    from repro.traffic.stats import TRAFFIC_METRICS

    return _choice_axis(
        "metric",
        "which measured-phase statistic is the point's y value (kind = 'traffic')",
        TRAFFIC_METRICS,
    )


#: Open-loop traffic axes (kind = 'traffic' points; see repro.traffic).
_TRAFFIC_AXES: Tuple[Axis, ...] = (
    _float_axis(
        "arrival_rate",
        "open-loop offered load (Poisson arrivals)",
        minimum=0.0,
        exclusive=True,
        expected="a finite number > 0: mean arrivals per simulated "
        "microsecond (e.g. 0.4)",
    ),
    _float_axis(
        "zipf_alpha",
        "tag-popularity skew (Zipf exponent; 0 = uniform)",
        minimum=0.0,
        expected="a finite number >= 0: Zipf popularity exponent "
        "(0 = uniform, ~1 = web-like skew)",
    ),
    _int_axis("n_warmup", "warmup events before the measured phase"),
    _int_axis("n_measured", "measured-phase events", minimum=1),
    _int_axis("queue_capacity", "UMQ admission capacity (0 = unbounded)"),
    _int_axis("n_tags", "distinct message tags (popularity universe)", minimum=1),
    _int_axis("recv_window", "max outstanding pre-posted receives", minimum=1),
    _int_axis("flush_every", "cache flush period in arrivals (0 = never)"),
    _choice_axis(
        "admission",
        "full-queue policy: reject newcomers or evict the FIFO head",
        ("drop-tail", "drop-head"),
    ),
    _bool_axis(
        "traffic_batch",
        "open-loop event loop: columnar fast path (true, the default) or "
        "the retained per-event legacy loop; bit-identical results",
    ),
)

for _axis in (
    _CHOICE_AXES + _FLAG_AXES + _INT_AXES + _VARIANT_AXES + _TRAFFIC_AXES
    + (_traffic_metric_axis(),)
):
    register_axis(_axis)


def resolve_auto_link(params: Dict[str, object]) -> None:
    """Resolve an ``AUTO_LINK`` placeholder against the point's arch (in place)."""
    if params.get("link") != AUTO_LINK:
        return
    encoded = params.get("arch")
    if encoded is None:
        raise ScenarioError("axis 'link': 'auto' needs an 'arch' on the same point")
    from repro.exp.producers import resolve_arch

    params["link"] = platform_link_name(resolve_arch(encoded).name)


def axis_raw_number(name: str, value) -> Optional[float]:
    """The numeric x-coordinate a raw axis value provides, if any."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)
