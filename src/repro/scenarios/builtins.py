"""Every figure and ablation of the paper as a built-in scenario.

These definitions ARE the experiment grids the bespoke ``plan_*`` builders
used to hand-roll — the builders in :mod:`repro.bench.figures`,
:mod:`repro.bench.colocated`, :mod:`repro.bench.heater_micro` and the app
modules now delegate here, and ``tests/test_scenarios.py`` pins each
expansion repr-identical to the historical construction. The CLI figure
subcommands are thin aliases over these names, and ``repro run <name>``
runs any of them directly.

The helper functions (:func:`figure_variants`, :func:`fig8_variants`, ...)
convert the legacy positional variant tuples into the labelled-mapping
values the ``variant`` axis takes; the builders use them to translate
caller-supplied line-ups, so one code path serves defaults and overrides.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.scenarios.spec import ScenarioSpec, register_scenario


def figure_variants(variants: Sequence[Tuple[str, str, bool]]) -> List[Dict[str, object]]:
    """(label, queue family, heated) tuples -> ``variant`` axis values."""
    return [
        {"label": label, "queue_family": family, "heated": heated}
        for label, family, heated in variants
    ]


def fig8_variants(families: Sequence[str]) -> List[Dict[str, object]]:
    """Figure 8/9 family line-up with the legacy Baseline/LLA labelling."""
    return [
        {
            "label": "Baseline" if family == "baseline" else "LLA",
            "queue_family": family,
            # AMG is a long-running production code: its baseline list
            # nodes come from a churned heap arena.
            "fragmented": family == "baseline",
        }
        for family in families
    ]


def fig9_variants(families: Sequence[str]) -> List[Dict[str, object]]:
    """Figure 9's line-up (no heap-churn axis: MiniFE runs are short)."""
    return [
        {
            "label": "Baseline" if family == "baseline" else "LLA",
            "queue_family": family,
        }
        for family in families
    ]


def fig10_platforms(variants: Sequence[Tuple[str, str, str, bool]]) -> List[Dict[str, object]]:
    """The per-platform baseline bundles of Figure 10, in variant order."""
    arch_names = list(dict.fromkeys(v[1] for v in variants))
    return [
        {
            "label": arch_name,
            "arch": arch_name,
            "link": "mellanox-qdr" if arch_name == "nehalem" else "omnipath",
            "queue_family": "baseline",
            "heated": False,
            "fragmented": True,
        }
        for arch_name in arch_names
    ]


def fig10_variant_values(variants: Sequence[Tuple[str, str, str, bool]]) -> List[Dict[str, object]]:
    """Figure 10's five lines as ``variant`` axis values."""
    return [
        {
            "label": label,
            "arch": arch_name,
            "link": "mellanox-qdr" if arch_name == "nehalem" else "omnipath",
            "queue_family": family,
            "heated": heated,
            "fragmented": family == "baseline",
        }
        for label, arch_name, family, heated in variants
    ]


def _register(mapping: dict) -> ScenarioSpec:
    return register_scenario(ScenarioSpec.from_mapping(mapping, source="builtin"))


def _locality_scenario(
    *,
    name: str,
    flavor: str,
    variants: Sequence[Tuple[str, str, bool]],
    x_axis: str,
    description: str,
) -> dict:
    """One of the four Figure 4-7 panel families (spatial/temporal x axis)."""
    from repro.bench.osu import MSG_SIZE_SWEEP, SEARCH_LENGTH_SWEEP

    if x_axis == "msg_bytes":
        title = f"Impact of {flavor} locality ({{arch}}), queue depth {{search_depth}}"
        xlabel = "msg size per process (B)"
        base = {"arch": "sandy-bridge", "link": "auto", "search_depth": 1024,
                "iterations": 10}
        xs = list(MSG_SIZE_SWEEP)
        quick = {"base": {"iterations": 3},
                 "matrix": {"msg_bytes": [1, 64, 1024, 65536, 1 << 20]}}
    else:
        title = f"Impact of {flavor} locality ({{arch}}), {{msg_bytes}} B messages"
        xlabel = "Posted Receive Queue Search Length"
        base = {"arch": "sandy-bridge", "link": "auto", "msg_bytes": 1,
                "iterations": 10}
        xs = list(SEARCH_LENGTH_SWEEP)
        quick = {"base": {"iterations": 3},
                 "matrix": {"search_depth": [1, 8, 64, 512, 1024, 4096]}}
    return {
        "name": name,
        "kind": "osu",
        "title": title,
        "xlabel": xlabel,
        "ylabel": "bandwidth (MiBps)",
        "description": description,
        "base": base,
        "series": "{variant}",
        "x": x_axis,
        "matrix": {"variant": figure_variants(variants), x_axis: xs},
        "quick": quick,
    }


def _register_builtins() -> None:
    from repro.apps.amg2013 import FIG8_SCALES
    from repro.apps.fds import FIG10_SCALES, FIG10_VARIANTS
    from repro.apps.minife import FIG9_LENGTHS, FIG9_NRANKS
    from repro.bench.figures import SPATIAL_VARIANTS, TEMPORAL_VARIANTS

    _register(_locality_scenario(
        name="spatial-msg-size",
        flavor="spatial",
        variants=SPATIAL_VARIANTS,
        x_axis="msg_bytes",
        description="Figures 4a/5a: bandwidth vs message size, LLA-k line-up",
    ))
    _register(_locality_scenario(
        name="spatial-search-length",
        flavor="spatial",
        variants=SPATIAL_VARIANTS,
        x_axis="search_depth",
        description="Figures 4b/c, 5b/c: bandwidth vs PRQ search length",
    ))
    _register(_locality_scenario(
        name="temporal-msg-size",
        flavor="temporal",
        variants=TEMPORAL_VARIANTS,
        x_axis="msg_bytes",
        description="Figures 6a/7a: baseline vs HC vs LLA vs HC+LLA over size",
    ))
    _register(_locality_scenario(
        name="temporal-search-length",
        flavor="temporal",
        variants=TEMPORAL_VARIANTS,
        x_axis="search_depth",
        description="Figures 6b/c, 7b/c: temporal line-up over search length",
    ))

    _register({
        "name": "fig8-amg",
        "kind": "app",
        "title": "AMG2013 scaling (Broadwell)",
        "xlabel": "Process Count",
        "ylabel": "Execution Time (s)",
        "description": "Figure 8: AMG2013 weak scaling, baseline vs LLA",
        "base": {"app": "amg2013", "arch": "broadwell", "link": "omnipath"},
        "series": "{variant}",
        "x": "nranks",
        "matrix": {
            "variant": fig8_variants(("baseline", "lla-2")),
            "nranks": list(FIG8_SCALES),
        },
    })
    _register({
        "name": "fig9-minife",
        "kind": "app",
        "title": "MiniFE at {nranks} processes (Broadwell)",
        "xlabel": "Match list Length",
        "ylabel": "Execution Time (s)",
        "description": "Figure 9: MiniFE vs tunable match-list length",
        "base": {"app": "minife", "arch": "broadwell", "link": "omnipath",
                 "nranks": FIG9_NRANKS},
        "series": "{variant}",
        "x": "match_list_length",
        "matrix": {
            "variant": fig9_variants(("baseline", "lla-2")),
            "match_list_length": list(FIG9_LENGTHS),
        },
    })
    _register({
        "name": "fig10-fds",
        "kind": "app",
        "title": "Fire Dynamics Simulator scaling",
        "xlabel": "Process Count",
        "ylabel": "Factor Speedup Over Baseline",
        "description": "Figure 10: FDS factor speedups (baselines grid first)",
        "base": {"app": "fds"},
        "quick": {"matrix": {"nranks": [1024, 4096, 8192]}},
        "grids": [
            {
                "matrix": {
                    "nranks": list(FIG10_SCALES),
                    "platform": fig10_platforms(FIG10_VARIANTS),
                },
                "series": "baseline/{platform}",
                "x": "nranks",
            },
            {
                "matrix": {
                    "variant": fig10_variant_values(FIG10_VARIANTS),
                    "nranks": list(FIG10_SCALES),
                },
                "series": "{variant}",
                "x": "nranks",
            },
        ],
    })

    _register({
        "name": "heater-micro",
        "kind": "heater-micro",
        "title": "Section 4.3 cache-heater random-access micro-benchmark",
        "xlabel": "arch",
        "ylabel": "ns / iteration (cold)",
        "description": "Section 4.3: cold vs heated random-access iteration time",
        "base": {"region_bytes": 4 * 1024 * 1024, "samples": 2048},
        "series": "{arch}",
        "x": "@index",
        "matrix": {"arch": ["sandy-bridge", "broadwell"]},
        "quick": {"base": {"samples": 512}},
    })
    _register({
        "name": "colocated",
        "kind": "colocated",
        "title": "Co-located capacity pressure ({arch})",
        "xlabel": "co-located ranks",
        "ylabel": "cycles/search",
        "description": "Co-located ranks: LLC pressure vs occupancy mechanisms",
        # Broadwell by default: the full 8-rank grid needs ranks+heater cores,
        # which Sandy Bridge's 8-core socket cannot seat.
        "base": {"arch": "broadwell", "depth": 2048,
                 "working_set_bytes": 4 * 1024 * 1024, "iterations": 2},
        "series": "{mechanism}",
        "x": "ranks",
        "matrix": {
            "mechanism": ["none", "hot-caching", "cat-partition"],
            "ranks": [1, 2, 4, 8],
        },
        "quick": {"matrix": {"ranks": [1, 4]}},
    })
    _register({
        "name": "ablation",
        "kind": "osu",
        "title": "Semi-permanent cache occupancy proposals (section 4.6)",
        "xlabel": "occupancy mechanism",
        "ylabel": "bandwidth (MiBps), 1B msgs",
        "description": "Section 4.6: heater vs CAT partition vs dedicated net cache",
        "base": {"link": "auto", "queue_family": "baseline", "msg_bytes": 1,
                 "search_depth": 512, "iterations": 10},
        "series": "{arch}: {variant}",
        "x": 0.0,
        "matrix": {
            "arch": ["sandy-bridge", "broadwell"],
            "variant": [
                {"label": "baseline"},
                {"label": "hot caching", "heated": True},
                {"label": "CAT partition (4 ways)", "partition_ways": 4},
                {"label": "dedicated net cache 2KiB", "network_cache_bytes": 2048},
            ],
        },
        "quick": {"base": {"search_depth": 64, "iterations": 3}},
    })
    _register({
        "name": "traffic-overload",
        "kind": "traffic",
        "title": "Open-loop overload ({arch}): {metric} vs offered load",
        "xlabel": "offered load (events/us)",
        "ylabel": "p99 sojourn (us)",
        "description": "Open-loop Zipf/Poisson traffic: tail latency and "
        "rejection vs arrival rate, queue families x heater",
        # flush_every models bulk-synchronous compute phases between bursts
        # of arrivals — that is what gives the heater cache state to defend;
        # queue_capacity bounds the UMQ so overload rejects instead of
        # growing without limit.
        "base": {"arch": "sandy-bridge", "zipf_alpha": 1.0, "n_tags": 64,
                 "msg_bytes": 1024, "search_depth": 128, "flush_every": 32,
                 "queue_capacity": 256, "recv_window": 64,
                 "n_warmup": 200, "n_measured": 1000,
                 "metric": "p99_sojourn_us"},
        "series": "{variant}",
        "x": "arrival_rate",
        "matrix": {
            "variant": [
                {"label": "baseline", "queue_family": "baseline", "heated": False},
                {"label": "HC", "queue_family": "baseline", "heated": True},
                {"label": "LLA - 8", "queue_family": "lla-8", "heated": False},
                {"label": "HC+LLA - 8", "queue_family": "lla-8", "heated": True},
            ],
            "arrival_rate": [0.1, 0.2, 0.4, 0.6, 0.9, 1.2],
        },
        "quick": {"base": {"n_warmup": 50, "n_measured": 250},
                  "matrix": {"arrival_rate": [0.2, 0.6, 1.2]}},
    })
    _register({
        "name": "prefetch-chase",
        "kind": "osu",
        "title": "Pointer-chase prefetching vs LLA spatial packing ({arch})",
        "xlabel": "Posted Receive Queue Search Length",
        "ylabel": "bandwidth (MiBps)",
        "description": "Ablation: does hypothetical pointer-chase hardware "
        "close the gap to LLA k-packing? (fig 4/6-style grid)",
        # The chase unit can run ahead along a recorded traversal chain, but
        # it fetches one line per node and its successor table is finite:
        # past CHASE_TABLE_SIZE list nodes the loop LRU-thrashes the table
        # and the benefit cliffs, while LLA-k packing keeps paying. The
        # churned heap (fragmented) is what makes baseline traversal a true
        # pointer chase; LLA arrays are insensitive to it.
        "base": {"arch": "sandy-bridge", "link": "auto", "msg_bytes": 1,
                 "fragmented": True, "iterations": 10},
        "series": "{variant}",
        "x": "search_depth",
        "matrix": {
            "variant": [
                {"label": "baseline", "queue_family": "baseline",
                 "prefetcher": "default"},
                {"label": "baseline+chase", "queue_family": "baseline",
                 "prefetcher": "chase"},
                {"label": "LLA - 2", "queue_family": "lla-2",
                 "prefetcher": "default"},
                {"label": "LLA - 2 +chase", "queue_family": "lla-2",
                 "prefetcher": "chase"},
                {"label": "LLA - 4", "queue_family": "lla-4",
                 "prefetcher": "default"},
                {"label": "LLA - 4 +chase", "queue_family": "lla-4",
                 "prefetcher": "chase"},
                {"label": "LLA - 8", "queue_family": "lla-8",
                 "prefetcher": "default"},
                {"label": "LLA - 8 +chase", "queue_family": "lla-8",
                 "prefetcher": "chase"},
            ],
            "search_depth": [1, 8, 64, 512, 1024, 4096, 8192],
        },
        "quick": {"base": {"iterations": 3},
                  "matrix": {"search_depth": [8, 512, 4096]}},
    })
    _register({
        "name": "offload",
        "kind": "offload",
        "title": "Hardware matching offload and its capacity cliff (section 2.2)",
        "xlabel": "queue depth",
        "ylabel": "cycles/search",
        "description": "Section 2.2: NIC offload engines vs software matching",
        "base": {"arch": "sandy-bridge"},
        "series": "{nic}",
        "x": "depth",
        "matrix": {
            "nic": ["software-only", "psm2-like", "bxi-like"],
            "depth": [64, 1024, 4000, 16384],
        },
        "quick": {"matrix": {"depth": [64, 4000]}},
    })


_register_builtins()
