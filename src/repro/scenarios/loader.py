"""Load scenario specs from TOML or JSON files.

TOML parses via stdlib :mod:`tomllib` (Python 3.11+) with ``tomli`` as a
drop-in fallback for older interpreters (an optional extra — the package
itself never requires it: JSON specs work everywhere, and the CI matrix
runs the JSON path on the oldest supported Python). The two formats carry
the identical mapping shape; :class:`~repro.scenarios.spec.ScenarioSpec`
neither knows nor cares which one a spec came from.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.errors import ScenarioError
from repro.scenarios.spec import ScenarioSpec

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised on 3.9/3.10 only
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ImportError:
        _toml = None

#: File suffixes the loader understands.
SCENARIO_SUFFIXES = (".toml", ".json")


def toml_available() -> bool:
    """Whether a TOML parser (stdlib or the ``tomli`` extra) is importable."""
    return _toml is not None


def load_scenario_mapping(path: Union[str, Path]) -> dict:
    """Parse a scenario file into its raw mapping (no validation yet)."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".json":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{path}: invalid JSON: {exc}") from None
    elif suffix == ".toml":
        if _toml is None:
            raise ScenarioError(
                f"{path}: TOML scenarios need Python >= 3.11 (stdlib tomllib) "
                "or the 'tomli' package (pip install repro[toml]); "
                "JSON scenario files work on every supported Python"
            )
        try:
            data = _toml.loads(path.read_text(encoding="utf-8"))
        except _toml.TOMLDecodeError as exc:
            raise ScenarioError(f"{path}: invalid TOML: {exc}") from None
    else:
        raise ScenarioError(
            f"{path}: unknown scenario suffix {suffix!r}; "
            f"expected one of {', '.join(SCENARIO_SUFFIXES)}"
        )
    if not isinstance(data, dict):
        raise ScenarioError(f"{path}: scenario file must contain a mapping")
    # Allow (but do not require) a [scenario] wrapper table.
    if set(data) == {"scenario"} and isinstance(data["scenario"], dict):
        data = data["scenario"]
    return data


def load_scenario(path: Union[str, Path], *, name: Optional[str] = None) -> ScenarioSpec:
    """Load and validate one scenario from *path*.

    A file with no ``name`` key is named after its stem, so quick
    hand-written specs stay minimal.
    """
    path = Path(path)
    data = load_scenario_mapping(path)
    data.setdefault("name", name or path.stem)
    return ScenarioSpec.from_mapping(data, source=str(path))
