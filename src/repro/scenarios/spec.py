"""The declarative scenario schema and its cartesian expansion.

A **scenario** is a plain mapping (hand-written TOML/JSON, or a built-in
registered by :mod:`repro.scenarios.builtins`) that *describes* an
experiment grid instead of coding it:

.. code-block:: toml

    name = "fig4a-quick"
    kind = "osu"                     # which point producer runs each cell
    title = "Impact of spatial locality ({arch}), queue depth {search_depth}"
    xlabel = "msg size per process (B)"
    ylabel = "bandwidth (MiBps)"
    series = "{variant}"             # legend label per point
    x = "msg_bytes"                  # which axis provides the x value

    [base]                           # scalars applied to every point
    arch = "sandy-bridge"
    link = "auto"
    search_depth = 1024
    iterations = 3

    [matrix]                         # cartesian axes, first axis outermost
    variant = [
        { label = "baseline", queue_family = "baseline", heated = false },
        { label = "LLA - 8", queue_family = "lla-8", heated = false },
    ]
    msg_bytes = [1, 1024, 1048576]

:meth:`ScenarioSpec.expand` compiles this into the existing frozen
:class:`~repro.exp.plan.ExperimentPlan` — the same object the ``plan_*``
builders used to hand-construct — so everything downstream (Runner,
process pools, the content-addressed store, fault supervision) is
unchanged. Expansion order is deterministic: grids in declaration order,
matrix axes first-declared-outermost, which is exactly the variant-major
order the historical drivers produced (pinned by the equivalence suite in
``tests/test_scenarios.py``).

Multi-block grids (Figure 10's baselines-then-variants layout) use a
``grids`` list instead of a single top-level ``matrix``; each grid may
override ``kind``/``series``/``x`` and add its own ``base`` scalars.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product
from typing import Dict, Iterable, List, Optional

from repro.errors import ScenarioError
from repro.scenarios.axes import (
    axis_raw_number,
    expand_variant_value,
    get_axis,
    has_axis,
    is_variant_values,
    resolve_auto_link,
)

#: ``x`` spelling for "the point's ordinal within its grid" (enumeration
#: figures like the heater micro-benchmark, whose x axis is categorical).
X_INDEX = "@index"

_SCENARIO_KEYS = frozenset(
    ("name", "kind", "title", "xlabel", "ylabel", "seed", "description",
     "base", "matrix", "series", "x", "grids", "quick")
)
_GRID_KEYS = frozenset(("kind", "base", "matrix", "series", "x"))
_QUICK_KEYS = frozenset(("base", "matrix", "seed"))


def _require_mapping(value, what: str) -> dict:
    if not isinstance(value, dict):
        raise ScenarioError(f"{what} must be a mapping, got {type(value).__name__}")
    return value


def _check_keys(mapping: dict, allowed: frozenset, what: str) -> None:
    unknown = [k for k in mapping if k not in allowed]
    if unknown:
        raise ScenarioError(
            f"{what} has unknown key(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def _check_matrix(matrix: dict, what: str) -> Dict[str, list]:
    _require_mapping(matrix, f"{what}.matrix")
    checked: Dict[str, list] = {}
    for name, values in matrix.items():
        if isinstance(values, tuple):
            values = list(values)
        if not isinstance(values, list) or not values:
            raise ScenarioError(
                f"{what}: matrix axis {name!r} must be a non-empty list, "
                f"got {type(values).__name__}"
            )
        # A matrix key must be a registered axis — except a pure variant
        # axis (every value a labelled mapping), which users may name
        # freely; its sub-keys are still validated per value.
        if not has_axis(name) and not is_variant_values(values):
            get_axis(name)  # raises the canonical unknown-axis error
        checked[name] = values
    return checked


@dataclass
class GridSpec:
    """One cartesian block of a scenario (most scenarios have exactly one)."""

    matrix: Dict[str, list]
    series: str
    x: object
    kind: Optional[str] = None
    base: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_mapping(cls, mapping: dict, *, what: str, default_series: bool = True) -> "GridSpec":
        _require_mapping(mapping, what)
        _check_keys(mapping, _GRID_KEYS, what)
        if "matrix" not in mapping:
            raise ScenarioError(f"{what} must define a 'matrix' section")
        matrix = _check_matrix(mapping["matrix"], what)
        series = mapping.get("series")
        if series is None:
            if not default_series:
                raise ScenarioError(f"{what} must set 'series'")
            series = "{" + next(iter(matrix)) + "}"
        if not isinstance(series, str):
            raise ScenarioError(f"{what}: 'series' must be a string template")
        if "x" not in mapping:
            raise ScenarioError(
                f"{what} must set 'x' (an axis name, '{X_INDEX}', or a number)"
            )
        x = mapping["x"]
        if not (isinstance(x, str) or isinstance(x, (int, float))):
            raise ScenarioError(f"{what}: bad 'x' {x!r}")
        base = _require_mapping(mapping.get("base", {}), f"{what}.base")
        return cls(matrix=matrix, series=series, x=x, kind=mapping.get("kind"), base=dict(base))


@dataclass
class ScenarioSpec:
    """A validated scenario: metadata, shared scalars, and its grid(s)."""

    name: str
    kind: Optional[str]
    title: str
    xlabel: str = "x"
    ylabel: str = "y"
    seed: int = 0
    description: str = ""
    base: Dict[str, object] = field(default_factory=dict)
    grids: List[GridSpec] = field(default_factory=list)
    quick_overrides: Optional[dict] = None
    source: str = "builtin"

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_mapping(cls, mapping: dict, *, source: str = "inline") -> "ScenarioSpec":
        """Validate a raw scenario mapping (the file/builtin entry point)."""
        _require_mapping(mapping, "scenario")
        _check_keys(mapping, _SCENARIO_KEYS, "scenario")
        name = mapping.get("name")
        if not isinstance(name, str) or not name:
            raise ScenarioError("scenario must set a non-empty 'name'")
        if "matrix" in mapping and "grids" in mapping:
            raise ScenarioError("scenario: 'matrix' and 'grids' are mutually exclusive")
        if "matrix" not in mapping and "grids" not in mapping:
            raise ScenarioError("scenario must define a 'matrix' (or a 'grids' list)")
        if "grids" in mapping:
            raw_grids = mapping["grids"]
            if not isinstance(raw_grids, list) or not raw_grids:
                raise ScenarioError("scenario: 'grids' must be a non-empty list")
            grids = [
                GridSpec.from_mapping(g, what=f"grids[{i}]", default_series=False)
                for i, g in enumerate(raw_grids)
            ]
        else:
            grids = [
                GridSpec.from_mapping(
                    {k: mapping[k] for k in ("matrix", "series", "x") if k in mapping},
                    what="scenario",
                )
            ]
        seed = mapping.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ScenarioError(f"scenario: 'seed' must be an integer, got {seed!r}")
        quick = mapping.get("quick")
        if quick is not None:
            _require_mapping(quick, "scenario.quick")
            _check_keys(quick, _QUICK_KEYS, "scenario.quick")
        return cls(
            name=name,
            kind=mapping.get("kind"),
            title=mapping.get("title", name),
            xlabel=mapping.get("xlabel", "x"),
            ylabel=mapping.get("ylabel", "y"),
            seed=seed,
            description=mapping.get("description", ""),
            base=dict(_require_mapping(mapping.get("base", {}), "scenario.base")),
            grids=grids,
            quick_overrides=quick,
            source=source,
        )

    # -- overrides ------------------------------------------------------------

    def with_overrides(
        self,
        *,
        base: Optional[Dict[str, object]] = None,
        matrix: Optional[Dict[str, list]] = None,
        seed: Optional[int] = None,
    ) -> "ScenarioSpec":
        """A copy with base scalars merged, matrix axis values replaced,
        and/or the root seed swapped. A ``matrix`` override applies to every
        grid that declares the axis; naming an axis no grid has is an error
        (the override would silently do nothing)."""
        spec = replace(
            self,
            base={**self.base, **(base or {})},
            grids=[replace(g, matrix=dict(g.matrix), base=dict(g.base)) for g in self.grids],
        )
        if seed is not None:
            spec.seed = int(seed)
        for axis_name, values in (matrix or {}).items():
            if isinstance(values, tuple):
                values = list(values)
            if not isinstance(values, list) or not values:
                raise ScenarioError(
                    f"matrix override for axis {axis_name!r} must be a non-empty list"
                )
            hit = False
            for grid in spec.grids:
                if axis_name in grid.matrix:
                    grid.matrix[axis_name] = values
                    hit = True
            if not hit:
                raise ScenarioError(
                    f"matrix override names axis {axis_name!r}, but no grid of "
                    f"scenario {self.name!r} declares it"
                )
        return spec

    def quick(self) -> "ScenarioSpec":
        """The scenario's reduced (``--quick``) form, if it declares one."""
        if not self.quick_overrides:
            return self
        q = self.quick_overrides
        return self.with_overrides(
            base=q.get("base"), matrix=q.get("matrix"), seed=q.get("seed")
        )

    # -- expansion ------------------------------------------------------------

    def _format(self, template: str, labels: Dict[str, str], what: str) -> str:
        try:
            return template.format(**labels)
        except (KeyError, IndexError) as exc:
            raise ScenarioError(
                f"scenario {self.name!r}: {what} template {template!r} references "
                f"{exc} which is not a base or matrix axis of this grid"
            ) from None

    def expand(self) -> "ExperimentPlan":
        """Compile the scenario into an :class:`~repro.exp.plan.ExperimentPlan`.

        Deterministic: grids in declaration order; within a grid the first
        matrix axis is outermost. Every point gets the scenario's root seed
        (the paper-figure convention) and a resolved ``mem_kernel`` so
        store content keys are per-backend.
        """
        from repro.exp import ExperimentPlan, producer_kinds
        from repro.mem.kernel import resolve_kernel

        default_kernel = resolve_kernel(None)
        base_params: Dict[str, object] = {}
        base_labels: Dict[str, str] = {}
        base_raw: Dict[str, object] = {}
        for key, value in self.base.items():
            axis = get_axis(key)
            base_params.update(axis.expand(value))
            base_labels[key] = axis.label(value)
            base_raw[key] = value
        plan = ExperimentPlan(
            title=self._format(self.title, base_labels, "title"),
            xlabel=self.xlabel,
            ylabel=self.ylabel,
        )
        for gi, grid in enumerate(self.grids):
            kind = grid.kind or self.kind
            if kind is None:
                raise ScenarioError(
                    f"scenario {self.name!r}: grids[{gi}] has no 'kind' and the "
                    "scenario sets none"
                )
            kinds = producer_kinds()
            if kind not in kinds:
                raise ScenarioError(
                    f"scenario {self.name!r}: no producer registered for point "
                    f"kind {kind!r}; known kinds: {', '.join(kinds)}"
                )
            grid_params = dict(base_params)
            grid_labels = dict(base_labels)
            grid_raw = dict(base_raw)
            for key, value in grid.base.items():
                axis = get_axis(key)
                grid_params.update(axis.expand(value))
                grid_labels[key] = axis.label(value)
                grid_raw[key] = value
            axes = []
            for axis_name, values in grid.matrix.items():
                if has_axis(axis_name):
                    axes.append((axis_name, get_axis(axis_name), values))
                elif is_variant_values(values):
                    axes.append((axis_name, None, values))
                else:
                    get_axis(axis_name)  # raises
            for index, combo in enumerate(product(*(values for _, _, values in axes))):
                params = dict(grid_params)
                labels = dict(grid_labels)
                raw = dict(grid_raw)
                for (axis_name, axis, _values), value in zip(axes, combo):
                    if axis is None:
                        params.update(expand_variant_value(axis_name, value))
                        labels[axis_name] = str(value["label"])
                    else:
                        params.update(axis.expand(value))
                        labels[axis_name] = axis.label(value)
                    raw[axis_name] = value
                resolve_auto_link(params)
                if "link" in labels and "link" in params:
                    labels["link"] = str(params["link"])
                params.setdefault("mem_kernel", default_kernel)
                series = self._format(grid.series, labels, "series")
                plan.add_point(
                    kind, series, self._grid_x(grid, gi, raw, index), seed=self.seed, **params
                )
        return plan

    def _grid_x(self, grid: GridSpec, gi: int, raw: Dict[str, object], index: int) -> float:
        x = grid.x
        if isinstance(x, (int, float)) and not isinstance(x, bool):
            return float(x)
        if x == X_INDEX:
            return float(index)
        value = raw.get(x)
        if value is None:
            raise ScenarioError(
                f"scenario {self.name!r}: grids[{gi}] sets x = {x!r}, which is "
                "not a base or matrix axis of that grid"
            )
        number = axis_raw_number(x, value)
        if number is None:
            raise ScenarioError(
                f"scenario {self.name!r}: x axis {x!r} has non-numeric value {value!r}"
            )
        return number

    def total_points(self) -> int:
        """Number of points the scenario expands to (without expanding)."""
        total = 0
        for grid in self.grids:
            cells = 1
            for values in grid.matrix.values():
                cells *= len(values)
            total += cells
        return total


# -- registry ------------------------------------------------------------------

_SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Install (or replace) a named scenario."""
    _SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario; unknown names list the known ones."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; registered: {', '.join(sorted(_SCENARIOS))}"
        ) from None


def iter_scenarios() -> Iterable[ScenarioSpec]:
    """All registered scenarios in name order."""
    return [_SCENARIOS[name] for name in sorted(_SCENARIOS)]
