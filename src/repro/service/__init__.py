"""The supervised sweep service: concurrent submissions over one pool.

Public surface:

* :class:`SweepService` / :class:`Submission` — the in-process service:
  bounded drop-tail admission, cross-submission dedup via the store and
  an in-flight registry, heartbeat watchdog, pool-rebuild → serial
  degradation ladder, graceful drain, store lifecycle management.
* :class:`CheckpointJournal` — per-submission append-only crash-recovery
  log (``kill -9`` + resubmit replays every completed point).
* :class:`JobDirectory` / :func:`serve` / :func:`build_plan` — the
  file-based protocol behind ``repro serve`` / ``submit`` / ``status``.
"""

from repro.service.jobs import JOB_STATES, JobDirectory, build_plan, serve
from repro.service.journal import JOURNAL_SCHEMA, CheckpointJournal
from repro.service.service import (
    ServiceStats,
    Submission,
    SubmissionReport,
    SweepService,
)

__all__ = [
    "CheckpointJournal",
    "JOB_STATES",
    "JOURNAL_SCHEMA",
    "JobDirectory",
    "ServiceStats",
    "Submission",
    "SubmissionReport",
    "SweepService",
    "build_plan",
    "serve",
]
