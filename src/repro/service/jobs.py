"""File-based job directory: the ``repro serve``/``submit``/``status`` wire.

The service itself (:mod:`repro.service.service`) is an in-process object;
the CLI needs a way for *separate processes* to hand it work and read
progress. The cheapest durable RPC is a directory of JSON files with
atomic renames — the same tmp-then-``os.replace`` discipline the result
store uses — so that is the whole protocol:

::

    <job-dir>/
      queue/<job>.json        # submitted requests awaiting pickup
      jobs/<job>/request.json # the request, once the server claimed it
      jobs/<job>/state.json   # lifecycle snapshot (queued/running/done/...)
      jobs/<job>/result.json  # reduced sweep rows, on completion
      journals/<job>.jsonl    # the submission's checkpoint journal
      service.json            # server heartbeat: pid + live status()

* ``repro submit`` drops a request into ``queue/`` (atomic rename — a
  half-written request is never visible).
* ``repro serve`` runs :func:`serve`: claim requests (``os.replace`` into
  ``jobs/<job>/``, so two servers never double-claim), compile the named
  scenario into a plan, and hand it to a :class:`SweepService`. Admission
  overflow leaves the request in the queue for a later poll — the
  *service* queue is drop-tail; the *directory* is the client's retry
  buffer. Finished submissions write their state and reduced rows.
* ``repro status`` reads ``service.json`` + the per-job state files; it
  needs no running server (crash forensics read the same files).

Crash recovery falls out of the layout: on start, :func:`serve` re-submits
every claimed job whose state is not terminal. Because journals live in
``journals/<job>.jsonl`` and requests compile to the *same* plan, the
replay hands back every completed point — a SIGKILL'd server restarted on
the same directory recomputes nothing.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ConfigurationError, InjectedFaultError, ServiceError
from repro.exp.plan import ExperimentPlan
from repro.scenarios import SCENARIO_SUFFIXES, get_scenario, load_scenario
from repro.service.service import Submission, SweepService

#: Job states written to ``state.json``. Terminal: done, failed, crashed.
JOB_STATES = ("queued", "claimed", "running", "done", "failed", "crashed")

_TERMINAL_STATES = frozenset({"done", "failed", "crashed"})


def _write_json(path: Path, doc: Dict[str, object]) -> None:
    """Atomic JSON write (tmp in the same directory, then rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f"job-{os.getpid()}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True, indent=2)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> Optional[Dict[str, object]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None


def build_plan(request: Dict[str, object]) -> ExperimentPlan:
    """Compile a request document into the plan it names.

    Deliberately a pure function of the request: the server that claims a
    job and the restarted server that recovers it build bit-identical
    plans, which is what lets the checkpoint journal's fingerprint match.
    """
    scenario = request.get("scenario")
    if not isinstance(scenario, str) or not scenario:
        raise ConfigurationError(f"job request has no scenario name: {request!r}")
    if scenario.endswith(SCENARIO_SUFFIXES):
        spec = load_scenario(scenario)
    else:
        spec = get_scenario(scenario)
    if request.get("quick", True):
        spec = spec.quick()
    seed = request.get("seed")
    if seed is not None:
        spec = spec.with_overrides(seed=int(seed))
    return spec.expand()


class JobDirectory:
    """Paths + read/write helpers for one job directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.queue_dir = self.root / "queue"
        self.jobs_dir = self.root / "jobs"
        self.journals_dir = self.root / "journals"
        self.service_file = self.root / "service.json"

    # -- client side -----------------------------------------------------------

    def submit(
        self,
        scenario: str,
        *,
        quick: bool = True,
        seed: Optional[int] = None,
        job_id: Optional[str] = None,
    ) -> str:
        """Drop one request into the queue; returns the job id."""
        if job_id is None:
            stem = Path(scenario).stem if scenario.endswith(SCENARIO_SUFFIXES) else scenario
            slug = "".join(c if c.isalnum() or c in "-_" else "_" for c in stem)
            job_id = f"{slug}-{os.getpid()}-{self._next_serial()}"
        if (self.jobs_dir / job_id).exists() or (
            self.queue_dir / f"{job_id}.json"
        ).exists():
            raise ServiceError(f"job id {job_id!r} already exists in {self.root}")
        request: Dict[str, object] = {
            "job": job_id,
            "scenario": scenario,
            "quick": bool(quick),
            "submitted_at": time.time(),
        }
        if seed is not None:
            request["seed"] = int(seed)
        _write_json(self.queue_dir / f"{job_id}.json", request)
        return job_id

    def _next_serial(self) -> int:
        taken = 0
        for d in (self.queue_dir, self.jobs_dir):
            try:
                taken += sum(1 for _ in d.iterdir())
            except OSError:
                pass
        return taken

    # -- server side -----------------------------------------------------------

    def pending(self) -> List[Path]:
        """Queued request files, oldest first (stable tie-break by name)."""
        try:
            files = [p for p in self.queue_dir.iterdir() if p.suffix == ".json"]
        except OSError:
            return []
        entries = []
        for p in files:
            try:
                entries.append((p.stat().st_mtime, p.name, p))
            except OSError:
                continue
        return [p for _m, _n, p in sorted(entries)]

    def claim(self, queued: Path) -> Optional[Dict[str, object]]:
        """Move one queued request under ``jobs/``; None if someone beat us."""
        request = _read_json(queued)
        if request is None:
            return None
        job_id = str(request.get("job") or queued.stem)
        job_dir = self.jobs_dir / job_id
        job_dir.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(queued, job_dir / "request.json")
        except OSError:
            return None
        request["job"] = job_id
        return request

    def requeue(self, request: Dict[str, object]) -> None:
        """Push a claimed request back into the queue (admission overflow)."""
        job_id = str(request["job"])
        _write_json(self.queue_dir / f"{job_id}.json", request)
        try:
            os.unlink(self.jobs_dir / job_id / "request.json")
        except OSError:
            pass

    def orphans(self) -> List[Dict[str, object]]:
        """Claimed jobs with no terminal state — work a dead server left."""
        found = []
        try:
            job_dirs = sorted(self.jobs_dir.iterdir())
        except OSError:
            return []
        for job_dir in job_dirs:
            request = _read_json(job_dir / "request.json")
            if request is None:
                continue
            state = _read_json(job_dir / "state.json") or {}
            if state.get("state") not in _TERMINAL_STATES:
                found.append(request)
        return found

    def write_state(self, job_id: str, doc: Dict[str, object]) -> None:
        _write_json(self.jobs_dir / job_id / "state.json", doc)

    def write_result(self, job_id: str, rows: List[Dict[str, object]]) -> None:
        _write_json(self.jobs_dir / job_id / "result.json", {"rows": rows})

    def write_service(self, doc: Dict[str, object]) -> None:
        _write_json(self.service_file, doc)

    # -- status side -----------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """Everything ``repro status`` shows, from files alone."""
        service = _read_json(self.service_file)
        jobs: List[Dict[str, object]] = []
        try:
            job_dirs = sorted(self.jobs_dir.iterdir())
        except OSError:
            job_dirs = []
        for job_dir in job_dirs:
            state = _read_json(job_dir / "state.json")
            if state is None:
                request = _read_json(job_dir / "request.json")
                state = {"job": job_dir.name, "state": "claimed"}
                if request is not None:
                    state["scenario"] = request.get("scenario")
            jobs.append(state)
        for queued in self.pending():
            request = _read_json(queued) or {}
            jobs.append(
                {
                    "job": request.get("job", queued.stem),
                    "scenario": request.get("scenario"),
                    "state": "queued",
                }
            )
        return {"root": str(self.root), "service": service, "jobs": jobs}


def _job_state_doc(
    job_id: str, request: Dict[str, object], sub: Optional[Submission], state: str
) -> Dict[str, object]:
    doc: Dict[str, object] = {
        "job": job_id,
        "scenario": request.get("scenario"),
        "state": state,
        "updated_at": time.time(),
    }
    if sub is not None:
        doc["report"] = sub.report.to_dict()
    return doc


def serve(
    directory: Union[str, Path, JobDirectory],
    service: SweepService,
    *,
    poll_s: float = 0.1,
    max_idle_s: Optional[float] = None,
    max_jobs: Optional[int] = None,
) -> int:
    """Run the pickup loop: the body of ``repro serve``.

    The *service* must not be started yet; this function owns its
    lifecycle (start, drain-on-exit). Returns the number of jobs brought
    to a terminal state. Exits when ``max_idle_s`` passes with nothing
    queued or running, or after ``max_jobs`` terminal jobs; with neither
    bound it serves until interrupted (KeyboardInterrupt drains cleanly).
    """
    jobdir = directory if isinstance(directory, JobDirectory) else JobDirectory(directory)
    if service.journal_dir is None:
        service.journal_dir = jobdir.journals_dir
    service.start()
    active: Dict[str, Dict[str, object]] = {}  # job_id -> request
    handles: Dict[str, Submission] = {}
    finished = 0
    last_progress = time.monotonic()
    try:
        # A dead server's claimed-but-unfinished jobs go back first: their
        # journals replay, so recovery costs no recomputation.
        for request in jobdir.orphans():
            jobdir.requeue(request)
        while True:
            progressed = False
            for queued in jobdir.pending():
                request = jobdir.claim(queued)
                if request is None:
                    continue
                job_id = str(request["job"])
                try:
                    plan = build_plan(request)
                except ConfigurationError as exc:
                    jobdir.write_state(
                        job_id,
                        {"job": job_id, "state": "failed", "error": str(exc)},
                    )
                    finished += 1
                    progressed = True
                    continue
                try:
                    sub = service.submit(plan, name=job_id)
                except InjectedFaultError as exc:
                    # Chaos: the "client" died mid-submission. The service
                    # carries on; the job is marked crashed for forensics.
                    jobdir.write_state(
                        job_id, {"job": job_id, "state": "crashed", "error": str(exc)}
                    )
                    finished += 1
                    progressed = True
                    continue
                except ServiceError:
                    # Admission drop-tail: the directory is the client's
                    # retry buffer — back into the queue for a later poll.
                    jobdir.requeue(request)
                    break
                active[job_id] = request
                handles[job_id] = sub
                jobdir.write_state(job_id, _job_state_doc(job_id, request, sub, "running"))
                progressed = True

            for job_id in list(handles):
                sub = handles[job_id]
                if not sub.done:
                    continue
                request = active.pop(job_id)
                del handles[job_id]
                state = "done" if sub.state == "done" and sub.report.failed == 0 else "failed"
                jobdir.write_state(job_id, _job_state_doc(job_id, request, sub, state))
                sweep = sub.sweep(timeout=1.0)
                rows = [
                    {"series": label, "x": x, "y": y, "yerr": yerr}
                    for label in sweep.labels()
                    for x, y, yerr in zip(
                        sweep.series[label].x,
                        sweep.series[label].y,
                        sweep.series[label].yerr,
                    )
                ]
                jobdir.write_result(job_id, rows)
                finished += 1
                progressed = True

            doc = service.status()
            doc["pid"] = os.getpid()
            doc["updated_at"] = time.time()
            jobdir.write_service(doc)

            if progressed:
                last_progress = time.monotonic()
            if max_jobs is not None and finished >= max_jobs:
                break
            idle = not handles and not jobdir.pending()
            if idle and max_idle_s is not None:
                if time.monotonic() - last_progress >= max_idle_s:
                    break
            time.sleep(poll_s)
    finally:
        service.shutdown(drain=True)
        doc = service.status()
        doc["pid"] = os.getpid()
        doc["stopped_at"] = time.time()
        jobdir.write_service(doc)
    return finished
