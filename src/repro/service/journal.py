"""Per-submission append-only checkpoint journals (crash recovery).

The content-addressed store already makes a *cached* sweep resumable, but
a service must survive harder failures: the store may be disabled, size-
capped away, or rotting, and a ``kill -9`` can land between a point
finishing and anything else happening. The journal closes that gap with
the cheapest durable structure there is — an append-only JSONL file per
submission:

* line 0 is a **header** binding the journal to one exact plan (name,
  :meth:`~repro.exp.plan.ExperimentPlan.fingerprint`, point count);
* every completed point appends one **record** line carrying its plan
  index, content key, and full serialized result.

Appends are flushed to the OS per record, so a SIGKILL'd service loses at
most the point that was mid-write. On restart, :meth:`CheckpointJournal.
replay` streams the file back: a torn final line (the kill landed inside
a ``write``) is skipped silently, a header that does not match the
resubmitted plan refuses to replay (the journal is rotated aside, never
trusted), and every intact record hands its result straight back — zero
recomputation of completed points, independent of the store.

The journal is deliberately *per submission*: two submissions sharing
points each journal their own copy, so either can be restarted alone.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, TextIO, Union

from repro.exp.plan import ExperimentPlan, PointResult
from repro.mem.result import LevelStats

#: Bump when the journal line format changes incompatibly.
JOURNAL_SCHEMA = 1


def _encode_result(result: PointResult) -> dict:
    return {
        "y": result.y,
        "yerr": result.yerr,
        "mem_stats": result.mem_stats.snapshot() if result.mem_stats is not None else None,
        "extras": result.extras,
        "elapsed_s": result.elapsed_s,
    }


def _decode_result(doc: dict) -> PointResult:
    return PointResult(
        y=float(doc["y"]),
        yerr=float(doc.get("yerr", 0.0)),
        mem_stats=(
            LevelStats.from_snapshot(doc["mem_stats"])
            if doc.get("mem_stats") is not None
            else None
        ),
        extras={str(k): float(v) for k, v in (doc.get("extras") or {}).items()},
        elapsed_s=float(doc.get("elapsed_s", 0.0)),
    )


class CheckpointJournal:
    """One submission's append-only completion log."""

    def __init__(self, path: Union[str, Path], plan: ExperimentPlan, *, name: str) -> None:
        self.path = Path(path)
        self.name = name
        self.fingerprint = plan.fingerprint()
        self.total = len(plan)
        self._fh: Optional[TextIO] = None

    # -- recovery (read side) --------------------------------------------------

    def replay(self) -> Dict[int, PointResult]:
        """Completed points recorded by a previous life of this submission.

        Returns ``{plan_index: result}`` for every intact record whose
        header matches this plan. A missing file means a fresh submission;
        a mismatched or unreadable header means a *stale* journal — it is
        rotated to ``*.stale`` (never silently overwritten: the bytes may
        be someone's forensics) and an empty map returned. Torn or
        corrupt record lines are skipped: the point simply recomputes.
        """
        try:
            fh = open(self.path, "r", encoding="utf-8")
        except OSError:
            return {}
        completed: Dict[int, PointResult] = {}
        with fh:
            header_ok = False
            for lineno, line in enumerate(fh):
                try:
                    doc = json.loads(line)
                except ValueError:
                    if lineno == 0:
                        break  # unreadable header: stale journal
                    continue  # torn mid-write record: recompute that point
                if lineno == 0:
                    header_ok = (
                        isinstance(doc, dict)
                        and doc.get("journal") == JOURNAL_SCHEMA
                        and doc.get("fingerprint") == self.fingerprint
                        and doc.get("total") == self.total
                    )
                    if not header_ok:
                        break
                    continue
                try:
                    index = int(doc["i"])
                    if not 0 <= index < self.total:
                        continue
                    completed[index] = _decode_result(doc["r"])
                except (KeyError, TypeError, ValueError):
                    continue
        if not header_ok and self.path.exists():
            try:
                os.replace(self.path, self.path.with_suffix(self.path.suffix + ".stale"))
            except OSError:
                pass
            return {}
        return completed

    # -- checkpointing (write side) --------------------------------------------

    def open(self, *, resuming: bool) -> None:
        """Open for appending; a fresh journal writes its header first.

        ``resuming`` says :meth:`replay` validated an existing header — we
        append below it. Otherwise any previous file was already rotated
        or absent, and a new header line starts the log.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resuming and self.path.exists():
            self._fh = open(self.path, "a", encoding="utf-8")
            return
        self._fh = open(self.path, "w", encoding="utf-8")
        header = {
            "journal": JOURNAL_SCHEMA,
            "name": self.name,
            "fingerprint": self.fingerprint,
            "total": self.total,
        }
        self._fh.write(json.dumps(header, sort_keys=True) + "\n")
        self._fh.flush()

    def record(self, index: int, key: str, result: PointResult) -> None:
        """Append one completed point (flushed so a SIGKILL keeps it)."""
        if self._fh is None:
            return
        line = json.dumps(
            {"i": index, "k": key, "r": _encode_result(result)}, sort_keys=True
        )
        self._fh.write(line + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None
