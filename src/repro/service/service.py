"""The supervising sweep service: many submissions, one worker pool.

:class:`SweepService` turns the one-shot :class:`~repro.exp.runner.Runner`
into a long-running facility. Clients submit whole
:class:`~repro.exp.plan.ExperimentPlan` grids concurrently; a single
supervisor thread multiplexes every admitted submission's points onto one
shared process pool, and the content-addressed store becomes what the
paper says hot match state should be — a semi-permanent shared cache with
admission, integrity, and eviction, one layer up.

The contract, in order of importance:

1. **Equivalence.** Each submission's results are repr-identical to a
   fault-free serial ``Runner.run`` of the same plan. Every point is an
   independent deterministic simulation and results are placed by plan
   index, so sharing work can't change anyone's answer.
2. **Cross-submission dedup.** Before a point executes it is resolved
   against (a) its journal, (b) the store, and (c) the **in-flight
   registry** keyed by content key. Two users submitting overlapping
   grids share one simulation of each shared point; the registry covers
   concurrent overlap, the store covers temporal overlap.
3. **Admission control.** The submission queue is bounded (drop-tail):
   a submission arriving at a full service is *rejected* — accounted in
   an :class:`~repro.matching.bounded.AdmissionStats`, exactly the
   semantics the bounded match queues apply to eager messages — rather
   than growing an unbounded backlog. ``submit`` raises
   :class:`~repro.errors.AdmissionError`; ``try_submit`` returns None.
4. **Crash recovery.** With a ``journal_dir``, every completed point is
   appended (flushed) to the submission's
   :class:`~repro.service.journal.CheckpointJournal`. A ``kill -9`` plus
   restart-and-resubmit replays the journal and recomputes **zero**
   completed points — with or without a store.
5. **Degradation ladder.** A worker that misses its ``heartbeat_s``
   deadline is *quarantined*: the pool's processes are terminated, the
   overdue point is charged an attempt (retryable with the same
   deterministic backoff as the Runner), innocent in-flight points are
   rescheduled at their same attempt, and a fresh pool replaces the dead
   one. A broken pool (worker crash) is rebuilt ``max_pool_rebuilds``
   times, then the service degrades to in-supervisor serial execution —
   still serving, just slower.
6. **Graceful drain.** ``shutdown(drain=True)`` finishes every admitted
   submission first; ``drain=False`` still harvests already-finished
   futures into the store and journals before terminating workers, so an
   impatient shutdown never discards completed simulation.

Store lifecycle: on ``start()`` the service runs the store's integrity
sweep (quarantining rot before any submission can read it) and applies
``max_store_bytes`` LRU eviction, re-applied periodically as results land.

Service-level chaos (:class:`~repro.faults.ServiceFaultPlan`) injects
submission-time client crashes, worker heartbeat stalls, and store
bit-rot during concurrent access — the failure modes the tests and the CI
chaos smoke drive through all of the above.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.analysis.series import Sweep
from repro.errors import AdmissionError, ConfigurationError, ServiceError
from repro.exp.plan import ExperimentPlan, PointResult, PointSpec
from repro.exp.producers import execute_point
from repro.exp.runner import backoff_delay
from repro.exp.store import ResultStore
from repro.faults.service import ServiceFaultPlan
from repro.matching.bounded import AdmissionStats
from repro.service.journal import CheckpointJournal

#: How many store puts between periodic LRU eviction passes.
_EVICT_EVERY_PUTS = 16

#: Submission lifecycle states.
SUBMISSION_STATES = ("queued", "running", "done", "aborted")


@dataclass
class SubmissionReport:
    """Per-submission accounting (every point lands in exactly one bucket)."""

    name: str = ""
    total: int = 0
    #: Points whose execution this submission triggered (first subscriber).
    executed: int = 0
    #: Points served from the result store at resolve time.
    cached: int = 0
    #: Points shared with another subscription (in-flight registry dedup).
    shared: int = 0
    #: Points recovered from the checkpoint journal (restart resume).
    replayed: int = 0
    #: Points that exhausted every attempt (their result slot stays None).
    failed: int = 0
    retried: int = 0
    elapsed_s: float = 0.0
    state: str = "queued"
    #: Human-readable failure notes (one per failed point).
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.state == "done" and self.failed == 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "total": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "shared": self.shared,
            "replayed": self.replayed,
            "failed": self.failed,
            "retried": self.retried,
            "elapsed_s": self.elapsed_s,
            "state": self.state,
            "failures": list(self.failures),
        }


@dataclass
class ServiceStats:
    """Service-lifetime counters (the ``repro status`` headline)."""

    submitted: int = 0
    completed: int = 0
    #: Distinct point executions across all submissions (dedup makes this
    #: the number of *unique* fresh points, not the sum of plan sizes).
    executed: int = 0
    cached: int = 0
    shared: int = 0
    replayed: int = 0
    failed_points: int = 0
    retried: int = 0
    #: Workers quarantined by the heartbeat watchdog.
    stalled: int = 0
    crashes: int = 0
    pool_rebuilds: int = 0
    degraded_serial: bool = False
    rot_injected: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "executed": self.executed,
            "cached": self.cached,
            "shared": self.shared,
            "replayed": self.replayed,
            "failed_points": self.failed_points,
            "retried": self.retried,
            "stalled": self.stalled,
            "crashes": self.crashes,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded_serial": self.degraded_serial,
            "rot_injected": self.rot_injected,
        }


class Submission:
    """A client's handle on one admitted plan."""

    def __init__(self, name: str, plan: ExperimentPlan) -> None:
        self.name = name
        self.plan = plan
        self.results: List[Optional[PointResult]] = [None] * len(plan)
        self.report = SubmissionReport(name=name, total=len(plan))
        self.journal: Optional[CheckpointJournal] = None
        self._replayed: Dict[int, PointResult] = {}
        self._pending = 0
        self._started_at = time.perf_counter()
        self._done = threading.Event()

    @property
    def state(self) -> str:
        return self.report.state

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> List[Optional[PointResult]]:
        """Block until the submission finishes; results in plan order.

        Failed points (exhausted attempts, or an aborted shutdown) are
        None slots — the ``on_error="collect"`` convention.
        """
        if not self._done.wait(timeout):
            raise ServiceError(
                f"submission {self.name!r} did not finish within {timeout:g}s"
            )
        return self.results

    def sweep(self, timeout: Optional[float] = None) -> Sweep:
        """Wait and reduce (plan order — the serial-equivalence point)."""
        results = self.wait(timeout)
        return self.plan.reduce(results, allow_missing=True)


@dataclass
class _KeyWork:
    """One distinct computation the service currently owes somebody."""

    key: str
    spec: PointSpec
    subscribers: List[Tuple[Submission, int]] = field(default_factory=list)
    attempt: int = 0


class SweepService:
    """See module docstring. Use as a context manager or ``start()``/
    ``shutdown()``; ``submit()``/``try_submit()`` from any thread."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        journal_dir: Optional[Union[str, Path]] = None,
        queue_capacity: int = 8,
        heartbeat_s: Optional[float] = None,
        retries: int = 0,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        max_pool_rebuilds: int = 1,
        max_store_bytes: Optional[int] = None,
        fault_plan: Optional[ServiceFaultPlan] = None,
        integrity_sweep: bool = True,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ConfigurationError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        if backoff_s < 0 or backoff_cap_s < 0:
            raise ConfigurationError("backoff_s and backoff_cap_s must be >= 0")
        if max_pool_rebuilds < 0:
            raise ConfigurationError(
                f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}"
            )
        self.jobs = jobs
        self.store = store
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.queue_capacity = queue_capacity
        self.heartbeat_s = heartbeat_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.max_pool_rebuilds = max_pool_rebuilds
        self.max_store_bytes = max_store_bytes
        self.fault_plan = (
            fault_plan if fault_plan is not None else ServiceFaultPlan.from_env()
        )
        self.integrity_sweep = integrity_sweep

        self.admission = AdmissionStats()
        self.stats = ServiceStats()
        #: Entries quarantined by the startup integrity sweep.
        self.swept_corrupt = 0

        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._incoming: Deque[Submission] = deque()
        self._active_n = 0  # queued + running submissions (admission gauge)
        self._submissions: List[Submission] = []  # every admitted, in order
        self._submit_counter = 0  # offered submissions (fault addressing)
        self._dispatch_counter = 0  # points handed to workers
        self._put_counter = 0  # store writes (fault addressing + evict cadence)
        self._closing = False
        self._abort = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "SweepService":
        """Run store lifecycle duties, then launch the supervisor thread."""
        if self._thread is not None:
            raise ServiceError("service already started")
        if self.store is not None:
            if self.integrity_sweep:
                self.swept_corrupt = self.store.integrity_sweep()
            if self.max_store_bytes is not None:
                self.store.evict_lru(self.max_store_bytes)
        self._thread = threading.Thread(
            target=self._serve_loop, name="sweep-service", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the service.

        ``drain=True`` finishes every admitted submission first (graceful);
        ``drain=False`` aborts: already-finished futures are still
        harvested into the store/journals, unfinished submissions complete
        with None slots in state ``"aborted"``.
        """
        with self._lock:
            self._closing = True
            if not drain:
                self._abort = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise ServiceError("service supervisor did not stop in time")
            self._thread = None

    def __enter__(self) -> "SweepService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # -- submission (any thread) -----------------------------------------------

    def submit(self, plan: ExperimentPlan, *, name: Optional[str] = None) -> Submission:
        """Admit one plan, or raise :class:`AdmissionError` (drop-tail)."""
        with self._lock:
            if self._closing:
                raise ServiceError("service is shutting down; submission refused")
            nth = self._submit_counter
            self._submit_counter += 1
            self.admission.offered += 1
            if self.fault_plan is not None and self.fault_plan.submit_crashes(nth):
                # The injected client death: admission saw the offer, but no
                # slot is held and nothing is scheduled — the service must
                # carry on as if the client vanished mid-handshake (it did).
                from repro.errors import InjectedFaultError

                raise InjectedFaultError(
                    f"injected submit-crash fault (submission #{nth})"
                )
            if self._active_n >= self.queue_capacity:
                self.admission.rejected += 1
                raise AdmissionError(
                    f"submission queue full ({self._active_n}/{self.queue_capacity}); "
                    "drop-tail rejected (retry later or raise queue_capacity)"
                )
            self.admission.accepted += 1
            self._active_n += 1
            self.stats.submitted += 1
            sub = Submission(name or f"sub-{nth}", plan)
            self._submissions.append(sub)
            self._incoming.append(sub)
        self._wake.set()
        return sub

    def try_submit(
        self, plan: ExperimentPlan, *, name: Optional[str] = None
    ) -> Optional[Submission]:
        """Like :meth:`submit` but returns None on rejection (the
        :meth:`~repro.matching.bounded.BoundedQueue.try_post` spelling)."""
        try:
            return self.submit(plan, name=name)
        except AdmissionError:
            return None

    def status(self) -> Dict[str, object]:
        """A JSON-able snapshot: admission, service stats, store, submissions."""
        with self._lock:
            subs = [s.report.to_dict() for s in self._submissions]
        doc: Dict[str, object] = {
            "admission": {
                "offered": self.admission.offered,
                "accepted": self.admission.accepted,
                "rejected": self.admission.rejected,
                "capacity": self.queue_capacity,
            },
            "service": self.stats.to_dict(),
            "submissions": subs,
        }
        if self.store is not None:
            stats = self.store.stats().to_dict()
            stats["swept_corrupt"] = self.swept_corrupt
            doc["store"] = stats
        if self.fault_plan:
            doc["injected_faults"] = self.fault_plan.describe()
        return doc

    # -- supervisor internals --------------------------------------------------

    def _journal_for(self, sub: Submission) -> Optional[CheckpointJournal]:
        if self.journal_dir is None:
            return None
        slug = "".join(c if c.isalnum() or c in "-_." else "_" for c in sub.name)
        return CheckpointJournal(
            self.journal_dir / f"{slug}.jsonl", sub.plan, name=sub.name
        )

    def _resolve_submission(
        self,
        sub: Submission,
        registry: Dict[str, _KeyWork],
        ready: Deque[Tuple[str, int]],
    ) -> None:
        """Place every point of a new submission: journal, store, registry,
        or fresh work — in plan order, so dedup is deterministic."""
        sub.report.state = "running"
        sub.journal = self._journal_for(sub)
        replayed: Dict[int, PointResult] = {}
        if sub.journal is not None:
            replayed = sub.journal.replay()
            sub.journal.open(resuming=bool(replayed))
        for i, spec in enumerate(sub.plan.points):
            hit = replayed.get(i)
            if hit is not None:
                sub.results[i] = hit
                sub.report.replayed += 1
                self.stats.replayed += 1
                continue
            key = spec.content_key()
            work = registry.get(key)
            if work is not None:
                work.subscribers.append((sub, i))
                sub._pending += 1
                continue
            stored = self.store.get(spec) if self.store is not None else None
            if stored is not None:
                sub.results[i] = stored
                sub.report.cached += 1
                self.stats.cached += 1
                self._journal_point(sub, i, spec, stored)
                continue
            work = _KeyWork(key=key, spec=spec, subscribers=[(sub, i)])
            registry[key] = work
            sub._pending += 1
            ready.append((key, 0))
        if sub._pending == 0:
            self._finalize(sub)

    def _journal_point(
        self, sub: Submission, i: int, spec: PointSpec, result: PointResult
    ) -> None:
        if sub.journal is not None:
            sub.journal.record(i, spec.content_key(), result)

    def _finalize(self, sub: Submission, state: str = "done") -> None:
        sub.report.state = state
        sub.report.elapsed_s = time.perf_counter() - sub._started_at
        if sub.journal is not None:
            sub.journal.close()
        with self._lock:
            self._active_n -= 1
        self.stats.completed += 1
        sub._done.set()

    def _store_result(self, work: _KeyWork, result: PointResult) -> None:
        """Persist one fresh result; service fault plan may rot it after."""
        if self.store is None:
            return
        nth = self._put_counter
        self._put_counter += 1
        self.store.put(work.spec, result)
        if self.fault_plan is not None and self.fault_plan.rots_put(nth):
            if self.store.corrupt(work.spec):
                self.stats.rot_injected += 1
        if (
            self.max_store_bytes is not None
            and self._put_counter % _EVICT_EVERY_PUTS == 0
        ):
            self.store.evict_lru(self.max_store_bytes)

    def _complete_work(
        self, registry: Dict[str, _KeyWork], work: _KeyWork, result: PointResult
    ) -> None:
        """Deliver one finished computation to every subscriber."""
        registry.pop(work.key, None)
        self._store_result(work, result)
        self.stats.executed += 1
        for n, (sub, i) in enumerate(work.subscribers):
            sub.results[i] = result
            if n == 0:
                sub.report.executed += 1
            else:
                sub.report.shared += 1
                self.stats.shared += 1
            self._journal_point(sub, i, work.spec, result)
            sub._pending -= 1
            if sub._pending == 0:
                self._finalize(sub)

    def _fail_work(
        self,
        registry: Dict[str, _KeyWork],
        work: _KeyWork,
        attempts: int,
        outcome: str,
        exc: Optional[BaseException],
    ) -> None:
        """A computation exhausted its attempts: collect-style failure for
        every subscriber (their slots stay None; the sweep skips them)."""
        registry.pop(work.key, None)
        note = (
            f"{work.spec.series!r}@{work.spec.x:g}: {outcome} after "
            f"{attempts} attempt(s)"
            + (f" [{type(exc).__name__}: {exc}]" if exc is not None else "")
        )
        for sub, _i in work.subscribers:
            sub.report.failed += 1
            self.stats.failed_points += 1
            sub.report.failures.append(note)
            sub._pending -= 1
            if sub._pending == 0:
                self._finalize(sub)

    def _after_failed_attempt(
        self,
        registry: Dict[str, _KeyWork],
        work: _KeyWork,
        outcome: str,
        exc: Optional[BaseException],
        delayed: List[Tuple[float, str, int]],
    ) -> None:
        """Schedule a deterministic-backoff retry or finalize the failure."""
        attempt = work.attempt
        if attempt < self.retries and not isinstance(exc, ConfigurationError):
            self.stats.retried += 1
            for sub, _i in work.subscribers:
                sub.report.retried += 1
            work.attempt += 1
            eligible = time.perf_counter() + backoff_delay(
                work.key, attempt, self.backoff_s, self.backoff_cap_s
            )
            delayed.append((eligible, work.key, work.attempt))
            return
        self._fail_work(registry, work, attempt + 1, outcome, exc)

    def _next_fault(self):
        """The stall (if any) for the next dispatched point."""
        nth = self._dispatch_counter
        self._dispatch_counter += 1
        if self.fault_plan is not None:
            return self.fault_plan.stall_for(nth)
        return None

    def _terminate_pool(self, pool: ProcessPoolExecutor) -> None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:
                pass

    def _drain_finished(
        self, registry: Dict[str, _KeyWork], in_flight: Dict
    ) -> None:
        """Harvest already-finished futures (no waiting): their results are
        real simulation and must reach the store/journals even on abort."""
        for fut, (work, _started) in list(in_flight.items()):
            if fut.done() and not fut.cancelled() and fut.exception() is None:
                self._complete_work(registry, work, fut.result())
        in_flight.clear()

    # -- the supervisor loop ---------------------------------------------------

    def _serve_loop(self) -> None:  # noqa: C901 - one long supervision loop
        registry: Dict[str, _KeyWork] = {}  # the in-flight registry
        ready: Deque[Tuple[str, int]] = deque()
        delayed: List[Tuple[float, str, int]] = []  # (eligible_at, key, attempt)
        in_flight: Dict = {}  # future -> (work, started_at)
        pool: Optional[ProcessPoolExecutor] = None
        rebuilds_left = self.max_pool_rebuilds
        try:
            while True:
                # New submissions resolve first: store hits and journal
                # replays complete synchronously, fresh keys join `ready`.
                while True:
                    with self._lock:
                        sub = self._incoming.popleft() if self._incoming else None
                    if sub is None:
                        break
                    self._resolve_submission(sub, registry, ready)

                with self._lock:
                    closing, aborting = self._closing, self._abort
                    idle = (
                        not self._incoming
                        and not ready
                        and not delayed
                        and not in_flight
                    )
                if aborting:
                    break
                if closing and idle:
                    break
                if idle:
                    # Nothing to do: sleep until a submit/shutdown wakes us.
                    self._wake.wait(timeout=0.2)
                    self._wake.clear()
                    continue

                # Promote backoff-delayed retries whose timer elapsed.
                now = time.perf_counter()
                if delayed:
                    still = []
                    for eligible, key, attempt in delayed:
                        if eligible <= now and key in registry:
                            ready.append((key, attempt))
                        elif key in registry:
                            still.append((eligible, key, attempt))
                    delayed[:] = still

                if pool is None and not self.stats.degraded_serial and ready:
                    pool = ProcessPoolExecutor(max_workers=self.jobs)

                if self.stats.degraded_serial:
                    # Bottom of the ladder: serve one point per iteration
                    # in-process, still checking for new submissions and
                    # shutdown between points.
                    if ready:
                        key, _attempt = ready.popleft()
                        work = registry.get(key)
                        if work is not None:
                            self._run_serial(registry, work, delayed)
                    elif delayed:
                        next_at = min(e for e, _k, _a in delayed)
                        self._wake.wait(
                            timeout=max(0.0, min(next_at - time.perf_counter(), 0.2))
                        )
                        self._wake.clear()
                    continue

                # Dispatch up to the pool width.
                broken: Optional[BaseException] = None
                while ready and pool is not None and len(in_flight) < self.jobs:
                    key, _attempt = ready.popleft()
                    work = registry.get(key)
                    if work is None:
                        continue
                    try:
                        fut = pool.submit(
                            execute_point, work.spec, self._next_fault(), True
                        )
                    except BrokenExecutor as exc:
                        ready.appendleft((key, work.attempt))
                        broken = exc
                        break
                    in_flight[fut] = (work, time.perf_counter())

                if broken is None and in_flight:
                    now = time.perf_counter()
                    tick = 0.1
                    if self.heartbeat_s is not None:
                        oldest = min(started for _w, started in in_flight.values())
                        tick = min(
                            tick, max(0.005, oldest + self.heartbeat_s - now)
                        )
                    if delayed:
                        nearest = min(e for e, _k, _a in delayed)
                        tick = min(tick, max(0.005, nearest - now))
                    finished, _ = wait(
                        set(in_flight), timeout=tick, return_when=FIRST_COMPLETED
                    )
                    for fut in finished:
                        work, _started = in_flight.pop(fut)
                        try:
                            result = fut.result()
                        except BrokenExecutor as exc:
                            self.stats.crashes += 1
                            self._after_failed_attempt(
                                registry, work, "crash", exc, delayed
                            )
                            broken = exc
                            break
                        except Exception as exc:
                            self._after_failed_attempt(
                                registry, work, "error", exc, delayed
                            )
                        else:
                            self._complete_work(registry, work, result)

                if broken is not None:
                    pool, rebuilds_left = self._handle_pool_break(
                        registry, pool, in_flight, delayed, broken, rebuilds_left
                    )
                    continue

                pool = self._heartbeat_watchdog(
                    registry, pool, in_flight, ready, delayed
                )
        finally:
            self._drain_finished(registry, in_flight)
            if pool is not None:
                self._terminate_pool(pool)
            # Anything still unresolved is an abort: hand clients their
            # partial results rather than a hang.
            for sub in list(self._submissions):
                if not sub.done:
                    sub._pending = 0
                    self._finalize(sub, state="aborted")

    def _run_serial(
        self,
        registry: Dict[str, _KeyWork],
        work: _KeyWork,
        delayed: List[Tuple[float, str, int]],
    ) -> None:
        """Degraded-mode execution of one computation in the supervisor."""
        try:
            result = execute_point(work.spec, self._next_fault(), False)
        except Exception as exc:
            self._after_failed_attempt(registry, work, "error", exc, delayed)
            return
        self._complete_work(registry, work, result)

    def _handle_pool_break(
        self,
        registry: Dict[str, _KeyWork],
        pool: Optional[ProcessPoolExecutor],
        in_flight: Dict,
        delayed: List[Tuple[float, str, int]],
        broken: BaseException,
        rebuilds_left: int,
    ) -> Tuple[Optional[ProcessPoolExecutor], int]:
        """A worker died. Harvest survivors, charge crashed attempts, then
        rebuild the pool — or degrade to serial once the budget is spent."""
        for fut, (work, _started) in list(in_flight.items()):
            in_flight.pop(fut)
            if fut.done() and not fut.cancelled() and fut.exception() is None:
                self._complete_work(registry, work, fut.result())
                continue
            self.stats.crashes += 1
            self._after_failed_attempt(registry, work, "crash", broken, delayed)
        if pool is not None:
            self._terminate_pool(pool)
        if rebuilds_left > 0:
            self.stats.pool_rebuilds += 1
            warnings.warn(
                f"service worker pool broke ({broken!r}); rebuilding "
                f"({rebuilds_left - 1} rebuild(s) left before degrading)",
                RuntimeWarning,
                stacklevel=2,
            )
            return ProcessPoolExecutor(max_workers=self.jobs), rebuilds_left - 1
        self.stats.degraded_serial = True
        warnings.warn(
            f"service worker pool broke again ({broken!r}) with no rebuild "
            "budget left; degrading to in-supervisor serial execution",
            RuntimeWarning,
            stacklevel=2,
        )
        return None, 0

    def _heartbeat_watchdog(
        self,
        registry: Dict[str, _KeyWork],
        pool: Optional[ProcessPoolExecutor],
        in_flight: Dict,
        ready: Deque[Tuple[str, int]],
        delayed: List[Tuple[float, str, int]],
    ) -> Optional[ProcessPoolExecutor]:
        """Quarantine workers that missed their heartbeat deadline.

        A stalled worker cannot be preempted individually, so the pool's
        processes are terminated wholesale: the overdue computation is
        charged a stall attempt (retryable), innocent in-flight points are
        rescheduled at their same attempt number, and a fresh pool
        replaces the quarantined one (an intentional rebuild, outside the
        crash budget) — PR 3's timeout ladder, now under a shared pool.
        """
        if self.heartbeat_s is None or not in_flight or pool is None:
            return pool
        now = time.perf_counter()
        overdue = [
            fut
            for fut, (_work, started) in in_flight.items()
            if now - started > self.heartbeat_s
        ]
        if not overdue:
            return pool
        for fut in overdue:
            work, _started = in_flight.pop(fut)
            if fut.done() and not fut.cancelled() and fut.exception() is None:
                # Completed in the window between wait() and this scan.
                self._complete_work(registry, work, fut.result())
                continue
            self.stats.stalled += 1
            self._after_failed_attempt(registry, work, "stall", None, delayed)
        for fut in list(in_flight):
            work, _started = in_flight.pop(fut)
            if fut.done() and not fut.cancelled() and fut.exception() is None:
                self._complete_work(registry, work, fut.result())
            else:
                ready.append((work.key, work.attempt))
        self._terminate_pool(pool)
        self.stats.pool_rebuilds += 1
        return ProcessPoolExecutor(max_workers=self.jobs)
