"""Discrete-event simulation core.

This package provides the minimal kernel the rest of the library builds on:

* :class:`~repro.sim.clock.Clock` -- a cycle-granularity simulated clock.
* :class:`~repro.sim.rng.RngRegistry` -- named, deterministic random streams.
* :class:`~repro.sim.events.EventQueue` -- a time-ordered event queue.
* :class:`~repro.sim.kernel.Simulator` -- a simpy-like coroutine kernel used
  by the multi-rank mini-MPI runtime.
* :class:`~repro.sim.resources.SpinLock` -- a lock with deterministic
  contention accounting.

Everything in the library is deterministic: all randomness flows through
:class:`RngRegistry` streams derived from a single seed.
"""

from repro.sim.clock import Clock, cycles_to_ns, cycles_to_seconds, ns_to_cycles
from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Process, Simulator, Timeout, Waiter
from repro.sim.resources import SpinLock
from repro.sim.rng import RngRegistry, stream_seed

__all__ = [
    "Clock",
    "Event",
    "EventQueue",
    "Process",
    "RngRegistry",
    "Simulator",
    "SpinLock",
    "Timeout",
    "Waiter",
    "cycles_to_ns",
    "cycles_to_seconds",
    "ns_to_cycles",
    "stream_seed",
]
