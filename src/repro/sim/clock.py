"""Simulated clocks.

The whole library accounts time in *cycles* of a specific core clock; the
conversion helpers translate to wall-clock units given a frequency in GHz.
Cycles are floats so that fractional costs (e.g. amortized per-byte copy
costs) accumulate without rounding bias.
"""

from __future__ import annotations

from repro.errors import SimulationError


def cycles_to_ns(cycles: float, ghz: float) -> float:
    """Convert a cycle count to nanoseconds for a clock running at *ghz*."""
    if ghz <= 0:
        raise SimulationError(f"clock frequency must be positive, got {ghz}")
    return cycles / ghz


def cycles_to_seconds(cycles: float, ghz: float) -> float:
    """Convert a cycle count to seconds for a clock running at *ghz*."""
    return cycles_to_ns(cycles, ghz) * 1e-9


def ns_to_cycles(ns: float, ghz: float) -> float:
    """Convert nanoseconds to cycles for a clock running at *ghz*."""
    if ghz <= 0:
        raise SimulationError(f"clock frequency must be positive, got {ghz}")
    return ns * ghz


class Clock:
    """A monotonically advancing simulated clock, in cycles.

    The clock is shared between the matching engine, the hot-cache heater and
    the benchmark harnesses so that all of them observe a single consistent
    notion of "now".
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance(self, cycles: float) -> float:
        """Advance the clock by *cycles* (must be non-negative); returns now."""
        if cycles < 0:
            raise SimulationError(f"cannot advance clock by {cycles} cycles")
        self.now += cycles
        return self.now

    def advance_to(self, when: float) -> float:
        """Advance the clock to an absolute time (must not be in the past)."""
        if when < self.now:
            raise SimulationError(
                f"cannot move clock backwards: now={self.now}, target={when}"
            )
        self.now = when
        return self.now

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock; only benchmark harnesses should do this."""
        self.now = float(start)

    def ns(self, ghz: float) -> float:
        """Current time in nanoseconds for a clock at *ghz*."""
        return cycles_to_ns(self.now, ghz)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock(now={self.now:.1f})"
