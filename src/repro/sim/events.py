"""A minimal time-ordered event queue.

Used directly by the heater catch-up logic and, through
:mod:`repro.sim.kernel`, by the multi-rank mini-MPI runtime. Ties are broken
by insertion order so simulations are deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordering is (time, sequence number)."""

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when its time comes."""
        self.cancelled = True


class EventQueue:
    """A heap of :class:`Event` objects with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.now = 0.0

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def schedule(self, when: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule *callback(\\*args)* at absolute time *when*."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: now={self.now}, when={when}"
            )
        ev = Event(when, next(self._counter), callback, args)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_in(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule *callback* after *delay* time units from now."""
        return self.schedule(self.now + delay, callback, *args)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Run the next event. Returns False when the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        self.now = ev.time
        ev.callback(*ev.args)
        return True

    def run_until(self, deadline: float) -> None:
        """Run all events with time <= deadline, then set now = deadline."""
        while True:
            t = self.peek_time()
            if t is None or t > deadline:
                break
            self.step()
        if deadline > self.now:
            self.now = deadline

    def run(self, max_events: int = 10_000_000) -> int:
        """Run to exhaustion; returns the number of events executed."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"event queue did not drain within {max_events} events"
                )
        return executed
