"""A small coroutine-based discrete-event kernel (simpy flavoured).

Processes are generator functions that yield *waitables*:

* ``Timeout(delay)`` -- resume after *delay* simulated time units.
* ``Waiter()`` -- a one-shot event another process triggers with a value.
* another ``Process`` -- resume when that process finishes; the yielded
  value is its return value.

The multi-rank mini-MPI runtime (:mod:`repro.mpi.runtime`) runs every rank as
one of these processes; sends wake receive waiters after the network delay.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.sim.events import EventQueue


class Timeout:
    """Yield from a process to sleep for *delay* time units."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay


class Waiter:
    """A one-shot event a process can block on until it is triggered."""

    __slots__ = ("triggered", "value", "_waiting")

    def __init__(self) -> None:
        self.triggered = False
        self.value: Any = None
        self._waiting: list["Process"] = []

    def trigger(self, sim: "Simulator", value: Any = None) -> None:
        """Fire the event, resuming every process blocked on it."""
        if self.triggered:
            raise SimulationError("Waiter triggered twice")
        self.triggered = True
        self.value = value
        waiting, self._waiting = self._waiting, []
        for proc in waiting:
            sim._resume_soon(proc, value)


class Process:
    """A running coroutine inside a :class:`Simulator`."""

    __slots__ = ("gen", "name", "finished", "result", "_joiners")

    def __init__(self, gen: Generator, name: str = "proc") -> None:
        self.gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self._joiners: list["Process"] = []


class Simulator:
    """Runs processes over a shared :class:`EventQueue`."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.processes: list[Process] = []

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.queue.now

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Register a generator as a process, starting it at the current time."""
        proc = Process(gen, name)
        self.processes.append(proc)
        self.queue.schedule(self.now, self._advance, proc, None)
        return proc

    def _resume_soon(self, proc: Process, value: Any) -> None:
        self.queue.schedule(self.now, self._advance, proc, value)

    def _advance(self, proc: Process, send_value: Any) -> None:
        """Drive *proc* one step, interpreting what it yields."""
        try:
            yielded = proc.gen.send(send_value)
        except StopIteration as stop:
            proc.finished = True
            proc.result = stop.value
            for joiner in proc._joiners:
                self._resume_soon(joiner, stop.value)
            proc._joiners.clear()
            return
        self._dispatch(proc, yielded)

    def _dispatch(self, proc: Process, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self.queue.schedule(self.now + yielded.delay, self._advance, proc, None)
        elif isinstance(yielded, Waiter):
            if yielded.triggered:
                self._resume_soon(proc, yielded.value)
            else:
                yielded._waiting.append(proc)
        elif isinstance(yielded, Process):
            if yielded.finished:
                self._resume_soon(proc, yielded.result)
            else:
                yielded._joiners.append(proc)
        else:
            raise SimulationError(
                f"process {proc.name!r} yielded unsupported object {yielded!r}"
            )

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run events (optionally up to time *until*). Returns the final time."""
        if until is None:
            self.queue.run(max_events=max_events)
        else:
            self.queue.run_until(until)
        return self.now

    def all_finished(self, procs: Optional[Iterable[Process]] = None) -> bool:
        """True when every process in *procs* (default: all) has finished."""
        return all(p.finished for p in (procs if procs is not None else self.processes))
