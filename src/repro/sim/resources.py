"""Synchronization resources with deterministic contention accounting.

The paper's hot-caching technique guards its region list with a spin lock
(section 3.2); lock contention is one of the three implementation challenges
it reports, and shows up as the HC slowdown at scale in Figure 10. We model
locks two ways:

* :class:`SpinLock` -- an accounting lock used outside the coroutine kernel.
  Holders record (start, duration) windows on a shared clock timeline; an
  acquirer arriving inside a window waits for the remainder of the window.
  This yields exactly the "removal must wait for the heater pass to finish"
  behaviour, deterministically.
* :class:`KernelLock` -- a FIFO mutex for coroutine processes in
  :class:`~repro.sim.kernel.Simulator` (used by the MPI_THREAD_MULTIPLE
  emulation).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Simulator, Waiter


class SpinLock:
    """Deterministic window-based spin lock.

    The lock does not block real execution; instead, :meth:`acquire` returns
    the number of cycles the caller must spin given the currently recorded
    hold window. Callers are expected to advance their clock by that amount
    and then treat the lock as held for their own critical section by calling
    :meth:`hold`.
    """

    __slots__ = ("name", "_window_start", "_window_end", "acquisitions", "contended", "wait_cycles")

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self._window_start = 0.0
        self._window_end = 0.0
        self.acquisitions = 0
        self.contended = 0
        self.wait_cycles = 0.0

    def hold(self, start: float, duration: float) -> None:
        """Record that some holder owns the lock during [start, start+duration)."""
        if duration < 0:
            raise SimulationError(f"negative lock hold duration: {duration}")
        self._window_start = start
        self._window_end = start + duration

    def acquire(self, now: float, hold_for: float = 0.0) -> float:
        """Try to take the lock at time *now*; returns cycles spent waiting.

        If a recorded hold window covers *now*, the caller spins until the
        window ends. The caller's own critical section of length *hold_for*
        is then recorded so later acquirers contend with it.
        """
        self.acquisitions += 1
        wait = 0.0
        if self._window_start <= now < self._window_end:
            wait = self._window_end - now
            self.contended += 1
            self.wait_cycles += wait
        start = now + wait
        if hold_for > 0.0:
            self.hold(start, hold_for)
        return wait

    def reset_stats(self) -> None:
        """Zero the accumulated statistics counters."""
        self.acquisitions = 0
        self.contended = 0
        self.wait_cycles = 0.0


class KernelLock:
    """FIFO mutex for :class:`~repro.sim.kernel.Simulator` processes.

    Usage inside a process generator::

        yield from lock.acquire(sim)
        ... critical section (may yield Timeouts) ...
        lock.release(sim)
    """

    def __init__(self, name: str = "klock") -> None:
        self.name = name
        self.locked = False
        self._queue: list[Waiter] = []
        self.acquisitions = 0
        self.contended = 0

    def acquire(self, sim: Simulator) -> Generator:
        """Acquire the lock (FIFO); yields while contended."""
        self.acquisitions += 1
        if self.locked:
            # Block until a releaser hands the (still-locked) lock to us.
            self.contended += 1
            waiter: Optional[Waiter] = Waiter()
            self._queue.append(waiter)
            yield waiter
        else:
            self.locked = True

    def release(self, sim: Simulator) -> None:
        """Release the lock, handing it to the next waiter if any."""
        if not self.locked:
            raise SimulationError(f"release of unlocked {self.name}")
        if self._queue:
            # Direct handoff: the lock never becomes observably free, so a
            # same-timestamp acquirer cannot jump the FIFO queue.
            self._queue.pop(0).trigger(sim)
        else:
            self.locked = False
