"""Deterministic named random streams.

Every stochastic element of the simulation (fragmented-heap placement, thread
interleavings, motif sampling, application jitter) draws from a named stream
produced here. Streams are derived from ``(root_seed, name)`` with a stable
cryptographic hash, so results are reproducible across processes and Python
versions (``hash()`` randomization does not affect them).
"""

from __future__ import annotations

import hashlib

import numpy as np


def stream_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit seed for the stream *name* from *root_seed*.

    The derivation is stable: it uses SHA-256 over the decimal root seed and
    the stream name, so the same ``(seed, name)`` pair always yields the same
    stream regardless of interpreter or platform.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


class RngRegistry:
    """Factory for named :class:`numpy.random.Generator` streams.

    Streams are cached, so asking for the same name twice returns the same
    generator object (continuing its sequence). Use :meth:`fresh` to get an
    independent restart of a stream.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for stream *name*."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(stream_seed(self.seed, name))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for *name*, restarting its sequence."""
        return np.random.default_rng(stream_seed(self.seed, name))

    def spawn(self, suffix: str) -> "RngRegistry":
        """Derive a child registry whose streams are independent of ours."""
        return RngRegistry(stream_seed(self.seed, f"spawn:{suffix}"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
