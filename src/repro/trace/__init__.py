"""Trace-based matching simulation.

The paper cites Ferreira et al., *Characterizing MPI matching via
trace-based simulation* (EuroMPI'17), as the way applications avoid long
match lists today. This package provides that workflow for the simulated
substrate: record the matching operations of any run (posts and arrivals
with their envelopes, in order), serialize them as JSON lines, and replay
them later through *any* queue organization / architecture / heater
configuration — so one captured workload can be evaluated against every
design point without re-running the application.
"""

from repro.trace.events import TraceEvent, POST, ARRIVAL
from repro.trace.recorder import TraceRecorder, RecordingProcess
from repro.trace.replay import ReplayResult, replay
from repro.trace.serialize import dumps, loads, read_trace, write_trace

__all__ = [
    "ARRIVAL",
    "POST",
    "RecordingProcess",
    "ReplayResult",
    "TraceEvent",
    "TraceRecorder",
    "dumps",
    "loads",
    "read_trace",
    "replay",
    "write_trace",
]
