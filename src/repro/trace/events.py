"""Trace event model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

POST = "post"
ARRIVAL = "arrival"

_KINDS = (POST, ARRIVAL)


@dataclass(frozen=True)
class TraceEvent:
    """One matching operation.

    ``kind`` is ``"post"`` (a receive posted: src/tag may be wildcards,
    encoded as -1) or ``"arrival"`` (an incoming message: concrete
    src/tag). ``time_ns`` is optional wall-clock context; replay preserves
    order, not timing.
    """

    kind: str
    src: int
    tag: int
    cid: int = 0
    nbytes: int = 0
    time_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(f"unknown trace event kind {self.kind!r}")
        if self.kind == ARRIVAL and (self.src < 0 or self.tag < 0):
            raise ConfigurationError("arrival events need concrete src/tag")

    @property
    def is_post(self) -> bool:
        """True for posted-receive events."""
        return self.kind == POST

    def as_dict(self) -> dict:
        """Serializable plain-dict form."""
        return {
            "kind": self.kind,
            "src": self.src,
            "tag": self.tag,
            "cid": self.cid,
            "nbytes": self.nbytes,
            "time_ns": self.time_ns,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        """Inverse of as_dict."""
        return cls(
            kind=data["kind"],
            src=int(data["src"]),
            tag=int(data["tag"]),
            cid=int(data.get("cid", 0)),
            nbytes=int(data.get("nbytes", 0)),
            time_ns=float(data.get("time_ns", 0.0)),
        )
