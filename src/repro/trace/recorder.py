"""Recording matching operations from a live MpiProcess."""

from __future__ import annotations

from typing import List, Optional

from repro.mpi.message import Message
from repro.mpi.process import MpiProcess, RecvRequest
from repro.trace.events import ARRIVAL, POST, TraceEvent


class TraceRecorder:
    """Accumulates trace events."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record_post(self, src: int, tag: int, cid: int, nbytes: int, time_ns: float = 0.0) -> None:
        """Append a posted-receive event."""
        self.events.append(TraceEvent(POST, src, tag, cid, nbytes, time_ns))

    def record_arrival(self, message: Message, time_ns: float = 0.0) -> None:
        """Append a message-arrival event."""
        self.events.append(
            TraceEvent(ARRIVAL, message.src, message.tag, message.cid, message.nbytes, time_ns)
        )

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        """Drop all recorded entries."""
        self.events.clear()


class RecordingProcess(MpiProcess):
    """An MpiProcess that records every matching operation it performs.

    Drop-in replacement: hand it to a benchmark or the DES runtime and read
    ``recorder.events`` afterwards.
    """

    def __init__(self, *args, recorder: Optional[TraceRecorder] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.recorder = recorder if recorder is not None else TraceRecorder()

    def post_recv(self, src: int, tag: int, cid: int = 0, nbytes: int = 0) -> RecvRequest:
        """Record the operation, then run the normal receive path."""
        self.recorder.record_post(src, tag, cid, nbytes, self._now())
        return super().post_recv(src, tag, cid, nbytes)

    def handle_arrival(self, message: Message):
        """Record the arrival, then run the normal matching path."""
        self.recorder.record_arrival(message, self._now())
        return super().handle_arrival(message)
