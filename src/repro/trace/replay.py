"""Replay a recorded trace through any matching configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.arch.spec import ArchSpec
from repro.hotcache.heater import Heater, HeaterConfig
from repro.hotcache.wrapper import HeatedQueue
from repro.matching.engine import MatchEngine
from repro.matching.envelope import Envelope
from repro.matching.factory import make_queue
from repro.mpi.message import Message
from repro.mpi.process import MpiProcess
from repro.trace.events import TraceEvent


@dataclass
class ReplayResult:
    """What a trace cost under one configuration."""

    queue_family: str
    arch: Optional[str]
    events: int
    matches: int
    unexpected: int
    mean_prq_search_depth: float
    mean_umq_search_depth: float
    max_prq_len: int
    max_umq_len: int
    match_cycles: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def match_seconds(self) -> Optional[float]:
        """Matching time in seconds (None without an arch)."""
        ghz = self.details.get("ghz")
        return self.match_cycles / ghz * 1e-9 if ghz else None


def replay(
    events: Sequence[TraceEvent],
    *,
    queue_family: str = "baseline",
    arch: Optional[ArchSpec] = None,
    heated: bool = False,
    heater_config: Optional[HeaterConfig] = None,
    flush_every: int = 0,
    seed: int = 0,
) -> ReplayResult:
    """Run *events* through a fresh matching state.

    With *arch* set, every probe is cycle-accounted through that
    architecture's cache hierarchy (optionally heated); ``flush_every`` > 0
    flushes the caches every N events, emulating interleaved compute.
    """
    engine = None
    port = None
    hier = None
    if arch is not None:
        hier = arch.build_hierarchy(rng=np.random.default_rng(seed + 1))
        engine = MatchEngine(hier)
        port = engine
    prq = make_queue(queue_family, port=port, rng=np.random.default_rng(seed), arena_base=0x4000_0000)
    heater = None
    if heated:
        if arch is None:
            raise ValueError("heated replay requires an arch")
        cfg = heater_config if heater_config is not None else HeaterConfig(
            locked=queue_family == "baseline"
        )
        heater = Heater(hier, arch.ghz, cfg)
        prq = HeatedQueue(prq, heater, engine)
    umq = make_queue(
        queue_family, entry_bytes=16, port=port,
        rng=np.random.default_rng(seed + 2), arena_base=0x2000_0000,
    )
    proc = MpiProcess(0, prq, umq, clock=engine.clock if engine else None)

    start_cycles = engine.clock.now if engine else 0.0
    matches = 0
    unexpected = 0
    max_prq = 0
    max_umq = 0
    for i, ev in enumerate(events):
        if flush_every and hier is not None and i and i % flush_every == 0:
            hier.flush()
            if heater is not None:
                prq.prepare_phase()
        if ev.is_post:
            req = proc.post_recv(ev.src, ev.tag, ev.cid, ev.nbytes)
            if req.completed:
                matches += 1
        else:
            req = proc.handle_arrival(Message(Envelope(ev.src, ev.tag, ev.cid), ev.nbytes))
            if req is not None:
                matches += 1
            else:
                unexpected += 1
        max_prq = max(max_prq, len(proc.prq))
        max_umq = max(max_umq, len(proc.umq))

    return ReplayResult(
        queue_family=queue_family,
        arch=arch.name if arch else None,
        events=len(events),
        matches=matches,
        unexpected=unexpected,
        mean_prq_search_depth=proc.mean_prq_search_depth,
        mean_umq_search_depth=proc.mean_umq_search_depth,
        max_prq_len=max_prq,
        max_umq_len=max_umq,
        match_cycles=(engine.clock.now - start_cycles) if engine else 0.0,
        details={"ghz": arch.ghz} if arch else {},
    )
