"""JSON-lines (de)serialization of traces."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.errors import ConfigurationError
from repro.trace.events import TraceEvent

#: Format marker written as the first line of every trace file.
HEADER = {"format": "repro-match-trace", "version": 1}


def dumps(events: Iterable[TraceEvent]) -> str:
    """Serialize events to a JSON-lines string (header + one line/event)."""
    lines = [json.dumps(HEADER)]
    lines.extend(json.dumps(ev.as_dict(), separators=(",", ":")) for ev in events)
    return "\n".join(lines) + "\n"


def loads(text: str) -> List[TraceEvent]:
    """Parse a JSON-lines trace string."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ConfigurationError("empty trace")
    header = json.loads(lines[0])
    if header.get("format") != HEADER["format"]:
        raise ConfigurationError(f"not a repro match trace: {header!r}")
    if header.get("version") != HEADER["version"]:
        raise ConfigurationError(f"unsupported trace version {header.get('version')!r}")
    return [TraceEvent.from_dict(json.loads(line)) for line in lines[1:]]


def write_trace(path: Union[str, Path], events: Iterable[TraceEvent]) -> None:
    """Write events to *path* as JSON lines."""
    Path(path).write_text(dumps(events), encoding="utf-8")


def read_trace(path: Union[str, Path]) -> List[TraceEvent]:
    """Read a JSON-lines trace file."""
    return loads(Path(path).read_text(encoding="utf-8"))
