"""Open-loop traffic: Zipf/Poisson workloads, admission control, tail latency.

The common way experiments generate work (ROADMAP item 1, the "millions of
users" axis). :mod:`repro.traffic.workload` produces lazy seeded event
schedules, :mod:`repro.traffic.driver` advances the simulated clock from
them over the full matching/memory/heater stack, and
:mod:`repro.traffic.stats` reduces each warmup/measured phase to queue
depths, rejection percentages, and sojourn-time percentiles.
"""

from repro.traffic.driver import (
    TrafficConfig,
    TrafficDriver,
    TrafficResult,
    run_traffic,
)
from repro.traffic.stats import TRAFFIC_METRICS, TrafficStats
from repro.traffic.workload import (
    PoissonArrivals,
    TrafficEvent,
    ZipfTagPopularity,
    open_loop_events,
)

__all__ = [
    "PoissonArrivals",
    "TRAFFIC_METRICS",
    "TrafficConfig",
    "TrafficDriver",
    "TrafficEvent",
    "TrafficResult",
    "TrafficStats",
    "ZipfTagPopularity",
    "open_loop_events",
    "run_traffic",
]
