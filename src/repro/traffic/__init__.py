"""Open-loop traffic: Zipf/Poisson workloads, admission control, tail latency.

The common way experiments generate work (ROADMAP item 1, the "millions of
users" axis). :mod:`repro.traffic.workload` produces lazy seeded event
schedules — per-event or as columnar :class:`EventBlock` slabs —
:mod:`repro.traffic.driver` advances the simulated clock from them over the
full matching/memory/heater stack (with a batch fast path selectable via
``REPRO_TRAFFIC_BATCH``, see :mod:`repro.traffic.mode`), and
:mod:`repro.traffic.stats` reduces each warmup/measured phase to queue
depths, rejection percentages, and sojourn-time percentiles.
"""

from repro.traffic.driver import (
    TrafficConfig,
    TrafficDriver,
    TrafficResult,
    run_traffic,
)
from repro.traffic.mode import (
    TRAFFIC_BATCH_ENV,
    TRAFFIC_MODES,
    resolve_traffic_batch,
    traffic_mode_label,
)
from repro.traffic.stats import TRAFFIC_METRICS, TrafficStats
from repro.traffic.workload import (
    EventBlock,
    PoissonArrivals,
    TrafficEvent,
    ZipfTagPopularity,
    open_loop_blocks,
    open_loop_events,
)

__all__ = [
    "EventBlock",
    "PoissonArrivals",
    "TRAFFIC_BATCH_ENV",
    "TRAFFIC_METRICS",
    "TRAFFIC_MODES",
    "TrafficConfig",
    "TrafficDriver",
    "TrafficEvent",
    "TrafficResult",
    "TrafficStats",
    "ZipfTagPopularity",
    "open_loop_blocks",
    "open_loop_events",
    "resolve_traffic_batch",
    "run_traffic",
    "traffic_mode_label",
]
