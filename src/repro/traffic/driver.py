"""The traffic driver: simulated time advanced by an arrival process.

Two run modes share one substrate:

``run_closed``
    The historical fixed-grid loop (post recv, flush, heater phase hook,
    deliver, time the match) that every ``bench/osu.py``-style driver used
    to hand-roll. ``osu_bandwidth``/``osu_latency`` now opt into this;
    ``tests/test_traffic_equivalence.py`` pins it repr-identical to the
    retained legacy loop across kernels × scan modes.

``run_open``
    The open-loop mode: a lazy Poisson/Zipf schedule from
    :mod:`repro.traffic.workload` drives the clock. The receiving
    application posts wildcard-source receives only while the engine is
    *idle* (the gap before the next arrival) and only up to ``recv_window``
    outstanding, so the service rate emerges from the engine's own matching
    and delivery costs: when arrivals outpace it, the clock falls behind the
    schedule, no idle time remains to post receives, the unexpected queue
    fills, and — with a finite ``queue_capacity`` — admission control starts
    rejecting. Heater catch-up interleaves through the existing lazy
    :meth:`~repro.hotcache.heater.Heater.quiescent_until` projection (the
    engine syncs it before every memory access), so heated open-loop runs
    need no new heater machinery.

Model notes (MODELING.md "Open-loop traffic and admission"):

* Receives use ``MPI_ANY_SOURCE`` with a concrete tag drawn from the same
  Zipf popularity as the traffic (its own named stream), so matching is
  per-tag FIFO — popular tags drain quickly, unpopular ones linger.
* Admission is evaluated when the arrival is *handled* (a full queue
  rejects the newcomer under drop-tail, or evicts its FIFO head under
  drop-head); rejected/evicted messages are lost and get no sojourn.
* Delivery charges ``sw_overhead_cycles + copy_cycles_per_byte * nbytes``
  on the engine clock per delivered message — in open loop these costs
  must be on the clock because time is what admits the next arrival.
* ``flush_every > 0`` flushes the hierarchy every so many arrivals,
  modeling bulk-synchronous compute phases; that is what gives the heater
  (``heated=True``) cache state worth defending.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Optional

import numpy as np

from repro.analysis.stats import QuantileReservoir
from repro.arch.spec import ArchSpec
from repro.errors import ConfigurationError, MatchingError
from repro.hotcache.heater import Heater, HeaterConfig
from repro.hotcache.wrapper import HeatedQueue
from repro.matching.bounded import ADMISSION_POLICIES
from repro.matching.engine import MatchEngine
from repro.matching.entry import UMQ_ENTRY_BYTES
from repro.matching.envelope import ANY_SOURCE, Envelope
from repro.matching.factory import make_queue
from repro.mem.result import LevelStats
from repro.mpi.message import Message
from repro.mpi.process import MpiProcess
from repro.sim.rng import RngRegistry
from repro.traffic.fastpath import reject_replayer_for
from repro.traffic.mode import resolve_traffic_batch
from repro.traffic.stats import PhaseAccumulator, TrafficStats
from repro.traffic.workload import (
    ZipfTagPopularity,
    open_loop_blocks,
    open_loop_events,
)

#: Source rank for the never-matching decoy receives (search-depth knob).
_DECOY_SRC = 7


@dataclass
class TrafficConfig:
    """One open-loop traffic run (one point of an overload figure)."""

    arch: ArchSpec
    queue_family: str = "baseline"
    heated: bool = False
    heater_config: Optional[HeaterConfig] = None
    mem_kernel: Optional[str] = None
    fragmented: bool = False
    seed: int = 0
    #: Offered load, mean arrivals per simulated microsecond.
    arrival_rate: float = 0.2
    zipf_alpha: float = 1.0
    n_tags: int = 64
    nranks: int = 1024
    msg_bytes: int = 1024
    #: Warmup then measured phase lengths, in events.
    n_warmup: int = 200
    n_measured: int = 1000
    #: UMQ capacity; None = unbounded (the historical behavior).
    queue_capacity: Optional[int] = None
    admission: str = "drop-tail"
    #: Max outstanding pre-posted receives.
    recv_window: int = 64
    #: Decoy PRQ entries every arrival must scan past (queue-depth knob).
    search_depth: int = 0
    #: Flush the hierarchy every N arrivals (0 = never); models the compute
    #: phases of a bulk-synchronous application.
    flush_every: int = 0
    #: Engine cycles charged per rejected arrival (NACK/cleanup cost).
    reject_cycles: float = 0.0
    #: Sojourn reservoir size per phase (memory/precision trade-off).
    reservoir: int = 4096
    #: Which event-loop spelling drives the run: True = the columnar batch
    #: fast path, False = the retained per-event legacy loop, None = defer
    #: to ``REPRO_TRAFFIC_BATCH`` (default on). Both are bit-identical on
    #: every ``TrafficResult`` observable; this knob only selects host-side
    #: speed (see :mod:`repro.traffic.mode`).
    traffic_batch: Optional[bool] = None

    def validate(self) -> None:
        """Raise ConfigurationError for out-of-range knobs."""
        if self.arrival_rate <= 0:
            raise ConfigurationError(
                f"arrival_rate must be positive (events/us), got {self.arrival_rate}"
            )
        if self.zipf_alpha < 0:
            raise ConfigurationError(
                f"zipf_alpha must be >= 0, got {self.zipf_alpha}"
            )
        if self.n_tags < 1 or self.nranks < 1:
            raise ConfigurationError("n_tags and nranks must be >= 1")
        if self.n_warmup < 0 or self.n_measured < 1:
            raise ConfigurationError(
                "need n_warmup >= 0 and n_measured >= 1, got "
                f"{self.n_warmup}/{self.n_measured}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise ConfigurationError(
                f"queue_capacity must be >= 0 or None, got {self.queue_capacity}"
            )
        if self.admission not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"unknown admission policy {self.admission!r}; known: "
                + ", ".join(ADMISSION_POLICIES)
            )
        if self.recv_window < 1:
            raise ConfigurationError(
                f"recv_window must be >= 1, got {self.recv_window}"
            )
        if self.search_depth < 0 or self.flush_every < 0:
            raise ConfigurationError("search_depth and flush_every must be >= 0")

    def variant_label(self) -> str:
        """Figure-style label (mirrors OsuConfig.variant_label)."""
        base = self.queue_family
        if self.heated:
            return f"HC+{base}" if base != "baseline" else "HC"
        return base


@dataclass
class TrafficResult:
    """Everything one open-loop run produced."""

    config_label: str
    arrival_rate: float
    warmup: TrafficStats
    measured: TrafficStats
    heater_passes: int = 0
    mem_stats: Optional[LevelStats] = field(repr=False, default=None)


class _TrafficSession:
    """Engine + queues + process wiring for one open-loop run.

    Construction mirrors ``bench/osu.py``'s ``_OsuSession`` (same arena
    bases, same heater wiring) but draws every stochastic choice from a
    :class:`~repro.sim.rng.RngRegistry` named stream and bounds the UMQ
    when the config asks for admission control.
    """

    def __init__(self, cfg: TrafficConfig) -> None:
        cfg.validate()
        self.cfg = cfg
        self.registry = RngRegistry(cfg.seed)
        self.hier = cfg.arch.build_hierarchy(
            rng=self.registry.stream("traffic:hierarchy"),
            kernel=cfg.mem_kernel,
        )
        self.engine = MatchEngine(self.hier)
        prq = make_queue(
            cfg.queue_family,
            port=self.engine,
            rng=self.registry.stream("traffic:layout"),
            fragmented=cfg.fragmented,
            arena_base=0x4000_0000,
        )
        self.umq = make_queue(
            cfg.queue_family,
            entry_bytes=UMQ_ENTRY_BYTES,
            port=self.engine,
            rng=self.registry.stream("traffic:layout"),
            fragmented=cfg.fragmented,
            arena_base=0x2000_0000,
            capacity=cfg.queue_capacity,
            admission=cfg.admission,
        )
        self.umq_admission = getattr(self.umq, "admission", None)
        if self.umq_admission is not None:
            self.umq.reject_cycles = cfg.reject_cycles
        self.heater: Optional[Heater] = None
        if cfg.heated:
            hc = cfg.heater_config
            if hc is None:
                hc = HeaterConfig(locked=cfg.queue_family == "baseline")
            self.heater = Heater(self.hier, cfg.arch.ghz, hc)
            prq = HeatedQueue(prq, self.heater, self.engine)
        self.prq = prq
        self.proc = MpiProcess(
            0, prq, self.umq, clock=self.engine.clock, record_traces=False
        )

    def prepopulate(self) -> None:
        """Post the never-matching decoy receives (PRQ depth knob)."""
        cfg = self.cfg
        if self.heater is not None:
            self.heater.enabled = False
        for i in range(cfg.search_depth):
            # Tags beyond the traffic tag space and a concrete non-traffic
            # source: scanned by every PRQ search, matched by nothing.
            self.proc.post_recv(src=_DECOY_SRC, tag=cfg.n_tags + 1 + i, cid=1)
        if self.heater is not None:
            self.heater.enabled = True
            self.heater.reset(self.engine.clock.now)


class TrafficDriver:
    """Advance simulated time from a workload, closed- or open-loop."""

    def __init__(self, session) -> None:
        self.session = session
        self.engine = session.engine

    # -- closed loop (the fixed-grid substrate) --------------------------------

    def run_closed(
        self, *, nbytes: int, warmup: int, iterations: int, reset_stats: bool = True
    ):
        """The fixed-grid loop: deliver ``warmup + iterations`` identical
        messages via the session's ``one_message`` hook; returns the measured
        iterations' match-cycle samples. ``reset_stats`` clears the engine's
        per-level attribution at the warmup/measured boundary so ``mem_stats``
        covers only measured work (``osu_latency`` turns it off)."""
        samples = []
        for i in range(warmup + iterations):
            if reset_stats and i == warmup:
                self.engine.level_stats.reset()
            cycles = self.session.one_message(nbytes)
            if i >= warmup:
                samples.append(cycles)
        return samples

    # -- open loop -------------------------------------------------------------

    @classmethod
    def open_loop(cls, cfg: TrafficConfig) -> "TrafficDriver":
        """Build a driver around a fresh open-loop session for *cfg*."""
        return cls(_TrafficSession(cfg))

    def run_open(self) -> TrafficResult:
        """Drive the open-loop schedule to completion; see the module doc.

        Dispatches on the resolved traffic mode (config field beats
        ``REPRO_TRAFFIC_BATCH`` beats default-on): the columnar batch loop
        or the retained per-event legacy loop. Both produce bit-identical
        :class:`TrafficResult`\\ s — ``tests/test_traffic_batch_equivalence.py``
        pins that across kernels, scan modes, admission policies, and
        heated/flushed regimes.
        """
        if resolve_traffic_batch(self.session.cfg.traffic_batch):
            return self._run_open_batch()
        return self._run_open_legacy()

    def _run_open_legacy(self) -> TrafficResult:
        """The original per-event loop, retained as the pinned reference."""
        session = self.session
        cfg: TrafficConfig = session.cfg
        session.prepopulate()
        clock = self.engine.clock
        arch = cfg.arch
        delivery_cycles = arch.sw_overhead_cycles + arch.copy_cycles_per_byte * cfg.msg_bytes

        res_rng = session.registry.stream("traffic:reservoir")
        warm = PhaseAccumulator(
            "warmup", arch.ghz, QuantileReservoir(cfg.reservoir, rng=res_rng)
        )
        meas = PhaseAccumulator(
            "measured", arch.ghz, QuantileReservoir(cfg.reservoir, rng=res_rng)
        )
        warm.begin(clock.now)
        current = warm

        # Per-tag FIFO of (t_arrive, measured) for messages waiting in the
        # UMQ: matching is per-tag FIFO (wildcard-source receives), so the
        # head of a tag's deque is exactly the entry the next receive for
        # that tag will drain. Bounded by the UMQ's own occupancy.
        waiting: Dict[int, deque] = {}

        def on_evict(item) -> None:
            entries = waiting.get(item.tag)
            if not entries:
                raise MatchingError(
                    f"admission evicted an unexpected message with tag {item.tag} "
                    "the driver has no waiting record for; driver and UMQ "
                    "bookkeeping desynced"
                )
            t0, measured_flag = entries.popleft()
            if not entries:
                del waiting[item.tag]
            (meas if measured_flag else warm).evicted += 1

        if session.umq_admission is not None:
            session.umq.on_evict = on_evict

        app_tags = iter(
            ZipfTagPopularity(
                cfg.n_tags, cfg.zipf_alpha, session.registry.stream("traffic:recv-tags")
            )
        )
        events = open_loop_events(
            rate_per_us=cfg.arrival_rate,
            ghz=arch.ghz,
            zipf_alpha=cfg.zipf_alpha,
            n_tags=cfg.n_tags,
            nranks=cfg.nranks,
            msg_bytes=cfg.msg_bytes,
            n_warmup=cfg.n_warmup,
            n_measured=cfg.n_measured,
            seed=cfg.seed,
        )

        outstanding = 0
        in_measured = False
        admission = session.umq_admission
        for ev in events:
            if ev.measured and not in_measured:
                # Warmup -> measured boundary: queue state carries over (a
                # loaded system stays loaded), accounting starts fresh.
                in_measured = True
                warm.finish(clock.now)
                meas.begin(clock.now)
                current = meas
                self.engine.level_stats.reset()

            # Service: the application posts receives only while the engine
            # is idle ahead of the next arrival and the window has room.
            while outstanding < cfg.recv_window and clock.now < ev.t_arrive:
                tag = next(app_tags)
                req = session.proc.post_recv(
                    src=ANY_SOURCE, tag=tag, cid=0, nbytes=cfg.msg_bytes
                )
                current.posted_recvs += 1
                if req.matched_unexpected:
                    entries = waiting[tag]
                    t0, measured_flag = entries.popleft()
                    if not entries:
                        del waiting[tag]
                    self.engine.charge(delivery_cycles)
                    target = meas if measured_flag else warm
                    target.drained += 1
                    target.record_sojourn(clock.now - t0)
                else:
                    outstanding += 1

            if clock.now < ev.t_arrive:
                clock.advance_to(ev.t_arrive)

            if cfg.flush_every and ev.index and ev.index % cfg.flush_every == 0:
                # A bulk-synchronous compute phase ran: caches are cold again
                # unless the heater has been defending the match state.
                session.hier.flush()
                if session.heater is not None:
                    session.prq.prepare_phase()

            rejected_before = admission.rejected if admission is not None else 0
            req = session.proc.handle_arrival(
                Message(Envelope(src=ev.rank, tag=ev.tag, cid=0), ev.nbytes)
            )
            current.events += 1
            if req is not None:
                outstanding -= 1
                self.engine.charge(delivery_cycles)
                current.fast_matches += 1
                target = meas if ev.measured else warm
                target.record_sojourn(clock.now - ev.t_arrive)
            elif admission is not None and admission.rejected > rejected_before:
                current.rejected += 1
            else:
                current.unexpected += 1
                waiting.setdefault(ev.tag, deque()).append((ev.t_arrive, ev.measured))
            current.observe_depth(len(session.umq))

        # Messages still unexpected at the end of the schedule are counted,
        # per the phase they arrived in, but get no sojourn (never drained).
        for entries in waiting.values():
            for _t0, measured_flag in entries:
                (meas if measured_flag else warm).leftover += 1
        meas.finish(clock.now)
        if not in_measured:  # pragma: no cover - n_measured >= 1 forbids this
            warm.finish(clock.now)

        return TrafficResult(
            config_label=cfg.variant_label(),
            arrival_rate=cfg.arrival_rate,
            warmup=warm.stats(),
            measured=meas.stats(),
            heater_passes=session.heater.passes if session.heater is not None else 0,
            mem_stats=self.engine.level_stats.copy(),
        )

    def _run_open_batch(self) -> TrafficResult:
        """The columnar fast path: same simulation, block-shaped host loop.

        Bit-identical to :meth:`_run_open_legacy` by construction:

        * the schedule arrives as :func:`~repro.traffic.workload.open_loop_blocks`
          slabs — the same draws from the same streams, just not wrapped in
          per-event ``TrafficEvent`` objects;
        * recv tags come from a :meth:`ZipfTagPopularity.sampler` cursor
          (same chunked draws as the legacy ``next(iter(...))``);
        * ``waiting`` is a preallocated per-tag FIFO table and the UMQ depth
          is mirrored in O(1) instead of ``len(queue)`` per event;
        * phase counters accumulate in locals and flush into the
          :class:`PhaseAccumulator` at block/phase boundaries;
        * under saturated drop-tail admission, streaks of pure-reject
          arrivals are captured, verified, and replayed arithmetically by
          :class:`~repro.traffic.fastpath.RejectReplayer` — every other
          event runs through the exact per-event path the legacy loop runs.

        The process' sequence cursor is mirrored (``seq_n``) so replayed
        events consume the same number of sequence values the legacy loop
        would have; it is lazily re-bound before the next real process call.
        """
        session = self.session
        cfg: TrafficConfig = session.cfg
        session.prepopulate()
        engine = self.engine
        clock = engine.clock
        arch = cfg.arch
        delivery_cycles = arch.sw_overhead_cycles + arch.copy_cycles_per_byte * cfg.msg_bytes

        res_rng = session.registry.stream("traffic:reservoir")
        warm = PhaseAccumulator(
            "warmup", arch.ghz, QuantileReservoir(cfg.reservoir, rng=res_rng)
        )
        meas = PhaseAccumulator(
            "measured", arch.ghz, QuantileReservoir(cfg.reservoir, rng=res_rng)
        )
        warm.begin(clock.now)

        n_tags = cfg.n_tags
        # Preallocated per-tag FIFO table (tag space is known up front): no
        # setdefault churn, no dict hashing on the hot path.
        waiting = [deque() for _ in range(n_tags)]
        umq_len = 0

        def on_evict(item) -> None:
            nonlocal umq_len
            entries = waiting[item.tag] if 0 <= item.tag < n_tags else None
            if not entries:
                raise MatchingError(
                    f"admission evicted an unexpected message with tag {item.tag} "
                    "the driver has no waiting record for; driver and UMQ "
                    "bookkeeping desynced"
                )
            t0, measured_flag = entries.popleft()
            umq_len -= 1
            (meas if measured_flag else warm).evicted += 1

        admission = session.umq_admission
        if admission is not None:
            session.umq.on_evict = on_evict

        tag_sampler = ZipfTagPopularity(
            cfg.n_tags, cfg.zipf_alpha, session.registry.stream("traffic:recv-tags")
        ).sampler()
        blocks = open_loop_blocks(
            rate_per_us=cfg.arrival_rate,
            ghz=arch.ghz,
            zipf_alpha=cfg.zipf_alpha,
            n_tags=cfg.n_tags,
            nranks=cfg.nranks,
            msg_bytes=cfg.msg_bytes,
            n_warmup=cfg.n_warmup,
            n_measured=cfg.n_measured,
            seed=cfg.seed,
        )

        replayer = reject_replayer_for(session)
        track = replayer is not None
        # Outstanding posted receives per traffic tag: counts[t] == 0 means
        # an arrival with tag t cannot fast-match (the replay eligibility
        # test, vectorized over streaks). Only maintained when a replayer
        # exists; decoy receives live outside the traffic tag space.
        counts = np.zeros(n_tags, dtype=np.int64) if track else None
        cap = cfg.queue_capacity if cfg.queue_capacity is not None else 0
        # Mirror of the process' sequence cursor: prepopulate consumed one
        # value per decoy post; every post_recv/handle_arrival consumes one
        # more, real or replayed. Re-bound lazily after replays.
        seq_n = cfg.search_depth
        seq_dirty = False

        # Per-event phase counters, folded into locals and flushed at
        # block/phase boundaries.
        ev_n = post_n = fast_n = unexp_n = rej_n = 0
        d_sum = d_obs = d_max = 0

        def flush_locals(acc: PhaseAccumulator) -> None:
            nonlocal ev_n, post_n, fast_n, unexp_n, rej_n, d_sum, d_obs, d_max
            acc.events += ev_n
            acc.posted_recvs += post_n
            acc.fast_matches += fast_n
            acc.unexpected += unexp_n
            acc.rejected += rej_n
            acc.depth_sum += d_sum
            acc.depth_obs += d_obs
            if d_max > acc.depth_max:
                acc.depth_max = d_max
            ev_n = post_n = fast_n = unexp_n = rej_n = 0
            d_sum = d_obs = d_max = 0

        proc = session.proc
        handle_arrival = proc.handle_arrival
        post_recv = proc.post_recv
        charge = engine.charge
        advance_to = clock.advance_to
        heater = session.heater
        recv_window = cfg.recv_window
        msg_bytes = cfg.msg_bytes
        flush_every = cfg.flush_every
        outstanding = 0
        in_measured = False
        current = warm

        for block in blocks:
            ts = block.t_arrive
            ranks = block.rank
            tags = block.tag
            index0 = block.index0
            warm_count = block.warm_count
            m = len(ts)
            k = 0
            while k < m:
                if not in_measured and k >= warm_count:
                    # Warmup -> measured boundary: queue state carries over
                    # (a loaded system stays loaded), accounting starts
                    # fresh. May land mid-block (the torn case).
                    flush_locals(warm)
                    in_measured = True
                    warm.finish(clock.now)
                    meas.begin(clock.now)
                    current = meas
                    engine.level_stats.reset()
                idx = index0 + k
                t_arr = ts[k]

                # Service: post receives only while the engine is idle
                # ahead of this arrival and the window has room.
                while outstanding < recv_window and clock.now < t_arr:
                    tag = tag_sampler.next()
                    if seq_dirty:
                        proc._seq = count(seq_n)
                        seq_dirty = False
                    req = post_recv(src=ANY_SOURCE, tag=tag, cid=0, nbytes=msg_bytes)
                    seq_n += 1
                    post_n += 1
                    if req.matched_unexpected:
                        entries = waiting[tag]
                        t0, measured_flag = entries.popleft()
                        umq_len -= 1
                        charge(delivery_cycles)
                        target = meas if measured_flag else warm
                        target.drained += 1
                        target.record_sojourn(clock.now - t0)
                    else:
                        outstanding += 1
                        if track:
                            counts[tag] += 1
                    if track:
                        # Posting touched PRQ/UMQ lines: captured reject
                        # costs may no longer hold.
                        replayer.invalidate()

                if clock.now < t_arr:
                    advance_to(float(t_arr))

                if flush_every and idx and idx % flush_every == 0:
                    # A bulk-synchronous compute phase ran: caches are cold
                    # again unless the heater has been defending them.
                    session.hier.flush()
                    if heater is not None:
                        session.prq.prepare_phase()
                    if track:
                        replayer.invalidate()

                etag = tags[k]
                if track and umq_len >= cap and counts[etag] == 0:
                    # Pure-reject arrival under saturated drop-tail: hand
                    # the streak to the replayer. The limit keeps a streak
                    # inside this block, this phase, and this flush window.
                    limit = m if in_measured else warm_count
                    if flush_every:
                        limit = min(limit, k + flush_every - idx % flush_every)
                    was_armed = replayer.armed
                    if seq_dirty and not was_armed:
                        proc._seq = count(seq_n)
                        seq_dirty = False
                    r = replayer.consume(ts, ranks, tags, k, limit, counts, msg_bytes)
                    seq_n += r
                    if was_armed:
                        seq_dirty = True
                    ev_n += r
                    rej_n += r
                    d_sum += umq_len * r
                    d_obs += r
                    if umq_len > d_max:
                        d_max = umq_len
                    k += r
                    continue

                if seq_dirty:
                    proc._seq = count(seq_n)
                    seq_dirty = False
                etag = int(etag)
                rejected_before = admission.rejected if admission is not None else 0
                req = handle_arrival(
                    Message(Envelope(src=int(ranks[k]), tag=etag, cid=0), msg_bytes)
                )
                seq_n += 1
                ev_n += 1
                if req is not None:
                    outstanding -= 1
                    charge(delivery_cycles)
                    fast_n += 1
                    target = meas if in_measured else warm
                    target.record_sojourn(clock.now - float(t_arr))
                    if track:
                        counts[req.tag] -= 1
                        replayer.invalidate()
                elif admission is not None and admission.rejected > rejected_before:
                    rej_n += 1
                else:
                    unexp_n += 1
                    umq_len += 1
                    waiting[etag].append((float(t_arr), in_measured))
                    if track:
                        replayer.invalidate()
                d_sum += umq_len
                d_obs += 1
                if umq_len > d_max:
                    d_max = umq_len
                k += 1
            flush_locals(current)

        # Messages still unexpected at the end of the schedule are counted,
        # per the phase they arrived in, but get no sojourn (never drained).
        for entries in waiting:
            for _t0, measured_flag in entries:
                (meas if measured_flag else warm).leftover += 1
        meas.finish(clock.now)
        if not in_measured:  # pragma: no cover - n_measured >= 1 forbids this
            warm.finish(clock.now)

        return TrafficResult(
            config_label=cfg.variant_label(),
            arrival_rate=cfg.arrival_rate,
            warmup=warm.stats(),
            measured=meas.stats(),
            heater_passes=session.heater.passes if session.heater is not None else 0,
            mem_stats=self.engine.level_stats.copy(),
        )


def run_traffic(cfg: TrafficConfig) -> TrafficResult:
    """Convenience: build an open-loop driver for *cfg* and run it."""
    return TrafficDriver.open_loop(cfg).run_open()
