"""Verified capture/replay of pure-reject arrivals (the batch driver's core).

Under sustained overload the open-loop driver spends almost all of its time
on one event shape: an arrival whose tag matches no posted receive walks the
*entire* PRQ (a miss visits every entry), then bounces off a full UMQ under
drop-tail admission. Such an event mutates nothing structural — no queue
content changes, no cache line is filled or evicted, no RNG stream is
consumed — it only advances counters and the clock by amounts that are a
pure function of the (unchanged) PRQ contents.

:class:`RejectReplayer` exploits that, without trusting it blindly:

1. **Capture.** While two consecutive eligible events run through the real
   engine, every port call (``load``/``load_run``/``charge``/scan brackets)
   is recorded, along with exact counter deltas.
2. **Verify.** The replayer arms only if both captures produced the same
   op sequence and deltas from *different* probe tags (evidence the scan is
   probe-independent — true for the linear-walk families this is gated to),
   every touched line was a clean L1 hit, and the cycle deltas are
   integer-valued floats (exact to add).
3. **Replay.** Streaks of consecutive eligible events are then applied
   arithmetically: the per-probe clock addends — reconstructed from the
   engine's geometry memo exactly as ``load_run``'s per-probe branch
   computes them — are folded with a carry-seeded ``np.cumsum`` (the same
   sequential float64 additions the engine would perform, so the clock is
   bit-identical even while fractional), and all integer-valued counters
   advance by exact multiples.

Anything else — a posted receive, a fast match, an unexpected admission, a
flush — invalidates the armed state; the next eligible event re-captures.

Replay legality leans on two facts worth stating. A miss scan of an
unchanged queue is *idempotent* for the observable cache state: LRU
promotions of the same line sequence leave the same relative recency order
(the L1 must not be PLRU — ``hierarchy.run_latency`` already excludes it;
its mid-queue promotion is not idempotent), and an all-hit scan fills and
evicts nothing. Skipping the scan therefore leaves every *decision-bearing*
state exactly where the legacy loop leaves it. What does drift are
host-invisible tallies nothing reads back into results: the SoA kernel's
absolute LRU tick, per-cache ``CacheStats`` hit counts, and
``demand_accesses`` lag by the replayed visits (relative recency order —
the input to every eviction decision — is identical), and only the searched
queue's own ``QueueStats`` is advanced, not any nested sub-structure's.
``TrafficResult``, ``mem_stats``, and every engine counter are replayed
exactly; the lockstep equivalence suite pins that.
"""

from __future__ import annotations

from itertools import count
from typing import Optional

import numpy as np

from repro.errors import MatchingError
from repro.matching.envelope import Envelope
from repro.matching.linkedlist import BaselineLinkedList
from repro.matching.lla import LinkedListOfArrays
from repro.mem.layout import LINE_SHIFT
from repro.mpi.message import Message

#: Queue families whose miss scan is structurally probe-independent (a miss
#: walks every entry in layout order). Binned structures (hashmap, fourd,
#: openmpi) walk probe-dependent subsets, so they never arm — the batch
#: driver still runs, it just takes the per-event path.
_LINEAR_FAMILIES = (BaselineLinkedList, LinkedListOfArrays)

#: Engine methods shadowed during a capture event.
_CAPTURED_OPS = ("load", "load_run", "store", "hint", "charge", "begin_scan", "end_scan")


def reject_replayer_for(session) -> Optional["RejectReplayer"]:
    """Build a replayer for *session* if its config is eligible, else None.

    Eligibility is static per run: drop-tail admission (a full queue then
    deterministically rejects), no heater (heater catch-up makes op costs
    clock-dependent), no software prefetch (hints would mutate cache state),
    a linear-walk PRQ family, and a hierarchy whose L1 the scan-run fast
    path already certifies (LRU/RANDOM policy, integral latency, no
    netcache interception — ``run_latency`` is not None).
    """
    admission = session.umq_admission
    if admission is None or getattr(session.umq, "policy", None) != "drop-tail":
        return None
    if session.heater is not None:
        return None
    engine = session.engine
    if engine.software_prefetch:
        return None
    if not isinstance(session.prq, _LINEAR_FAMILIES):
        return None
    if engine.hierarchy.run_latency(engine.core_id, engine.mem_class) is None:
        return None
    return RejectReplayer(session)


class RejectReplayer:
    """Capture -> verify -> arm -> streak-replay state machine."""

    def __init__(self, session) -> None:
        self._proc = session.proc
        self._engine = session.engine
        self._prq_stats = session.prq.stats
        self._admission = session.umq_admission
        # 0 = no capture held, 1 = one capture held, 2 = armed.
        self._state = 0
        self._held_sig = None
        self._held_tag = -1
        # Armed replay data (see _arm).
        self._B: Optional[np.ndarray] = None
        self._per_event = None

    @property
    def armed(self) -> bool:
        """True when :meth:`consume` will replay instead of capturing.

        The driver uses this to know whether a consume ran the real process
        path (capture — the process' sequence cursor advanced on its own) or
        replayed arithmetically (the driver must re-sync the cursor).
        """
        return self._state == 2

    def invalidate(self) -> None:
        """Queue or cache state changed: drop captures and armed data."""
        self._state = 0
        self._held_sig = None
        self._B = None
        self._per_event = None

    # -- capture ---------------------------------------------------------------

    def _snapshot(self):
        e = self._engine
        ls = e.level_stats
        qs = self._prq_stats
        ad = self._admission
        return (
            e.loads, e.runs, e.fast_runs, e.run_probes, e.stores, e.sw_prefetches,
            ls.loads, ls.lines, ls.l1_hits, ls.netcache_hits, ls.l2_hits,
            ls.l3_hits, ls.dram_fills, ls.prefetch_covered,
            qs.posts, qs.matches, qs.failed_searches, qs.probes,
            ad.offered, ad.accepted, ad.rejected, ad.evicted,
            e.load_cycles, ls.cycles, ls.penalty_cycles, e.store_cycles_total,
        )

    def _capture(self, rank: int, tag: int, nbytes: int) -> int:
        """Run one eligible event for real, recording its engine op stream."""
        engine = self._engine
        ops = []
        record = ops.append

        def make_wrapper(name, orig):
            def wrapper(*args, _name=name, _orig=orig, **kwargs):
                if kwargs:  # keyword spellings still compare by value
                    record((_name,) + args + (tuple(sorted(kwargs.items())),))
                else:
                    record((_name,) + args)
                return _orig(*args, **kwargs)
            return wrapper

        before = self._snapshot()
        originals = [(name, getattr(engine, name)) for name in _CAPTURED_OPS]
        for name, orig in originals:
            setattr(engine, name, make_wrapper(name, orig))
        try:
            req = self._proc.handle_arrival(
                Message(Envelope(src=rank, tag=tag, cid=0), nbytes)
            )
        finally:
            for name, _ in originals:
                delattr(engine, name)
        after = self._snapshot()
        deltas = tuple(a - b for a, b in zip(after, before))
        if req is not None or deltas[20] != 1:  # rejected delta
            raise MatchingError(
                "traffic fast path: event classified eligible for pure-reject "
                f"capture did not reject (tag {tag}); driver bookkeeping desync"
            )
        sig = (tuple(ops), deltas)
        if self._state == 1 and sig == self._held_sig and tag != self._held_tag:
            if self._arm(sig):
                self._state = 2
            else:
                self._state = 0
                self._held_sig = None
        else:
            self._state = 1
            self._held_sig = sig
            self._held_tag = tag
        return 1

    # -- arming ----------------------------------------------------------------

    def _arm(self, sig) -> bool:
        """Derive exact replay data from a doubly-verified capture."""
        ops, d = sig
        (d_loads, d_runs, d_fast_runs, d_run_probes, d_stores, d_swpf,
         d_ls_loads, d_ls_lines, d_l1, d_net, d_l2, d_l3, d_dram, d_pfcov,
         d_posts, d_matches, d_failed, d_probes,
         d_offered, d_accepted, d_rejected, d_evicted,
         d_lc, d_lsc, d_pen, d_sc) = d
        engine = self._engine
        # Structural invariants of a pure reject: nothing but an all-L1-hit
        # scan plus (optionally) a reject charge.
        if (d_stores or d_swpf or d_sc or d_net or d_l2 or d_l3 or d_dram
                or d_pfcov or d_pen):
            return False
        if d_l1 != d_ls_lines or d_fast_runs != d_runs:
            return False
        if d_posts or d_matches or d_failed != 1 or d_evicted:
            return False
        if d_offered != 1 or d_accepted != 0 or d_rejected != 1:
            return False
        if not (float(d_lc).is_integer() and float(d_lsc).is_integer()):
            return False
        if not (float(engine.load_cycles).is_integer()
                and float(engine.level_stats.cycles).is_integer()):
            return False
        lat = engine.hierarchy.run_latency(engine.core_id, engine.mem_class)
        if lat is None:
            return False
        cc = engine.compare_cycles  # no heater => no interference term
        # Re-derive the per-probe clock addends by simulating the engine's
        # scan-bracket merge over the captured (pre-merge) op stream, then
        # reading run geometry from the engine's own memo. Every addend is
        # exactly the value load_run's per-probe branch adds.
        B = []
        lc_check = 0.0
        lsc_check = 0.0
        n_loads = 0

        def emit_load(addr, nbytes):
            nonlocal lc_check, lsc_check, n_loads
            if nbytes <= 0:
                c = cc
            else:
                nlines = ((addr + nbytes - 1) >> LINE_SHIFT) - (addr >> LINE_SHIFT) + 1
                mem = nlines * lat
                lsc_check += mem
                c = mem + cc
            B.append(c)
            lc_check += c
            n_loads += 1

        scan_active = False
        pending = None
        geometry = engine._geometry
        for op in ops:
            name = op[0]
            if name == "begin_scan":
                scan_active = True
            elif name == "end_scan":
                scan_active = False
                if pending is not None:
                    emit_load(*pending)
                    pending = None
            elif name == "hint":
                # Provably inert: arming requires software_prefetch off, and
                # the engine's hint() then returns before touching anything
                # (not even a pending bracketed load).
                continue
            elif name == "load":
                if len(op) != 3:
                    return False
                addr, nbytes = op[1], op[2]
                if scan_active:
                    if pending is not None:
                        emit_load(*pending)
                        pending = None
                    if nbytes > 0:
                        pending = (addr, nbytes)
                        continue
                emit_load(addr, nbytes)
            elif name == "load_run":
                if not 4 <= len(op) <= 6:
                    return False
                addr, nbytes = op[1], op[2]
                probes = op[3]
                spacing = op[4] if len(op) > 4 else None
                header = op[5] if len(op) > 5 else 0
                if not isinstance(header, int):
                    return False
                if scan_active and pending is not None:
                    if probes > 0 and not header and pending[0] + pending[1] == addr:
                        header = pending[1]
                    else:
                        emit_load(*pending)
                    pending = None
                if probes <= 0:
                    if header:
                        emit_load(addr - header, header)
                    continue
                geo = geometry.get((addr, nbytes, probes, spacing, header))
                if geo is None:
                    return False
                pv, _lines, _vis, total, nloads = geo[:5]
                for v in pv:
                    B.append(v * lat + cc)
                mem = total * lat
                lsc_check += mem
                lc_check += mem + nloads * cc
                n_loads += nloads
            elif name == "charge":
                if len(op) != 2:
                    return False
                B.append(op[1])
            else:  # store/hint observed: not a pure reject
                return False
        if pending is not None:
            return False
        # The analytic addends must reproduce the measured integral cycle
        # deltas exactly (both sides are integer-valued floats).
        if lc_check != d_lc or lsc_check != d_lsc or n_loads != d_loads:
            return False
        self._B = np.asarray(B, dtype=np.float64)
        self._per_event = (
            d_loads, d_runs, d_run_probes, d_ls_loads, d_ls_lines,
            d_probes, d_lc, d_lsc,
        )
        return True

    # -- replay ----------------------------------------------------------------

    def _replay(self, ts, tags, k: int, limit: int, counts) -> int:
        """Apply the longest legal streak of replays starting at event *k*."""
        engine = self._engine
        clock = engine.clock
        now = clock.now
        free = counts[tags[k:limit]] == 0
        reps = len(free) if free.all() else int(np.argmin(free))
        if reps <= 0:  # pragma: no cover - caller checked event k is free
            return 0
        B = self._B
        nB = len(B)
        # Carry-seeded cumulative fold: the exact sequential float64 adds
        # the engine would perform, tiled per replayed event.
        partials = np.cumsum(np.concatenate((np.asarray((now,)), np.tile(B, reps))))[1:]
        ends = partials[nB - 1::nB]
        if reps > 1:
            # Event k+m is replayable only if the clock is already at or past
            # its arrival after m replays (otherwise the legacy loop would
            # post receives / advance the clock there).
            ok = ends[:-1] >= ts[k + 1:k + reps]
            if not ok.all():
                reps = 1 + int(np.argmin(ok))
        clock.now = float(ends[reps - 1])
        (d_loads, d_runs, d_run_probes, d_ls_loads, d_ls_lines,
         d_probes, d_lc, d_lsc) = self._per_event
        engine.loads += d_loads * reps
        engine.runs += d_runs * reps
        engine.fast_runs += d_runs * reps
        engine.run_probes += d_run_probes * reps
        engine.load_cycles += d_lc * reps
        ls = engine.level_stats
        ls.loads += d_ls_loads * reps
        ls.lines += d_ls_lines * reps
        ls.l1_hits += d_ls_lines * reps
        ls.cycles += d_lsc * reps
        qs = self._prq_stats
        qs.probes += d_probes * reps
        qs.failed_searches += reps
        qs.last_probes = d_probes
        ad = self._admission
        ad.offered += reps
        ad.rejected += reps
        return reps

    # -- driver entry ----------------------------------------------------------

    def consume(self, ts, ranks, tags, k: int, limit: int, counts,
                nbytes: int) -> int:
        """Handle >= 1 eligible events starting at *k*; returns how many.

        The caller guarantees event *k* is eligible: drop-tail admission,
        full UMQ, no posted receive matches its tag, clock already at or
        past its arrival, and not a flush boundary. *limit* bounds the
        streak (block end, phase boundary, next flush). Capture events run
        the real engine and consume one event; armed streaks are replayed.
        The caller accounts one pure reject per consumed event (and must
        advance its sequence-number mirror by the same amount).
        """
        if self._state == 2:
            return self._replay(ts, tags, k, limit, counts)
        return self._capture(int(ranks[k]), int(tags[k]), nbytes)
