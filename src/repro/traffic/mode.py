"""Traffic-mode selection: the columnar fast path vs the pinned legacy loop.

The open-loop driver has two spellings of the same simulation. ``legacy``
is the original per-event Python loop, retained verbatim as the reference;
``batch`` consumes the schedule as columnar :class:`~repro.traffic.workload.EventBlock`
slabs and replays verified pure-reject streaks arithmetically. Both are
bit-identical on every observable (``TrafficResult`` including
``mem_stats``) — ``tests/test_traffic_batch_equivalence.py`` pins that —
so the mode only selects host-side speed, exactly like
``REPRO_MEM_KERNEL`` and ``REPRO_SCAN_BATCH`` before it.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.errors import ConfigurationError

#: Environment variable selecting the open-loop driver's event loop.
TRAFFIC_BATCH_ENV = "REPRO_TRAFFIC_BATCH"

#: The columnar fast path is on unless an argument or the env disables it.
DEFAULT_TRAFFIC_BATCH = True

#: Catalogue for ``repro list`` (mirrors the prefetcher-mode table).
TRAFFIC_MODES = (
    ("batch", "columnar EventBlock loop + verified reject-streak replay (default)"),
    ("legacy", "the original per-event loop, retained verbatim as the reference"),
)


def resolve_traffic_batch(value: Optional[Union[bool, str]] = None) -> bool:
    """Resolve the traffic mode: argument beats environment beats default.

    Accepts booleans or the strings ``"on"``/``"off"`` (the CLI and
    environment spelling, mirroring ``resolve_scan_batch`` precedence).
    """
    if value is None:
        value = os.environ.get(TRAFFIC_BATCH_ENV) or DEFAULT_TRAFFIC_BATCH
    if isinstance(value, bool):
        return value
    if value == "on":
        return True
    if value == "off":
        return False
    raise ConfigurationError(
        f"unknown traffic-batch mode {value!r}; expected 'on' or 'off'"
    )


def traffic_mode_label(value: Optional[Union[bool, str]] = None) -> str:
    """The resolved mode as its catalogue name (benchmarks, artifacts)."""
    return "batch" if resolve_traffic_batch(value) else "legacy"
