"""Per-phase statistics for open-loop traffic runs.

The open-loop driver reports what loss-system studies report (icarus:
``AVERAGE_QUEUE_SIZE``, ``PERCENTAGE_OF_REJECTION``) plus the tail-latency
view modern service studies lead with: sojourn time percentiles. A *sojourn*
is the span from a message's scheduled arrival to its delivery to a posted
receive — it includes engine backlog (the arrival was handled late because
the matching core was busy), unexpected-queue residence, and the delivery
overhead itself. Sojourns are accumulated in a seeded
:class:`~repro.analysis.stats.QuantileReservoir`, so a million-event phase
needs O(reservoir) memory and its percentiles are deterministic for a fixed
seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.stats import QuantileReservoir

#: Metrics a scenario point may select as its y value (``metric`` axis).
TRAFFIC_METRICS = (
    "p99_sojourn_us",
    "p95_sojourn_us",
    "p50_sojourn_us",
    "mean_sojourn_us",
    "rejection_pct",
    "mean_queue_depth",
    "max_queue_depth",
    "throughput_per_us",
    "delivered",
)


@dataclass(frozen=True)
class TrafficStats:
    """One phase (warmup or measured) of an open-loop run, reduced."""

    phase: str
    events: int  # arrivals handled
    posted_recvs: int  # receives the application posted
    fast_matches: int  # arrivals that matched a pre-posted receive
    drained: int  # unexpected messages drained by a later receive
    unexpected: int  # arrivals admitted to the UMQ
    rejected: int  # arrivals dropped at a full UMQ (drop-tail)
    evicted: int  # UMQ heads dropped to admit newcomers (drop-head)
    leftover: int  # messages still unexpected when the run ended
    rejection_pct: float  # 100 * (rejected + evicted) / events
    mean_queue_depth: float
    max_queue_depth: int
    mean_sojourn_us: float
    p50_sojourn_us: float
    p95_sojourn_us: float
    p99_sojourn_us: float
    span_us: float  # simulated time the phase covered
    throughput_per_us: float  # deliveries per simulated microsecond

    @property
    def delivered(self) -> int:
        """Messages that reached a receive (either matching direction)."""
        return self.fast_matches + self.drained

    def metric(self, name: str) -> float:
        """Look up one of :data:`TRAFFIC_METRICS` by name."""
        if name not in TRAFFIC_METRICS:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown traffic metric {name!r}; known: {', '.join(TRAFFIC_METRICS)}"
            )
        return float(getattr(self, name))

    def as_dict(self) -> Dict[str, float]:
        """All scalar fields as floats (result-store extras, JSON export)."""
        out: Dict[str, float] = {}
        for field in (
            "events", "posted_recvs", "fast_matches", "drained", "unexpected",
            "rejected", "evicted", "leftover", "delivered", "rejection_pct",
            "mean_queue_depth", "max_queue_depth", "mean_sojourn_us",
            "p50_sojourn_us", "p95_sojourn_us", "p99_sojourn_us", "span_us",
            "throughput_per_us",
        ):
            out[field] = float(getattr(self, field))
        return out


class PhaseAccumulator:
    """Streaming accumulator the driver feeds while a phase is running."""

    def __init__(self, phase: str, ghz: float, reservoir: QuantileReservoir) -> None:
        self.phase = phase
        self.ghz = ghz
        self.reservoir = reservoir
        self.events = 0
        self.posted_recvs = 0
        self.fast_matches = 0
        self.drained = 0
        self.unexpected = 0
        self.rejected = 0
        self.evicted = 0
        self.leftover = 0
        self.depth_sum = 0
        self.depth_obs = 0
        self.depth_max = 0
        self.sojourn_sum = 0.0
        self.start_cycles = 0.0
        self.end_cycles = 0.0

    def begin(self, now: float) -> None:
        """Mark the phase's simulated start time."""
        self.start_cycles = now

    def finish(self, now: float) -> None:
        """Mark the phase's simulated end time."""
        self.end_cycles = now

    def record_sojourn(self, cycles: float) -> None:
        """One delivered message waited *cycles* from arrival to delivery."""
        self.sojourn_sum += cycles
        self.reservoir.add(cycles)

    def observe_depth(self, depth: int) -> None:
        """Sample the unexpected queue's depth (once per handled arrival)."""
        self.depth_sum += depth
        self.depth_obs += 1
        if depth > self.depth_max:
            self.depth_max = depth

    def stats(self) -> TrafficStats:
        """Reduce to the frozen per-phase summary."""
        us = 1000.0  # cycles per us = ghz * 1000
        to_us = 1.0 / (self.ghz * us)
        n_sojourns = self.reservoir.count
        if n_sojourns:
            p50, p95, p99 = self.reservoir.quantiles((0.50, 0.95, 0.99))
        else:
            p50 = p95 = p99 = 0.0
        span_cycles = max(0.0, self.end_cycles - self.start_cycles)
        delivered = self.fast_matches + self.drained
        return TrafficStats(
            phase=self.phase,
            events=self.events,
            posted_recvs=self.posted_recvs,
            fast_matches=self.fast_matches,
            drained=self.drained,
            unexpected=self.unexpected,
            rejected=self.rejected,
            evicted=self.evicted,
            leftover=self.leftover,
            rejection_pct=(
                100.0 * (self.rejected + self.evicted) / self.events
                if self.events
                else 0.0
            ),
            mean_queue_depth=(
                self.depth_sum / self.depth_obs if self.depth_obs else 0.0
            ),
            max_queue_depth=self.depth_max,
            mean_sojourn_us=(
                self.sojourn_sum / n_sojourns * to_us if n_sojourns else 0.0
            ),
            p50_sojourn_us=p50 * to_us,
            p95_sojourn_us=p95 * to_us,
            p99_sojourn_us=p99 * to_us,
            span_us=span_cycles * to_us,
            throughput_per_us=(
                delivered / (span_cycles * to_us) if span_cycles > 0 else 0.0
            ),
        )
