"""Open-loop workload generation: Poisson arrivals, Zipf tag popularity.

The closed-loop benchmarks replay fixed grids — the next message is injected
only after the previous one completed, so the simulator can never be
overloaded. This module generates *open-loop* traffic the way icarus's
``StationaryPacketLevelWorkload`` does: arrivals follow a Poisson process
(exponential inter-arrival gaps at a configured rate), each message's tag is
drawn from a Zipf popularity distribution (a few tags receive most of the
traffic — workload skew, not benchmark order, decides cache residency), and
the schedule is split into an explicit warmup phase followed by a measured
phase.

Everything is a *lazy* generator: a million-event schedule is produced
on demand from fixed-size draw buffers, never materialized as a list, so
long runs complete in bounded memory. All randomness comes from
:func:`repro.sim.rng.stream_seed`-derived named streams, so schedules are
bit-reproducible for a fixed root seed.

The schedule has two spellings over one draw sequence.
:func:`open_loop_blocks` is the columnar one: chunked
:class:`EventBlock` structure-of-arrays slabs (``t_arrive``/``rank``/``tag``
per chunk, arrival times accumulated slab-wise with an explicit carry so
the float additions happen in exactly the per-event order).
:func:`open_loop_events` is a thin per-event view over those blocks — the
historical :class:`TrafficEvent` iterator, bit-identical by construction
because both spellings read the same slabs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.rng import RngRegistry

#: Draws taken from the RNG per refill; a speed/laziness compromise (the
#: buffer, not the schedule, is the resident state).
_CHUNK = 1024


@dataclass(frozen=True)
class TrafficEvent:
    """One message arrival of an open-loop schedule."""

    index: int  # position in the schedule (0-based)
    t_arrive: float  # absolute arrival time, in cycles
    rank: int  # sending rank (envelope src)
    tag: int  # message tag (Zipf popularity rank, 0 = most popular)
    nbytes: int  # payload size
    measured: bool  # False during warmup, True in the measured phase


class PoissonArrivals:
    """Exponential inter-arrival gaps with a given mean, in cycles.

    Iterating yields an endless stream of gap lengths; draws happen in
    fixed-size chunks so the generator is lazy but not one-RNG-call-per-event
    slow.
    """

    def __init__(
        self, mean_gap_cycles: float, rng: np.random.Generator, *, chunk: int = _CHUNK
    ) -> None:
        if mean_gap_cycles <= 0:
            raise ConfigurationError(
                f"mean inter-arrival gap must be positive, got {mean_gap_cycles}"
            )
        self.mean_gap_cycles = float(mean_gap_cycles)
        self._rng = rng
        self._chunk = int(chunk)

    def __iter__(self) -> Iterator[float]:
        while True:
            for gap in self._rng.exponential(self.mean_gap_cycles, self._chunk):
                yield float(gap)


class ZipfTagPopularity:
    """Zipf(alpha) popularity over ``n`` tags (0 = most popular).

    ``P(tag = i) ∝ (i + 1) ** -alpha``; ``alpha = 0`` is uniform. Sampling
    inverts the cumulative distribution with ``searchsorted`` over chunked
    uniform draws.
    """

    def __init__(
        self, n: int, alpha: float, rng: np.random.Generator, *, chunk: int = _CHUNK
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one tag, got {n}")
        if not np.isfinite(alpha) or alpha < 0:
            raise ConfigurationError(
                f"zipf alpha must be a finite number >= 0, got {alpha}"
            )
        self.n = int(n)
        self.alpha = float(alpha)
        self._rng = rng
        self._chunk = int(chunk)
        weights = np.arange(1, self.n + 1, dtype=np.float64) ** -self.alpha
        self._cdf = np.cumsum(weights / weights.sum())
        self._cdf[-1] = 1.0  # guard against rounding at the top

    def pmf(self) -> np.ndarray:
        """The popularity distribution itself (tests, analysis)."""
        return np.diff(self._cdf, prepend=0.0)

    def __iter__(self) -> Iterator[int]:
        while True:
            draws = np.searchsorted(self._cdf, self._rng.random(self._chunk), side="right")
            for tag in draws:
                yield int(tag)

    def sampler(self) -> "_TagSampler":
        """A slab-buffered cursor over the same draw sequence as ``iter()``.

        Draws uniforms in the same ``chunk``-sized slabs the iterator does
        (so both consume the RNG identically), but hands tags out via a
        plain buffer index instead of a generator frame — the open-loop
        batch driver's posting loop uses this.
        """
        return _TagSampler(self)


class _TagSampler:
    """Buffered per-call tag draws, bit-identical to ``iter(popularity)``."""

    __slots__ = ("_pop", "_buf", "_pos")

    def __init__(self, pop: ZipfTagPopularity) -> None:
        self._pop = pop
        self._buf = None
        self._pos = 0

    def next(self) -> int:
        buf = self._buf
        if buf is None or self._pos >= len(buf):
            pop = self._pop
            buf = self._buf = np.searchsorted(
                pop._cdf, pop._rng.random(pop._chunk), side="right"
            )
            self._pos = 0
        tag = buf[self._pos]
        self._pos += 1
        return int(tag)


class _SlabBuffer:
    """Consume an RNG stream in fixed ``chunk``-sized draws, hand out slices.

    The legacy generators always pull full chunks from their stream and use
    what they need; reproducing that exact draw pattern (rather than drawing
    ``size=m`` directly) makes the columnar schedule's RNG consumption
    provably identical to the per-event iterator's, with no assumption about
    how the bit generator fills partial requests.
    """

    __slots__ = ("_draw", "_chunk", "_buf", "_pos")

    def __init__(self, draw: Callable[[int], np.ndarray], chunk: int) -> None:
        self._draw = draw
        self._chunk = chunk
        self._buf = None
        self._pos = 0

    def take(self, n: int) -> np.ndarray:
        buf, pos = self._buf, self._pos
        if buf is not None and pos + n <= len(buf):
            self._pos = pos + n
            return buf[pos:pos + n]
        parts = []
        need = n
        while need:
            if buf is None or pos >= len(buf):
                buf = self._buf = self._draw(self._chunk)
                pos = 0
            take = min(need, len(buf) - pos)
            parts.append(buf[pos:pos + take])
            pos += take
            need -= take
        self._pos = pos
        return parts[0] if len(parts) == 1 else np.concatenate(parts)


@dataclass(frozen=True)
class EventBlock:
    """One chunk of an open-loop schedule, as structure-of-arrays slabs.

    ``t_arrive`` (float64), ``rank`` and ``tag`` (int64) are parallel
    arrays; event ``i`` of the block has global index ``index0 + i``.
    ``warm_count`` is how many leading events of *this block* fall in the
    warmup phase (0 = fully measured, ``len(block)`` = fully warmup), so
    the warmup/measured boundary is resolved per block — including the
    torn case where it lands mid-slab.
    """

    index0: int
    t_arrive: np.ndarray
    rank: np.ndarray
    tag: np.ndarray
    nbytes: int
    warm_count: int

    def __len__(self) -> int:
        return len(self.t_arrive)

    @property
    def measured(self) -> np.ndarray:
        """Per-event measured-phase mask (tests, analysis)."""
        out = np.ones(len(self.t_arrive), dtype=bool)
        out[: self.warm_count] = False
        return out


def open_loop_blocks(
    *,
    rate_per_us: float,
    ghz: float,
    zipf_alpha: float,
    n_tags: int,
    nranks: int,
    msg_bytes: int,
    n_warmup: int,
    n_measured: int,
    seed: int,
    chunk: int = _CHUNK,
) -> Iterator[EventBlock]:
    """The open-loop schedule as lazy columnar :class:`EventBlock` slabs.

    Draw-for-draw identical to the historical per-event stream: gaps and
    tag uniforms are pulled from their streams in the same ``chunk``-sized
    slabs (via :class:`_SlabBuffer`), ranks in the same
    ``min(chunk, remaining)`` slabs, and arrival times are a running
    ``cumsum`` seeded with the previous block's carry — the same float64
    additions in the same order as the scalar ``t += gap`` loop, so every
    ``t_arrive`` is bit-identical. Resident state is O(chunk).
    """
    if rate_per_us <= 0:
        raise ConfigurationError(
            f"arrival rate must be positive (events/us), got {rate_per_us}"
        )
    if n_warmup < 0 or n_measured < 1:
        raise ConfigurationError(
            f"need n_warmup >= 0 and n_measured >= 1, got {n_warmup}/{n_measured}"
        )
    mean_gap = ghz * 1000.0 / rate_per_us
    if mean_gap <= 0:
        raise ConfigurationError(
            f"mean inter-arrival gap must be positive, got {mean_gap}"
        )
    registry = RngRegistry(seed)
    gap_rng = registry.stream("traffic:arrivals")
    popularity = ZipfTagPopularity(
        n_tags, zipf_alpha, registry.stream("traffic:tags"), chunk=chunk
    )
    rank_rng = registry.stream("traffic:ranks")
    gap_buf = _SlabBuffer(lambda n: gap_rng.exponential(mean_gap, n), chunk)
    uni_buf = _SlabBuffer(lambda n: popularity._rng.random(n), chunk)
    cdf = popularity._cdf
    total = n_warmup + n_measured
    t = 0.0
    index = 0
    while index < total:
        m = min(chunk, total - index)
        ranks = rank_rng.integers(0, nranks, size=m)
        # Carry-seeded running sum: cumsum is the same sequential left fold
        # of float64 additions the per-event `t += gap` loop performs.
        ts = np.cumsum(np.concatenate(((t,), gap_buf.take(m))))[1:]
        t = float(ts[-1])
        tags = np.searchsorted(cdf, uni_buf.take(m), side="right")
        yield EventBlock(
            index0=index,
            t_arrive=ts,
            rank=ranks,
            tag=tags,
            nbytes=msg_bytes,
            warm_count=min(m, max(0, n_warmup - index)),
        )
        index += m


def open_loop_events(
    *,
    rate_per_us: float,
    ghz: float,
    zipf_alpha: float,
    n_tags: int,
    nranks: int,
    msg_bytes: int,
    n_warmup: int,
    n_measured: int,
    seed: int,
    chunk: int = _CHUNK,
) -> Iterator[TrafficEvent]:
    """The full open-loop schedule as a lazy :class:`TrafficEvent` stream.

    ``rate_per_us`` is the offered load in mean arrivals per simulated
    microsecond; with a core at *ghz* that is a mean gap of
    ``ghz * 1000 / rate`` cycles. The first ``n_warmup`` events carry
    ``measured=False``, the next ``n_measured`` carry ``measured=True``,
    then the stream ends. Arrival times, tags, and source ranks each come
    from their own :class:`~repro.sim.rng.RngRegistry` named stream, so any
    one of them can be varied (or replayed) independently of the others.

    This is a thin per-event view over :func:`open_loop_blocks`: both
    spellings read the same slabs, so they are bit-identical by
    construction.
    """
    for block in open_loop_blocks(
        rate_per_us=rate_per_us,
        ghz=ghz,
        zipf_alpha=zipf_alpha,
        n_tags=n_tags,
        nranks=nranks,
        msg_bytes=msg_bytes,
        n_warmup=n_warmup,
        n_measured=n_measured,
        seed=seed,
        chunk=chunk,
    ):
        index0 = block.index0
        ts, ranks, tags = block.t_arrive, block.rank, block.tag
        warm_count = block.warm_count
        nbytes = block.nbytes
        for i in range(len(ts)):
            yield TrafficEvent(
                index=index0 + i,
                t_arrive=float(ts[i]),
                rank=int(ranks[i]),
                tag=int(tags[i]),
                nbytes=nbytes,
                measured=i >= warm_count,
            )
