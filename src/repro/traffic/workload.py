"""Open-loop workload generation: Poisson arrivals, Zipf tag popularity.

The closed-loop benchmarks replay fixed grids — the next message is injected
only after the previous one completed, so the simulator can never be
overloaded. This module generates *open-loop* traffic the way icarus's
``StationaryPacketLevelWorkload`` does: arrivals follow a Poisson process
(exponential inter-arrival gaps at a configured rate), each message's tag is
drawn from a Zipf popularity distribution (a few tags receive most of the
traffic — workload skew, not benchmark order, decides cache residency), and
the schedule is split into an explicit warmup phase followed by a measured
phase.

Everything is a *lazy* generator: a million-event schedule is produced
on demand from fixed-size draw buffers, never materialized as a list, so
long runs complete in bounded memory. All randomness comes from
:func:`repro.sim.rng.stream_seed`-derived named streams, so schedules are
bit-reproducible for a fixed root seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.rng import RngRegistry

#: Draws taken from the RNG per refill; a speed/laziness compromise (the
#: buffer, not the schedule, is the resident state).
_CHUNK = 1024


@dataclass(frozen=True)
class TrafficEvent:
    """One message arrival of an open-loop schedule."""

    index: int  # position in the schedule (0-based)
    t_arrive: float  # absolute arrival time, in cycles
    rank: int  # sending rank (envelope src)
    tag: int  # message tag (Zipf popularity rank, 0 = most popular)
    nbytes: int  # payload size
    measured: bool  # False during warmup, True in the measured phase


class PoissonArrivals:
    """Exponential inter-arrival gaps with a given mean, in cycles.

    Iterating yields an endless stream of gap lengths; draws happen in
    fixed-size chunks so the generator is lazy but not one-RNG-call-per-event
    slow.
    """

    def __init__(
        self, mean_gap_cycles: float, rng: np.random.Generator, *, chunk: int = _CHUNK
    ) -> None:
        if mean_gap_cycles <= 0:
            raise ConfigurationError(
                f"mean inter-arrival gap must be positive, got {mean_gap_cycles}"
            )
        self.mean_gap_cycles = float(mean_gap_cycles)
        self._rng = rng
        self._chunk = int(chunk)

    def __iter__(self) -> Iterator[float]:
        while True:
            for gap in self._rng.exponential(self.mean_gap_cycles, self._chunk):
                yield float(gap)


class ZipfTagPopularity:
    """Zipf(alpha) popularity over ``n`` tags (0 = most popular).

    ``P(tag = i) ∝ (i + 1) ** -alpha``; ``alpha = 0`` is uniform. Sampling
    inverts the cumulative distribution with ``searchsorted`` over chunked
    uniform draws.
    """

    def __init__(
        self, n: int, alpha: float, rng: np.random.Generator, *, chunk: int = _CHUNK
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"need at least one tag, got {n}")
        if not np.isfinite(alpha) or alpha < 0:
            raise ConfigurationError(
                f"zipf alpha must be a finite number >= 0, got {alpha}"
            )
        self.n = int(n)
        self.alpha = float(alpha)
        self._rng = rng
        self._chunk = int(chunk)
        weights = np.arange(1, self.n + 1, dtype=np.float64) ** -self.alpha
        self._cdf = np.cumsum(weights / weights.sum())
        self._cdf[-1] = 1.0  # guard against rounding at the top

    def pmf(self) -> np.ndarray:
        """The popularity distribution itself (tests, analysis)."""
        return np.diff(self._cdf, prepend=0.0)

    def __iter__(self) -> Iterator[int]:
        while True:
            draws = np.searchsorted(self._cdf, self._rng.random(self._chunk), side="right")
            for tag in draws:
                yield int(tag)


def open_loop_events(
    *,
    rate_per_us: float,
    ghz: float,
    zipf_alpha: float,
    n_tags: int,
    nranks: int,
    msg_bytes: int,
    n_warmup: int,
    n_measured: int,
    seed: int,
    chunk: int = _CHUNK,
) -> Iterator[TrafficEvent]:
    """The full open-loop schedule as a lazy :class:`TrafficEvent` stream.

    ``rate_per_us`` is the offered load in mean arrivals per simulated
    microsecond; with a core at *ghz* that is a mean gap of
    ``ghz * 1000 / rate`` cycles. The first ``n_warmup`` events carry
    ``measured=False``, the next ``n_measured`` carry ``measured=True``,
    then the stream ends. Arrival times, tags, and source ranks each come
    from their own :class:`~repro.sim.rng.RngRegistry` named stream, so any
    one of them can be varied (or replayed) independently of the others.
    """
    if rate_per_us <= 0:
        raise ConfigurationError(
            f"arrival rate must be positive (events/us), got {rate_per_us}"
        )
    if n_warmup < 0 or n_measured < 1:
        raise ConfigurationError(
            f"need n_warmup >= 0 and n_measured >= 1, got {n_warmup}/{n_measured}"
        )
    registry = RngRegistry(seed)
    gaps = iter(
        PoissonArrivals(
            ghz * 1000.0 / rate_per_us, registry.stream("traffic:arrivals"), chunk=chunk
        )
    )
    tags = iter(
        ZipfTagPopularity(
            n_tags, zipf_alpha, registry.stream("traffic:tags"), chunk=chunk
        )
    )
    rank_rng = registry.stream("traffic:ranks")
    total = n_warmup + n_measured
    t = 0.0
    index = 0
    while index < total:
        ranks = rank_rng.integers(0, nranks, size=min(chunk, total - index))
        for rank in ranks:
            t += next(gaps)
            yield TrafficEvent(
                index=index,
                t_arrive=t,
                rank=int(rank),
                tag=next(tags),
                nbytes=msg_bytes,
                measured=index >= n_warmup,
            )
            index += 1
